//! Cross-crate integration tests for the Turbine workspace live in
//! `tests/` next to this stub library target. They exercise whole-platform
//! behaviour: ACIDF updates against real Task Managers, the two-level
//! scheduling protocol under failures, degraded modes, and property-based
//! invariants of placement and partition assignment.
