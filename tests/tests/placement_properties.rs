//! Property-based tests for the placement algorithm and partition
//! assignment: invariants that must hold for *any* workload shape, not
//! just the ones the examples exercise.

use proptest::prelude::*;
use std::collections::HashMap;
use turbine_shardmgr::{compute_placement, PlacementConfig, PlacementInput};
use turbine_taskmgr::{shard_of_task, task_partitions};
use turbine_types::{ContainerId, JobId, Resources, ShardId, TaskId};

fn arb_shards() -> impl Strategy<Value = Vec<(ShardId, Resources)>> {
    prop::collection::vec((0.0f64..4.0, 0.0f64..4096.0), 1..200).prop_map(|loads| {
        loads
            .into_iter()
            .enumerate()
            .map(|(i, (cpu, mem))| (ShardId(i as u64), Resources::cpu_mem(cpu, mem)))
            .collect()
    })
}

fn arb_containers() -> impl Strategy<Value = Vec<(ContainerId, Resources)>> {
    prop::collection::vec((8.0f64..64.0, 16_000.0f64..256_000.0), 1..24).prop_map(|caps| {
        caps.into_iter()
            .enumerate()
            .map(|(i, (cpu, mem))| (ContainerId(i as u64), Resources::cpu_mem(cpu, mem)))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every shard is assigned to exactly one listed container — no shard
    /// loss, no invented containers — for any load/capacity shape.
    #[test]
    fn placement_is_total_and_well_targeted(
        shards in arb_shards(),
        containers in arb_containers(),
    ) {
        let result = compute_placement(
            PlacementInput { shards: &shards, containers: &containers, current: &HashMap::new() },
            PlacementConfig::default(),
        );
        prop_assert_eq!(result.assignment.len(), shards.len());
        let valid: Vec<ContainerId> = containers.iter().map(|&(c, _)| c).collect();
        for c in result.assignment.values() {
            prop_assert!(valid.contains(c));
        }
    }

    /// With unchanged loads, repeated rebalancing converges to a fixed
    /// point within a few rounds and *stays* there (no oscillation). The
    /// strict-improvement eviction guard is what makes each move monotone
    /// progress; greedy first-fit cannot promise one-shot idempotence, but
    /// production rebalances every 30 minutes, so fast convergence is the
    /// property that matters.
    #[test]
    fn placement_converges_to_a_fixed_point(
        shards in arb_shards(),
        containers in arb_containers(),
    ) {
        let mut current = HashMap::new();
        let mut converged_at = None;
        for round in 0..6 {
            let result = compute_placement(
                PlacementInput { shards: &shards, containers: &containers, current: &current },
                PlacementConfig::default(),
            );
            prop_assume!(result.stats.overflowed == 0);
            let changed = result.assignment != current;
            current = result.assignment;
            if round > 0 && !changed {
                converged_at = Some(round);
                break;
            }
        }
        let converged_at = converged_at.expect("must converge within 6 rounds");
        // Once fixed, it stays fixed.
        for _ in 0..2 {
            let again = compute_placement(
                PlacementInput { shards: &shards, containers: &containers, current: &current },
                PlacementConfig::default(),
            );
            prop_assert_eq!(again.stats.moved, 0, "fixed point must be stable (converged at round {})", converged_at);
            prop_assert_eq!(&again.assignment, &current);
        }
    }

    /// When the tier is homogeneous, total load fits in half the raw
    /// capacity, and no single shard exceeds ~a third of a container,
    /// nothing overflows. (The preconditions are the honest ones: with
    /// *complementary-shaped* heterogeneous containers — one CPU-rich,
    /// one memory-rich — an aggregate-level "fits in half" bound does not
    /// even guarantee a feasible assignment exists, greedy or not.)
    #[test]
    fn comfortable_load_never_overflows(
        mut shards in arb_shards(),
        (n_containers, cap_cpu, cap_mem) in (1usize..24, 8.0f64..64.0, 16_000.0f64..256_000.0),
    ) {
        let containers: Vec<(ContainerId, Resources)> = (0..n_containers)
            .map(|i| (ContainerId(i as u64), Resources::cpu_mem(cap_cpu, cap_mem)))
            .collect();
        let capacity: Resources = containers.iter().map(|&(_, c)| c).sum();
        // Cap single-shard size at 35% of a container: a least-loaded
        // container at the 50% average can always absorb such a shard
        // within its 85% effective capacity.
        let cap = Resources::cpu_mem(cap_cpu, cap_mem).scale(0.35);
        for (_, load) in &mut shards {
            *load = load.min(&cap);
        }
        // Scale the loads down so they fit in half the capacity.
        let total: Resources = shards.iter().map(|&(_, l)| l).sum();
        let scale = f64::min(
            0.5 * capacity.cpu / total.cpu.max(1e-9),
            0.5 * capacity.memory_mb / total.memory_mb.max(1e-9),
        ).min(1.0);
        for (_, load) in &mut shards {
            *load = load.scale(scale);
        }
        let result = compute_placement(
            PlacementInput { shards: &shards, containers: &containers, current: &HashMap::new() },
            PlacementConfig::default(),
        );
        prop_assert_eq!(result.stats.overflowed, 0, "stats: {:?}", result.stats);
    }

    /// Placement is a pure function of its inputs (determinism).
    #[test]
    fn placement_is_deterministic(
        shards in arb_shards(),
        containers in arb_containers(),
    ) {
        let run = || compute_placement(
            PlacementInput { shards: &shards, containers: &containers, current: &HashMap::new() },
            PlacementConfig::default(),
        );
        prop_assert_eq!(run().assignment, run().assignment);
    }

    /// Partition slices of a job's tasks form an exact disjoint cover of
    /// the input partitions, for any (task_count, partition_count) with
    /// task_count <= partition_count.
    #[test]
    fn partition_slices_cover_exactly(
        task_count in 1u32..64,
        extra in 0u32..128,
    ) {
        let partition_count = task_count + extra;
        let mut seen = vec![0u32; partition_count as usize];
        for index in 0..task_count {
            for p in task_partitions(index, task_count, partition_count) {
                seen[p.raw() as usize] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "cover: {seen:?}");
    }

    /// The MD5 task→shard map is stable and in-range for any task id.
    #[test]
    fn task_shard_mapping_is_stable(job in 0u64..1_000_000, index in 0u32..100_000, shards in 1u64..100_000) {
        let task = TaskId::new(JobId(job), index);
        let s1 = shard_of_task(task, shards);
        let s2 = shard_of_task(task, shards);
        prop_assert_eq!(s1, s2);
        prop_assert!(s1.raw() < shards);
    }

    /// Degenerate capacity tiers — zero-capacity containers mixed with
    /// tiny and normal ones — never panic the placement, never lose a
    /// shard, and never land a shard on a zero-capacity container while a
    /// usable one exists.
    #[test]
    fn degenerate_capacities_never_panic_or_misplace(
        shards in arb_shards(),
        caps in prop::collection::vec(
            prop_oneof![
                Just((0.0f64, 0.0f64)),          // fully dead container
                (1.0e-6f64..0.1, 1.0f64..100.0), // tiny
                (8.0f64..64.0, 16_000.0f64..256_000.0),
            ],
            1..16,
        ),
    ) {
        let containers: Vec<(ContainerId, Resources)> = caps
            .iter()
            .enumerate()
            .map(|(i, &(cpu, mem))| (ContainerId(i as u64), Resources::cpu_mem(cpu, mem)))
            .collect();
        let result = compute_placement(
            PlacementInput { shards: &shards, containers: &containers, current: &HashMap::new() },
            PlacementConfig::default(),
        );
        prop_assert_eq!(result.assignment.len(), shards.len(), "no shard may be lost");
        let any_usable = caps.iter().any(|&(cpu, mem)| cpu > 0.0 || mem > 0.0);
        if any_usable {
            for (&shard, &target) in &result.assignment {
                let (cpu, mem) = caps[target.raw() as usize];
                prop_assert!(
                    cpu > 0.0 || mem > 0.0,
                    "{shard} placed on zero-capacity {target}"
                );
            }
        }
        prop_assert!(result.stats.mean_util.is_finite(), "stats poisoned: {:?}", result.stats);
    }

    /// The headroom band is respected wherever it is satisfiable: with a
    /// comfortable homogeneous tier plus dead containers thrown in, no
    /// usable container is pushed past its effective (headroom-scaled)
    /// capacity and the dead ones stay empty.
    #[test]
    fn headroom_band_holds_despite_dead_containers(
        mut shards in arb_shards(),
        n_usable in 1usize..12,
        n_dead in 0usize..6,
        (cap_cpu, cap_mem) in (8.0f64..64.0, 16_000.0f64..256_000.0),
    ) {
        // Interleave dead containers among usable ones.
        let mut containers = Vec::new();
        for i in 0..(n_usable + n_dead) {
            let cap = if i < n_usable {
                Resources::cpu_mem(cap_cpu, cap_mem)
            } else {
                Resources::ZERO
            };
            containers.push((ContainerId(i as u64), cap));
        }
        containers.sort_by_key(|&(c, _)| c.raw() % 3);
        // Same comfortable-load construction as the overflow property.
        let shard_cap = Resources::cpu_mem(cap_cpu, cap_mem).scale(0.35);
        for (_, load) in &mut shards {
            *load = load.min(&shard_cap);
        }
        let total: Resources = shards.iter().map(|&(_, l)| l).sum();
        let scale = f64::min(
            0.5 * (n_usable as f64 * cap_cpu) / total.cpu.max(1e-9),
            0.5 * (n_usable as f64 * cap_mem) / total.memory_mb.max(1e-9),
        ).min(1.0);
        for (_, load) in &mut shards {
            *load = load.scale(scale);
        }
        let config = PlacementConfig::default();
        let result = compute_placement(
            PlacementInput { shards: &shards, containers: &containers, current: &HashMap::new() },
            config,
        );
        prop_assert_eq!(result.stats.overflowed, 0, "stats: {:?}", result.stats);
        // Reconstruct per-container loads and check the headroom band.
        let mut loads: HashMap<ContainerId, Resources> = HashMap::new();
        for (&shard, &target) in &result.assignment {
            let load = shards.iter().find(|&&(s, _)| s == shard).expect("known shard").1;
            *loads.entry(target).or_insert(Resources::ZERO) += load;
        }
        for (container, cap) in &containers {
            let load = loads.get(container).copied().unwrap_or(Resources::ZERO);
            if cap.is_zero() {
                prop_assert!(load.is_zero(), "dead {container} got load {load:?}");
            } else {
                let effective = cap.scale(1.0 - config.headroom);
                prop_assert!(
                    load.fits_within(&effective),
                    "{container} over effective capacity: {load:?} vs {effective:?}"
                );
            }
        }
    }
}
