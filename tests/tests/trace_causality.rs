//! Causal decision tracing, end to end: `turbinesim trace --explain`
//! reconstructs multi-hop fault → symptom → decision chains; identical
//! runs produce identical trace digests; and tracing is observational —
//! enabling or disabling it leaves the platform fingerprint bit-for-bit
//! unchanged in both drive modes.

use turbine::{DriveMode, Fault, FaultPlan, TraceData, Turbine, TurbineConfig};
use turbine_cli::{run_scenario_traced, trace_report, Scenario, TraceQuery};
use turbine_config::JobConfig;
use turbine_types::{Duration, JobId, Resources, SimTime};
use turbine_workloads::TrafficModel;

/// A scenario whose job gets stalled long enough that the auto-scaler
/// reacts while the fault is still active (so chains root at the fault).
fn stall_scenario() -> Scenario {
    Scenario::parse(
        r#"{
          "hosts": 3, "duration_hours": 1.0, "report_every_mins": 30,
          "jobs": [{"name": "pipeline", "tasks": 2, "partitions": 16,
                    "rate_mbps": 2.0, "max_tasks": 8, "seed": 7}],
          "events": [
            {"action": "inject_fault", "at_mins": 10, "fault": "scribe_stall",
             "job": "pipeline"}
          ]
        }"#,
    )
    .expect("scenario parses")
}

#[test]
fn explain_reconstructs_fault_symptom_decision_chain() {
    let run = run_scenario_traced(&stall_scenario());

    // The raw chain: find the last decision about the job and walk its
    // cause links. It must span at least two hops ending at the fault
    // activation that started the incident.
    let job = run.jobs["pipeline"];
    let decision = run
        .trace
        .last_decision_for(job)
        .expect("the stalled job forced a decision");
    let chain = run.trace.chain(decision.id);
    assert!(
        chain.len() >= 3,
        "expected fault -> symptom -> decision, got {} hops: {:?}",
        chain.len(),
        chain.iter().map(|e| e.data.kind()).collect::<Vec<_>>()
    );
    assert!(decision.data.is_decision());
    assert!(
        chain
            .iter()
            .any(|e| matches!(&e.data, TraceData::Symptom { .. })),
        "chain must pass through a symptom"
    );
    let root = chain.last().expect("non-empty chain");
    assert!(
        matches!(&root.data, TraceData::FaultEdge { fault, activated: true }
            if fault.starts_with("scribe_stall")),
        "chain must root at the scribe_stall activation, got {:?}",
        root.data
    );

    // The user-facing rendering of the same chain via the subcommand's
    // entry point.
    let mut query = TraceQuery::default();
    query.explain = Some("pipeline".to_string());
    let explained = trace_report(&run, &query).expect("explain succeeds");
    assert!(
        explained.contains("fault activated: scribe_stall"),
        "{explained}"
    );
    assert!(explained.contains("symptom"), "{explained}");
    assert!(
        explained.contains("causal chain") && !explained.contains("(1 hops)"),
        "{explained}"
    );
}

#[test]
fn identical_runs_produce_identical_trace_digests() {
    let a = run_scenario_traced(&stall_scenario());
    let b = run_scenario_traced(&stall_scenario());
    assert_eq!(a.trace.digest(), b.trace.digest());
    assert_eq!(a.trace.total_recorded(), b.trace.total_recorded());
    assert_eq!(a.trace.to_jsonl(), b.trace.to_jsonl());
    assert_eq!(a.summary.rows, b.summary.rows);
}

/// Build the fault-ridden platform used by the invariance checks.
fn build(trace_enabled: bool) -> Turbine {
    let mut config = TurbineConfig::default();
    config.trace_enabled = trace_enabled;
    let mut turbine = Turbine::new(config);
    turbine.add_hosts(4, Resources::new(56.0, 256.0 * 1024.0, 1.0e6, 1000.0));
    turbine
        .provision_job(
            JobId(1),
            JobConfig::stateless("traced_diurnal", 4, 16),
            TrafficModel::diurnal(3.0e6, 0.3, 11),
            1.0e6,
            256.0,
        )
        .expect("provision");
    turbine
        .provision_job(
            JobId(2),
            JobConfig::stateless("traced_flat", 2, 16),
            TrafficModel::flat(1.0e6),
            1.0e6,
            256.0,
        )
        .expect("provision");
    let category = turbine
        .job_category(JobId(1))
        .expect("category")
        .to_string();
    turbine.schedule_fault(FaultPlan {
        fault: Fault::ScribeStall(category),
        from: SimTime::ZERO + Duration::from_mins(30),
        until: Some(SimTime::ZERO + Duration::from_mins(90)),
    });
    turbine.schedule_fault(FaultPlan {
        fault: Fault::TaskServiceDown,
        from: SimTime::ZERO + Duration::from_mins(100),
        until: Some(SimTime::ZERO + Duration::from_mins(110)),
    });
    turbine
}

#[test]
fn tracing_is_observational_in_both_drive_modes() {
    for mode in [DriveMode::EventDriven, DriveMode::DenseTick] {
        let mut on = build(true);
        let mut off = build(false);
        on.drive_for(Duration::from_hours(3), mode);
        off.drive_for(Duration::from_hours(3), mode);
        assert_eq!(
            on.fingerprint(),
            off.fingerprint(),
            "tracing changed platform state under {mode:?}"
        );
        assert!(on.trace().total_recorded() > 0);
        assert_eq!(
            off.trace().total_recorded(),
            0,
            "disabled trace stays empty"
        );
    }
}

#[test]
fn dense_and_event_modes_produce_the_same_trace_digest() {
    let mut dense = build(true);
    let mut event = build(true);
    dense.drive_for(Duration::from_hours(3), DriveMode::DenseTick);
    event.drive_for(Duration::from_hours(3), DriveMode::EventDriven);
    assert_eq!(dense.fingerprint(), event.fingerprint());
    assert_eq!(
        dense.trace().digest(),
        event.trace().digest(),
        "trace digests diverge between drive modes"
    );
}
