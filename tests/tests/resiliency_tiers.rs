//! Resiliency-tier integration tests: warm-standby fail-over for critical
//! jobs and per-tier SLO accounting, with the invariant checker on every
//! tick and every scenario driven under both the dense-tick reference and
//! the event-driven scheduler (fingerprints must match bit-for-bit).
//!
//! Timing contract exercised here (10 s tick, 20 s standby grace, 40 s
//! connection timeout, 60 s fail-over interval, 10 s restart delay):
//! a sustained heartbeat loss starting at T promotes a critical job's
//! warm standby at T+10s (last beat was T-10s, so the grace period has
//! elapsed by the next round) with a warm start, while a standard job
//! waits for the container to be declared dead at T+50s plus a cold
//! 10 s restart — 10 s vs 60 s of downtime.

use turbine::{
    recovery_budget, DriveMode, Fault, FaultPlan, InvariantConfig, RecoveryRecord, Turbine,
    TurbineConfig,
};
use turbine_config::{JobConfig, ResiliencyClass};
use turbine_types::{Duration, JobId, Resources, TaskId};
use turbine_workloads::TrafficModel;

fn host_shape() -> Resources {
    Resources::new(56.0, 256.0 * 1024.0, 1.0e6, 1000.0)
}

fn assert_clean(t: &Turbine) {
    assert!(
        t.invariant_violations().is_empty(),
        "invariant violations: {:?}",
        t.invariant_violations()
    );
}

fn provision(t: &mut Turbine, id: u64, name: &str, tier: ResiliencyClass) {
    let mut jc = JobConfig::stateless(name, 2, 32);
    jc.max_task_count = 64;
    jc.resiliency = tier;
    t.provision_job(JobId(id), jc, TrafficModel::flat(1.0e6), 1.0e6, 256.0)
        .expect("provision");
}

fn first_recovery(t: &Turbine, job: JobId) -> Option<&RecoveryRecord> {
    t.metrics.recoveries.iter().find(|r| r.job == job)
}

/// Sever the primary containers of a critical and a standard job with the
/// same scheduled fault plan; return the driven platform.
fn tiered_pair(mode: DriveMode) -> Turbine {
    let mut config = TurbineConfig::default();
    config.scaler_enabled = false;
    let mut t = Turbine::new(config);
    t.add_hosts(4, host_shape());
    t.enable_invariant_checks(InvariantConfig::default());
    provision(&mut t, 1, "tier_crit", ResiliencyClass::Critical);
    provision(&mut t, 2, "tier_std", ResiliencyClass::Standard);
    t.drive_for(Duration::from_mins(5), mode);

    let c_crit = t
        .task_container(TaskId::new(JobId(1), 0))
        .expect("critical task placed");
    let c_std = t
        .task_container(TaskId::new(JobId(2), 0))
        .expect("standard task placed");
    let from = t.now() + Duration::from_mins(1);
    let until = Some(from + Duration::from_mins(3));
    t.schedule_fault(FaultPlan {
        fault: Fault::HeartbeatLoss(c_crit),
        from,
        until,
    });
    if c_std != c_crit {
        t.schedule_fault(FaultPlan {
            fault: Fault::HeartbeatLoss(c_std),
            from,
            until,
        });
    }
    t.drive_for(Duration::from_mins(10), mode);
    t
}

#[test]
fn critical_recovers_within_budget_and_5x_faster_than_standard() {
    let t = tiered_pair(DriveMode::EventDriven);

    let crit = first_recovery(&t, JobId(1)).expect("critical job recovered");
    assert!(crit.fast, "critical must take the warm-standby fast path");
    assert_eq!(crit.tier, ResiliencyClass::Critical);
    assert!(
        crit.ms <= recovery_budget(ResiliencyClass::Critical).as_millis(),
        "critical recovery {}ms over budget",
        crit.ms
    );

    let std = first_recovery(&t, JobId(2)).expect("standard job recovered");
    assert!(!std.fast, "standard rides the full-sync path");
    assert_eq!(std.tier, ResiliencyClass::Standard);
    assert!(
        std.ms <= recovery_budget(ResiliencyClass::Standard).as_millis(),
        "standard recovery {}ms over budget",
        std.ms
    );

    assert!(
        std.ms >= 5 * crit.ms,
        "fast path must be at least 5x faster: critical {}ms vs standard {}ms",
        crit.ms,
        std.ms
    );

    // Both jobs back at strength; standby coverage restored after the
    // promotion consumed the old registration.
    for id in [1u64, 2] {
        let status = t.job_status(JobId(id)).expect("status");
        assert_eq!(status.running_tasks, 2, "job {id}: {status:?}");
    }
    assert!(
        t.standby_of(JobId(1)).is_some(),
        "critical job must get a fresh standby after promotion"
    );
    assert!(
        t.standby_of(JobId(2)).is_none(),
        "standard jobs never get standbys"
    );
    assert_clean(&t);
}

#[test]
fn tiered_pair_is_mode_equivalent() {
    let dense = tiered_pair(DriveMode::DenseTick);
    let event = tiered_pair(DriveMode::EventDriven);
    assert_eq!(
        dense.fingerprint(),
        event.fingerprint(),
        "dense and event-driven runs must match bit-for-bit"
    );
    assert_clean(&dense);
    assert_clean(&event);
}

/// Kill the standby's whole host in the window between the primary's
/// sever and the promotion round: the fast path must refuse the dead
/// standby and degrade to the standard fail-over, and no replacement
/// standby may be promoted cold mid-outage.
fn standby_host_dies_mid_promotion(mode: DriveMode) -> Turbine {
    let mut config = TurbineConfig::default();
    config.scaler_enabled = false;
    let mut t = Turbine::new(config);
    t.add_hosts(4, host_shape());
    t.enable_invariant_checks(InvariantConfig::default());
    provision(&mut t, 1, "crit_solo", ResiliencyClass::Critical);
    t.drive_for(Duration::from_mins(5), mode);

    let standby = t.standby_of(JobId(1)).expect("standby placed after settle");
    let standby_host = t.cluster.host_of(standby).expect("standby has a host");
    let c_prim = t
        .task_container(TaskId::new(JobId(1), 0))
        .expect("primary placed");
    let from = t.now() + Duration::from_mins(1);
    t.schedule_fault(FaultPlan {
        fault: Fault::HeartbeatLoss(c_prim),
        from,
        until: Some(from + Duration::from_mins(3)),
    });
    // Drive exactly to the sever instant, then take the standby's host
    // down before the next control round can promote it.
    t.drive_for(Duration::from_mins(1), mode);
    t.fail_host(standby_host).expect("fail standby host");
    t.drive_for(Duration::from_mins(10), mode);
    t.recover_host(standby_host).expect("recover standby host");
    t.drive_for(Duration::from_mins(2), mode);
    t
}

#[test]
fn standby_host_death_mid_promotion_degrades_to_standard_path() {
    let t = standby_host_dies_mid_promotion(DriveMode::EventDriven);

    let rec = first_recovery(&t, JobId(1)).expect("job recovered");
    assert!(
        !rec.fast,
        "dead standby must not be promoted; the job degrades to the standard path"
    );
    assert!(
        rec.ms <= recovery_budget(ResiliencyClass::Standard).as_millis(),
        "degraded recovery {}ms must still land within the standard budget",
        rec.ms
    );
    let status = t.job_status(JobId(1)).expect("status");
    assert_eq!(status.running_tasks, 2, "{status:?}");
    assert!(
        t.standby_of(JobId(1)).is_some(),
        "standby coverage must be restored after the outage closes"
    );
    assert_clean(&t);
}

#[test]
fn standby_host_death_is_mode_equivalent() {
    let dense = standby_host_dies_mid_promotion(DriveMode::DenseTick);
    let event = standby_host_dies_mid_promotion(DriveMode::EventDriven);
    assert_eq!(dense.fingerprint(), event.fingerprint());
    assert_clean(&dense);
    assert_clean(&event);
}

/// Sever primary and standby at the same instant (double fault): the
/// promotion round finds the standby severed, drops it, and the job rides
/// the standard path.
fn double_fault(mode: DriveMode) -> Turbine {
    let mut config = TurbineConfig::default();
    config.scaler_enabled = false;
    let mut t = Turbine::new(config);
    t.add_hosts(4, host_shape());
    t.enable_invariant_checks(InvariantConfig::default());
    provision(&mut t, 1, "crit_double", ResiliencyClass::Critical);
    t.drive_for(Duration::from_mins(5), mode);

    // Sever the primary and the standby *as currently registered* in the
    // same instant — the registration can migrate between control rounds,
    // so the pair must be read at the moment the fault lands.
    let standby = t.standby_of(JobId(1)).expect("standby placed after settle");
    let c_prim = t
        .task_container(TaskId::new(JobId(1), 0))
        .expect("primary placed");
    for container in [c_prim, standby] {
        t.inject_fault(
            Fault::HeartbeatLoss(container),
            Some(Duration::from_mins(3)),
        );
    }
    t.drive_for(Duration::from_mins(10), mode);
    t
}

#[test]
fn double_fault_degrades_to_standard_path() {
    let t = double_fault(DriveMode::EventDriven);

    let rec = first_recovery(&t, JobId(1)).expect("job recovered");
    assert!(!rec.fast, "severed standby must not be promoted");
    assert_eq!(rec.tier, ResiliencyClass::Critical);
    assert!(
        rec.ms <= recovery_budget(ResiliencyClass::Standard).as_millis(),
        "double-fault recovery {}ms must still land within the standard budget",
        rec.ms
    );
    let status = t.job_status(JobId(1)).expect("status");
    assert_eq!(status.running_tasks, 2, "{status:?}");
    // The standby never committed a checkpoint while shadowing.
    assert_eq!(t.shadow_cursor().illegal_commits(), 0);
    assert_clean(&t);
}

#[test]
fn double_fault_is_mode_equivalent() {
    let dense = double_fault(DriveMode::DenseTick);
    let event = double_fault(DriveMode::EventDriven);
    assert_eq!(dense.fingerprint(), event.fingerprint());
    assert_clean(&dense);
    assert_clean(&event);
}
