//! Shrunk repro scenarios landed from fuzz campaigns, kept as permanent
//! regression tests.
//!
//! Each constant below is the verbatim repro file a campaign failure
//! shrank to. Every one of them used to violate an oracle; they must now
//! pass all of them, and they must replay deterministically (the same
//! repro file always yields the same fingerprint and trace digest —
//! exactly what `turbinesim repro` relies on).

use turbine_fuzz::{run_case, FuzzScenario};

/// Checks one landed repro: parses, passes every oracle, and replays
/// bit-for-bit.
fn check_repro(name: &str, json: &str) {
    let scenario = FuzzScenario::from_json(json)
        .unwrap_or_else(|e| panic!("{name}: repro does not parse: {e}"));
    let report = run_case(&scenario);
    assert!(
        report.passed(),
        "{name}: oracle failures: {:?}",
        report.failures
    );
    // `run_case` already compares the event run against its own replay;
    // also pin canonical serialization so the repro file stays stable.
    assert_eq!(
        FuzzScenario::from_json(&scenario.to_json()).unwrap(),
        scenario,
        "{name}: repro JSON is not canonical"
    );
}

/// Fuzz seed 9: a host flap on a tiny-host cluster. When the flapped
/// host's container expired, `check_failover` re-placed *all* shards and
/// stripped the source off every resulting move — including survivor
/// rebalancing moves — so the old live owner never dropped the shard and
/// two Task Managers owned it at once (single-shard-ownership violation).
const HOST_FLAP_DUAL_OWNERSHIP: &str = r#"{"band":0.22877808563856694,"faults":[],"flaps":[{"fail_min":17,"host":3,"recover_min":21}],"headroom":0.165126206263714,"horizon_mins":25,"host_cpu":3.191739340804935,"host_memory_mb":13073.364339937014,"hosts":5,"jobs":[{"diurnal":0.37158967367908013,"events":[],"key_cardinality":4794081.14556258,"max_tasks":3,"message_bytes":390.4204328426721,"name":"fuzz1","partitions":20,"per_thread_rate":1765913.934640292,"rate":1174474.218135737,"stateful":true,"tasks":1,"threads":2,"traffic_seed":148}],"scaler_enabled":true,"seed":9,"tick_secs":1}"#;

/// Fuzz seed 12: same root cause reached through a `heartbeat_loss`
/// fault instead of a whole-host flap, on a 3-host cluster with zero
/// placement headroom.
const HEARTBEAT_LOSS_DUAL_OWNERSHIP: &str = r#"{"band":0.26808421914751707,"faults":[{"from_min":25,"kind":"heartbeat_loss","len_min":4,"target":2}],"flaps":[],"headroom":0.0,"horizon_mins":50,"host_cpu":2.2457572197027273,"host_memory_mb":9198.621571902371,"hosts":3,"jobs":[{"diurnal":0.0,"events":[],"key_cardinality":810231.664608039,"max_tasks":1,"message_bytes":483.2150377551196,"name":"fuzz0","partitions":16,"per_thread_rate":678717.9914215382,"rate":5785250.914341209,"stateful":true,"tasks":1,"threads":2,"traffic_seed":718}],"scaler_enabled":true,"seed":12,"tick_secs":5}"#;

/// Fuzz seed 18: two stateless jobs and a narrow utilization band
/// (0.01), where the post-fail-over placement had the most survivor
/// rebalancing to do — dozens of shards ended up dual-owned.
const NARROW_BAND_DUAL_OWNERSHIP: &str = r#"{"band":0.01,"faults":[{"from_min":73,"kind":"heartbeat_loss","len_min":7,"target":0}],"flaps":[],"headroom":0.20080720800155558,"horizon_mins":114,"host_cpu":3.4223294613599617,"host_memory_mb":14017.861473730403,"hosts":5,"jobs":[{"diurnal":0.0,"events":[],"key_cardinality":0.0,"max_tasks":1,"message_bytes":770.8920919815529,"name":"fuzz0","partitions":7,"per_thread_rate":1730775.9076928792,"rate":580473.1696088638,"stateful":false,"tasks":1,"threads":2,"traffic_seed":473},{"diurnal":0.15604792264446907,"events":[],"key_cardinality":0.0,"max_tasks":3,"message_bytes":120.04458041091696,"name":"fuzz1","partitions":18,"per_thread_rate":907151.6065184504,"rate":5299.140396207196,"stateful":false,"tasks":3,"threads":3,"traffic_seed":540}],"scaler_enabled":true,"seed":18,"tick_secs":2}"#;

/// Resiliency-tier corner, landed with the warm-standby fast path: a
/// critical stateful job loses its primary's heartbeats (sustained, so
/// the standby gets promoted) while another host flaps across the
/// promotion window — the standby itself may be on the flapping host,
/// forcing the double-fault degradation to the standard path. Pins the
/// promotion-single-owner and standby-isolation invariants plus mode
/// equivalence for the whole corner.
const STANDBY_FLAP_DURING_PROMOTION: &str = r#"{"band":0.15,"faults":[{"from_min":10,"kind":"heartbeat_loss","len_min":5,"target":0}],"flaps":[{"fail_min":10,"host":2,"recover_min":15}],"headroom":0.1,"horizon_mins":40,"host_cpu":8.0,"host_memory_mb":32768.0,"hosts":3,"jobs":[{"diurnal":0.0,"events":[],"key_cardinality":100000.0,"max_tasks":2,"message_bytes":256.0,"name":"crit0","partitions":8,"per_thread_rate":1000000.0,"rate":1000000.0,"resiliency":"critical","stateful":true,"tasks":2,"threads":2,"traffic_seed":1},{"diurnal":0.0,"events":[],"key_cardinality":0.0,"max_tasks":2,"message_bytes":256.0,"name":"std1","partitions":8,"per_thread_rate":1000000.0,"rate":500000.0,"resiliency":"standard","stateful":false,"tasks":2,"threads":2,"traffic_seed":2}],"scaler_enabled":false,"seed":0,"tick_secs":5}"#;

#[test]
fn host_flap_no_longer_dual_owns_shards() {
    check_repro("seed-9", HOST_FLAP_DUAL_OWNERSHIP);
}

#[test]
fn heartbeat_loss_no_longer_dual_owns_shards() {
    check_repro("seed-12", HEARTBEAT_LOSS_DUAL_OWNERSHIP);
}

#[test]
fn narrow_band_failover_no_longer_dual_owns_shards() {
    check_repro("seed-18", NARROW_BAND_DUAL_OWNERSHIP);
}

#[test]
fn standby_host_flap_during_promotion_stays_single_owner() {
    check_repro("standby-flap", STANDBY_FLAP_DURING_PROMOTION);
}
