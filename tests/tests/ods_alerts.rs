//! End-to-end tests for the ODS metrics registry and alerting engine on a
//! real platform: absence detection, incident deduplication under flap
//! suppression, cause-linked incident trace events, determinism across
//! drive modes and replay, and observational invariance (ODS on vs off).

use turbine::{DriveMode, Fault, Turbine, TurbineConfig};
use turbine_config::{JobConfig, ResiliencyClass};
use turbine_ods::{AlertRule, MetricKey, RuleKind, Scope, Severity, ThresholdOp};
use turbine_types::{Duration, JobId, Resources};
use turbine_workloads::TrafficModel;

fn platform(ods_enabled: bool) -> Turbine {
    let mut config = TurbineConfig::default();
    config.ods_enabled = ods_enabled;
    let mut t = Turbine::new(config);
    t.add_hosts(4, Resources::new(56.0, 256.0 * 1024.0, 1.0e6, 1000.0));
    t
}

fn critical_job(t: &mut Turbine, id: u64) {
    let mut jc = JobConfig::stateless(&format!("crit_{id}"), 4, 64);
    jc.max_task_count = 64;
    jc.resiliency = ResiliencyClass::Critical;
    t.provision_job(
        JobId(id),
        jc,
        TrafficModel::diurnal(3.0e6, 0.2, id),
        1.0e6,
        256.0,
    )
    .expect("provision");
}

/// An absence rule on a metric nothing publishes fires once the stale
/// window passes; a threshold rule on a healthy platform stays quiet.
#[test]
fn absence_rule_fires_for_a_silent_metric_and_healthy_rules_stay_quiet() {
    let mut t = platform(true);
    critical_job(&mut t, 1);
    t.install_alert_rules([
        AlertRule {
            name: "ghost-feed".into(),
            metric: MetricKey::platform("nonexistent_feed_bps"),
            kind: RuleKind::Absence {
                stale_for: Duration::from_mins(5),
            },
            for_duration: Duration::from_mins(0),
            severity: Severity::Warning,
            suppress_for: Duration::from_mins(30),
        },
        AlertRule {
            name: "healthy-lag".into(),
            metric: MetricKey::new(Scope::Job(1), "lag_secs"),
            kind: RuleKind::Threshold {
                op: ThresholdOp::Above,
                value: 90.0,
            },
            for_duration: Duration::from_mins(2),
            severity: Severity::Critical,
            suppress_for: Duration::from_mins(30),
        },
    ]);
    t.run_for(Duration::from_mins(30));
    let fired: Vec<&str> = t.incidents().iter().map(|i| i.rule.as_str()).collect();
    assert_eq!(fired, ["ghost-feed"], "{:?}", t.incidents());
    assert!(t.incidents()[0].is_active(), "nothing ever reports it");
}

/// A scribe stall on a critical job trips the default lag rule exactly
/// once (flap suppression dedupes), the incident resolves after the stall
/// clears, and its trace event is cause-linked to the fault edge.
#[test]
fn scribe_stall_raises_one_deduplicated_cause_linked_incident() {
    let mut t = platform(true);
    critical_job(&mut t, 1);
    t.install_default_alert_rules();
    t.run_for(Duration::from_mins(10));
    let category = t.job_category(JobId(1)).expect("category").to_string();
    t.inject_fault(Fault::ScribeStall(category), Some(Duration::from_mins(8)));
    t.run_for(Duration::from_mins(50));

    assert_eq!(t.incidents().len(), 1, "{:?}", t.incidents());
    let incident = &t.incidents()[0];
    assert_eq!(incident.severity, Severity::Critical);
    assert!(!incident.is_active(), "resolves after the backlog drains");

    // The trace records the incident with the stall fault as its cause.
    let event = t
        .trace()
        .events()
        .find(|e| e.data.kind() == "incident")
        .expect("incident trace event");
    let cause = event.cause.expect("incident is cause-linked");
    let fault_edge = t
        .trace()
        .events()
        .find(|e| e.id == cause)
        .expect("cause resolves");
    assert_eq!(fault_edge.data.kind(), "fault_edge", "{fault_edge:?}");
}

/// The same faulted scenario produces the identical incident log and trace
/// digest under dense-tick, event-driven, and replayed drives.
#[test]
fn incidents_are_deterministic_across_drive_modes_and_replay() {
    let run = |mode: DriveMode| {
        let mut t = platform(true);
        critical_job(&mut t, 1);
        critical_job(&mut t, 2);
        t.install_default_alert_rules();
        t.drive_for(Duration::from_mins(10), mode);
        let category = t.job_category(JobId(2)).expect("category").to_string();
        t.inject_fault(Fault::ScribeStall(category), Some(Duration::from_mins(8)));
        t.drive_for(Duration::from_mins(40), mode);
        let incidents: Vec<String> = t
            .incidents()
            .iter()
            .map(|i| {
                format!(
                    "{} {} {} {:?} {}",
                    i.rule, i.metric, i.opened_at, i.resolved_at, i.message
                )
            })
            .collect();
        (incidents, t.trace().digest(), t.fingerprint())
    };
    let dense = run(DriveMode::DenseTick);
    let event = run(DriveMode::EventDriven);
    let replay = run(DriveMode::EventDriven);
    assert!(!event.0.is_empty(), "the stall must raise an incident");
    assert_eq!(dense, event, "dense vs event");
    assert_eq!(event, replay, "replay");
}

/// ODS on vs off leaves the platform fingerprint bit-for-bit unchanged
/// even while rules fire, and with ODS off no registry state accrues.
#[test]
fn ods_is_observational_on_a_faulted_run() {
    let run = |ods: bool| {
        let mut t = platform(ods);
        critical_job(&mut t, 1);
        if ods {
            t.install_default_alert_rules();
        }
        t.run_for(Duration::from_mins(10));
        let category = t.job_category(JobId(1)).expect("category").to_string();
        t.inject_fault(Fault::ScribeStall(category), Some(Duration::from_mins(8)));
        t.run_for(Duration::from_mins(30));
        t
    };
    let with_ods = run(true);
    let without = run(false);
    assert_eq!(with_ods.fingerprint(), without.fingerprint());
    assert!(!with_ods.incidents().is_empty(), "rules fired with ODS on");
    assert!(!with_ods.ods_registry().is_empty(), "registry populated");
    assert_eq!(
        without.ods_registry().len(),
        0,
        "registry idle with ODS off"
    );
    assert!(without.incidents().is_empty());
}
