//! Sparse-data-plane equivalence: with `sparse_data_plane` on, syncer
//! rounds walk only the attention set plus the Job Store changelog delta,
//! invariant checks walk only dirty scopes, and load reports skip
//! unchanged containers — yet every observable outcome (fingerprints,
//! violations, SLO records) must match the full-scan paths bit for bit.
//! The checker's built-in audit re-runs a full scan every N sparse checks
//! and counts disagreements; any mismatch means a dirty-marking site is
//! missing.

use proptest::prelude::*;
use turbine::{Fault, FaultPlan, InvariantConfig, Turbine, TurbineConfig, Violation};
use turbine_config::{ConfigValue, JobConfig};
use turbine_types::{Duration, JobId, Resources, SimTime};
use turbine_workloads::TrafficModel;

fn host() -> Resources {
    Resources::new(56.0, 256.0 * 1024.0, 1.0e6, 1000.0)
}

/// A platform with enough variety to exercise every sparse path: a
/// diurnal stateless job, a flat stateless job, and a stateful critical
/// job (warm standby + complex syncs + shadow cursors).
fn build(sparse: bool) -> Turbine {
    let config = TurbineConfig {
        sparse_data_plane: sparse,
        ..TurbineConfig::default()
    };
    let mut t = Turbine::new(config);
    t.add_hosts(5, host());
    t.provision_job(
        JobId(1),
        JobConfig::stateless("sparse_eq_diurnal", 4, 16),
        TrafficModel::diurnal(3.0e6, 0.3, 7),
        1.0e6,
        256.0,
    )
    .expect("provision");
    t.provision_job(
        JobId(2),
        JobConfig::stateless("sparse_eq_flat", 2, 16),
        TrafficModel::flat(1.0e6),
        1.0e6,
        256.0,
    )
    .expect("provision");
    let mut critical = JobConfig::stateless("sparse_eq_state", 3, 16);
    critical.resiliency = turbine_config::ResiliencyClass::Critical;
    t.provision_stateful_job(
        JobId(3),
        critical,
        TrafficModel::flat(2.0e6),
        1.0e6,
        256.0,
        1.0e5,
    )
    .expect("provision");
    t.enable_invariant_checks(InvariantConfig::default());
    t
}

/// Everything the sparse/full comparison must agree on. Shard-load-map
/// equivalence is covered transitively: rebalance decisions read the
/// loads, and their moves land in the fingerprint's counters and
/// placements.
#[derive(Debug, PartialEq)]
struct Observed {
    fingerprint: turbine::PlatformFingerprint,
    violations: Vec<Violation>,
}

fn drive(sparse: bool, plan: &[FaultPlan], flap_minute: Option<u64>, scale_to: u32) -> Observed {
    let mut t = build(sparse);
    for p in plan {
        t.schedule_fault(p.clone());
    }
    t.run_for(Duration::from_mins(20));
    // Mid-run interventions: an oncall scale (drives a redistribution and
    // a changelog burst) and optionally a host flap (fail-over + standby
    // churn + cluster-scope dirt).
    // May land inside a JobStoreDown window — both modes hit the same
    // deterministic refusal, so the outcome stays comparable either way.
    let _ = t.oncall_set(JobId(1), "task_count", ConfigValue::Int(scale_to as i64));
    if let Some(minute) = flap_minute {
        t.run_for(Duration::from_mins(minute));
        let victim = t.cluster.hosts()[4];
        t.fail_host(victim).expect("fail");
        t.run_for(Duration::from_mins(25));
        t.recover_host(victim).expect("recover");
    }
    let end = SimTime::ZERO + Duration::from_hours(3);
    while t.now() < end {
        t.run_for(Duration::from_mins(9));
    }
    let checker = t.invariant_checker().expect("enabled");
    if sparse {
        assert!(
            checker.audit_rounds() > 0,
            "the soak must be long enough for at least one full-scan audit"
        );
        assert_eq!(
            checker.audit_mismatches(),
            0,
            "sparse invariant checks disagreed with a full-scan audit"
        );
    }
    Observed {
        fingerprint: t.fingerprint(),
        violations: t.invariant_violations().to_vec(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any small fault plan, oncall scale, and optional host flap,
    /// the sparse data plane is observably identical to the full-scan
    /// one: same fingerprint bits, same violations, and zero audit
    /// mismatches inside the sparse checker.
    #[test]
    fn sparse_and_full_data_planes_are_observably_identical(
        fault_kind in 0usize..4,
        fault_from_mins in 5u64..80,
        fault_len_mins in 1u64..25,
        flap_raw in 0u64..60,
        scale_to in 1u32..8,
    ) {
        let flap_minute = (flap_raw >= 10).then_some(flap_raw);
        let fault = match fault_kind {
            0 => Fault::TaskServiceDown,
            1 => Fault::JobStoreDown,
            2 => Fault::SyncerCrash,
            _ => Fault::HeartbeatLoss(turbine_types::ContainerId(2)),
        };
        let from = SimTime::ZERO + Duration::from_mins(fault_from_mins);
        let plan = vec![FaultPlan {
            fault,
            from,
            until: Some(from + Duration::from_mins(fault_len_mins)),
        }];
        let full = drive(false, &plan, flap_minute, scale_to);
        let sparse = drive(true, &plan, flap_minute, scale_to);
        prop_assert_eq!(full, sparse);
    }
}

/// A quiescent fleet settles: after convergence, sparse syncer rounds
/// examine no jobs at all while full rounds keep walking every job —
/// the work reduction the scale gate measures, asserted at test scale.
#[test]
fn quiescent_sparse_rounds_do_no_per_job_work() {
    let mut sparse = build(true);
    let mut full = build(false);
    sparse.run_for(Duration::from_hours(1));
    full.run_for(Duration::from_hours(1));
    let s0 = sparse.metrics.sync_jobs_examined.get();
    let f0 = full.metrics.sync_jobs_examined.get();
    // Second hour: all jobs converged, traffic flat-ish — the sparse
    // syncer should examine almost nothing while full re-walks 3 jobs
    // every 30 s round.
    sparse.run_for(Duration::from_hours(1));
    full.run_for(Duration::from_hours(1));
    let s_delta = sparse.metrics.sync_jobs_examined.get() - s0;
    let f_delta = full.metrics.sync_jobs_examined.get() - f0;
    assert!(
        s_delta * 5 <= f_delta,
        "sparse rounds must do at least 5x less per-job syncer work once \
         converged: sparse examined {s_delta}, full examined {f_delta}"
    );
    assert_eq!(full.fingerprint(), sparse.fingerprint());
}
