//! Whole-platform scenario tests: the three management layers working
//! together under compound conditions (scaling + failures + deletions +
//! capacity pressure), plus end-to-end determinism.

use turbine::{Turbine, TurbineConfig};
use turbine_config::{ConfigValue, JobConfig};
use turbine_types::{Duration, JobId, Priority, Resources};
use turbine_workloads::TrafficModel;

fn hosts() -> Resources {
    Resources::new(56.0, 256.0 * 1024.0, 1.0e6, 1000.0)
}

#[test]
fn compound_chaos_keeps_every_job_running() {
    let mut config = TurbineConfig::default();
    config.scaler.min_action_gap = Duration::from_mins(2);
    let mut t = Turbine::new(config);
    t.add_hosts(8, hosts());

    for i in 0..12u64 {
        let mut jc = JobConfig::stateless(&format!("job_{i}"), 2, 64);
        jc.max_task_count = 64;
        t.provision_job(
            JobId(i + 1),
            jc,
            TrafficModel::diurnal(2.0e6 * (1 + i % 3) as f64, 0.3, i),
            1.0e6,
            256.0,
        )
        .expect("provision");
    }
    t.run_for(Duration::from_mins(10));

    // Chaos: host failure + recovery, connection splits, an oncall resize,
    // and a deletion — interleaved with normal operation.
    let victim = t.cluster.hosts()[2];
    t.fail_host(victim).expect("fail");
    t.run_for(Duration::from_mins(5));
    t.recover_host(victim).expect("recover");

    let split = t.cluster.healthy_containers()[1];
    t.sever_connection(split);
    t.run_for(Duration::from_mins(2));
    t.restore_connection(split);

    t.oncall_set(JobId(3), "task_count", ConfigValue::Int(16))
        .expect("resize");
    t.delete_job(JobId(12)).expect("delete");

    t.run_for(Duration::from_mins(30));

    // Every surviving job runs its expected task count; the deleted one is
    // gone; nothing is quarantined.
    for i in 0..11u64 {
        let job = JobId(i + 1);
        let status = t.job_status(job).expect("status");
        assert!(!status.quarantined, "{job} quarantined: {status:?}");
        assert_eq!(
            status.running_tasks, status.running_config_tasks as usize,
            "{job}: {status:?}"
        );
        assert!(status.running_tasks > 0, "{job} lost its tasks: {status:?}");
    }
    assert_eq!(t.job_status(JobId(3)).expect("status").running_tasks, 16);
    assert!(t.job_status(JobId(12)).is_none());
}

#[test]
fn capacity_pressure_protects_privileged_jobs() {
    let mut config = TurbineConfig::default();
    config.capacity_interval = Duration::from_mins(1);
    let mut t = Turbine::new(config);
    // A deliberately tiny cluster: 2 hosts.
    t.add_hosts(2, hosts());

    // A privileged job and several low-priority hogs that reserve most of
    // the cluster.
    let mut privileged = JobConfig::stateless("vip", 4, 64);
    privileged.priority = Priority::Privileged;
    privileged.task_resources = Resources::cpu_mem(2.0, 2048.0);
    t.provision_job(
        JobId(1),
        privileged,
        TrafficModel::flat(4.0e6),
        1.0e6,
        256.0,
    )
    .expect("provision");
    for i in 0..5u64 {
        let mut hog = JobConfig::stateless(&format!("hog_{i}"), 8, 64);
        hog.priority = Priority::Low;
        hog.task_resources = Resources::cpu_mem(2.5, 4096.0);
        t.provision_job(JobId(10 + i), hog, TrafficModel::flat(2.0e6), 1.0e6, 256.0)
            .expect("provision");
    }
    t.run_for(Duration::from_mins(20));

    // Reserved: 4*2 + 5*8*2.5 = 108 cores on ~112 total ⇒ critical. The
    // Capacity Manager must stop low-priority jobs; the privileged job
    // must keep all its tasks.
    let vip = t.job_status(JobId(1)).expect("status");
    assert_eq!(vip.running_tasks, 4, "{vip:?}");
    let stopped_hogs = (0..5u64)
        .filter(|i| t.job_status(JobId(10 + i)).expect("status").running_tasks == 0)
        .count();
    assert!(stopped_hogs >= 1, "some low-priority job must be stopped");
}

#[test]
fn whole_platform_run_is_bit_for_bit_deterministic() {
    let run = || {
        let mut config = TurbineConfig::default();
        config.scaler.min_action_gap = Duration::from_mins(2);
        let mut t = Turbine::new(config);
        t.add_hosts(6, hosts());
        for i in 0..8u64 {
            t.provision_job(
                JobId(i + 1),
                JobConfig::stateless(&format!("d_{i}"), 2, 32),
                TrafficModel::diurnal(3.0e6, 0.4, i * 7 + 1),
                1.0e6,
                256.0,
            )
            .expect("provision");
        }
        t.run_for(Duration::from_mins(30));
        t.fail_host(t.cluster.hosts()[1]).expect("fail");
        t.run_for(Duration::from_hours(2));
        let mut fingerprint = vec![
            t.metrics.task_starts.get() as f64,
            t.metrics.task_stops.get() as f64,
            t.metrics.task_restarts.get() as f64,
            t.metrics.shard_moves.get() as f64,
            t.metrics.scaling_actions.get() as f64,
        ];
        for i in 0..8u64 {
            fingerprint.push(t.job_status(JobId(i + 1)).expect("status").backlog_bytes);
        }
        fingerprint
    };
    assert_eq!(run(), run());
}

#[test]
fn scribe_and_checkpoints_account_for_every_byte() {
    let mut t = Turbine::new(TurbineConfig::default());
    t.add_hosts(4, hosts());
    let job = JobId(1);
    t.provision_job(
        job,
        JobConfig::stateless("audited", 4, 16),
        TrafficModel::flat(2.0e6),
        1.0e6,
        256.0,
    )
    .expect("provision");
    t.run_for(Duration::from_mins(30));

    // Data conservation: bytes in Scribe == bytes processed + backlog
    // (within one durability-sync interval of slack).
    let appended: u64 = (0..16)
        .map(|p| {
            t.scribe
                .tail_offset("audited_input", turbine_types::PartitionId(p))
                .expect("tail")
        })
        .sum();
    let status = t.job_status(job).expect("status");
    let expected_total = 2.0e6 * t.now().as_secs_f64();
    assert!(
        (appended as f64 - expected_total).abs() < 2.0e6 * 90.0,
        "scribe accounted {appended} vs expected {expected_total}"
    );
    assert!(status.backlog_bytes < 2.0e6 * 30.0, "{status:?}");
}
