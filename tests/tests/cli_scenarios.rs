//! The curated scenario files under `scenarios/` stay runnable: they parse,
//! execute end to end, and leave the fleet healthy.

use turbine_cli::{run_scenario, Scenario};

fn run_file(name: &str) -> turbine_cli::RunSummary {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/..").to_string() + "/scenarios/" + name;
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let scenario = Scenario::parse(&text).expect("scenario parses");
    run_scenario(&scenario)
}

#[test]
fn maintenance_window_scenario_stays_healthy() {
    let summary = run_file("maintenance_window.json");
    // Every job running at the end; the final report row shows full SLO.
    for (name, tasks, _) in &summary.jobs {
        assert!(*tasks > 0, "{name} lost its tasks");
    }
    let &(_, _, _, slo, _) = summary.rows.last().expect("rows");
    assert!(slo > 0.99, "final slo {slo}");
    assert!(
        summary.counters[4] >= 1,
        "host failures must trigger fail-over"
    );
}

#[test]
fn tiered_outage_drill_scenario_stays_healthy() {
    let summary = run_file("tiered_outage_drill.json");
    // Mixed-tier fleet under sustained heartbeat loss, a Scribe stall on a
    // critical job, and a host flap: everything running at the end.
    for (name, tasks, _) in &summary.jobs {
        assert!(*tasks > 0, "{name} lost its tasks");
    }
    let &(_, _, _, slo, _) = summary.rows.last().expect("rows");
    assert!(slo > 0.99, "final slo {slo}");
    assert!(
        summary.counters[4] >= 1,
        "sustained heartbeat loss must trigger fail-over"
    );
    // The dashboard reports per-tier SLO lines for the tiers in the fleet.
    assert!(
        summary.dashboard.contains("tier critical:"),
        "dashboard must report the critical tier:\n{}",
        summary.dashboard
    );
}

#[test]
fn storm_and_rollback_scenario_stays_healthy() {
    let summary = run_file("storm_and_rollback.json");
    let &(_, _, _, slo, backlog) = summary.rows.last().expect("rows");
    assert!(slo > 0.99, "final slo {slo}");
    assert!(backlog < 8.0 * 2.0 * 90.0, "final backlog {backlog} MB");
    // The oncall 24-task pin was applied and then cleared: the job ends
    // with the scaler's own sizing, still running.
    for (name, tasks, _) in &summary.jobs {
        assert!(*tasks > 0, "{name} lost its tasks");
    }
}
