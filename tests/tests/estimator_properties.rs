//! Property-based tests for the Auto Scaler's resource estimator: the
//! Eq. 2/3 capacity model must be monotone in load and produce finite,
//! bounded answers for *any* finite input — including the degenerate
//! meter readings (negative rates, zero throughput estimates, enormous
//! backlogs) a real fleet produces.

use proptest::prelude::*;
use turbine_autoscaler::{
    cpu_units_needed, required_task_count, JobMetrics, ResourceEstimator, MAX_CPU_UNITS,
    MAX_ESTIMATED_TASKS,
};
use turbine_types::{Duration, Resources};

/// Finite f64s across a huge dynamic range, including negatives and zero
/// (buggy meters report all of these).
fn arb_rate() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(0.0),
        -1.0e9f64..1.0e9,
        1.0e9f64..1.0e300,
        -1.0e300f64..-1.0e9,
    ]
}

fn arb_metrics() -> impl Strategy<Value = JobMetrics> {
    (
        arb_rate(),
        arb_rate(),
        arb_rate(),
        0u32..200,
        0u32..64,
        prop_oneof![Just(None), (0.0f64..1.0e12).prop_map(Some)],
    )
        .prop_map(
            |(input_rate, processing_rate, lagged, task_count, threads, keys)| JobMetrics {
                input_rate,
                processing_rate,
                total_bytes_lagged: lagged,
                per_task_rates: Vec::new(),
                per_task_memory_mb: Vec::new(),
                oom_events: 0,
                task_count,
                threads_per_task: threads,
                reserved: Resources::cpu_mem(1.0, 800.0),
                key_cardinality: keys,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// More backlog never asks for fewer tasks (Eq. 3 monotonicity): the
    /// recovery term `B/t` only grows with `B`.
    #[test]
    fn required_tasks_monotone_in_backlog(
        x in 0.0f64..1.0e12,
        p in 1.0f64..1.0e9,
        k in 1u32..16,
        backlog_lo in 0.0f64..1.0e15,
        extra in 0.0f64..1.0e15,
        recovery_secs in 1u64..100_000,
    ) {
        let t = Some(Duration::from_secs(recovery_secs));
        let lo = required_task_count(x, p, k, backlog_lo, t);
        let hi = required_task_count(x, p, k, backlog_lo + extra, t);
        prop_assert!(hi >= lo, "backlog {backlog_lo}+{extra}: {hi} < {lo}");
    }

    /// More input rate never asks for fewer tasks either.
    #[test]
    fn required_tasks_monotone_in_rate(
        x in 0.0f64..1.0e12,
        extra in 0.0f64..1.0e12,
        p in 1.0f64..1.0e9,
        k in 1u32..16,
    ) {
        let lo = required_task_count(x, p, k, 0.0, None);
        let hi = required_task_count(x + extra, p, k, 0.0, None);
        prop_assert!(hi >= lo);
    }

    /// For *any* finite inputs — garbage meters included — the estimates
    /// stay inside their documented bounds instead of panicking,
    /// overflowing, or going non-finite.
    #[test]
    fn estimates_are_finite_and_bounded_for_all_finite_inputs(
        x in arb_rate(),
        p in arb_rate(),
        k in 0u32..64,
        n in 0u32..4096,
        backlog in arb_rate(),
        recovery_ms in prop_oneof![Just(0u64), 1u64..10_000_000],
    ) {
        let t = Some(Duration::from_millis(recovery_ms));
        let units = cpu_units_needed(x, p, k, n, backlog, t);
        prop_assert!(units.is_finite());
        prop_assert!((0.0..=MAX_CPU_UNITS).contains(&units), "units {units}");
        let tasks = required_task_count(x, p, k, backlog, t);
        prop_assert!((1..=MAX_ESTIMATED_TASKS).contains(&tasks), "tasks {tasks}");
    }

    /// The full multi-dimensional estimator keeps every output finite and
    /// non-negative for arbitrary job metrics, stateful or not, across
    /// the whole range of throughput estimates (including the `P = 0`
    /// bootstrap and non-finite garbage).
    #[test]
    fn full_estimator_output_is_finite(
        metrics in arb_metrics(),
        p in prop_oneof![Just(0.0), Just(f64::INFINITY), Just(f64::NAN), arb_rate()],
        stateful in any::<bool>(),
    ) {
        let estimate = ResourceEstimator::default().estimate(&metrics, p, stateful);
        prop_assert!((1..=MAX_ESTIMATED_TASKS).contains(&estimate.min_task_count));
        prop_assert!((1..=MAX_ESTIMATED_TASKS).contains(&estimate.recovery_task_count));
        prop_assert!(
            estimate.recovery_task_count >= estimate.min_task_count,
            "recovery sizing must dominate steady-state sizing"
        );
        for dim in [
            estimate.per_task.cpu,
            estimate.per_task.memory_mb,
            estimate.per_task.disk_mb,
            estimate.per_task.network_mbps,
        ] {
            prop_assert!(dim.is_finite() && dim >= 0.0, "per_task {:?}", estimate.per_task);
        }
    }
}
