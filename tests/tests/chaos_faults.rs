//! Chaos-engine integration tests: one scenario per fault point, each
//! demonstrating the degraded behavior *during* the fault and convergence
//! after it clears, with the invariant checker running on every tick.
//!
//! Fault points (ISSUE: deterministic chaos engine):
//! - Task Service outage → Task Managers serve their cached snapshot (§II)
//! - Job Store unavailability → writes fail, sync/scaling pause (§III-A)
//! - dropped heartbeats → proactive fail-over fires, but not for
//!   transient drops (§IV-C)
//! - State Syncer crash mid-complex-sync → restart resumes from the
//!   persisted expected-vs-running diff (§III-B)
//! - Scribe category read stall → root-causer dependency-failure class

use turbine::{Fault, InvariantConfig, Turbine, TurbineConfig};
use turbine_config::{ConfigValue, JobConfig};
use turbine_types::{Duration, JobId, Resources};
use turbine_workloads::TrafficModel;

fn host_shape() -> Resources {
    Resources::new(56.0, 256.0 * 1024.0, 1.0e6, 1000.0)
}

/// Assert the run accumulated zero invariant violations so far.
fn assert_clean(t: &Turbine) {
    assert!(
        t.invariant_violations().is_empty(),
        "invariant violations: {:?}",
        t.invariant_violations()
    );
}

fn provision_stateless(t: &mut Turbine, id: u64, name: &str, tasks: u32, rate: f64) {
    let mut jc = JobConfig::stateless(name, tasks, 32);
    jc.max_task_count = 64;
    t.provision_job(JobId(id), jc, TrafficModel::flat(rate), 1.0e6, 256.0)
        .expect("provision");
}

#[test]
fn task_service_outage_serves_cached_snapshots_and_defers_new_jobs() {
    let mut config = TurbineConfig::default();
    config.scaler_enabled = false;
    let mut t = Turbine::new(config);
    t.add_hosts(4, host_shape());
    t.enable_invariant_checks(InvariantConfig::default());
    provision_stateless(&mut t, 1, "cached_a", 4, 2.0e6);
    provision_stateless(&mut t, 2, "cached_b", 2, 1.0e6);
    t.run_for(Duration::from_mins(60));
    let before: Vec<usize> = (1..=2)
        .map(|i| t.job_status(JobId(i)).expect("status").running_tasks)
        .collect();
    assert_eq!(before, vec![4, 2]);

    // Task Service down. Existing jobs keep running off the cached
    // snapshot; a job provisioned during the outage is accepted by the
    // Job Store but its tasks cannot start until the service returns.
    t.inject_fault(Fault::TaskServiceDown, None);
    provision_stateless(&mut t, 3, "newcomer", 3, 1.0e6);
    t.run_for(Duration::from_mins(10));
    for (i, &was) in before.iter().enumerate() {
        let status = t.job_status(JobId(i as u64 + 1)).expect("status");
        assert_eq!(
            status.running_tasks, was,
            "degraded mode lost tasks: {status:?}"
        );
    }
    let newcomer = t.job_status(JobId(3)).expect("status");
    assert_eq!(
        newcomer.running_tasks, 0,
        "started during outage: {newcomer:?}"
    );
    assert!(newcomer.expected_tasks > 0);

    // Clearance invalidates the stale snapshot; the deferred job starts.
    t.clear_fault(&Fault::TaskServiceDown);
    t.run_for(Duration::from_mins(5));
    let newcomer = t.job_status(JobId(3)).expect("status");
    assert_eq!(newcomer.running_tasks, 3, "{newcomer:?}");
    assert_clean(&t);
}

#[test]
fn job_store_outage_blocks_writes_until_it_returns() {
    let mut config = TurbineConfig::default();
    config.scaler_enabled = false;
    let mut t = Turbine::new(config);
    t.add_hosts(4, host_shape());
    t.enable_invariant_checks(InvariantConfig::default());
    provision_stateless(&mut t, 1, "steady", 4, 2.0e6);
    t.run_for(Duration::from_mins(30));

    t.inject_fault(Fault::JobStoreDown, Some(Duration::from_mins(10)));
    t.run_for(Duration::from_mins(1));
    // Writes fail while the store is down...
    let err = t
        .oncall_set(JobId(1), "task_count", ConfigValue::Int(6))
        .expect_err("oncall write must fail");
    assert!(err.contains("job store unavailable"), "{err}");
    let mut jc = JobConfig::stateless("rejected", 2, 32);
    jc.max_task_count = 64;
    let err = t
        .provision_job(JobId(9), jc, TrafficModel::flat(1.0e6), 1.0e6, 256.0)
        .expect_err("provision must fail");
    assert!(err.contains("job store unavailable"), "{err}");
    // ...but the data plane keeps running on cached state.
    t.run_for(Duration::from_mins(5));
    assert_eq!(t.job_status(JobId(1)).expect("status").running_tasks, 4);

    // The fault window expires on its own; writes and sync resume.
    t.run_for(Duration::from_mins(10));
    t.oncall_set(JobId(1), "task_count", ConfigValue::Int(6))
        .expect("store is back");
    t.run_for(Duration::from_mins(5));
    assert_eq!(t.job_status(JobId(1)).expect("status").running_tasks, 6);
    assert_clean(&t);
}

#[test]
fn transient_heartbeat_drop_does_not_trigger_failover() {
    let mut config = TurbineConfig::default();
    config.scaler_enabled = false;
    config.load_balancing_enabled = false;
    let mut t = Turbine::new(config);
    let hosts = t.add_hosts(4, host_shape());
    t.enable_invariant_checks(InvariantConfig::default());
    provision_stateless(&mut t, 1, "steady", 8, 4.0e6);
    t.run_for(Duration::from_mins(30));
    let placements_before = t.task_placements();
    assert_eq!(t.metrics.failovers.get(), 0);

    // One missed heartbeat (15 s < the 40 s connection timeout and the
    // 60 s fail-over interval): the Shard Manager must not react.
    let victim = t.cluster.containers_on(hosts[0]).expect("containers")[0];
    t.inject_fault(Fault::HeartbeatLoss(victim), Some(Duration::from_secs(15)));
    t.run_for(Duration::from_mins(5));

    assert_eq!(
        t.metrics.failovers.get(),
        0,
        "fail-over flapped on a transient drop"
    );
    assert_eq!(
        t.task_placements(),
        placements_before,
        "shards moved needlessly"
    );
    assert_eq!(t.job_status(JobId(1)).expect("status").running_tasks, 8);
    assert_clean(&t);
}

#[test]
fn sustained_heartbeat_loss_fails_over_without_duplicating_shards() {
    let mut config = TurbineConfig::default();
    config.scaler_enabled = false;
    config.load_balancing_enabled = false;
    let mut t = Turbine::new(config);
    let hosts = t.add_hosts(4, host_shape());
    t.enable_invariant_checks(InvariantConfig::default());
    provision_stateless(&mut t, 1, "steady", 8, 4.0e6);
    t.run_for(Duration::from_mins(30));
    let victim = t.cluster.containers_on(hosts[0]).expect("containers")[0];

    // Sustained loss: past the 40 s proactive connection timeout the
    // container reboots itself; past the fail-over interval the Shard
    // Manager reassigns its shards. The job must keep running elsewhere.
    t.inject_fault(Fault::HeartbeatLoss(victim), Some(Duration::from_mins(3)));
    t.run_for(Duration::from_mins(2) + Duration::from_secs(30));
    assert!(
        t.metrics.failovers.get() >= 1,
        "proactive fail-over never fired"
    );
    let during = t.job_status(JobId(1)).expect("status");
    assert_eq!(
        during.running_tasks, 8,
        "tasks lost during fail-over: {during:?}"
    );
    let tm = &t.task_managers()[&victim];
    assert_eq!(
        tm.owned_shards().count(),
        0,
        "rebooted container kept shards"
    );

    // The fault clears (container reconnects empty) and the cluster
    // settles with every shard owned exactly once.
    t.run_for(Duration::from_mins(10));
    let mut owners = std::collections::BTreeMap::new();
    for (&container, tm) in t.task_managers() {
        for shard in tm.owned_shards() {
            if let Some(other) = owners.insert(shard, container) {
                panic!("{shard} owned by both {other} and {container}");
            }
        }
    }
    assert_eq!(t.job_status(JobId(1)).expect("status").running_tasks, 8);
    assert_clean(&t);
}

#[test]
fn syncer_crash_mid_complex_sync_resumes_after_restart() {
    let mut config = TurbineConfig::default();
    config.scaler_enabled = false;
    let mut t = Turbine::new(config);
    t.add_hosts(4, host_shape());
    t.enable_invariant_checks(InvariantConfig::default());
    // 1e8 keys ≈ 100 GB of state ≈ 390 s of state movement at the
    // configured bandwidth: the complex sync comfortably outlives the
    // crash we inject into the middle of it.
    let mut jc = JobConfig::stateless("stateful", 4, 32);
    jc.max_task_count = 16;
    t.provision_stateful_job(JobId(1), jc, TrafficModel::flat(2.0e6), 1.0e6, 256.0, 1.0e8)
        .expect("provision");
    t.run_for(Duration::from_mins(30));
    assert_eq!(t.job_status(JobId(1)).expect("status").running_tasks, 4);

    // A parallelism change on a stateful job forces a complex sync:
    // stop everything, move state, restart with the new task count.
    t.oncall_set(JobId(1), "task_count", ConfigValue::Int(8))
        .expect("resize");
    t.run_for(Duration::from_mins(3));
    let mid = t.job_status(JobId(1)).expect("status");
    assert!(mid.paused, "complex sync should be in flight: {mid:?}");

    // Crash the syncer mid-sync. While it is down nothing moves; the
    // expected-vs-running diff persisted in the Job Store is the
    // recovery log.
    t.inject_fault(Fault::SyncerCrash, Some(Duration::from_mins(5)));
    t.run_for(Duration::from_mins(4));
    let down = t.job_status(JobId(1)).expect("status");
    assert!(
        down.paused,
        "nothing should progress while crashed: {down:?}"
    );

    // The restarted syncer re-derives the in-flight sync and completes it.
    t.run_for(Duration::from_mins(15));
    let after = t.job_status(JobId(1)).expect("status");
    assert!(!after.paused, "{after:?}");
    assert_eq!(after.running_tasks, 8, "{after:?}");
    assert!(!after.quarantined, "{after:?}");
    assert_clean(&t);
}

#[test]
fn scribe_stall_is_diagnosed_as_dependency_failure_and_drains_after() {
    // Scaler on: the root-causer triages the lag the scaler refuses to
    // fix. max_task_count == task_count so the stall cannot be "solved"
    // by scaling and must be classified instead.
    let mut t = Turbine::new(TurbineConfig::default());
    t.add_hosts(4, host_shape());
    t.enable_invariant_checks(InvariantConfig::default());
    let mut jc = JobConfig::stateless("stalled", 4, 16);
    jc.max_task_count = 4;
    t.provision_job(JobId(1), jc, TrafficModel::flat(2.0e6), 1.0e6, 256.0)
        .expect("provision");
    t.run_for(Duration::from_hours(2));
    let category = t.job_category(JobId(1)).expect("category").to_string();

    // Reads from the input category stall: arrivals continue, processing
    // drops to zero — the dependency-failure shape.
    t.inject_fault(Fault::ScribeStall(category), Some(Duration::from_mins(30)));
    t.run_for(Duration::from_mins(40));
    let diagnosed = t.diagnoses().iter().any(|d| {
        d.job == JobId(1) && matches!(d.cause, turbine_autoscaler::RootCause::DependencyFailure)
    });
    assert!(
        diagnosed,
        "no dependency-failure diagnosis; got {:?}",
        t.diagnoses()
    );

    // After the stall clears the backlog drains back down.
    t.run_for(Duration::from_hours(2));
    let status = t.job_status(JobId(1)).expect("status");
    assert_eq!(status.running_tasks, 4, "{status:?}");
    assert!(
        status.backlog_bytes < 2.0e6 * 120.0,
        "backlog never drained: {status:?}"
    );
    assert_clean(&t);
}

#[test]
fn maintenance_window_host_recovery_restores_every_task() {
    // Regression for the maintenance-window loss: two hosts fail in a
    // staggered window, recover, and every job must converge back to its
    // full task count with the invariant checker watching throughout.
    let mut config = TurbineConfig::default();
    config.scaler_enabled = true;
    config.load_balancing_enabled = true;
    let mut t = Turbine::new(config);
    let hosts = t.add_hosts(8, host_shape());
    t.enable_invariant_checks(InvariantConfig::default());

    let jobs = [
        ("events", 8u32, 64u32, 6.0f64, 0.25f64, 10u64, 0.0f64),
        ("metrics", 4, 32, 3.0, 0.25, 11, 0.0),
        ("sessions", 4, 64, 2.0, 0.0, 12, 2_000_000.0),
    ];
    for (i, &(name, tasks, partitions, rate, diurnal, seed, keys)) in jobs.iter().enumerate() {
        let id = JobId(i as u64 + 1);
        let mut jc = JobConfig::stateless(name, tasks, partitions);
        jc.max_task_count = 64;
        let traffic = TrafficModel::diurnal(rate * 1.0e6, diurnal, seed);
        if keys > 0.0 {
            t.provision_stateful_job(id, jc, traffic, 1.0e6, 256.0, keys)
                .expect("provision");
        } else {
            t.provision_job(id, jc, traffic, 1.0e6, 256.0)
                .expect("provision");
        }
    }

    t.run_for(Duration::from_mins(60));
    t.fail_host(hosts[0]).expect("fail");
    t.run_for(Duration::from_mins(5));
    t.fail_host(hosts[1]).expect("fail");
    t.run_for(Duration::from_mins(55));
    t.recover_host(hosts[0]).expect("recover");
    t.run_for(Duration::from_mins(5));
    t.recover_host(hosts[1]).expect("recover");
    t.run_for(Duration::from_mins(115));

    for i in 0..jobs.len() as u64 {
        let status = t.job_status(JobId(i + 1)).expect("status");
        assert!(!status.quarantined, "{status:?}");
        assert_eq!(
            status.running_tasks,
            status.running_config_tasks as usize,
            "job {} did not converge: {status:?}",
            i + 1
        );
        assert!(status.running_tasks > 0, "{status:?}");
    }
    assert_clean(&t);
}

#[test]
fn torn_tail_salvage_clamps_recovered_checkpoints() {
    use turbine_types::PartitionId;

    let mut config = TurbineConfig::default();
    config.scaler_enabled = false;
    let mut t = Turbine::new(config);
    t.add_hosts(4, host_shape());
    t.enable_invariant_checks(InvariantConfig::default());
    provision_stateless(&mut t, 1, "salvaged", 4, 2.0e6);
    // Run long enough for several checkpoint-cadence syncs to land.
    t.run_for(Duration::from_mins(30));
    let job = JobId(1);
    let backlog_before = t.durable_backlog(job).expect("readable before salvage");
    let category = t.job_category(job).expect("category").to_string();

    // WAL torn-tail salvage: every partition's durable tail rewinds to
    // zero, stranding the persisted checkpoints beyond the new tails.
    let partitions = t.scribe.partition_count(&category).expect("category");
    let mut lost = 0;
    for p in 0..partitions {
        lost += t
            .scribe
            .salvage_tail(&category, PartitionId(p as u64), 0)
            .expect("salvage");
    }
    assert!(lost > 0, "nothing was salvaged; test is vacuous");
    assert!(
        t.durable_backlog(job).is_err(),
        "stranded checkpoints must be visible as unreadable"
    );

    // The syncer crashes and restarts: its recovery path must clamp the
    // recovered checkpoints back to the tails and trace each clamp.
    t.inject_fault(Fault::SyncerCrash, None);
    t.clear_fault(&Fault::SyncerCrash);
    t.durable_backlog(job)
        .expect("checkpoints must be readable after recovery clamps them");
    let clamps = t
        .trace()
        .events()
        .filter(|e| e.data.kind() == "checkpoint_clamp")
        .count();
    assert!(clamps > 0, "clamping must surface trace events");

    // And the wedge must not recur: later checkpoint rounds re-commit
    // from the engine's consumed counters, which now exceed the salvaged
    // tails — commits must stay capped at the tail.
    t.run_for(Duration::from_mins(30));
    let backlog_after = t.durable_backlog(job).expect("still readable");
    let _ = (backlog_before, backlog_after);
    assert_clean(&t);
}
