//! Property tests on the data-plane model and the sync loop: byte
//! conservation under arbitrary traffic, and convergence of expected vs
//! running state under arbitrary update sequences.

use proptest::prelude::*;
use turbine::{Turbine, TurbineConfig};
use turbine_config::{ConfigLevel, ConfigValue, JobConfig};
use turbine_jobstore::{JobService, JobStore, MemWal};
use turbine_statesyncer::{Redistribute, StateSyncer, SyncEnvironment};
use turbine_types::{Duration, JobId, Resources};
use turbine_workloads::TrafficModel;

struct InstantEnv;
impl SyncEnvironment for InstantEnv {
    fn request_stop(&mut self, _job: JobId) {}
    fn all_stopped(&mut self, _job: JobId) -> bool {
        true
    }
    fn redistribute_checkpoints(
        &mut self,
        _j: JobId,
        _o: u32,
        _n: u32,
    ) -> Result<Redistribute, String> {
        Ok(Redistribute::Done)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Conservation: for any (rate, capacity, parallelism) combination,
    /// bytes arrived == bytes processed + backlog (up to float rounding),
    /// and the job tracks the correct steady state.
    #[test]
    fn bytes_are_conserved(
        rate_mb in 0.5f64..20.0,
        task_count in 1u32..8,
        minutes in 10u64..40,
    ) {
        let job = JobId(1);
        let mut config = TurbineConfig::default();
        config.scaler_enabled = false;
        let mut t = Turbine::new(config);
        t.add_hosts(4, Resources::new(56.0, 256.0 * 1024.0, 1.0e6, 1000.0));
        t.provision_job(
            job,
            JobConfig::stateless("conserve", task_count, 64),
            TrafficModel::flat(rate_mb * 1.0e6),
            1.0e6,
            256.0,
        ).expect("provision");
        t.run_for(Duration::from_mins(minutes));
        let status = t.job_status(job).expect("status");
        let arrived = rate_mb * 1.0e6 * t.now().as_secs_f64();
        // Backlog can never exceed what arrived, and if capacity exceeds
        // the rate, the backlog stays bounded by the startup transient.
        prop_assert!(status.backlog_bytes <= arrived * (1.0 + 1e-9));
        if (task_count as f64) * 1.0e6 > rate_mb * 1.0e6 * 1.3 {
            prop_assert!(
                status.backlog_bytes < rate_mb * 1.0e6 * 240.0,
                "overscaled job must drain its startup backlog: {status:?}"
            );
        }
    }

    /// Convergence: after any sequence of writes to any levels, enough
    /// sync rounds make the running configuration equal the merged
    /// expected configuration — and further rounds change nothing.
    #[test]
    fn syncer_converges_for_any_update_sequence(
        writes in prop::collection::vec(
            (0u8..4, prop::sample::select(vec!["task_count", "package.version", "threads_per_task", "max_task_count"]), 1i64..64),
            0..12,
        ),
    ) {
        let job = JobId(1);
        let mut svc = JobService::new(JobStore::new(MemWal::new()));
        svc.provision(job, &JobConfig::stateless("converge", 4, 64)).expect("provision");
        let mut syncer = StateSyncer::default();
        syncer.run_round(&mut svc, &mut InstantEnv);

        for (level, field, value) in writes {
            let level = match level {
                0 => ConfigLevel::Base,
                1 => ConfigLevel::Provisioner,
                2 => ConfigLevel::Scaler,
                _ => ConfigLevel::Oncall,
            };
            // Keep task_count within the partition bound so the config
            // stays structurally valid.
            let value = if field == "task_count" { value.min(64) } else { value };
            svc.set_level_field(job, level, field, ConfigValue::Int(value)).expect("write");
        }

        for _ in 0..4 {
            syncer.run_round(&mut svc, &mut InstantEnv);
        }
        let expected = svc.store().expected_merged(job).expect("merged");
        prop_assert_eq!(Some(&expected), svc.store().running(job));
        let quiet = syncer.run_round(&mut svc, &mut InstantEnv);
        prop_assert_eq!(quiet.total_changed(), 0);
    }
}

/// Deterministic OOM-recovery loop: a cgroup-enforced job with an
/// undersized memory reservation OOMs, the scaler grows the reservation,
/// and the OOMs stop.
#[test]
fn oom_loop_settles_after_memory_growth() {
    let mut config = TurbineConfig::default();
    config.scaler.min_action_gap = Duration::from_mins(2);
    let mut t = Turbine::new(config);
    t.add_hosts(4, Resources::new(56.0, 256.0 * 1024.0, 1.0e6, 1000.0));
    let job = JobId(1);
    let mut jc = JobConfig::stateless("oomer", 2, 16);
    jc.memory_enforcement = turbine_config::MemoryEnforcement::Cgroup;
    // Large messages → memory well above the 430 MB reservation.
    jc.task_resources = Resources::cpu_mem(4.0, 430.0);
    t.provision_job(job, jc, TrafficModel::flat(3.0e6), 1.0e6, 4096.0)
        .expect("provision");

    t.run_for(Duration::from_mins(30));
    let ooms_after_settle = t.metrics.oom_kills.get();
    assert!(
        ooms_after_settle > 0,
        "undersized reservation must OOM first"
    );
    let grown = t.job_service_mut().expected_typed(job).expect("config");
    assert!(
        grown.task_resources.memory_mb > 430.0,
        "scaler must grow the reservation: {:?}",
        grown.task_resources
    );
    // Once grown, the OOMs stop.
    t.run_for(Duration::from_mins(20));
    assert_eq!(
        t.metrics.oom_kills.get(),
        ooms_after_settle,
        "no further OOM kills after the reservation grew"
    );
    let status = t.job_status(job).expect("status");
    assert!(status.backlog_bytes < 3.0e6 * 90.0, "{status:?}");
}
