//! ACIDF properties of the job-update pipeline, exercised across crates
//! (Job Store + Job Service + State Syncer), including durability through
//! a real file-backed WAL.

use turbine_config::{ConfigLevel, ConfigValue, JobConfig};
use turbine_jobstore::{FileWal, JobService, JobStore, MemWal, WalStorage};
use turbine_statesyncer::{Redistribute, StateSyncer, SyncEnvironment, SyncerConfig};
use turbine_types::JobId;

struct InstantEnv;
impl SyncEnvironment for InstantEnv {
    fn request_stop(&mut self, _job: JobId) {}
    fn all_stopped(&mut self, _job: JobId) -> bool {
        true
    }
    fn redistribute_checkpoints(
        &mut self,
        _j: JobId,
        _o: u32,
        _n: u32,
    ) -> Result<Redistribute, String> {
        Ok(Redistribute::Done)
    }
}

/// Atomicity: a plan that fails mid-way leaves the running configuration
/// untouched; the retry next round commits exactly once.
#[test]
fn failed_plan_leaves_running_config_untouched() {
    struct FlakyEnv {
        failures_left: u32,
    }
    impl SyncEnvironment for FlakyEnv {
        fn request_stop(&mut self, _job: JobId) {}
        fn all_stopped(&mut self, _job: JobId) -> bool {
            true
        }
        fn redistribute_checkpoints(
            &mut self,
            _j: JobId,
            _o: u32,
            _n: u32,
        ) -> Result<Redistribute, String> {
            if self.failures_left > 0 {
                self.failures_left -= 1;
                Err("transient".into())
            } else {
                Ok(Redistribute::Done)
            }
        }
    }

    let job = JobId(1);
    let mut svc = JobService::new(JobStore::new(MemWal::new()));
    svc.provision(job, &JobConfig::stateless("t", 4, 64))
        .expect("provision");
    let mut syncer = StateSyncer::default();
    let mut env = FlakyEnv { failures_left: 2 };
    syncer.run_round(&mut svc, &mut env);
    assert_eq!(svc.running_typed(job).expect("running").task_count, 4);

    svc.set_level_field(job, ConfigLevel::Scaler, "task_count", ConfigValue::Int(16))
        .expect("scale");
    // Two failed attempts (spaced by the syncer's exponential backoff):
    // running config must still read 4 after every round.
    let mut failures_seen = 0;
    for round in 0.. {
        assert!(round < 12, "failures never surfaced");
        let report = syncer.run_round(&mut svc, &mut env);
        failures_seen += report.failed.len();
        assert_eq!(svc.running_typed(job).expect("running").task_count, 4);
        if failures_seen == 2 {
            break;
        }
    }
    // The next attempt succeeds and commits exactly once.
    for round in 0.. {
        assert!(round < 12, "retry never committed");
        let report = syncer.run_round(&mut svc, &mut env);
        if report.complex_completed == vec![job] {
            break;
        }
        assert!(report.backed_off.contains(&job), "{report:?}");
    }
    assert_eq!(svc.running_typed(job).expect("running").task_count, 16);
}

/// Durability: the entire expected + running state — including an update
/// that was mid-flight — survives a process restart via the file WAL.
#[test]
fn state_survives_restart_via_file_wal() {
    let dir = std::env::temp_dir().join(format!("turbine-acidf-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("jobstore.wal");
    let _ = std::fs::remove_file(&path);
    let job = JobId(7);

    {
        let wal = FileWal::open(&path).expect("open");
        let mut svc = JobService::new(JobStore::new(wal));
        svc.provision(job, &JobConfig::stateless("durable", 4, 64))
            .expect("provision");
        let mut syncer = StateSyncer::default();
        syncer.run_round(&mut svc, &mut InstantEnv);
        // An update arrives... and the process dies before the next sync
        // round.
        svc.set_level_field(job, ConfigLevel::Oncall, "task_count", ConfigValue::Int(20))
            .expect("oncall");
    }

    // "Restart": recover from the WAL.
    let wal = FileWal::open(&path).expect("reopen");
    let store = JobStore::recover(wal).expect("recover");
    let mut svc = JobService::new(store);
    // Running still shows the old state; expected shows the new one.
    assert_eq!(svc.running_typed(job).expect("running").task_count, 4);
    assert_eq!(svc.expected_typed(job).expect("expected").task_count, 20);
    // The first sync round after recovery completes the interrupted update.
    let mut syncer = StateSyncer::default();
    let report = syncer.run_round(&mut svc, &mut InstantEnv);
    assert_eq!(report.complex_completed, vec![job]);
    assert_eq!(svc.running_typed(job).expect("running").task_count, 20);
    std::fs::remove_file(&path).expect("cleanup");
}

/// Isolation + consistency: concurrent writers at different levels never
/// clobber each other; writers at the same level are serialized by
/// version checks; precedence decides the outcome deterministically.
#[test]
fn concurrent_writers_resolve_by_precedence_not_timing() {
    let job = JobId(1);
    let mut svc = JobService::new(JobStore::new(MemWal::new()));
    svc.provision(job, &JobConfig::stateless("t", 10, 64))
        .expect("provision");

    // The auto scaler and two oncalls race. Apply in two different orders
    // and observe identical outcomes.
    let apply = |order: &[(&str, ConfigLevel, i64)]| {
        let mut svc = JobService::new(JobStore::new(MemWal::new()));
        svc.provision(job, &JobConfig::stateless("t", 10, 64))
            .expect("provision");
        for (_, level, count) in order {
            svc.set_level_field(job, *level, "task_count", ConfigValue::Int(*count))
                .expect("write");
        }
        svc.expected_typed(job).expect("typed").task_count
    };
    let a = apply(&[
        ("scaler", ConfigLevel::Scaler, 15),
        ("oncall1", ConfigLevel::Oncall, 20),
        ("oncall2", ConfigLevel::Oncall, 30),
    ]);
    let b = apply(&[
        ("oncall2", ConfigLevel::Oncall, 30),
        ("oncall1", ConfigLevel::Oncall, 20),
        ("scaler", ConfigLevel::Scaler, 15),
    ]);
    // Same-level writes serialize (last write to Oncall differs between
    // orders), but the *level* always wins over the scaler regardless of
    // wall-clock order.
    assert_eq!(a, 30);
    assert_eq!(b, 20);
    for outcome in [a, b] {
        assert_ne!(outcome, 15, "a broken scaler can never override oncall");
    }
}

/// Stale read-modify-write at the same level is rejected, not lost.
#[test]
fn stale_same_level_write_is_rejected() {
    let job = JobId(1);
    let mut svc = JobService::new(JobStore::new(MemWal::new()));
    svc.provision(job, &JobConfig::stateless("t", 4, 64))
        .expect("provision");
    let store = svc.store_mut();
    let (_, v) = store.read_level(job, ConfigLevel::Oncall).expect("read");
    let mut cfg1 = ConfigValue::empty_map();
    cfg1.insert("task_count", ConfigValue::Int(20));
    store
        .write_level(job, ConfigLevel::Oncall, Some(cfg1), v)
        .expect("first");
    let mut cfg2 = ConfigValue::empty_map();
    cfg2.insert("task_count", ConfigValue::Int(30));
    let err = store
        .write_level(job, ConfigLevel::Oncall, Some(cfg2), v)
        .expect_err("stale write must fail");
    assert!(err.to_string().contains("version conflict"), "{err}");
}

/// WAL compaction preserves every ACID property across recovery.
#[test]
fn compaction_preserves_recovery_semantics() {
    let job = JobId(1);
    let mut store = JobStore::new(MemWal::new());
    store
        .create_job(job, JobConfig::stateless("t", 2, 8).to_value())
        .expect("create");
    for i in 0..50u32 {
        let (_, v) = store.read_level(job, ConfigLevel::Scaler).expect("read");
        let mut cfg = ConfigValue::empty_map();
        cfg.insert("task_count", ConfigValue::Int((i % 8 + 1) as i64));
        store
            .write_level(job, ConfigLevel::Scaler, Some(cfg), v)
            .expect("write");
    }
    store
        .commit_running(job, store.expected_merged(job).expect("merged"))
        .expect("commit");
    store.compact().expect("compact");
    assert!(store.wal_len().expect("len") < 10);

    let recovered = JobStore::recover(store.wal().clone()).expect("recover");
    assert_eq!(
        recovered.expected_merged(job).expect("merged"),
        store.expected_merged(job).expect("merged")
    );
    assert_eq!(recovered.running(job), store.running(job));
    // OCC versions survive: a write based on the pre-compaction version
    // still succeeds exactly once.
    let (_, v) = recovered
        .read_level(job, ConfigLevel::Scaler)
        .expect("read");
    assert_eq!(v, 50);
}

/// Fault tolerance: a quarantined job stops consuming sync rounds but its
/// healthy neighbours keep being synchronized.
#[test]
fn quarantine_is_per_job_not_global() {
    let mut svc = JobService::new(JobStore::new(MemWal::new()));
    let poisoned = JobId(1);
    let healthy = JobId(2);
    svc.provision(poisoned, &JobConfig::stateless("bad", 2, 8))
        .expect("provision");
    svc.provision(healthy, &JobConfig::stateless("good", 2, 8))
        .expect("provision");
    let mut syncer = StateSyncer::new(SyncerConfig {
        max_failures: 2,
        max_inflight_rounds: 5,
        ..Default::default()
    });
    syncer.run_round(&mut svc, &mut InstantEnv);
    // Poison: a type-broken oncall write that can never decode.
    svc.set_level_field(poisoned, ConfigLevel::Oncall, "task_count", "many".into())
        .expect("poison");
    // Failures back off exponentially between retries, so allow a few
    // rounds for the second failure to land and trip the quarantine.
    for _ in 0..8 {
        syncer.run_round(&mut svc, &mut InstantEnv);
        if syncer.is_quarantined(poisoned) {
            break;
        }
    }
    assert!(syncer.is_quarantined(poisoned));
    // The healthy job still syncs normally.
    svc.set_level_field(
        healthy,
        ConfigLevel::Provisioner,
        "package.version",
        ConfigValue::Int(2),
    )
    .expect("release");
    let report = syncer.run_round(&mut svc, &mut InstantEnv);
    assert_eq!(report.simple, vec![healthy]);
    assert!(report.failed.is_empty(), "quarantined job must be skipped");
}

/// The WAL of a store under churn stays replayable at every prefix-point
/// where the implementation appends (simulates crash at arbitrary record
/// boundaries).
#[test]
fn every_wal_prefix_recovers_cleanly() {
    let job = JobId(1);
    let mut store = JobStore::new(MemWal::new());
    store
        .create_job(job, JobConfig::stateless("t", 2, 8).to_value())
        .expect("create");
    for i in 0..10u32 {
        let (_, v) = store.read_level(job, ConfigLevel::Scaler).expect("read");
        let mut cfg = ConfigValue::empty_map();
        cfg.insert("task_count", ConfigValue::Int((i % 8 + 1) as i64));
        store
            .write_level(job, ConfigLevel::Scaler, Some(cfg), v)
            .expect("write");
        if i % 3 == 0 {
            store
                .commit_running(job, store.expected_merged(job).expect("merged"))
                .expect("commit");
        }
    }
    let records = store.wal().read_all().expect("read");
    for cut in 1..=records.len() {
        let mut partial = MemWal::new();
        for r in &records[..cut] {
            partial.append(r).expect("append");
        }
        let recovered = JobStore::recover(partial)
            .unwrap_or_else(|e| panic!("prefix of {cut} records must recover: {e}"));
        assert!(recovered.has_job(job));
    }
}
