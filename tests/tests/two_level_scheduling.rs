//! The two-level scheduling protocol across Shard Manager + Task Managers
//! (paper §IV): no duplicate task execution, no task loss, degraded-mode
//! operation, and the DROP-before-ADD movement ordering.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use turbine_config::JobConfig;
use turbine_shardmgr::{ShardManager, ShardManagerConfig, ShardMovement};
use turbine_taskmgr::{snapshot::TaskSnapshot, LocalTaskManager, TaskEvent, TaskService};
use turbine_types::{ContainerId, Duration, JobId, Resources, ShardId, SimTime, TaskId};

const SHARDS: u64 = 64;

fn t(s: u64) -> SimTime {
    SimTime::ZERO + Duration::from_secs(s)
}

/// A little harness: a shard manager plus N local task managers, with the
/// movement protocol applied the way the platform does (drop first).
struct Tier {
    sm: ShardManager,
    tms: HashMap<ContainerId, LocalTaskManager>,
}

impl Tier {
    fn new(containers: u64) -> Tier {
        let mut sm = ShardManager::new(ShardManagerConfig::default());
        sm.ensure_shards(SHARDS);
        let mut tms = HashMap::new();
        for i in 0..containers {
            let id = ContainerId(i);
            sm.register_container(id, Resources::cpu_mem(32.0, 64_000.0), t(0));
            tms.insert(id, LocalTaskManager::new(id, SHARDS));
        }
        Tier { sm, tms }
    }

    fn apply(&mut self, moves: &[ShardMovement]) {
        for m in moves {
            if let Some(from) = m.from {
                if let Some(tm) = self.tms.get_mut(&from) {
                    tm.drop_shard(m.shard);
                }
            }
            if let Some(tm) = self.tms.get_mut(&m.to) {
                tm.add_shard(m.shard);
            }
        }
    }

    fn refresh_all(&mut self, snapshot: &Arc<TaskSnapshot>) {
        for tm in self.tms.values_mut() {
            tm.refresh(snapshot.clone());
        }
    }

    /// Every task currently running anywhere, with its owner(s).
    fn running_owners(&self) -> HashMap<TaskId, Vec<ContainerId>> {
        let mut owners: HashMap<TaskId, Vec<ContainerId>> = HashMap::new();
        for (&c, tm) in &self.tms {
            for (id, _) in tm.running_tasks() {
                owners.entry(*id).or_default().push(c);
            }
        }
        owners
    }
}

fn snapshot_of(jobs: &[(u64, u32)]) -> Arc<TaskSnapshot> {
    let mut specs = Vec::new();
    for &(job, tasks) in jobs {
        specs.extend(TaskService::generate_specs(
            JobId(job),
            &JobConfig::stateless(&format!("job{job}"), tasks, 64),
        ));
    }
    let mut cache = HashMap::new();
    Arc::new(TaskSnapshot::build(specs, SHARDS, &mut cache))
}

#[test]
fn every_task_runs_exactly_once_after_initial_placement() {
    let mut tier = Tier::new(4);
    let snapshot = snapshot_of(&[(1, 16), (2, 8), (3, 32)]);
    let result = tier.sm.rebalance();
    tier.apply(&result.moves);
    tier.refresh_all(&snapshot);

    let owners = tier.running_owners();
    assert_eq!(owners.len(), 56, "no task loss");
    for (task, who) in owners {
        assert_eq!(who.len(), 1, "{task} runs {} times", who.len());
    }
}

#[test]
fn rebalance_never_duplicates_or_loses_tasks() {
    let mut tier = Tier::new(6);
    let snapshot = snapshot_of(&[(1, 32), (2, 32)]);
    let result = tier.sm.rebalance();
    tier.apply(&result.moves);
    tier.refresh_all(&snapshot);

    // Shift the load hard and rebalance repeatedly.
    for round in 0..5 {
        for s in 0..SHARDS {
            let load = if s % 2 == round % 2 { 8.0 } else { 0.5 };
            tier.sm
                .report_load(ShardId(s), Resources::cpu_mem(load, load * 512.0));
        }
        let result = tier.sm.rebalance();
        tier.apply(&result.moves);
        let owners = tier.running_owners();
        assert_eq!(owners.len(), 64, "round {round}: no loss");
        assert!(
            owners.values().all(|w| w.len() == 1),
            "round {round}: no duplication"
        );
    }
}

#[test]
fn failover_moves_every_shard_of_the_dead_container() {
    let mut tier = Tier::new(3);
    let snapshot = snapshot_of(&[(1, 64)]);
    let result = tier.sm.rebalance();
    tier.apply(&result.moves);
    tier.refresh_all(&snapshot);

    let dead = ContainerId(0);
    let dead_tasks: HashSet<TaskId> = tier.tms[&dead].running_tasks().map(|(id, _)| *id).collect();
    assert!(!dead_tasks.is_empty());

    // Survivors heartbeat; the dead one goes silent. The platform also
    // stops delivering its task events (host is gone): simulate by
    // removing its TM.
    tier.tms.remove(&dead);
    for sec in (10..=70).step_by(10) {
        tier.sm.heartbeat(ContainerId(1), t(sec));
        tier.sm.heartbeat(ContainerId(2), t(sec));
    }
    let moves = tier.sm.check_failover(t(70));
    assert!(!moves.is_empty());
    assert!(
        moves.iter().all(|m| m.from.is_none()),
        "nothing to drop on a dead box"
    );
    tier.apply(&moves);

    let owners = tier.running_owners();
    assert_eq!(owners.len(), 64, "all tasks back");
    for task in dead_tasks {
        assert_eq!(owners[&task].len(), 1, "{task} failed over exactly once");
    }
}

#[test]
fn degraded_mode_shard_moves_work_from_cached_snapshots() {
    // The Task Service (and the whole Job Management layer) goes down
    // after the initial snapshot; shard movement must still relocate
    // running tasks using only the managers' cached snapshots.
    let mut tier = Tier::new(2);
    let snapshot = snapshot_of(&[(1, 32)]);
    let result = tier.sm.rebalance();
    tier.apply(&result.moves);
    tier.refresh_all(&snapshot);
    // (No further refresh calls — the service is "down".)

    let from = ContainerId(0);
    let to = ContainerId(1);
    let victim_shard = tier.tms[&from].owned_shards().next().expect("owns shards");
    let moved_tasks: Vec<TaskId> = tier.tms[&from]
        .running_tasks()
        .filter(|(id, _)| turbine_taskmgr::shard_of_task(**id, SHARDS) == victim_shard)
        .map(|(id, _)| *id)
        .collect();
    tier.apply(&[ShardMovement {
        shard: victim_shard,
        from: Some(from),
        to,
    }]);
    let owners = tier.running_owners();
    for task in moved_tasks {
        assert_eq!(owners[&task], vec![to], "{task} moved via cached snapshot");
    }
    assert_eq!(owners.len(), 32, "no loss in degraded mode");
}

#[test]
fn drop_before_add_means_no_overlap_even_transiently() {
    // Execute a movement step by step and check the invariant between
    // steps: after DROP and before ADD the task runs zero times (downtime),
    // never twice.
    let mut tier = Tier::new(2);
    let snapshot = snapshot_of(&[(1, 16)]);
    let result = tier.sm.rebalance();
    tier.apply(&result.moves);
    tier.refresh_all(&snapshot);

    let from = ContainerId(0);
    let to = ContainerId(1);
    let shard = tier.tms[&from].owned_shards().next().expect("owns");
    let tasks: Vec<TaskId> = tier.tms[&from]
        .running_tasks()
        .filter(|(id, _)| turbine_taskmgr::shard_of_task(**id, SHARDS) == shard)
        .map(|(id, _)| *id)
        .collect();

    // Step 1: DROP on the source.
    let events = tier.tms.get_mut(&from).expect("tm").drop_shard(shard);
    assert!(events.iter().all(|e| matches!(e, TaskEvent::Stopped(_))));
    let owners = tier.running_owners();
    for task in &tasks {
        assert!(!owners.contains_key(task), "{task} must be fully stopped");
    }
    // Step 2: ADD on the destination.
    tier.tms.get_mut(&to).expect("tm").add_shard(shard);
    let owners = tier.running_owners();
    for task in &tasks {
        assert_eq!(owners[task], vec![to]);
    }
}

#[test]
fn load_reports_converge_utilization_band() {
    let mut tier = Tier::new(8);
    let snapshot = snapshot_of(&[(1, 64), (2, 64)]);
    let result = tier.sm.rebalance();
    tier.apply(&result.moves);
    tier.refresh_all(&snapshot);

    // Heavy-tailed shard loads.
    for s in 0..SHARDS {
        let load = if s % 13 == 0 { 6.0 } else { 0.3 };
        tier.sm
            .report_load(ShardId(s), Resources::cpu_mem(load, load * 800.0));
    }
    let result = tier.sm.rebalance();
    tier.apply(&result.moves);
    let spread = result.stats.max_util - result.stats.min_util;
    assert!(
        spread <= 0.25,
        "utilization spread {spread} too wide: {:?}",
        result.stats
    );
    // And still: exactly-once execution.
    let owners = tier.running_owners();
    assert_eq!(owners.len(), 128);
    assert!(owners.values().all(|w| w.len() == 1));
}
