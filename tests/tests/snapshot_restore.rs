//! Snapshot/restore equivalence: restoring a mid-run capture and driving
//! to the horizon must be bit-for-bit identical — platform fingerprint,
//! trace digest, and ODS incident log — to the uninterrupted run, in both
//! drive modes, under chaos faults and host flaps. Anything a component
//! forgets to serialize shows up here as a restore-divergence.

use proptest::prelude::*;
use turbine::{DriveMode, Fault, FaultPlan, InvariantConfig, Turbine, TurbineConfig};
use turbine_config::JobConfig;
use turbine_snap::{Snapshot, SnapshotMeta};
use turbine_types::{Duration, JobId, Resources, SimTime};
use turbine_workloads::TrafficModel;

fn host_shape() -> Resources {
    Resources::new(56.0, 256.0 * 1024.0, 1.0e6, 1000.0)
}

/// A busy little platform: two stateless pipelines (one diurnal), one
/// stateful job, default alert rules, invariant checking on.
fn build() -> Turbine {
    let mut config = TurbineConfig::default();
    config.shard_count = 256;
    let mut t = Turbine::new(config);
    t.add_hosts(5, host_shape());
    t.enable_invariant_checks(InvariantConfig::default());
    t.provision_job(
        JobId(1),
        JobConfig::stateless("snap_diurnal", 4, 16),
        TrafficModel::diurnal(3.0e6, 0.3, 11),
        1.0e6,
        256.0,
    )
    .expect("provision");
    t.provision_job(
        JobId(2),
        JobConfig::stateless("snap_flat", 2, 16),
        TrafficModel::flat(1.0e6),
        1.0e6,
        256.0,
    )
    .expect("provision");
    t.provision_stateful_job(
        JobId(3),
        JobConfig::stateless("snap_agg", 2, 8),
        TrafficModel::flat(8.0e5),
        1.0e6,
        256.0,
        1.0e5,
    )
    .expect("provision");
    t.install_default_alert_rules();
    t
}

fn schedule_chaos(t: &mut Turbine) {
    let hosts = t.cluster.hosts();
    let container = t.cluster.containers_on(hosts[1]).expect("containers")[0];
    t.schedule_fault(FaultPlan {
        fault: Fault::HeartbeatLoss(container),
        from: SimTime::ZERO + Duration::from_mins(25),
        until: Some(SimTime::ZERO + Duration::from_mins(45)),
    });
    t.schedule_fault(FaultPlan {
        fault: Fault::SyncerCrash,
        from: SimTime::ZERO + Duration::from_mins(70),
        until: Some(SimTime::ZERO + Duration::from_mins(80)),
    });
    t.schedule_fault(FaultPlan {
        fault: Fault::TaskServiceDown,
        from: SimTime::ZERO + Duration::from_mins(100),
        until: Some(SimTime::ZERO + Duration::from_mins(110)),
    });
}

/// Everything the equivalence contract covers, in one comparable bundle.
fn observe(
    t: &Turbine,
) -> (
    turbine::PlatformFingerprint,
    u64,
    Vec<turbine_ods::Incident>,
) {
    (t.fingerprint(), t.trace().digest(), t.incidents().to_vec())
}

/// Drive minute-by-minute to `horizon_mins`, mirroring the CLI runner.
fn drive_to(t: &mut Turbine, horizon_mins: u64, mode: DriveMode) {
    let end = SimTime::ZERO + Duration::from_mins(horizon_mins);
    while t.now() < end {
        t.drive_for(Duration::from_mins(1), mode);
    }
}

/// The core check: capture at `at_mins`, restore, drive both the original
/// and the restored platform to the horizon, and demand identical
/// observables at capture time and at the horizon.
fn assert_restore_equivalence(at_mins: u64, horizon_mins: u64, mode: DriveMode) {
    let mut original = build();
    schedule_chaos(&mut original);
    drive_to(&mut original, at_mins, mode);

    let snapshot = Snapshot::capture(&original);
    let mut restored = snapshot.restore().expect("restore");
    assert_eq!(
        observe(&original),
        observe(&restored),
        "restore diverged at capture time (mode {mode:?}, minute {at_mins})"
    );

    drive_to(&mut original, horizon_mins, mode);
    drive_to(&mut restored, horizon_mins, mode);
    assert_eq!(
        observe(&original),
        observe(&restored),
        "restore-then-drive diverged (mode {mode:?}, captured at {at_mins}, horizon {horizon_mins})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Capture at a random minute — before, inside, and after the chaos
    /// windows — and drive past every fault edge; restored and
    /// uninterrupted runs must match bit for bit in both drive modes.
    #[test]
    fn restore_then_drive_matches_uninterrupted(at_mins in 5u64..115, event_mode in any::<bool>()) {
        let mode = if event_mode { DriveMode::EventDriven } else { DriveMode::DenseTick };
        assert_restore_equivalence(at_mins, 130, mode);
    }
}

/// Deterministic anchor for the same property at a fault-window boundary
/// (cheap enough to run every time even when the property shrinks).
#[test]
fn restore_mid_fault_window_matches_uninterrupted() {
    assert_restore_equivalence(30, 130, DriveMode::EventDriven);
    assert_restore_equivalence(30, 130, DriveMode::DenseTick);
}

/// A snapshot round-trips through its on-disk blob form unchanged, and
/// the blob carries its scenario context.
#[test]
fn blob_meta_carries_scenario_context() {
    let mut t = build();
    drive_to(&mut t, 10, DriveMode::EventDriven);
    let snap = Snapshot::capture_with_meta(
        &t,
        SnapshotMeta {
            captured_at_ms: t.now().as_millis(),
            scenario: Some("{\"hosts\": 5}".to_string()),
            at_mins: Some(10),
        },
    );
    let back = Snapshot::from_bytes(&snap.to_bytes()).expect("parse");
    assert_eq!(back.meta.at_mins, Some(10));
    assert_eq!(back.meta.scenario.as_deref(), Some("{\"hosts\": 5}"));
    assert_eq!(observe(&back.restore().expect("restore")), observe(&t));
}
