//! Scheduler-equivalence properties: the event-driven control plane must
//! reproduce the dense-tick reference stepper bit-for-bit under
//! randomized control cadences, fault plans, and host flaps — plus
//! deterministic checks of the tick-vs-cadence validation and the
//! sparse-jump path.

use proptest::prelude::*;
use turbine::{DriveMode, Fault, FaultPlan, Turbine, TurbineConfig};
use turbine_config::JobConfig;
use turbine_types::{Duration, JobId, Resources, SimTime};
use turbine_workloads::{TrafficEvent, TrafficEventKind, TrafficModel};

fn host() -> Resources {
    Resources::new(56.0, 256.0 * 1024.0, 1.0e6, 1000.0)
}

/// A platform under the given config with two pipelines: one diurnal
/// stateless job and one flat job, enough activity to exercise every
/// control loop.
fn build(config: TurbineConfig) -> Turbine {
    let mut turbine = Turbine::new(config);
    turbine.add_hosts(4, host());
    turbine
        .provision_job(
            JobId(1),
            JobConfig::stateless("sched_eq_diurnal", 4, 16),
            TrafficModel::diurnal(3.0e6, 0.3, 11),
            1.0e6,
            256.0,
        )
        .expect("provision");
    turbine
        .provision_job(
            JobId(2),
            JobConfig::stateless("sched_eq_flat", 2, 16),
            TrafficModel::flat(1.0e6),
            1.0e6,
            256.0,
        )
        .expect("provision");
    turbine
}

/// Drive `hours` of simulated time in uneven chunks (mirroring how the
/// CLI runner drives minute-by-minute) and return the fingerprint.
fn drive(
    config: TurbineConfig,
    plan: &[FaultPlan],
    flap_at: Option<u64>,
    hours: u64,
    mode: DriveMode,
) -> turbine::PlatformFingerprint {
    let mut turbine = build(config);
    for p in plan {
        turbine.schedule_fault(p.clone());
    }
    if let Some(minute) = flap_at {
        let host = turbine.cluster.hosts()[3];
        turbine.drive_for(Duration::from_mins(minute), mode);
        turbine.fail_host(host).expect("fail");
        turbine.drive_for(Duration::from_mins(20), mode);
        turbine.recover_host(host).expect("recover");
    }
    let end = SimTime::ZERO + Duration::from_hours(hours);
    while turbine.now() < end {
        turbine.drive_for(Duration::from_mins(7), mode);
    }
    turbine.fingerprint()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For any cadence configuration on the tick grid and any small fault
    /// plan, the event-driven scheduler's observable state equals the
    /// dense-tick reference bit-for-bit.
    #[test]
    fn event_driven_matches_dense_reference(
        sync_ticks in 1u64..8,
        tm_ticks in 2u64..10,
        heartbeat_ticks in 1u64..4,
        scaler_mins in 1u64..6,
        checkpoint_ticks in 3u64..12,
        fault_kind in 0usize..4,
        fault_from_mins in 10u64..60,
        fault_len_mins in 1u64..30,
        flap_at_raw in 0u64..40,
    ) {
        // Values below 5 mean "no host flap"; the rest flap at that minute.
        let flap_at = (flap_at_raw >= 5).then_some(flap_at_raw);
        let tick = Duration::from_secs(10);
        let mut config = TurbineConfig::default();
        config.sync_interval = tick.mul(sync_ticks);
        config.tm_refresh_interval = tick.mul(tm_ticks);
        config.heartbeat_interval = tick.mul(heartbeat_ticks);
        config.scaler_interval = Duration::from_mins(scaler_mins);
        config.checkpoint_interval = tick.mul(checkpoint_ticks);
        let fault = match fault_kind {
            0 => Fault::TaskServiceDown,
            1 => Fault::JobStoreDown,
            2 => Fault::SyncerCrash,
            _ => Fault::ScribeStall("sched_eq_flat_input".to_string()),
        };
        let from = SimTime::ZERO + Duration::from_mins(fault_from_mins);
        let plan = vec![FaultPlan {
            fault,
            from,
            until: Some(from + Duration::from_mins(fault_len_mins)),
        }];
        let dense = drive(config.clone(), &plan, flap_at, 3, DriveMode::DenseTick);
        let event = drive(config, &plan, flap_at, 3, DriveMode::EventDriven);
        prop_assert_eq!(dense, event);
    }

    /// With no traffic and no faults the event-driven run sparse-jumps
    /// most of the grid, yet still matches the dense reference exactly.
    #[test]
    fn quiescent_sparse_jumps_preserve_state(
        quiet_hours in 2u64..12,
        rate_mb in 1.0f64..4.0,
    ) {
        // Cadences sparser than the tick, so the grid has idle instants
        // the event-driven mode can actually jump over (with the default
        // 10 s heartbeat every instant hosts a control event).
        let mut config = TurbineConfig::default();
        config.heartbeat_interval = Duration::from_secs(60);
        config.sync_interval = Duration::from_secs(60);
        config.tm_refresh_interval = Duration::from_secs(120);
        config.checkpoint_interval = Duration::from_secs(120);
        let fingerprints: Vec<_> = [DriveMode::DenseTick, DriveMode::EventDriven]
            .into_iter()
            .map(|mode| {
                let mut turbine = Turbine::new(config.clone());
                turbine.add_hosts(2, host());
                // Live for the first 30 min, then an outage covers the
                // whole remainder: the fleet drains and goes quiescent.
                let outage_from = SimTime::ZERO + Duration::from_mins(30);
                let outage_until = SimTime::ZERO + Duration::from_hours(quiet_hours + 2);
                turbine
                    .provision_job(
                        JobId(1),
                        JobConfig::stateless("sched_eq_quiet", 2, 8),
                        TrafficModel::flat(rate_mb * 1.0e6).with_event(TrafficEvent {
                            start: outage_from,
                            end: outage_until,
                            kind: TrafficEventKind::InputOutage,
                        }),
                        1.0e6,
                        256.0,
                    )
                    .expect("provision");
                turbine.drive_for(Duration::from_hours(quiet_hours), mode);
                (turbine.fingerprint(), turbine.metrics.ticks_executed.get())
            })
            .collect();
        prop_assert_eq!(&fingerprints[0].0, &fingerprints[1].0);
        // The event-driven run must actually have skipped grid instants.
        prop_assert!(fingerprints[1].1 < fingerprints[0].1,
            "event mode executed {} ticks, dense {}", fingerprints[1].1, fingerprints[0].1);
    }
}

#[test]
fn tick_exceeding_a_cadence_is_rejected_with_a_clear_error() {
    let mut config = TurbineConfig::default();
    config.tick = Duration::from_secs(60);
    config.sync_interval = Duration::from_secs(30);
    // Keep every other cadence legal so the error names the sync loop.
    config.heartbeat_interval = Duration::from_secs(120);
    let Err(err) = Turbine::try_new(config) else {
        panic!("tick > sync cadence must be rejected");
    };
    assert!(
        err.contains("sync_interval") && err.contains("state syncer"),
        "error must name the offending cadence: {err}"
    );
}

#[test]
fn zero_tick_is_rejected() {
    let mut config = TurbineConfig::default();
    config.tick = Duration::ZERO;
    assert!(Turbine::try_new(config).is_err());
}

#[test]
#[should_panic(expected = "invalid TurbineConfig")]
fn new_panics_on_invalid_config() {
    let mut config = TurbineConfig::default();
    config.tick = Duration::from_mins(5);
    config.heartbeat_interval = Duration::from_secs(10);
    let _ = Turbine::new(config);
}

#[test]
fn default_config_is_valid() {
    assert!(TurbineConfig::default().validate().is_ok());
}
