#!/usr/bin/env bash
# Repo CI gate: build, tests, lints, and a chaos smoke run.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo clippy -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc --no-deps (warnings denied) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q

echo "== chaos_soak smoke (30 simulated minutes, dense vs event-driven) =="
./target/release/chaos_soak --mins 30

echo "== sched_soak (event-driven scheduler speedup) =="
./target/release/sched_soak

echo "== trace_soak (decision-trace overhead + determinism gate) =="
./target/release/trace_soak --hours 2 --repeats 7

echo "== fuzz_campaign smoke (200 deterministic cases, all oracles) =="
fuzz_out=$(./target/release/fuzz_campaign --cases 200 --seed 1)
echo "$fuzz_out" | tail -1
echo "$fuzz_out" | grep -q "fuzz campaign: 200 cases, 0 oracle violations" \
    || { echo "fuzz smoke found oracle violations"; exit 1; }

echo "CI OK"
