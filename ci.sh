#!/usr/bin/env bash
# Repo CI gate: build, tests, lints, and a chaos smoke run.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo clippy -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc --no-deps (warnings denied) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q

echo "== slo_soak: chaos smoke + per-tier SLO gate (30 simulated minutes) =="
# chaos_soak exits non-zero if any run diverges (dense vs event vs replay),
# any invariant fires, any tier's p99 recovery exceeds its budget, or the
# warm-standby fast path is less than 5x faster than the standard path.
# The per-tier report is emitted to BENCH_slo.json; a second run must
# reproduce the identical soak digest or the gate fails.
./target/release/chaos_soak --mins 30 --slo BENCH_slo.json
digest_a=$(grep -o '"slo_digest": "[^"]*"' BENCH_slo.json)
./target/release/chaos_soak --mins 30 --slo /tmp/BENCH_slo_repeat.json > /dev/null
digest_b=$(grep -o '"slo_digest": "[^"]*"' /tmp/BENCH_slo_repeat.json)
[ -n "$digest_a" ] && [ "$digest_a" = "$digest_b" ] \
    || { echo "slo_soak digest not deterministic: '$digest_a' vs '$digest_b'"; exit 1; }
echo "slo_soak digest reproducible: $digest_a"

echo "== scale_smoke: sparse data plane at 1k hosts / 10k tasks (13 simulated hours) =="
# scale_soak runs the identical scenario under the sparse and full-scan
# data planes and exits non-zero unless the fingerprints are bit-equal,
# the sparse syncer does >= 5x less per-job work, and the sparse run
# lands inside the wall-clock budget. A second run must reproduce the
# identical fingerprint counters or the gate fails. The full-size run
# (10k hosts / 120k tasks / 24 h, the default flags) is manual.
./target/release/scale_soak --hosts 1000 --jobs 1000 --hours 13 --max-wall-secs 300
fp_a=$(grep -o '"counters": \[[^]]*\]' BENCH_scale.json)
./target/release/scale_soak --hosts 1000 --jobs 1000 --hours 13 --max-wall-secs 300 > /dev/null
fp_b=$(grep -o '"counters": \[[^]]*\]' BENCH_scale.json)
[ -n "$fp_a" ] && [ "$fp_a" = "$fp_b" ] \
    || { echo "scale_smoke fingerprint not deterministic: '$fp_a' vs '$fp_b'"; exit 1; }
echo "scale_smoke fingerprint reproducible: $fp_a"

echo "== sched_soak (event-driven scheduler speedup) =="
./target/release/sched_soak

echo "== trace_soak (decision-trace overhead + determinism gate) =="
./target/release/trace_soak --hours 2 --repeats 7

echo "== ods_soak (metrics registry + alerting overhead and determinism gate) =="
# ods_soak exits non-zero unless the platform fingerprint is bit-equal
# with ODS on and off, incident logs and trace digests match across
# drive modes and on replay, and ODS costs < 5 % wall clock.
./target/release/ods_soak --hours 2 --repeats 7

echo "== alert-rule smoke: tiered outage drill fires exactly one critical incident =="
# The drill's 8-minute billing scribe stall is the only sustained SLO
# breach, so the default per-critical-job lag rule must open exactly one
# deduplicated critical incident (flap suppression holds it to one).
crit=$(./target/release/turbinesim metrics scenarios/tiered_outage_drill.json --jsonl \
    | grep '"kind":"incident"' | grep -c '"severity":"critical"') || true
[ "$crit" = "1" ] \
    || { echo "expected exactly 1 critical incident from the drill, got $crit"; exit 1; }
echo "drill fired exactly one deduplicated critical incident"

echo "== snap_smoke: mid-soak snapshot/restore of the chaos drill reproduces the run =="
# Capture the tiered outage drill 30 minutes in (mid heartbeat-loss
# recovery), restore the blob, drive to the horizon, and require the
# restored run's job states and lifecycle counters to match the
# uninterrupted run exactly.
./target/release/turbinesim snapshot scenarios/tiered_outage_drill.json \
    --at-mins 30 --out /tmp/drill.at30.tsnap
full=$(./target/release/turbinesim run scenarios/tiered_outage_drill.json \
    | grep -E '^(job |lifecycle:)')
resumed=$(./target/release/turbinesim restore /tmp/drill.at30.tsnap \
    | grep -E '^(job |lifecycle:)')
[ -n "$full" ] && [ "$full" = "$resumed" ] \
    || { echo "snap_smoke: restored run diverged from the uninterrupted run"; exit 1; }
echo "snap_smoke: restored drill matches the uninterrupted run"

echo "== snap_soak: restore-divergence gate + digest-divergence bisection speedup =="
# snap_soak exits non-zero if any auto-snapshot restore diverges from the
# uninterrupted run (either drive mode), or if bisecting a seeded
# divergence misses the exact first divergent round or is less than 5x
# cheaper than a full replay. The report goes to BENCH_snap.json.
./target/release/snap_soak --mins 90

echo "== fuzz_campaign smoke (200 deterministic cases, all oracles) =="
fuzz_out=$(./target/release/fuzz_campaign --cases 200 --seed 1)
echo "$fuzz_out" | tail -1
echo "$fuzz_out" | grep -q "fuzz campaign: 200 cases, 0 oracle violations" \
    || { echo "fuzz smoke found oracle violations"; exit 1; }

echo "CI OK"
