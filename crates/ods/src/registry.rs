//! The time-series registry: interned metric identities over bounded
//! series.
//!
//! Registration (a `BTreeMap` lookup plus a string key) happens once per
//! series; publishers cache the returned [`MetricId`] and every subsequent
//! publish is a dense `Vec` index plus a bounded ring push. That keeps the
//! registry safe to leave on by default even at scale-soak fleet sizes.

use std::collections::BTreeMap;
use std::fmt;
use turbine_types::{SimTime, TimeSeries};

/// The entity a metric is about — the "component/job/host" axis of the
/// ODS identity tuple.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Scope {
    /// Fleet-wide platform aggregates.
    Platform,
    /// One control-plane component (scheduler table / trace component
    /// names).
    Component(String),
    /// One job, by raw id.
    Job(u64),
    /// One host, by raw id.
    Host(u64),
    /// One resiliency tier, by name.
    Tier(String),
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scope::Platform => write!(f, "platform"),
            Scope::Component(name) => write!(f, "component/{name}"),
            Scope::Job(id) => write!(f, "job/{id}"),
            Scope::Host(id) => write!(f, "host/{id}"),
            Scope::Tier(name) => write!(f, "tier/{name}"),
        }
    }
}

/// Identity of one series: an entity scope plus a metric name.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// What the metric is about.
    pub scope: Scope,
    /// The metric name, e.g. `lag_secs` or `backlog_bytes`.
    pub name: String,
}

impl MetricKey {
    /// Convenience constructor.
    pub fn new(scope: Scope, name: impl Into<String>) -> Self {
        MetricKey {
            scope,
            name: name.into(),
        }
    }

    /// A platform-scoped key.
    pub fn platform(name: impl Into<String>) -> Self {
        Self::new(Scope::Platform, name)
    }

    /// A job-scoped key.
    pub fn job(job: u64, name: impl Into<String>) -> Self {
        Self::new(Scope::Job(job), name)
    }
}

impl fmt::Display for MetricKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.scope, self.name)
    }
}

/// Dense handle of a registered series — cache it; publishing through it
/// is O(1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricId(u32);

impl MetricId {
    /// The dense index backing this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Exact-tail capacity of each registry series. Alert windows span
/// minutes, so they always hit the exact tail; older history downsamples
/// deterministically, bounding a 12k-job fleet's registry to tens of
/// megabytes.
pub const REGISTRY_SERIES_CAPACITY: usize = 512;

/// The uniform time-series registry every layer publishes into.
#[derive(Debug, Default)]
pub struct Registry {
    index: BTreeMap<MetricKey, MetricId>,
    keys: Vec<MetricKey>,
    series: Vec<TimeSeries>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a key, returning its dense id (registering an empty series
    /// on first sight). Publishers should call this once and cache the id.
    pub fn series_id(&mut self, key: MetricKey) -> MetricId {
        if let Some(&id) = self.index.get(&key) {
            return id;
        }
        let id = MetricId(self.series.len() as u32);
        self.index.insert(key.clone(), id);
        self.keys.push(key);
        self.series
            .push(TimeSeries::with_capacity(REGISTRY_SERIES_CAPACITY));
        id
    }

    /// Append a sample to a registered series — the hot path: a `Vec`
    /// index plus a bounded ring push.
    pub fn publish(&mut self, id: MetricId, at: SimTime, value: f64) {
        self.series[id.index()].record(at, value);
    }

    /// Intern-and-publish in one call, for cold paths where caching the id
    /// is not worth the bookkeeping.
    pub fn publish_key(&mut self, key: MetricKey, at: SimTime, value: f64) {
        let id = self.series_id(key);
        self.publish(id, at, value);
    }

    /// Look up a series id without registering.
    pub fn lookup(&self, key: &MetricKey) -> Option<MetricId> {
        self.index.get(key).copied()
    }

    /// A registered series by id.
    pub fn series(&self, id: MetricId) -> &TimeSeries {
        &self.series[id.index()]
    }

    /// A series by key, if registered.
    pub fn series_by_key(&self, key: &MetricKey) -> Option<&TimeSeries> {
        self.lookup(key).map(|id| self.series(id))
    }

    /// The key a series was registered under.
    pub fn key(&self, id: MetricId) -> &MetricKey {
        &self.keys[id.index()]
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True when no series are registered.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Iterate every registered series in key order (deterministic,
    /// export-friendly).
    pub fn iter(&self) -> impl Iterator<Item = (&MetricKey, &TimeSeries)> {
        self.index.iter().map(|(key, &id)| (key, self.series(id)))
    }
}

impl turbine_types::Snap for Scope {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        match self {
            Scope::Platform => w.u8(0),
            Scope::Component(name) => {
                w.u8(1);
                w.put(name);
            }
            Scope::Job(id) => {
                w.u8(2);
                w.u64(*id);
            }
            Scope::Host(id) => {
                w.u8(3);
                w.u64(*id);
            }
            Scope::Tier(name) => {
                w.u8(4);
                w.put(name);
            }
        }
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        match r.u8("Scope.tag")? {
            0 => Ok(Scope::Platform),
            1 => Ok(Scope::Component(r.get()?)),
            2 => Ok(Scope::Job(r.u64("Scope.job")?)),
            3 => Ok(Scope::Host(r.u64("Scope.host")?)),
            4 => Ok(Scope::Tier(r.get()?)),
            tag => Err(turbine_types::SnapError::Tag("Scope", tag as u64)),
        }
    }
}

impl turbine_types::Snap for MetricKey {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.put(&self.scope);
        w.put(&self.name);
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        Ok(MetricKey {
            scope: r.get()?,
            name: r.get()?,
        })
    }
}

impl turbine_types::Snap for Registry {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        // Keys in dense-id order carry the full identity map; the index is
        // rebuilt by re-interning them in the same order on restore.
        w.put(&self.keys);
        w.put(&self.series);
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        let keys: Vec<MetricKey> = r.get()?;
        let series: Vec<TimeSeries> = r.get()?;
        if keys.len() != series.len() {
            return Err(turbine_types::SnapError::Value(
                "Registry key/series length mismatch",
            ));
        }
        let mut registry = Registry::new();
        for key in keys {
            registry.series_id(key);
        }
        if registry.len() != series.len() {
            return Err(turbine_types::SnapError::Value(
                "Registry keys not distinct",
            ));
        }
        registry.series = series;
        Ok(registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbine_types::Duration;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + Duration::from_secs(secs)
    }

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut r = Registry::new();
        let a = r.series_id(MetricKey::platform("cluster_traffic_bps"));
        let b = r.series_id(MetricKey::job(7, "lag_secs"));
        let a2 = r.series_id(MetricKey::platform("cluster_traffic_bps"));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(r.len(), 2);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
    }

    #[test]
    fn publish_and_query_roundtrip() {
        let mut r = Registry::new();
        let id = r.series_id(MetricKey::job(1, "backlog_bytes"));
        r.publish(id, t(60), 1024.0);
        r.publish(id, t(120), 2048.0);
        assert_eq!(r.series(id).last(), Some(2048.0));
        assert_eq!(
            r.series_by_key(&MetricKey::job(1, "backlog_bytes"))
                .and_then(|s| s.last()),
            Some(2048.0)
        );
        assert!(r
            .series_by_key(&MetricKey::job(2, "backlog_bytes"))
            .is_none());
        // The f64 round-trips bit for bit — callers may read their own
        // published value back without behavioural drift.
        let v = 0.1 + 0.2;
        r.publish(id, t(180), v);
        assert_eq!(r.series(id).last().map(f64::to_bits), Some(v.to_bits()));
    }

    #[test]
    fn iteration_is_key_ordered() {
        let mut r = Registry::new();
        r.series_id(MetricKey::job(2, "b"));
        r.series_id(MetricKey::job(1, "z"));
        r.series_id(MetricKey::platform("a"));
        // Key order (scope variant, then payload, then name) is independent
        // of registration order — registering in a different order yields
        // the same iteration sequence.
        let order: Vec<String> = r.iter().map(|(k, _)| k.to_string()).collect();
        assert_eq!(order, ["platform/a", "job/1/z", "job/2/b"]);
        let mut r2 = Registry::new();
        r2.series_id(MetricKey::platform("a"));
        r2.series_id(MetricKey::job(1, "z"));
        r2.series_id(MetricKey::job(2, "b"));
        let order2: Vec<String> = r2.iter().map(|(k, _)| k.to_string()).collect();
        assert_eq!(order, order2);
    }

    #[test]
    fn keys_render_the_ods_identity() {
        assert_eq!(
            MetricKey::new(Scope::Tier("critical".into()), "recovery_p99_ms").to_string(),
            "tier/critical/recovery_p99_ms"
        );
        assert_eq!(MetricKey::job(3, "lag_secs").to_string(), "job/3/lag_secs");
        assert_eq!(
            MetricKey::new(Scope::Component("scaler".into()), "round_p99_us").to_string(),
            "component/scaler/round_p99_us"
        );
        assert_eq!(
            MetricKey::platform("task_count").to_string(),
            "platform/task_count"
        );
        assert_eq!(
            MetricKey::new(Scope::Host(4), "cpu_fraction").to_string(),
            "host/4/cpu_fraction"
        );
    }
}
