//! Registry and incident exports: JSONL for tooling, Prometheus text for
//! scrapers.
//!
//! Both formats iterate the registry in key order, so export output is
//! deterministic for a deterministic run — diffs between two exports are
//! real differences, not iteration noise.

use crate::alert::Incident;
use crate::registry::Registry;
use std::fmt::Write as _;

/// Escape a string for embedding in a JSON (or Prometheus label) literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a float the way the rest of the workspace serialises JSON
/// numbers: shortest round-trip via `{}` — `1024` stays `1024`, `0.5`
/// stays `0.5`.
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Export the registry and incident log as JSON Lines: one
/// `{"kind":"series",...}` object per series (latest value plus retained
/// point count) followed by one `{"kind":"incident",...}` object per
/// incident, in open order.
pub fn to_jsonl(registry: &Registry, incidents: &[Incident]) -> String {
    let mut out = String::new();
    for (key, series) in registry.iter() {
        let last = series.last().map(num).unwrap_or_else(|| "null".to_string());
        let last_at = series
            .last_at()
            .map(|t| t.as_millis().to_string())
            .unwrap_or_else(|| "null".to_string());
        let _ = writeln!(
            out,
            "{{\"kind\":\"series\",\"key\":\"{}\",\"scope\":\"{}\",\"name\":\"{}\",\"samples\":{},\"last\":{},\"last_at_ms\":{}}}",
            escape(&key.to_string()),
            escape(&key.scope.to_string()),
            escape(&key.name),
            series.len(),
            last,
            last_at,
        );
    }
    for incident in incidents {
        let resolved = incident
            .resolved_at
            .map(|t| t.as_millis().to_string())
            .unwrap_or_else(|| "null".to_string());
        let _ = writeln!(
            out,
            "{{\"kind\":\"incident\",\"rule\":\"{}\",\"severity\":\"{}\",\"metric\":\"{}\",\"opened_at_ms\":{},\"resolved_at_ms\":{},\"value\":{},\"message\":\"{}\"}}",
            escape(&incident.rule),
            incident.severity,
            escape(&incident.metric.to_string()),
            incident.opened_at.as_millis(),
            resolved,
            num(incident.value),
            escape(&incident.message),
        );
    }
    out
}

/// Sanitise a metric name into a Prometheus identifier:
/// `[a-zA-Z0-9_]`, everything else mapped to `_`.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Export the registry in the Prometheus text exposition format:
/// `turbine_<name>{<scope labels>} <value> <timestamp_ms>` for the latest
/// sample of every series, plus a `turbine_incidents_active` gauge per
/// severity.
pub fn to_prom(registry: &Registry, incidents: &[Incident]) -> String {
    use crate::registry::Scope;
    let mut out = String::new();
    for (key, series) in registry.iter() {
        let (Some(last), Some(at)) = (series.last(), series.last_at()) else {
            continue;
        };
        let labels = match &key.scope {
            Scope::Platform => String::new(),
            Scope::Component(c) => format!("{{component=\"{}\"}}", escape(c)),
            Scope::Job(id) => format!("{{job=\"{id}\"}}"),
            Scope::Host(id) => format!("{{host=\"{id}\"}}"),
            Scope::Tier(t) => format!("{{tier=\"{}\"}}", escape(t)),
        };
        let _ = writeln!(
            out,
            "turbine_{}{} {} {}",
            prom_name(&key.name),
            labels,
            num(last),
            at.as_millis(),
        );
    }
    for severity in ["info", "warning", "critical"] {
        let active = incidents
            .iter()
            .filter(|i| i.is_active() && i.severity.as_str() == severity)
            .count();
        let _ = writeln!(
            out,
            "turbine_incidents_active{{severity=\"{severity}\"}} {active}"
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{MetricKey, Scope};
    use crate::Severity;
    use turbine_types::{Duration, SimTime};

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + Duration::from_secs(secs)
    }

    fn sample_registry() -> Registry {
        let mut r = Registry::new();
        r.publish_key(MetricKey::platform("task_count"), t(60), 42.0);
        r.publish_key(MetricKey::job(3, "lag_secs"), t(60), 1.5);
        r.publish_key(
            MetricKey::new(Scope::Tier("critical".into()), "downtime_ms"),
            t(60),
            0.0,
        );
        r
    }

    fn sample_incident() -> Incident {
        Incident {
            rule: "billing-lag".into(),
            severity: Severity::Critical,
            metric: MetricKey::job(3, "lag_secs"),
            opened_at: t(120),
            resolved_at: None,
            value: 480.0,
            message: "job/3/lag_secs = 480.00, above 90.00".into(),
        }
    }

    #[test]
    fn jsonl_emits_one_line_per_series_and_incident() {
        let registry = sample_registry();
        let incidents = vec![sample_incident()];
        let out = to_jsonl(&registry, &incidents);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines
            .iter()
            .take(3)
            .all(|l| l.contains("\"kind\":\"series\"")));
        assert!(lines[3].contains("\"kind\":\"incident\""));
        assert!(lines[3].contains("\"severity\":\"critical\""));
        assert!(lines[3].contains("\"opened_at_ms\":120000"));
        assert!(lines[3].contains("\"resolved_at_ms\":null"));
        assert!(out.contains("\"key\":\"job/3/lag_secs\""));
        assert!(out.contains("\"last\":42"));
    }

    #[test]
    fn prom_renders_labels_and_active_incident_gauges() {
        let registry = sample_registry();
        let incidents = vec![sample_incident()];
        let out = to_prom(&registry, &incidents);
        assert!(out.contains("turbine_task_count 42 60000"));
        assert!(out.contains("turbine_lag_secs{job=\"3\"} 1.5 60000"));
        assert!(out.contains("turbine_downtime_ms{tier=\"critical\"} 0 60000"));
        assert!(out.contains("turbine_incidents_active{severity=\"critical\"} 1"));
        assert!(out.contains("turbine_incidents_active{severity=\"info\"} 0"));
    }

    #[test]
    fn empty_registry_exports_only_incident_gauges() {
        let registry = Registry::new();
        assert!(to_jsonl(&registry, &[]).is_empty());
        let prom = to_prom(&registry, &[]);
        assert_eq!(prom.lines().count(), 3);
    }
}
