//! An ODS-style metrics plane for the Turbine reproduction.
//!
//! Facebook's stream-processing control decisions — symptom detection,
//! auto-scaling, oncall escalation — are all driven by monitoring time
//! series from ODS (paper §V). This crate reproduces that layer as three
//! pieces:
//!
//! * [`Registry`] — a typed time-series registry. Every series is
//!   identified by a [`MetricKey`] (an entity [`Scope`] × metric name),
//!   interned once into a dense [`MetricId`] so steady-state publishing is
//!   an index plus a bounded ring push ([`turbine_types::TimeSeries`]
//!   downsamples deterministically past its capacity).
//! * [`AlertEngine`] — declarative, JSON-configurable alerting rules
//!   (threshold, absence, rate-of-change, SLO burn-rate) with
//!   `for`-durations, severities, and flap suppression, firing
//!   deduplicated [`Incident`]s.
//! * [`export`] — JSONL and Prometheus text exports of the registry and
//!   incident log (`turbinesim metrics --jsonl|--prom`).
//!
//! Like the trace crate, the whole pipeline is **observational**: nothing
//! in it feeds back into the simulation, so enabling it leaves every
//! platform fingerprint bit-for-bit unchanged.

mod alert;
mod registry;

pub mod export;

pub use alert::{parse_rules, AlertEngine, AlertRule, Incident, RuleKind, Severity, ThresholdOp};
pub use registry::{MetricId, MetricKey, Registry, Scope, REGISTRY_SERIES_CAPACITY};
