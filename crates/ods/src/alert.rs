//! The declarative alerting engine: JSON-configurable rules over registry
//! series, firing deduplicated incidents.
//!
//! Every rule is evaluated on the metric-sampling grid (the platform calls
//! [`AlertEngine::evaluate`] at the end of each metrics round), so two
//! drive modes that execute the same rounds at the same instants fire
//! bit-for-bit identical incidents. A rule's condition must hold for its
//! `for`-duration before an incident opens; once one opens, the rule is
//! suppressed for `suppress_for` — a flapping signal produces exactly one
//! incident per suppression window instead of a page storm.

use crate::registry::{MetricKey, Registry, Scope};
use std::fmt;
use turbine_config::ConfigValue;
use turbine_types::{Duration, SimTime};

/// How urgent a firing rule is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational; no action expected.
    Info,
    /// Needs attention this workday.
    Warning,
    /// Page the oncall.
    Critical,
}

impl Severity {
    /// Canonical lower-case name.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }

    /// Parse a canonical name (the `Option` return is the point — callers
    /// branch, they don't want a `FromStr` error type).
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<Self> {
        match s {
            "info" => Some(Severity::Info),
            "warning" => Some(Severity::Warning),
            "critical" => Some(Severity::Critical),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Which side of a threshold fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThresholdOp {
    /// Fire when the latest value is strictly above the threshold.
    Above,
    /// Fire when the latest value is strictly below the threshold.
    Below,
}

/// The condition a rule watches.
#[derive(Debug, Clone, PartialEq)]
pub enum RuleKind {
    /// Latest value strictly beyond a fixed threshold.
    Threshold {
        /// Comparison direction.
        op: ThresholdOp,
        /// The threshold value.
        value: f64,
    },
    /// The series has never reported, or its newest sample is older than
    /// `stale_for` — a dead exporter or a component that stopped running.
    Absence {
        /// Maximum tolerated sample age.
        stale_for: Duration,
    },
    /// Absolute rate of change over a trailing window exceeds a per-second
    /// budget (traffic cliffs, backlog explosions).
    RateOfChange {
        /// Trailing comparison window.
        window: Duration,
        /// Fire when `|v_now - v_then| / window_secs` strictly exceeds
        /// this.
        per_sec: f64,
    },
    /// SLO burn rate: the increase of a cumulative-milliseconds series
    /// (per-tier downtime) over a trailing window, divided by the tier's
    /// `recovery_budget`-derived allowance. Fires when the budget is
    /// strictly exceeded — burning *exactly* the budget is compliant.
    BurnRate {
        /// Trailing accounting window.
        window: Duration,
        /// Downtime budget for one window, in milliseconds.
        budget_ms: f64,
    },
}

/// One declarative alerting rule.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRule {
    /// Unique rule name (incident dedup key together with the metric).
    pub name: String,
    /// The series the rule watches.
    pub metric: MetricKey,
    /// The watched condition.
    pub kind: RuleKind,
    /// The condition must hold continuously this long before an incident
    /// opens (zero fires on the first true evaluation).
    pub for_duration: Duration,
    /// Incident severity.
    pub severity: Severity,
    /// After an incident opens, no new incident for this rule opens until
    /// this much time has passed — the flap-suppression / dedup window.
    pub suppress_for: Duration,
}

/// One fired (possibly since resolved) incident.
#[derive(Debug, Clone, PartialEq)]
pub struct Incident {
    /// The rule that fired.
    pub rule: String,
    /// Severity copied from the rule at fire time.
    pub severity: Severity,
    /// The watched series.
    pub metric: MetricKey,
    /// When the incident opened.
    pub opened_at: SimTime,
    /// When the condition cleared, if it has.
    pub resolved_at: Option<SimTime>,
    /// The observed series value at fire time (0 for absence rules).
    pub value: f64,
    /// Human-readable one-liner for consoles and trace records.
    pub message: String,
}

impl Incident {
    /// True while the condition still holds.
    pub fn is_active(&self) -> bool {
        self.resolved_at.is_none()
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct RuleState {
    /// When the condition most recently became (and stayed) true.
    pending_since: Option<SimTime>,
    /// Index of the currently open incident, if any.
    active: Option<usize>,
    /// No new incident opens before this instant.
    suppressed_until: Option<SimTime>,
}

/// The alerting engine: rules, per-rule state, and the incident log.
#[derive(Debug, Default)]
pub struct AlertEngine {
    rules: Vec<AlertRule>,
    states: Vec<RuleState>,
    incidents: Vec<Incident>,
}

impl AlertEngine {
    /// An engine with no rules.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install one rule.
    pub fn install(&mut self, rule: AlertRule) {
        self.rules.push(rule);
        self.states.push(RuleState::default());
    }

    /// Install a batch of rules.
    pub fn install_all(&mut self, rules: impl IntoIterator<Item = AlertRule>) {
        for rule in rules {
            self.install(rule);
        }
    }

    /// The installed rules.
    pub fn rules(&self) -> &[AlertRule] {
        &self.rules
    }

    /// Every incident ever fired, in open order.
    pub fn incidents(&self) -> &[Incident] {
        &self.incidents
    }

    /// Incidents whose condition still holds.
    pub fn active(&self) -> impl Iterator<Item = &Incident> {
        self.incidents.iter().filter(|i| i.is_active())
    }

    /// Evaluate every rule against the registry at `now`. Returns the
    /// indices (into [`Self::incidents`]) of incidents opened by this
    /// evaluation, in rule order — the caller emits trace events and
    /// counters from them.
    pub fn evaluate(&mut self, registry: &Registry, now: SimTime) -> Vec<usize> {
        let mut opened = Vec::new();
        for (i, rule) in self.rules.iter().enumerate() {
            let state = &mut self.states[i];
            let observed = condition(rule, registry, now);
            match observed {
                Some(value) => {
                    let since = *state.pending_since.get_or_insert(now);
                    let held_long_enough = now.since(since) >= rule.for_duration;
                    let suppressed = state.suppressed_until.is_some_and(|until| now < until);
                    if held_long_enough && state.active.is_none() && !suppressed {
                        let idx = self.incidents.len();
                        self.incidents.push(Incident {
                            rule: rule.name.clone(),
                            severity: rule.severity,
                            metric: rule.metric.clone(),
                            opened_at: now,
                            resolved_at: None,
                            value,
                            message: describe(rule, value),
                        });
                        state.active = Some(idx);
                        state.suppressed_until = Some(now + rule.suppress_for);
                        opened.push(idx);
                    }
                }
                None => {
                    state.pending_since = None;
                    if let Some(idx) = state.active.take() {
                        self.incidents[idx].resolved_at = Some(now);
                    }
                }
            }
        }
        opened
    }
}

/// Evaluate a rule's raw condition: `Some(observed_value)` when it holds.
fn condition(rule: &AlertRule, registry: &Registry, now: SimTime) -> Option<f64> {
    let series = registry.series_by_key(&rule.metric);
    match &rule.kind {
        RuleKind::Threshold { op, value } => {
            let v = series?.last()?;
            let fired = match op {
                ThresholdOp::Above => v > *value,
                ThresholdOp::Below => v < *value,
            };
            fired.then_some(v)
        }
        RuleKind::Absence { stale_for } => {
            let last_at = series.and_then(|s| s.last_at());
            match last_at {
                // Never reported (or not even registered): absent.
                None => Some(0.0),
                Some(at) => (now.since(at) > *stale_for).then_some(0.0),
            }
        }
        RuleKind::RateOfChange { window, per_sec } => {
            let series = series?;
            let secs = window.as_secs_f64();
            if secs <= 0.0 {
                return None;
            }
            let v_now = series.last()?;
            // `SimTime - Duration` saturates at the epoch; a window that
            // reaches before the first sample yields no baseline and the
            // rule stays quiet.
            let v_then = series.value_at(now - *window)?;
            let rate = (v_now - v_then).abs() / secs;
            (rate > *per_sec).then_some(rate)
        }
        RuleKind::BurnRate { window, budget_ms } => {
            let series = series?;
            let v_now = series.last()?;
            // Cumulative series start from zero, so a missing baseline
            // (window reaching before the first sample) is a zero baseline.
            let v_then = series.value_at(now - *window).unwrap_or(0.0);
            let burn = (v_now - v_then) / budget_ms;
            (burn > 1.0).then_some(burn)
        }
    }
}

/// One-line incident description.
fn describe(rule: &AlertRule, value: f64) -> String {
    match &rule.kind {
        RuleKind::Threshold { op, value: limit } => {
            let side = match op {
                ThresholdOp::Above => "above",
                ThresholdOp::Below => "below",
            };
            format!("{} = {value:.2}, {side} {limit:.2}", rule.metric)
        }
        RuleKind::Absence { stale_for } => {
            format!("{} absent for over {}", rule.metric, stale_for)
        }
        RuleKind::RateOfChange { per_sec, .. } => {
            format!(
                "{} moving {value:.2}/s (budget {per_sec:.2}/s)",
                rule.metric
            )
        }
        RuleKind::BurnRate { window, .. } => {
            format!("{} burned {value:.2}x budget over {}", rule.metric, window)
        }
    }
}

use turbine_types::{Snap, SnapError, SnapReader, SnapWriter};

impl Snap for Severity {
    fn snap(&self, w: &mut SnapWriter) {
        w.u8(match self {
            Severity::Info => 0,
            Severity::Warning => 1,
            Severity::Critical => 2,
        });
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8("Severity.tag")? {
            0 => Ok(Severity::Info),
            1 => Ok(Severity::Warning),
            2 => Ok(Severity::Critical),
            tag => Err(SnapError::Tag("Severity", tag as u64)),
        }
    }
}

impl Snap for ThresholdOp {
    fn snap(&self, w: &mut SnapWriter) {
        w.u8(match self {
            ThresholdOp::Above => 0,
            ThresholdOp::Below => 1,
        });
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8("ThresholdOp.tag")? {
            0 => Ok(ThresholdOp::Above),
            1 => Ok(ThresholdOp::Below),
            tag => Err(SnapError::Tag("ThresholdOp", tag as u64)),
        }
    }
}

impl Snap for RuleKind {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            RuleKind::Threshold { op, value } => {
                w.u8(0);
                w.put(op);
                w.put(value);
            }
            RuleKind::Absence { stale_for } => {
                w.u8(1);
                w.put(stale_for);
            }
            RuleKind::RateOfChange { window, per_sec } => {
                w.u8(2);
                w.put(window);
                w.put(per_sec);
            }
            RuleKind::BurnRate { window, budget_ms } => {
                w.u8(3);
                w.put(window);
                w.put(budget_ms);
            }
        }
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8("RuleKind.tag")? {
            0 => Ok(RuleKind::Threshold {
                op: r.get()?,
                value: r.get()?,
            }),
            1 => Ok(RuleKind::Absence {
                stale_for: r.get()?,
            }),
            2 => Ok(RuleKind::RateOfChange {
                window: r.get()?,
                per_sec: r.get()?,
            }),
            3 => Ok(RuleKind::BurnRate {
                window: r.get()?,
                budget_ms: r.get()?,
            }),
            tag => Err(SnapError::Tag("RuleKind", tag as u64)),
        }
    }
}

impl Snap for AlertRule {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.name);
        w.put(&self.metric);
        w.put(&self.kind);
        w.put(&self.for_duration);
        w.put(&self.severity);
        w.put(&self.suppress_for);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(AlertRule {
            name: r.get()?,
            metric: r.get()?,
            kind: r.get()?,
            for_duration: r.get()?,
            severity: r.get()?,
            suppress_for: r.get()?,
        })
    }
}

impl Snap for Incident {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.rule);
        w.put(&self.severity);
        w.put(&self.metric);
        w.put(&self.opened_at);
        w.put(&self.resolved_at);
        w.put(&self.value);
        w.put(&self.message);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Incident {
            rule: r.get()?,
            severity: r.get()?,
            metric: r.get()?,
            opened_at: r.get()?,
            resolved_at: r.get()?,
            value: r.get()?,
            message: r.get()?,
        })
    }
}

impl Snap for RuleState {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.pending_since);
        w.put(&self.active);
        w.put(&self.suppressed_until);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(RuleState {
            pending_since: r.get()?,
            active: r.get()?,
            suppressed_until: r.get()?,
        })
    }
}

impl Snap for AlertEngine {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.rules);
        w.put(&self.states);
        w.put(&self.incidents);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let rules: Vec<AlertRule> = r.get()?;
        let states: Vec<RuleState> = r.get()?;
        let incidents: Vec<Incident> = r.get()?;
        if rules.len() != states.len() {
            return Err(SnapError::Value("AlertEngine rule/state length mismatch"));
        }
        if states
            .iter()
            .any(|s| s.active.is_some_and(|idx| idx >= incidents.len()))
        {
            return Err(SnapError::Value(
                "AlertEngine active incident index out of range",
            ));
        }
        Ok(AlertEngine {
            rules,
            states,
            incidents,
        })
    }
}

fn perr(msg: impl Into<String>) -> String {
    format!("invalid alert rule: {}", msg.into())
}

/// Every key the rule grammar understands. Anything else in a rule object
/// is a typo ("sevrity") that would otherwise be silently ignored.
const RULE_KEYS: [&str; 17] = [
    "name",
    "severity",
    "scope",
    "job",
    "host",
    "tier",
    "component",
    "metric",
    "kind",
    "above",
    "below",
    "stale_for_mins",
    "window_mins",
    "per_sec",
    "budget_ms",
    "for_mins",
    "suppress_mins",
];

fn reject_unknown_keys(rv: &ConfigValue) -> Result<(), String> {
    let map = rv
        .as_map()
        .ok_or_else(|| perr("each rule must be an object"))?;
    for key in map.keys() {
        if !RULE_KEYS.contains(&key.as_str()) {
            return Err(perr(format!("unknown key '{key}'")));
        }
    }
    Ok(())
}

fn opt_f64(v: &ConfigValue, path: &str) -> Option<f64> {
    v.get_path(path).and_then(|x| x.as_float())
}

fn opt_mins(v: &ConfigValue, path: &str) -> Option<Duration> {
    v.get_path(path)
        .and_then(|x| x.as_int())
        .map(|m| Duration::from_mins(m.max(0) as u64))
}

/// Parse an `alerts` array (JSON, via the workspace config parser) into
/// rules. `resolve_job` maps scenario job names to raw job ids.
///
/// Grammar, one object per rule:
///
/// ```json
/// {"name": "billing-lag", "severity": "critical",
///  "scope": "job", "job": "billing", "metric": "lag_secs",
///  "kind": "threshold", "above": 90.0,
///  "for_mins": 2, "suppress_mins": 30}
/// ```
///
/// Scopes: `"platform"` (default), `"job"` (+ `job` name), `"host"`
/// (+ `host` index), `"tier"` (+ `tier` name), `"component"`
/// (+ `component` name). Kinds: `threshold` (`above` or `below`),
/// `absence` (`stale_for_mins`), `rate_of_change` (`window_mins`,
/// `per_sec`), `burn_rate` (`window_mins`, `budget_ms`).
pub fn parse_rules(
    list: &[ConfigValue],
    resolve_job: impl Fn(&str) -> Option<u64>,
) -> Result<Vec<AlertRule>, String> {
    let mut rules = Vec::with_capacity(list.len());
    for rv in list {
        reject_unknown_keys(rv)?;
        let name = rv
            .get_path("name")
            .and_then(|x| x.as_str())
            .ok_or_else(|| perr("missing 'name'"))?
            .to_string();
        let severity = match rv.get_path("severity").and_then(|x| x.as_str()) {
            None => Severity::Warning,
            Some(s) => Severity::from_str(s)
                .ok_or_else(|| perr(format!("'{name}': unknown severity '{s}'")))?,
        };
        let metric_name = rv
            .get_path("metric")
            .and_then(|x| x.as_str())
            .ok_or_else(|| perr(format!("'{name}': missing 'metric'")))?
            .to_string();
        let scope = match rv
            .get_path("scope")
            .and_then(|x| x.as_str())
            .unwrap_or("platform")
        {
            "platform" => Scope::Platform,
            "job" => {
                let job = rv
                    .get_path("job")
                    .and_then(|x| x.as_str())
                    .ok_or_else(|| perr(format!("'{name}': job scope needs a 'job' name")))?;
                let id = resolve_job(job)
                    .ok_or_else(|| perr(format!("'{name}': unknown job '{job}'")))?;
                Scope::Job(id)
            }
            "host" => {
                let host = rv
                    .get_path("host")
                    .and_then(|x| x.as_int())
                    .ok_or_else(|| perr(format!("'{name}': host scope needs a 'host' index")))?;
                Scope::Host(host.max(0) as u64)
            }
            "tier" => {
                let tier = rv
                    .get_path("tier")
                    .and_then(|x| x.as_str())
                    .ok_or_else(|| perr(format!("'{name}': tier scope needs a 'tier' name")))?;
                Scope::Tier(tier.to_string())
            }
            "component" => {
                let c = rv
                    .get_path("component")
                    .and_then(|x| x.as_str())
                    .ok_or_else(|| {
                        perr(format!(
                            "'{name}': component scope needs a 'component' name"
                        ))
                    })?;
                Scope::Component(c.to_string())
            }
            other => return Err(perr(format!("'{name}': unknown scope '{other}'"))),
        };
        let kind = match rv
            .get_path("kind")
            .and_then(|x| x.as_str())
            .ok_or_else(|| perr(format!("'{name}': missing 'kind'")))?
        {
            "threshold" => match (opt_f64(rv, "above"), opt_f64(rv, "below")) {
                (Some(v), None) => RuleKind::Threshold {
                    op: ThresholdOp::Above,
                    value: v,
                },
                (None, Some(v)) => RuleKind::Threshold {
                    op: ThresholdOp::Below,
                    value: v,
                },
                _ => {
                    return Err(perr(format!(
                        "'{name}': threshold needs exactly one of 'above'/'below'"
                    )))
                }
            },
            "absence" => RuleKind::Absence {
                stale_for: opt_mins(rv, "stale_for_mins")
                    .ok_or_else(|| perr(format!("'{name}': absence needs 'stale_for_mins'")))?,
            },
            "rate_of_change" => RuleKind::RateOfChange {
                window: opt_mins(rv, "window_mins")
                    .ok_or_else(|| perr(format!("'{name}': rate_of_change needs 'window_mins'")))?,
                per_sec: opt_f64(rv, "per_sec")
                    .ok_or_else(|| perr(format!("'{name}': rate_of_change needs 'per_sec'")))?,
            },
            "burn_rate" => {
                let budget_ms = opt_f64(rv, "budget_ms")
                    .ok_or_else(|| perr(format!("'{name}': burn_rate needs 'budget_ms'")))?;
                if budget_ms <= 0.0 {
                    return Err(perr(format!("'{name}': budget_ms must be positive")));
                }
                RuleKind::BurnRate {
                    window: opt_mins(rv, "window_mins")
                        .ok_or_else(|| perr(format!("'{name}': burn_rate needs 'window_mins'")))?,
                    budget_ms,
                }
            }
            other => return Err(perr(format!("'{name}': unknown kind '{other}'"))),
        };
        rules.push(AlertRule {
            name,
            metric: MetricKey::new(scope, metric_name),
            kind,
            for_duration: opt_mins(rv, "for_mins").unwrap_or(Duration::from_mins(0)),
            severity,
            suppress_for: opt_mins(rv, "suppress_mins").unwrap_or(Duration::from_mins(30)),
        });
    }
    Ok(rules)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + Duration::from_secs(secs)
    }

    fn lag_rule(for_mins: u64, suppress_mins: u64) -> AlertRule {
        AlertRule {
            name: "lag".into(),
            metric: MetricKey::job(1, "lag_secs"),
            kind: RuleKind::Threshold {
                op: ThresholdOp::Above,
                value: 90.0,
            },
            for_duration: Duration::from_mins(for_mins),
            severity: Severity::Critical,
            suppress_for: Duration::from_mins(suppress_mins),
        }
    }

    #[test]
    fn threshold_honours_the_for_duration() {
        let mut registry = Registry::new();
        let id = registry.series_id(MetricKey::job(1, "lag_secs"));
        let mut engine = AlertEngine::new();
        engine.install(lag_rule(2, 30));
        // Breach at t=60: pending, not yet fired.
        registry.publish(id, t(60), 120.0);
        assert!(engine.evaluate(&registry, t(60)).is_empty());
        // Still breaching at t=120 (held 1 min < 2 min).
        registry.publish(id, t(120), 130.0);
        assert!(engine.evaluate(&registry, t(120)).is_empty());
        // Held 2 minutes: fire once.
        registry.publish(id, t(180), 140.0);
        let opened = engine.evaluate(&registry, t(180));
        assert_eq!(opened.len(), 1);
        let incident = &engine.incidents()[opened[0]];
        assert_eq!(incident.severity, Severity::Critical);
        assert_eq!(incident.value, 140.0);
        assert!(incident.is_active());
        // Condition persists: the open incident dedups, nothing new.
        registry.publish(id, t(240), 150.0);
        assert!(engine.evaluate(&registry, t(240)).is_empty());
        // Recovery resolves it.
        registry.publish(id, t(300), 10.0);
        assert!(engine.evaluate(&registry, t(300)).is_empty());
        assert_eq!(engine.incidents().len(), 1);
        assert_eq!(engine.incidents()[0].resolved_at, Some(t(300)));
    }

    #[test]
    fn flapping_is_suppressed_to_one_incident() {
        let mut registry = Registry::new();
        let id = registry.series_id(MetricKey::job(1, "lag_secs"));
        let mut engine = AlertEngine::new();
        engine.install(lag_rule(0, 30));
        // Flap every minute for 20 minutes: breach on even minutes.
        for min in 0..20u64 {
            let v = if min % 2 == 0 { 200.0 } else { 1.0 };
            registry.publish(id, t(min * 60), v);
            engine.evaluate(&registry, t(min * 60));
        }
        assert_eq!(engine.incidents().len(), 1, "dedup under suppression");
        // Past the suppression window the rule may fire again.
        registry.publish(id, t(31 * 60), 200.0);
        let opened = engine.evaluate(&registry, t(31 * 60));
        assert_eq!(opened.len(), 1);
        assert_eq!(engine.incidents().len(), 2);
    }

    #[test]
    fn absence_fires_for_a_metric_that_never_reports() {
        let registry = Registry::new();
        let mut engine = AlertEngine::new();
        engine.install(AlertRule {
            name: "no-heartbeat".into(),
            metric: MetricKey::platform("heartbeats"),
            kind: RuleKind::Absence {
                stale_for: Duration::from_mins(5),
            },
            for_duration: Duration::from_mins(2),
            severity: Severity::Warning,
            suppress_for: Duration::from_mins(60),
        });
        assert!(engine.evaluate(&registry, t(0)).is_empty());
        let opened = engine.evaluate(&registry, t(120));
        assert_eq!(opened.len(), 1);
        assert_eq!(engine.incidents()[0].severity, Severity::Warning);
    }

    #[test]
    fn absence_clears_when_reporting_resumes() {
        let mut registry = Registry::new();
        let id = registry.series_id(MetricKey::platform("heartbeats"));
        let mut engine = AlertEngine::new();
        engine.install(AlertRule {
            name: "no-heartbeat".into(),
            metric: MetricKey::platform("heartbeats"),
            kind: RuleKind::Absence {
                stale_for: Duration::from_mins(5),
            },
            for_duration: Duration::from_mins(0),
            severity: Severity::Warning,
            suppress_for: Duration::from_mins(60),
        });
        registry.publish(id, t(0), 1.0);
        assert!(engine.evaluate(&registry, t(60)).is_empty());
        // Stale after 5 minutes.
        let opened = engine.evaluate(&registry, t(6 * 60 + 1));
        assert_eq!(opened.len(), 1);
        // Fresh sample resolves.
        registry.publish(id, t(7 * 60), 1.0);
        engine.evaluate(&registry, t(7 * 60));
        assert_eq!(engine.incidents()[0].resolved_at, Some(t(7 * 60)));
    }

    #[test]
    fn empty_and_single_point_series_never_panic_rules() {
        let mut registry = Registry::new();
        let id = registry.series_id(MetricKey::job(1, "lag_secs"));
        let mut engine = AlertEngine::new();
        engine.install(lag_rule(0, 30));
        engine.install(AlertRule {
            name: "cliff".into(),
            metric: MetricKey::job(1, "lag_secs"),
            kind: RuleKind::RateOfChange {
                window: Duration::from_mins(5),
                per_sec: 1.0,
            },
            for_duration: Duration::from_mins(0),
            severity: Severity::Info,
            suppress_for: Duration::from_mins(30),
        });
        // Empty series: nothing fires.
        assert!(engine.evaluate(&registry, t(0)).is_empty());
        // One point: threshold can fire, rate-of-change cannot (the
        // trailing window reaches before the first sample, so there is no
        // baseline to compare against).
        registry.publish(id, t(600), 500.0);
        let opened = engine.evaluate(&registry, t(600));
        assert_eq!(opened.len(), 1);
        assert_eq!(engine.incidents()[opened[0]].rule, "lag");
    }

    #[test]
    fn rate_of_change_detects_cliffs() {
        let mut registry = Registry::new();
        let id = registry.series_id(MetricKey::platform("backlog"));
        let mut engine = AlertEngine::new();
        engine.install(AlertRule {
            name: "backlog-cliff".into(),
            metric: MetricKey::platform("backlog"),
            kind: RuleKind::RateOfChange {
                window: Duration::from_mins(1),
                per_sec: 10.0,
            },
            for_duration: Duration::from_mins(0),
            severity: Severity::Warning,
            suppress_for: Duration::from_mins(30),
        });
        registry.publish(id, t(0), 0.0);
        assert!(engine.evaluate(&registry, t(60)).is_empty());
        // +6000 over one minute = 100/s > 10/s.
        registry.publish(id, t(120), 6000.0);
        let opened = engine.evaluate(&registry, t(120));
        assert_eq!(opened.len(), 1);
        assert!((engine.incidents()[0].value - 100.0).abs() < 1e-9);
    }

    #[test]
    fn burn_rate_exactly_at_budget_does_not_fire() {
        let mut registry = Registry::new();
        let id = registry.series_id(MetricKey::new(
            Scope::Tier("critical".into()),
            "downtime_ms",
        ));
        let rule = AlertRule {
            name: "critical-burn".into(),
            metric: MetricKey::new(Scope::Tier("critical".into()), "downtime_ms"),
            kind: RuleKind::BurnRate {
                window: Duration::from_mins(60),
                budget_ms: 30_000.0,
            },
            for_duration: Duration::from_mins(0),
            severity: Severity::Critical,
            suppress_for: Duration::from_mins(60),
        };
        let mut engine = AlertEngine::new();
        engine.install(rule);
        registry.publish(id, t(0), 0.0);
        // Exactly the budget within the window: compliant, no incident.
        registry.publish(id, t(1800), 30_000.0);
        assert!(engine.evaluate(&registry, t(1800)).is_empty());
        // One millisecond over: fire.
        registry.publish(id, t(1860), 30_001.0);
        let opened = engine.evaluate(&registry, t(1860));
        assert_eq!(opened.len(), 1);
        assert!(engine.incidents()[0].value > 1.0);
    }

    #[test]
    fn rules_parse_from_json() {
        let text = r#"{"alerts": [
            {"name": "billing-lag", "severity": "critical",
             "scope": "job", "job": "billing", "metric": "lag_secs",
             "kind": "threshold", "above": 90.0,
             "for_mins": 2, "suppress_mins": 30},
            {"name": "tier-burn", "severity": "warning",
             "scope": "tier", "tier": "critical", "metric": "downtime_ms",
             "kind": "burn_rate", "window_mins": 60, "budget_ms": 30000.0},
            {"name": "silent", "scope": "platform", "metric": "task_count",
             "kind": "absence", "stale_for_mins": 10}
        ]}"#;
        let root = turbine_config::parse(text).expect("parse");
        let list = root
            .get_path("alerts")
            .and_then(|v| v.as_array())
            .expect("array");
        let rules = parse_rules(list, |name| (name == "billing").then_some(7)).expect("rules");
        assert_eq!(rules.len(), 3);
        assert_eq!(rules[0].metric, MetricKey::job(7, "lag_secs"));
        assert_eq!(rules[0].severity, Severity::Critical);
        assert_eq!(rules[0].for_duration, Duration::from_mins(2));
        assert!(matches!(rules[1].kind, RuleKind::BurnRate { .. }));
        assert_eq!(rules[2].severity, Severity::Warning);
        // Unknown job is an error, not a silent no-op rule.
        assert!(parse_rules(list, |_| None).is_err());
    }

    #[test]
    fn misspelled_rule_keys_are_rejected() {
        // "sevrity" would silently fall back to the default severity if
        // unknown keys were tolerated.
        let text = r#"{"alerts": [
            {"name": "lag", "sevrity": "critical", "metric": "lag_secs",
             "kind": "threshold", "above": 90.0}
        ]}"#;
        let root = turbine_config::parse(text).expect("parse");
        let list = root
            .get_path("alerts")
            .and_then(|v| v.as_array())
            .expect("array");
        let err = parse_rules(list, |_| None).expect_err("must reject");
        assert!(err.contains("unknown key 'sevrity'"), "{err}");
    }
}
