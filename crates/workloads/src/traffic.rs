//! Deterministic traffic models.
//!
//! A [`TrafficModel`] maps simulated time to an input rate (bytes/sec).
//! The function is *pure* — noise is derived by hashing the time bucket
//! with the model's seed — so that any component can query the rate at any
//! time and always observe the same workload, and whole experiments replay
//! bit-for-bit.

use turbine_sim::SimRng;
use turbine_types::{Duration, SimTime};

/// A time-bounded traffic event layered on the base pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficEvent {
    /// Event start (inclusive).
    pub start: SimTime,
    /// Event end (exclusive).
    pub end: SimTime,
    /// What happens during the window.
    pub kind: TrafficEventKind,
}

/// Kinds of traffic events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficEventKind {
    /// Multiply traffic by this factor (spikes, storm redirects — e.g.
    /// 1.16 for the paper's +16 % storm).
    Multiplier(f64),
    /// Multiplier that ramps linearly from 1 to `peak` over `ramp_mins`
    /// after the window opens and back down over `ramp_mins` before it
    /// closes — how a datacenter drain actually shifts traffic.
    RampedMultiplier {
        /// Peak multiplication factor.
        peak: f64,
        /// Ramp-up/down time in minutes.
        ramp_mins: u64,
    },
    /// No traffic is *consumed* (application disabled, §VI-B1): input
    /// keeps arriving and accrues as backlog. The platform models this by
    /// stopping the job's processing, not its input.
    ConsumerDisabled,
    /// No traffic arrives (upstream outage).
    InputOutage,
}

/// A deterministic traffic model for one job.
#[derive(Debug, Clone)]
pub struct TrafficModel {
    /// Mean rate at simulation start, bytes/sec.
    pub base_rate: f64,
    /// Fraction of the base rate that swings diurnally (0 = flat,
    /// 0.5 ⇒ ±50 % swing around the base).
    pub diurnal_fraction: f64,
    /// Time of day at which traffic peaks.
    pub peak_time_of_day: Duration,
    /// Log-normal noise sigma applied per minute bucket (0 = none).
    pub noise_sigma: f64,
    /// Exponential growth rate per day (0.0019 ≈ doubling in a year).
    pub growth_per_day: f64,
    /// Scheduled events.
    pub events: Vec<TrafficEvent>,
    /// Seed for the deterministic noise stream.
    pub seed: u64,
}

impl TrafficModel {
    /// A flat, noiseless model — the simplest building block.
    pub fn flat(base_rate: f64) -> Self {
        TrafficModel {
            base_rate,
            diurnal_fraction: 0.0,
            peak_time_of_day: Duration::from_hours(18),
            noise_sigma: 0.0,
            growth_per_day: 0.0,
            events: Vec::new(),
            seed: 0,
        }
    }

    /// A typical production-like diurnal model: ±`diurnal_fraction` swing,
    /// mild noise, given seed.
    pub fn diurnal(base_rate: f64, diurnal_fraction: f64, seed: u64) -> Self {
        TrafficModel {
            base_rate,
            diurnal_fraction,
            peak_time_of_day: Duration::from_hours(18),
            noise_sigma: 0.03,
            growth_per_day: 0.0,
            events: Vec::new(),
            seed,
        }
    }

    /// Add an event window.
    pub fn with_event(mut self, event: TrafficEvent) -> Self {
        self.events.push(event);
        self
    }

    /// Add exponential growth (e.g. `0.0019` doubles over ~365 days).
    pub fn with_growth(mut self, growth_per_day: f64) -> Self {
        self.growth_per_day = growth_per_day;
        self
    }

    /// The *arrival* rate at `at`, bytes/sec. Zero during input outages;
    /// unaffected by `ConsumerDisabled` (data still arrives and backs up).
    pub fn arrival_rate(&self, at: SimTime) -> f64 {
        if self
            .events
            .iter()
            .any(|e| e.start <= at && at < e.end && e.kind == TrafficEventKind::InputOutage)
        {
            return 0.0;
        }
        let mut rate = self.base_rate;
        // Diurnal: cosine peaking at `peak_time_of_day`.
        if self.diurnal_fraction > 0.0 {
            let day_ms = Duration::from_days(1).as_millis() as f64;
            let phase = (at.time_of_day().as_millis() as f64
                - self.peak_time_of_day.as_millis() as f64)
                / day_ms;
            rate *= 1.0 + self.diurnal_fraction * (2.0 * std::f64::consts::PI * phase).cos();
        }
        // Growth trend.
        if self.growth_per_day != 0.0 {
            rate *= (self.growth_per_day * at.as_days_f64()).exp();
        }
        // Deterministic per-minute noise.
        if self.noise_sigma > 0.0 {
            let minute = at.as_millis() / 60_000;
            let mut rng = SimRng::seeded(self.seed ^ minute.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            rate *= rng.log_normal(0.0, self.noise_sigma);
        }
        // Multiplier events (storms, spikes) stack multiplicatively.
        for e in &self.events {
            if e.start <= at && at < e.end {
                match e.kind {
                    TrafficEventKind::Multiplier(m) => rate *= m,
                    TrafficEventKind::RampedMultiplier { peak, ramp_mins } => {
                        let ramp = Duration::from_mins(ramp_mins).as_millis() as f64;
                        let since_start = at.since(e.start).as_millis() as f64;
                        let until_end = e.end.since(at).as_millis() as f64;
                        let frac = if ramp <= 0.0 {
                            1.0
                        } else {
                            (since_start / ramp).min(until_end / ramp).clamp(0.0, 1.0)
                        };
                        rate *= 1.0 + (peak - 1.0) * frac;
                    }
                    _ => {}
                }
            }
        }
        rate.max(0.0)
    }

    /// True if the model provably delivers zero arrivals at *every*
    /// instant in `(after, through]` — either the base rate is zero (all
    /// modifiers are multiplicative, so nothing can resurrect it) or a
    /// single [`TrafficEventKind::InputOutage`] window covers the whole
    /// interval. Conservative: windows that only jointly cover the
    /// interval report `false`. The platform's event-driven scheduler
    /// uses this to decide whether the clock may jump over the interval.
    pub fn idle_through(&self, after: SimTime, through: SimTime) -> bool {
        if self.base_rate == 0.0 {
            return true;
        }
        // The earliest instant that must be covered is `after + 1 ms`
        // (SimTime has millisecond resolution and the window is open at
        // `after`); the latest is `through`, which needs `through < end`
        // because outage windows are end-exclusive.
        let first = after + Duration::from_millis(1);
        self.events
            .iter()
            .any(|e| e.kind == TrafficEventKind::InputOutage && e.start <= first && through < e.end)
    }

    /// True if the job's consumer is disabled at `at` (the application
    /// outage of Fig. 8: input accrues, nothing processes).
    pub fn consumer_disabled(&self, at: SimTime) -> bool {
        self.events
            .iter()
            .any(|e| e.start <= at && at < e.end && e.kind == TrafficEventKind::ConsumerDisabled)
    }
}

impl turbine_types::Snap for TrafficEventKind {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        match self {
            TrafficEventKind::Multiplier(m) => {
                w.u8(0);
                w.put(m);
            }
            TrafficEventKind::RampedMultiplier { peak, ramp_mins } => {
                w.u8(1);
                w.put(peak);
                w.u64(*ramp_mins);
            }
            TrafficEventKind::ConsumerDisabled => w.u8(2),
            TrafficEventKind::InputOutage => w.u8(3),
        }
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        match r.u8("TrafficEventKind.tag")? {
            0 => Ok(TrafficEventKind::Multiplier(r.get()?)),
            1 => Ok(TrafficEventKind::RampedMultiplier {
                peak: r.get()?,
                ramp_mins: r.u64("TrafficEventKind.ramp_mins")?,
            }),
            2 => Ok(TrafficEventKind::ConsumerDisabled),
            3 => Ok(TrafficEventKind::InputOutage),
            tag => Err(turbine_types::SnapError::Tag(
                "TrafficEventKind",
                tag as u64,
            )),
        }
    }
}

impl turbine_types::Snap for TrafficEvent {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.put(&self.start);
        w.put(&self.end);
        w.put(&self.kind);
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        Ok(TrafficEvent {
            start: r.get()?,
            end: r.get()?,
            kind: r.get()?,
        })
    }
}

impl turbine_types::Snap for TrafficModel {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.put(&self.base_rate);
        w.put(&self.diurnal_fraction);
        w.put(&self.peak_time_of_day);
        w.put(&self.noise_sigma);
        w.put(&self.growth_per_day);
        w.put(&self.events);
        w.u64(self.seed);
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        Ok(TrafficModel {
            base_rate: r.get()?,
            diurnal_fraction: r.get()?,
            peak_time_of_day: r.get()?,
            noise_sigma: r.get()?,
            growth_per_day: r.get()?,
            events: r.get()?,
            seed: r.u64("TrafficModel.seed")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(hours: u64) -> SimTime {
        SimTime::ZERO + Duration::from_hours(hours)
    }

    #[test]
    fn flat_model_is_constant() {
        let m = TrafficModel::flat(1000.0);
        assert_eq!(m.arrival_rate(t(0)), 1000.0);
        assert_eq!(m.arrival_rate(t(100)), 1000.0);
    }

    #[test]
    fn rate_is_a_pure_function_of_time() {
        let m = TrafficModel::diurnal(1000.0, 0.4, 42);
        for h in [0, 5, 13, 23] {
            assert_eq!(m.arrival_rate(t(h)), m.arrival_rate(t(h)));
        }
    }

    #[test]
    fn diurnal_peaks_at_the_configured_hour() {
        let mut m = TrafficModel::diurnal(1000.0, 0.5, 1);
        m.noise_sigma = 0.0;
        let peak = m.arrival_rate(t(18));
        let trough = m.arrival_rate(t(6));
        assert!((peak - 1500.0).abs() < 1.0, "peak {peak}");
        assert!((trough - 500.0).abs() < 1.0, "trough {trough}");
        // Day-over-day at the same hour is identical without noise
        // (the paper's ~1 % day-over-day stability, idealized).
        assert!((m.arrival_rate(t(18)) - m.arrival_rate(t(18 + 24))).abs() < 1e-9);
    }

    #[test]
    fn growth_doubles_in_a_year() {
        let m = TrafficModel::flat(1000.0).with_growth(2f64.ln() / 365.0);
        let after_year = m.arrival_rate(SimTime::ZERO + Duration::from_days(365));
        assert!((after_year / 1000.0 - 2.0).abs() < 0.01, "{after_year}");
    }

    #[test]
    fn multiplier_event_applies_only_in_window() {
        let m = TrafficModel::flat(1000.0).with_event(TrafficEvent {
            start: t(10),
            end: t(12),
            kind: TrafficEventKind::Multiplier(1.16),
        });
        assert_eq!(m.arrival_rate(t(9)), 1000.0);
        assert!((m.arrival_rate(t(10)) - 1160.0).abs() < 1e-9);
        assert!((m.arrival_rate(t(11)) - 1160.0).abs() < 1e-9);
        assert_eq!(m.arrival_rate(t(12)), 1000.0);
    }

    #[test]
    fn outage_zeroes_arrivals_but_disabled_consumer_does_not() {
        let m = TrafficModel::flat(1000.0)
            .with_event(TrafficEvent {
                start: t(1),
                end: t(2),
                kind: TrafficEventKind::InputOutage,
            })
            .with_event(TrafficEvent {
                start: t(3),
                end: t(4),
                kind: TrafficEventKind::ConsumerDisabled,
            });
        assert_eq!(m.arrival_rate(t(1)), 0.0);
        assert_eq!(m.arrival_rate(t(3)), 1000.0, "input keeps flowing");
        assert!(m.consumer_disabled(t(3)));
        assert!(!m.consumer_disabled(t(4)));
    }

    #[test]
    fn idle_through_tracks_outage_coverage() {
        // Zero base rate is idle over any window, even with storm events
        // layered on top (multipliers cannot resurrect a zero rate).
        let silent = TrafficModel::flat(0.0).with_event(TrafficEvent {
            start: t(1),
            end: t(2),
            kind: TrafficEventKind::Multiplier(5.0),
        });
        assert!(silent.idle_through(t(0), t(100)));

        let m = TrafficModel::flat(1000.0).with_event(TrafficEvent {
            start: t(10),
            end: t(20),
            kind: TrafficEventKind::InputOutage,
        });
        // Fully inside the outage: idle.
        assert!(m.idle_through(t(11), t(19)));
        // Window open at `after`: an outage starting exactly at `after`
        // still covers every later instant.
        assert!(m.idle_through(t(10), t(19)));
        // Ends exactly at the (exclusive) outage end: instant t(20) has
        // traffic again.
        assert!(!m.idle_through(t(11), t(20)));
        // Starts before the outage: not covered.
        assert!(!m.idle_through(t(9), t(19)));
        // No outage at all.
        assert!(!m.idle_through(t(0), t(5)));
    }

    #[test]
    fn ramped_multiplier_rises_holds_and_falls() {
        let m = TrafficModel::flat(1000.0).with_event(TrafficEvent {
            start: t(10),
            end: t(20),
            kind: TrafficEventKind::RampedMultiplier {
                peak: 1.16,
                ramp_mins: 60,
            },
        });
        assert_eq!(m.arrival_rate(t(9)), 1000.0);
        // Half-way up the 1 h ramp.
        let half_up = m.arrival_rate(t(10) + Duration::from_mins(30));
        assert!((half_up - 1080.0).abs() < 1.0, "{half_up}");
        // Plateau.
        assert!((m.arrival_rate(t(15)) - 1160.0).abs() < 1e-9);
        // Half-way down before the end.
        let half_down = m.arrival_rate(t(20) - Duration::from_mins(30));
        assert!((half_down - 1080.0).abs() < 1.0, "{half_down}");
        assert_eq!(m.arrival_rate(t(20)), 1000.0);
    }

    #[test]
    fn noise_is_bounded_and_seed_dependent() {
        let a = TrafficModel::diurnal(1000.0, 0.0, 7);
        let b = TrafficModel::diurnal(1000.0, 0.0, 8);
        let mut diverged = false;
        for h in 0..24 {
            let ra = a.arrival_rate(t(h));
            let rb = b.arrival_rate(t(h));
            assert!(ra > 800.0 && ra < 1250.0, "noise too large: {ra}");
            if (ra - rb).abs() > 1e-9 {
                diverged = true;
            }
        }
        assert!(diverged, "different seeds must differ");
    }
}
