//! Fleet synthesis calibrated to Fig. 5 of the paper.
//!
//! The Scuba Tailer service runs one dedicated tailer job per Scuba table
//! (120 K+ tasks at the time of the paper). Per-task CPU follows the
//! traffic volume nearly linearly and is heavy-tailed: over 80 % of tasks
//! use less than one core, a small percentage needs more than four. Memory
//! is dominated by a ~400 MB floor (tailer binary + metric-collection
//! sidecar) plus a few seconds of buffered data proportional to message
//! size; over 99 % of tasks stay under 2 GB.

use crate::traffic::TrafficModel;
use turbine_sim::SimRng;
use turbine_types::Resources;

/// Parameters of a synthesized fleet.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Number of jobs (≈ Scuba tables).
    pub jobs: usize,
    /// RNG seed.
    pub seed: u64,
    /// Per-thread max stable processing rate assumed for sizing
    /// (bytes/sec); per-task CPU ≈ traffic / this.
    pub per_thread_rate: f64,
    /// Log-normal mu of per-job traffic (ln bytes/sec).
    pub traffic_mu: f64,
    /// Log-normal sigma of per-job traffic.
    pub traffic_sigma: f64,
    /// Diurnal swing fraction applied to every job.
    pub diurnal_fraction: f64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            jobs: 1000,
            seed: 0xF1EE7,
            per_thread_rate: 1.0e6,
            // Calibrated against Fig. 5(a): ln-rate centered so that the
            // CPU CDF shows >80 % of tasks under one core with a tail
            // beyond four cores.
            traffic_mu: 11.8, // e^11.8 ≈ 133 KB/s median per job
            traffic_sigma: 1.6,
            diurnal_fraction: 0.35,
        }
    }
}

/// One synthesized job.
#[derive(Debug, Clone)]
pub struct SyntheticJob {
    /// Job name (e.g. the backing Scuba table).
    pub name: String,
    /// Traffic model of its input category.
    pub traffic: TrafficModel,
    /// Average message size in bytes (drives memory footprint).
    pub avg_message_bytes: f64,
    /// Number of input partitions of its Scribe category.
    pub input_partitions: u32,
    /// A reasonable initial task count for the job's base traffic.
    pub initial_task_count: u32,
    /// Expected steady-state per-task resource usage at base traffic
    /// (used for footprint studies like Fig. 5 without running the full
    /// simulation).
    pub expected_task_usage: Resources,
}

/// Estimate steady per-task resource usage for a job at `rate` bytes/sec
/// split over `tasks` tasks: CPU ∝ traffic, memory = 400 MB floor + a few
/// seconds of buffered data scaled by message overhead.
pub fn task_usage(rate_per_task: f64, avg_message_bytes: f64, per_thread_rate: f64) -> Resources {
    let cpu = rate_per_task / per_thread_rate;
    // Buffered seconds grow slightly with message size (larger messages
    // batch better but hold more bytes in flight).
    let buffer_secs = 3.0 + (avg_message_bytes / 512.0).min(8.0);
    let memory_mb =
        400.0 + rate_per_task * buffer_secs / 1.0e6 * (avg_message_bytes / 256.0).clamp(0.5, 16.0);
    Resources::cpu_mem(cpu, memory_mb)
}

/// Synthesize a fleet of `config.jobs` jobs with Fig. 5-like footprints.
pub fn synthesize_fleet(config: &FleetConfig) -> Vec<SyntheticJob> {
    let mut rng = SimRng::seeded(config.seed);
    (0..config.jobs)
        .map(|i| {
            let mut job_rng = rng.fork(i as u64);
            let base_rate = job_rng.log_normal(config.traffic_mu, config.traffic_sigma);
            let avg_message_bytes = job_rng.log_normal(5.5, 0.8); // ≈245 B median
                                                                  // Jobs split into more tasks only once a task would exceed a
                                                                  // per-job vertical threshold (2-8 cores) — mirroring Turbine's
                                                                  // vertical-first policy, and giving Fig. 5(a)'s tail of tasks
                                                                  // above four cores.
            let split_cpu = job_rng.uniform(2.0, 8.0);
            let initial_task_count =
                ((base_rate / (split_cpu * config.per_thread_rate)).ceil() as u32).clamp(1, 32);
            let input_partitions = (initial_task_count * 8).max(16);
            let rate_per_task = base_rate / initial_task_count as f64;
            SyntheticJob {
                name: format!("scuba_tailer_{i:05}"),
                traffic: TrafficModel::diurnal(
                    base_rate,
                    config.diurnal_fraction,
                    config.seed.wrapping_add(i as u64),
                ),
                avg_message_bytes,
                input_partitions,
                initial_task_count,
                expected_task_usage: task_usage(
                    rate_per_task,
                    avg_message_bytes,
                    config.per_thread_rate,
                ),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbine_types::Cdf;

    fn fleet_usages(jobs: usize) -> (Vec<f64>, Vec<f64>) {
        let fleet = synthesize_fleet(&FleetConfig {
            jobs,
            ..FleetConfig::default()
        });
        let mut cpu = Vec::new();
        let mut mem = Vec::new();
        for job in &fleet {
            for _ in 0..job.initial_task_count {
                cpu.push(job.expected_task_usage.cpu);
                mem.push(job.expected_task_usage.memory_mb);
            }
        }
        (cpu, mem)
    }

    #[test]
    fn cpu_distribution_matches_fig5a() {
        let (cpu, _) = fleet_usages(3000);
        let cdf = Cdf::from_samples(&cpu);
        let under_one = cdf.fraction_at_or_below(1.0);
        assert!(
            under_one > 0.75 && under_one < 0.97,
            "fig 5(a): >80% of tasks under one core, got {under_one:.3}"
        );
        let over_four = 1.0 - cdf.fraction_at_or_below(4.0);
        assert!(
            over_four > 0.0001 && over_four < 0.08,
            "fig 5(a): a small percentage above 4 cores, got {over_four:.4}"
        );
    }

    #[test]
    fn memory_distribution_matches_fig5b() {
        let (_, mem) = fleet_usages(3000);
        let cdf = Cdf::from_samples(&mem);
        // Every task carries the ~400 MB floor.
        assert!(cdf.quantile(0.01).expect("q") >= 399.0);
        // Over 99% below 2 GB.
        assert!(
            cdf.fraction_at_or_below(2048.0) > 0.99,
            "fig 5(b): 99% under 2GB, got {:.4}",
            cdf.fraction_at_or_below(2048.0)
        );
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = synthesize_fleet(&FleetConfig::default());
        let b = synthesize_fleet(&FleetConfig::default());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.traffic.base_rate, y.traffic.base_rate);
            assert_eq!(x.initial_task_count, y.initial_task_count);
        }
    }

    #[test]
    fn task_counts_are_bounded_and_partitions_sufficient() {
        let fleet = synthesize_fleet(&FleetConfig::default());
        for job in &fleet {
            assert!((1..=32).contains(&job.initial_task_count));
            assert!(job.input_partitions >= job.initial_task_count);
        }
    }

    #[test]
    fn task_usage_scales_with_rate() {
        let small = task_usage(1.0e5, 256.0, 1.0e6);
        let large = task_usage(4.0e6, 256.0, 1.0e6);
        assert!(small.cpu < 0.2);
        assert!(large.cpu > 3.0);
        assert!(large.memory_mb > small.memory_mb);
        assert!(small.memory_mb >= 400.0);
    }
}
