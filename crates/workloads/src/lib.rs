//! Synthetic workloads calibrated to the Turbine paper's production
//! observations (§VI).
//!
//! Facebook's streaming workload is highly variable but strongly diurnal:
//! day-over-day traffic at the same time differs by ~1 % on aggregate,
//! while within a day it swings widely; on top of that sit growth trends
//! (Fig. 1 shows a service doubling in a year), spikes, storms (datacenter
//! drains redirecting ~16 % extra traffic), outages, and backlogs. The
//! Scuba Tailer fleet's per-task footprints (Fig. 5) are heavy-tailed: over
//! 80 % of tasks need less than one CPU, a small percentage need more than
//! four, every task carries a ~400 MB memory floor, and 99 % stay under
//! 2 GB.
//!
//! [`traffic::TrafficModel`] composes those ingredients into a
//! deterministic rate function of simulated time; [`fleet`] synthesizes
//! whole fleets whose footprint distributions match Fig. 5.

pub mod fleet;
pub mod traffic;

pub use fleet::{synthesize_fleet, FleetConfig, SyntheticJob};
pub use traffic::{TrafficEvent, TrafficEventKind, TrafficModel};
