//! A minimal, dependency-free property-testing harness.
//!
//! The workspace must build in fully offline environments, so instead of
//! pulling the `proptest` crate from a registry, this crate implements the
//! narrow slice of its API that our property tests actually use and is
//! wired in via Cargo dependency renaming (`proptest = { package =
//! "proptest-shim", ... }`). Test sources stay byte-identical to what they
//! would be against upstream proptest.
//!
//! Scope (deliberate):
//! - generation only — no shrinking; a failing case panics with the
//!   assertion message and the deterministic per-test seed,
//! - strategies: integer/float ranges, tuples, `Just`, `any` for
//!   primitives, char-class string patterns `"[...]{lo,hi}"`, collections
//!   (`vec`, `btree_map`), `sample::select`, `prop_map`, `prop_filter`,
//!   `prop_recursive`, unions (`prop_oneof!`),
//! - the `proptest!` macro with optional `#![proptest_config(...)]`,
//!   `prop_assert!`, `prop_assert_eq!`, `prop_assume!`.
//!
//! Determinism: every test function derives its RNG seed from its fully
//! qualified name, so runs are reproducible without a regressions file.

use std::rc::Rc;

// ---------------------------------------------------------------- RNG ----

/// Deterministic generator for test-case synthesis (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator with the given seed.
    pub fn seeded(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in [0, n). `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift bounded draw; bias is < 2^-64 per call, which is
        // irrelevant for test-case generation.
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }
}

/// Derive the deterministic RNG for a named test.
pub fn rng_for(name: &str) -> TestRng {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seeded(h)
}

// ----------------------------------------------------------- Strategy ----

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred` (bounded retry).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Build a recursive strategy: `recurse` receives the strategy for the
    /// previous depth and returns the one-level-deeper strategy. `size` and
    /// `branch` are accepted for API compatibility; depth alone bounds the
    /// shim's recursion (each level mixes leaves in at 50%).
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _size: u32,
        _branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            strat = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        strat
    }

    /// Type-erase (shared, cheaply cloneable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_filter` adapter.
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected 10000 consecutive values",
            self.whence
        );
    }
}

/// Uniform choice between same-typed strategies (`prop_oneof!`).
pub struct Union<V> {
    choices: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over the given (non-empty) choices.
    pub fn new(choices: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
        Union { choices }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.choices.len() as u64) as usize;
        self.choices[idx].generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ------------------------------------------------------------- ranges ----

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.next_f64() as f32
    }
}

// ------------------------------------------------------------- tuples ----

macro_rules! tuple_strategy {
    ($(($($S:ident . $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

// ------------------------------------------------- string patterns ----

/// `&'static str` literals act as char-class string strategies of the form
/// `"[class]{lo,hi}"` (the only regex shape our tests use). The class
/// supports ranges (`a-z`), backslash escapes, and literal unicode chars.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_char_class(self);
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| chars[rng.below(chars.len() as u64) as usize])
            .collect()
    }
}

fn parse_char_class(pattern: &str) -> (Vec<char>, usize, usize) {
    let err = || {
        panic!("unsupported string strategy pattern {pattern:?} (expected \"[class]{{lo,hi}}\")")
    };
    let Some(rest) = pattern.strip_prefix('[') else {
        err()
    };
    let Some((class, counts)) = rest.split_once(']') else {
        err()
    };
    // Tokenize the class, tracking which chars were backslash-escaped so an
    // escaped '-' stays literal.
    let mut tokens: Vec<(char, bool)> = Vec::new();
    let mut it = class.chars();
    while let Some(c) = it.next() {
        if c == '\\' {
            let Some(esc) = it.next() else { err() };
            tokens.push((esc, true));
        } else {
            tokens.push((c, false));
        }
    }
    let mut chars = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let is_range = i + 2 < tokens.len() && tokens[i + 1] == ('-', false);
        if is_range {
            let (start, end) = (tokens[i].0, tokens[i + 2].0);
            assert!(start <= end, "inverted range in {pattern:?}");
            for u in start as u32..=end as u32 {
                if let Some(c) = char::from_u32(u) {
                    chars.push(c);
                }
            }
            i += 3;
        } else {
            chars.push(tokens[i].0);
            i += 1;
        }
    }
    assert!(!chars.is_empty(), "empty char class in {pattern:?}");
    let Some(counts) = counts.strip_prefix('{').and_then(|c| c.strip_suffix('}')) else {
        err()
    };
    let (lo, hi) = match counts.split_once(',') {
        Some((lo, hi)) => (
            lo.trim().parse().unwrap_or_else(|_| err()),
            hi.trim().parse().unwrap_or_else(|_| err()),
        ),
        None => {
            let n = counts.trim().parse().unwrap_or_else(|_| err());
            (n, n)
        }
    };
    assert!(lo <= hi, "inverted count range in {pattern:?}");
    (chars, lo, hi)
}

// ---------------------------------------------------------------- any ----

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// The strategy `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;
    /// Construct that strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-range strategy for a primitive type.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! any_primitive {
    ($($t:ty => $gen:expr),* $(,)?) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let f: fn(&mut TestRng) -> $t = $gen;
                f(rng)
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )*};
}

any_primitive! {
    bool => |rng| rng.next_u64() & 1 == 1,
    u8 => |rng| rng.next_u64() as u8,
    u16 => |rng| rng.next_u64() as u16,
    u32 => |rng| rng.next_u64() as u32,
    u64 => |rng| rng.next_u64(),
    usize => |rng| rng.next_u64() as usize,
    i8 => |rng| rng.next_u64() as i8,
    i16 => |rng| rng.next_u64() as i16,
    i32 => |rng| rng.next_u64() as i32,
    i64 => |rng| rng.next_u64() as i64,
    isize => |rng| rng.next_u64() as isize,
    // Raw bit reinterpretation: covers subnormals, ±0, ±inf, NaN. Tests
    // that need finiteness filter explicitly.
    f64 => |rng| f64::from_bits(rng.next_u64()),
    f32 => |rng| f32::from_bits(rng.next_u64() as u32),
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

// -------------------------------------------------------- collections ----

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeMap;

    /// Vec of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy for vectors.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// BTreeMap with entry count drawn from `size` (duplicate keys collapse,
    /// as with upstream proptest).
    pub fn btree_map<K, V>(
        keys: K,
        values: V,
        size: std::ops::Range<usize>,
    ) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy { keys, values, size }
    }

    /// Strategy for ordered maps.
    pub struct BTreeMapStrategy<K, V> {
        keys: K,
        values: V,
        size: std::ops::Range<usize>,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len)
                .map(|_| (self.keys.generate(rng), self.values.generate(rng)))
                .collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Uniformly select one of the given options.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    /// Strategy choosing among fixed options.
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

// ------------------------------------------------------------- runner ----

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Outcome of one generated case (internal to the macros).
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed with this message.
    Fail(String),
    /// `prop_assume!` rejected the case; it is skipped, not failed.
    Reject,
}

/// Everything the tests import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, Union,
    };
    /// Module-style access (`prop::collection::vec`, `prop::sample::select`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `fn name(pattern in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    match __result {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property '{}' failed on case {}/{}: {}",
                                stringify!($name),
                                __case + 1,
                                __config.cases,
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Assert inside a `proptest!` body; failure fails the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l != *__r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l != *__r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                __l,
                __r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Skip the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn char_class_parsing_handles_ranges_and_escapes() {
        let (chars, lo, hi) = parse_char_class("[a-z]{1,6}");
        assert_eq!(chars.len(), 26);
        assert_eq!((lo, hi), (1, 6));
        let (chars, lo, hi) = parse_char_class("[a-zA-Z0-9 _./\\-\"\\\\\u{e9}\u{4f60}]{0,12}");
        assert!(chars.contains(&'-') && chars.contains(&'\\') && chars.contains(&'"'));
        assert!(chars.contains(&'\u{e9}') && chars.contains(&'\u{4f60}'));
        assert_eq!((lo, hi), (0, 12));
    }

    #[test]
    fn string_strategy_respects_class_and_length() {
        let mut rng = rng_for("string_strategy");
        for _ in 0..200 {
            let s = "[a-c]{1,4}".generate(&mut rng);
            assert!((1..=4).contains(&s.chars().count()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn ranges_tuples_and_collections_generate_in_bounds() {
        let mut rng = rng_for("bounds");
        for _ in 0..200 {
            let (a, b, c) = (0u8..4, 1i64..64, 0.5f64..2.0).generate(&mut rng);
            assert!(a < 4);
            assert!((1..64).contains(&b));
            assert!((0.5..2.0).contains(&c));
            let v = collection::vec(0u32..10, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn union_and_recursive_strategies_terminate() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(i64),
            Node(Vec<Tree>),
        }
        let strat = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 4, |inner| {
                collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut rng = rng_for("recursive");
        for _ in 0..100 {
            // Must not recurse unboundedly.
            let _ = strat.generate(&mut rng);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// The macro wires patterns, assume, and assertions together.
        #[test]
        fn macro_end_to_end(mut xs in prop::collection::vec(0u64..100, 0..8), k in 1u64..4) {
            prop_assume!(k > 0);
            xs.push(k);
            let max = *xs.iter().max().expect("non-empty");
            prop_assert!(max < 100, "max {max}");
            prop_assert_eq!(xs.len(), xs.len());
        }
    }
}
