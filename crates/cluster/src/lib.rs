//! The cluster-manager substrate (Tupperware stand-in, paper §II, §IV).
//!
//! Turbine is a *nested* container infrastructure: it obtains an allocation
//! of Linux containers — the **Turbine Containers** — from Facebook's
//! cluster manager Tupperware; each Turbine Container manages a pool of
//! resources on a physical host and runs a local Task Manager that spawns
//! stream-processing tasks as children. Turbine consumes exactly two things
//! from the cluster manager: container allocations (with capacities) and
//! host liveness. This crate models both, plus the failure injection the
//! evaluation experiments need (maintenance events, host failures,
//! add/remove of hosts).

use std::collections::BTreeMap;
use std::fmt;
use turbine_types::{ContainerId, HostId, Resources};

/// Error raised for operations on unknown hosts/containers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// No host with this id.
    UnknownHost(HostId),
    /// No container with this id.
    UnknownContainer(ContainerId),
    /// The requested container capacity exceeds what is left on the host.
    InsufficientHostCapacity(HostId),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::UnknownHost(h) => write!(f, "unknown {h}"),
            ClusterError::UnknownContainer(c) => write!(f, "unknown {c}"),
            ClusterError::InsufficientHostCapacity(h) => {
                write!(f, "insufficient remaining capacity on {h}")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// A physical machine.
#[derive(Debug, Clone)]
struct Host {
    capacity: Resources,
    allocated: Resources,
    healthy: bool,
    containers: Vec<ContainerId>,
}

/// A Turbine Container: the parent container managing a resource pool on
/// one host.
#[derive(Debug, Clone)]
struct Container {
    host: HostId,
    capacity: Resources,
}

/// The cluster: hosts and the Turbine containers allocated on them.
#[derive(Debug, Default)]
pub struct Cluster {
    hosts: BTreeMap<HostId, Host>,
    containers: BTreeMap<ContainerId, Container>,
    next_host: u64,
    next_container: u64,
}

impl Cluster {
    /// An empty cluster.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one healthy host with the given capacity.
    pub fn add_host(&mut self, capacity: Resources) -> HostId {
        let id = HostId(self.next_host);
        self.next_host += 1;
        self.hosts.insert(
            id,
            Host {
                capacity,
                allocated: Resources::ZERO,
                healthy: true,
                containers: Vec::new(),
            },
        );
        id
    }

    /// Add `n` identical hosts; returns their ids.
    pub fn add_hosts(&mut self, n: usize, capacity: Resources) -> Vec<HostId> {
        (0..n).map(|_| self.add_host(capacity)).collect()
    }

    /// Allocate a Turbine container of `capacity` on `host`.
    pub fn allocate_container(
        &mut self,
        host: HostId,
        capacity: Resources,
    ) -> Result<ContainerId, ClusterError> {
        let h = self
            .hosts
            .get_mut(&host)
            .ok_or(ClusterError::UnknownHost(host))?;
        if !(h.allocated + capacity).fits_within(&h.capacity) {
            return Err(ClusterError::InsufficientHostCapacity(host));
        }
        let id = ContainerId(self.next_container);
        self.next_container += 1;
        h.allocated += capacity;
        h.containers.push(id);
        self.containers.insert(id, Container { host, capacity });
        Ok(id)
    }

    /// Allocate one container per host covering `fraction` of each host's
    /// capacity — the standard Turbine deployment shape (one parent
    /// container managing the host's streaming pool, with headroom left
    /// for other tenants and spikes).
    pub fn allocate_fleet(&mut self, fraction: f64) -> Vec<ContainerId> {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        let hosts: Vec<(HostId, Resources)> = self
            .hosts
            .iter()
            .filter(|(_, h)| h.healthy)
            .map(|(&id, h)| (id, (h.capacity - h.allocated).scale(fraction)))
            .collect();
        hosts
            .into_iter()
            .map(|(host, cap)| {
                self.allocate_container(host, cap)
                    .expect("capacity fraction of remaining always fits")
            })
            .collect()
    }

    /// Release a container's resources back to its host.
    pub fn release_container(&mut self, container: ContainerId) -> Result<(), ClusterError> {
        let c = self
            .containers
            .remove(&container)
            .ok_or(ClusterError::UnknownContainer(container))?;
        if let Some(h) = self.hosts.get_mut(&c.host) {
            h.allocated -= c.capacity;
            h.containers.retain(|&x| x != container);
        }
        Ok(())
    }

    /// Mark a host failed (maintenance, crash, disconnect). Its containers
    /// stop heart-beating; the Shard Manager will fail their shards over.
    pub fn fail_host(&mut self, host: HostId) -> Result<(), ClusterError> {
        self.hosts
            .get_mut(&host)
            .map(|h| h.healthy = false)
            .ok_or(ClusterError::UnknownHost(host))
    }

    /// Bring a failed host back.
    pub fn recover_host(&mut self, host: HostId) -> Result<(), ClusterError> {
        self.hosts
            .get_mut(&host)
            .map(|h| h.healthy = true)
            .ok_or(ClusterError::UnknownHost(host))
    }

    /// Permanently remove a host and all containers on it. Returns the
    /// removed container ids.
    pub fn remove_host(&mut self, host: HostId) -> Result<Vec<ContainerId>, ClusterError> {
        let h = self
            .hosts
            .remove(&host)
            .ok_or(ClusterError::UnknownHost(host))?;
        for c in &h.containers {
            self.containers.remove(c);
        }
        Ok(h.containers)
    }

    /// Host a container lives on.
    pub fn host_of(&self, container: ContainerId) -> Result<HostId, ClusterError> {
        self.containers
            .get(&container)
            .map(|c| c.host)
            .ok_or(ClusterError::UnknownContainer(container))
    }

    /// Capacity of a host.
    pub fn host_capacity(&self, host: HostId) -> Result<Resources, ClusterError> {
        self.hosts
            .get(&host)
            .map(|h| h.capacity)
            .ok_or(ClusterError::UnknownHost(host))
    }

    /// Capacity of a container.
    pub fn container_capacity(&self, container: ContainerId) -> Result<Resources, ClusterError> {
        self.containers
            .get(&container)
            .map(|c| c.capacity)
            .ok_or(ClusterError::UnknownContainer(container))
    }

    /// True if the container exists and its host is healthy.
    pub fn is_container_healthy(&self, container: ContainerId) -> bool {
        self.containers
            .get(&container)
            .and_then(|c| self.hosts.get(&c.host))
            .is_some_and(|h| h.healthy)
    }

    /// All containers on healthy hosts, sorted by id.
    pub fn healthy_containers(&self) -> Vec<ContainerId> {
        self.containers
            .iter()
            .filter(|(_, c)| self.hosts.get(&c.host).is_some_and(|h| h.healthy))
            .map(|(&id, _)| id)
            .collect()
    }

    /// All containers (healthy or not), sorted by id.
    pub fn all_containers(&self) -> Vec<ContainerId> {
        self.containers.keys().copied().collect()
    }

    /// All hosts, sorted by id.
    pub fn hosts(&self) -> Vec<HostId> {
        self.hosts.keys().copied().collect()
    }

    /// Healthy hosts, sorted by id.
    pub fn healthy_hosts(&self) -> Vec<HostId> {
        self.hosts
            .iter()
            .filter(|(_, h)| h.healthy)
            .map(|(&id, _)| id)
            .collect()
    }

    /// Containers allocated on one host.
    pub fn containers_on(&self, host: HostId) -> Result<Vec<ContainerId>, ClusterError> {
        self.hosts
            .get(&host)
            .map(|h| h.containers.clone())
            .ok_or(ClusterError::UnknownHost(host))
    }

    /// Total capacity across healthy hosts.
    pub fn total_healthy_capacity(&self) -> Resources {
        self.hosts
            .values()
            .filter(|h| h.healthy)
            .map(|h| h.capacity)
            .sum()
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// Number of containers.
    pub fn container_count(&self) -> usize {
        self.containers.len()
    }
}

impl turbine_types::Snap for Host {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.put(&self.capacity);
        w.put(&self.allocated);
        w.put(&self.healthy);
        w.put(&self.containers);
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        Ok(Host {
            capacity: r.get()?,
            allocated: r.get()?,
            healthy: r.get()?,
            containers: r.get()?,
        })
    }
}

impl turbine_types::Snap for Container {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.put(&self.host);
        w.put(&self.capacity);
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        Ok(Container {
            host: r.get()?,
            capacity: r.get()?,
        })
    }
}

impl turbine_types::Snap for Cluster {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.put(&self.hosts);
        w.put(&self.containers);
        w.u64(self.next_host);
        w.u64(self.next_container);
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        Ok(Cluster {
            hosts: r.get()?,
            containers: r.get()?,
            next_host: r.u64("Cluster.next_host")?,
            next_container: r.u64("Cluster.next_container")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A host resembling the Scuba Tailer fleet machines: 56 cores, 256 GB.
    fn scuba_host() -> Resources {
        Resources::new(56.0, 256.0 * 1024.0, 1_000_000.0, 1000.0)
    }

    #[test]
    fn allocation_respects_host_capacity() {
        let mut cluster = Cluster::new();
        let h = cluster.add_host(Resources::cpu_mem(4.0, 1000.0));
        let c1 = cluster
            .allocate_container(h, Resources::cpu_mem(3.0, 600.0))
            .expect("fits");
        assert_eq!(cluster.host_of(c1).expect("host"), h);
        // Second allocation exceeds remaining CPU.
        assert_eq!(
            cluster.allocate_container(h, Resources::cpu_mem(2.0, 100.0)),
            Err(ClusterError::InsufficientHostCapacity(h))
        );
        // Releasing frees the capacity again.
        cluster.release_container(c1).expect("release");
        cluster
            .allocate_container(h, Resources::cpu_mem(4.0, 1000.0))
            .expect("full host fits after release");
    }

    #[test]
    fn fleet_allocation_covers_every_healthy_host() {
        let mut cluster = Cluster::new();
        cluster.add_hosts(10, scuba_host());
        let sick = cluster.hosts()[3];
        cluster.fail_host(sick).expect("fail");
        let fleet = cluster.allocate_fleet(0.8);
        assert_eq!(fleet.len(), 9);
        for &c in &fleet {
            let cap = cluster.container_capacity(c).expect("cap");
            assert!((cap.cpu - 56.0 * 0.8).abs() < 1e-9);
        }
    }

    #[test]
    fn host_failure_marks_containers_unhealthy() {
        let mut cluster = Cluster::new();
        let hosts = cluster.add_hosts(2, scuba_host());
        let fleet = cluster.allocate_fleet(0.5);
        assert_eq!(cluster.healthy_containers().len(), 2);
        cluster.fail_host(hosts[0]).expect("fail");
        assert_eq!(cluster.healthy_containers().len(), 1);
        assert!(!cluster.is_container_healthy(fleet[0]));
        cluster.recover_host(hosts[0]).expect("recover");
        assert_eq!(cluster.healthy_containers().len(), 2);
    }

    #[test]
    fn remove_host_drops_its_containers() {
        let mut cluster = Cluster::new();
        let hosts = cluster.add_hosts(2, scuba_host());
        cluster.allocate_fleet(0.5);
        let dropped = cluster.remove_host(hosts[1]).expect("remove");
        assert_eq!(dropped.len(), 1);
        assert_eq!(cluster.container_count(), 1);
        assert!(!cluster.is_container_healthy(dropped[0]));
        assert!(matches!(
            cluster.host_of(dropped[0]),
            Err(ClusterError::UnknownContainer(_))
        ));
    }

    #[test]
    fn capacity_accounting_sums_healthy_hosts_only() {
        let mut cluster = Cluster::new();
        let hosts = cluster.add_hosts(3, Resources::cpu_mem(10.0, 100.0));
        cluster.fail_host(hosts[1]).expect("fail");
        let total = cluster.total_healthy_capacity();
        assert_eq!(total.cpu, 20.0);
        assert_eq!(cluster.healthy_hosts().len(), 2);
    }

    #[test]
    fn unknown_ids_error() {
        let mut cluster = Cluster::new();
        assert!(cluster.fail_host(HostId(9)).is_err());
        assert!(cluster.host_of(ContainerId(9)).is_err());
        assert!(cluster.release_container(ContainerId(9)).is_err());
        assert!(cluster.containers_on(HostId(9)).is_err());
    }
}
