//! Property tests for cluster allocation accounting: capacity is
//! conserved through arbitrary allocate/release/fail sequences.

use proptest::prelude::*;
use turbine_cluster::Cluster;
use turbine_types::Resources;

#[derive(Debug, Clone)]
enum Op {
    Allocate { host_idx: usize, cpu: f64, mem: f64 },
    ReleaseOldest,
    FailHost { host_idx: usize },
    RecoverHost { host_idx: usize },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0usize..8, 0.5f64..16.0, 256.0f64..32_000.0)
                .prop_map(|(host_idx, cpu, mem)| Op::Allocate { host_idx, cpu, mem }),
            Just(Op::ReleaseOldest),
            (0usize..8).prop_map(|host_idx| Op::FailHost { host_idx }),
            (0usize..8).prop_map(|host_idx| Op::RecoverHost { host_idx }),
        ],
        0..60,
    )
}

proptest! {
    /// For any operation sequence: allocations never exceed host capacity,
    /// releases restore capacity exactly, and health transitions never
    /// corrupt the container inventory.
    #[test]
    fn allocation_accounting_is_conserved(ops in arb_ops()) {
        let mut cluster = Cluster::new();
        let hosts = cluster.add_hosts(8, Resources::new(32.0, 64_000.0, 1.0e6, 1000.0));
        let mut live = Vec::new();

        for op in ops {
            match op {
                Op::Allocate { host_idx, cpu, mem } => {
                    let host = hosts[host_idx];
                    if let Ok(c) = cluster.allocate_container(host, Resources::cpu_mem(cpu, mem)) {
                        live.push(c);
                    }
                }
                Op::ReleaseOldest => {
                    if !live.is_empty() {
                        let c = live.remove(0);
                        cluster.release_container(c).expect("release live container");
                    }
                }
                Op::FailHost { host_idx } => {
                    cluster.fail_host(hosts[host_idx]).expect("known host");
                }
                Op::RecoverHost { host_idx } => {
                    cluster.recover_host(hosts[host_idx]).expect("known host");
                }
            }
            // Invariants after every step:
            prop_assert_eq!(cluster.container_count(), live.len());
            // Per-host allocation never exceeds capacity: verified by
            // summing container capacities per host.
            for &host in &hosts {
                let total: Resources = cluster
                    .containers_on(host)
                    .expect("known host")
                    .iter()
                    .map(|&c| cluster.container_capacity(c).expect("live"))
                    .sum();
                prop_assert!(
                    total.fits_within(&Resources::new(32.0 + 1e-9, 64_000.0 + 1e-6, 1.0e6, 1000.0)),
                    "host over-allocated: {total:?}"
                );
            }
            // Healthy containers are exactly those on healthy hosts.
            let healthy_hosts = cluster.healthy_hosts();
            for &c in &live {
                let host = cluster.host_of(c).expect("live");
                prop_assert_eq!(
                    cluster.is_container_healthy(c),
                    healthy_hosts.contains(&host)
                );
            }
        }

        // Releasing everything restores (essentially) full capacity on
        // every host; a few ulps of float residue from the add/sub cycles
        // are acceptable, hence the 1e-9 relative slack.
        for c in live {
            cluster.release_container(c).expect("release");
        }
        let nearly_full = Resources::cpu_mem(32.0 * (1.0 - 1e-9), 64_000.0 * (1.0 - 1e-9));
        for &host in &hosts {
            cluster
                .allocate_container(host, nearly_full)
                .expect("full capacity must be available again");
        }
    }
}
