//! Diff classification and execution-plan actions.

use turbine_config::JobConfig;
use turbine_types::JobId;

/// What kind of synchronization a job needs this round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncKind {
    /// Running already matches expected.
    NoChange,
    /// First start: no running configuration exists yet.
    Start,
    /// A direct copy of the merged expected configuration suffices — the
    /// change propagates to tasks through the normal Task Service / Task
    /// Manager refresh (package release, vertical resource change, SLO or
    /// priority change, argument change).
    Simple,
    /// Multi-phase coordination required: the partition-to-task mapping
    /// changes (parallelism or input layout), or state/checkpoint locations
    /// move. Old tasks must be fully stopped before checkpoints are
    /// redistributed and new tasks started.
    Complex,
}

/// Classify the difference between the running and merged-expected
/// configurations.
pub fn classify(running: Option<&JobConfig>, expected: &JobConfig) -> SyncKind {
    let Some(running) = running else {
        return SyncKind::Start;
    };
    if running == expected {
        return SyncKind::NoChange;
    }
    let mapping_changed = running.task_count != expected.task_count
        || running.input_partitions != expected.input_partitions
        || running.input_category != expected.input_category
        || running.checkpoint_dir != expected.checkpoint_dir
        || running.stateful != expected.stateful;
    if mapping_changed {
        SyncKind::Complex
    } else {
        SyncKind::Simple
    }
}

/// One idempotent step of an execution plan. The environment executes
/// these; idempotence is what makes retry-after-partial-failure safe.
#[derive(Debug, Clone, PartialEq)]
pub enum SyncAction {
    /// Ask every Task Manager to stop the job's tasks (via committing a
    /// zero-task interim running config; idempotent).
    StopAllTasks {
        /// Job whose tasks must stop.
        job: JobId,
    },
    /// Barrier: proceed only once no task of the job runs anywhere.
    AwaitAllStopped {
        /// Job being awaited.
        job: JobId,
    },
    /// Re-map per-partition checkpoints (and state, for stateful jobs)
    /// from the old task layout to the new one.
    RedistributeCheckpoints {
        /// Job whose checkpoints move.
        job: JobId,
        /// Parallelism before the change.
        old_task_count: u32,
        /// Parallelism after the change.
        new_task_count: u32,
    },
    /// Commit the merged expected configuration as the running one — the
    /// atomic "it happened" point of the plan.
    CommitRunning {
        /// Job being committed.
        job: JobId,
    },
    /// Remove the running entry entirely (job deletion).
    ClearRunning {
        /// Job being cleared.
        job: JobId,
    },
}

/// Build the execution plan for one job given its classification.
pub fn build_plan(
    job: JobId,
    kind: SyncKind,
    running: Option<&JobConfig>,
    expected: &JobConfig,
) -> Vec<SyncAction> {
    match kind {
        SyncKind::NoChange => Vec::new(),
        SyncKind::Start | SyncKind::Simple => vec![SyncAction::CommitRunning { job }],
        SyncKind::Complex => vec![
            SyncAction::StopAllTasks { job },
            SyncAction::AwaitAllStopped { job },
            SyncAction::RedistributeCheckpoints {
                job,
                old_task_count: running.map_or(0, |r| r.task_count),
                new_task_count: expected.task_count,
            },
            SyncAction::CommitRunning { job },
        ],
    }
}

/// Build the wind-down plan for a deleted job.
pub fn build_delete_plan(job: JobId) -> Vec<SyncAction> {
    vec![
        SyncAction::StopAllTasks { job },
        SyncAction::AwaitAllStopped { job },
        SyncAction::ClearRunning { job },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> JobConfig {
        JobConfig::stateless("tailer", 4, 64)
    }

    #[test]
    fn no_running_means_start() {
        assert_eq!(classify(None, &base()), SyncKind::Start);
    }

    #[test]
    fn identical_configs_mean_no_change() {
        assert_eq!(classify(Some(&base()), &base()), SyncKind::NoChange);
    }

    #[test]
    fn package_release_is_simple() {
        let mut expected = base();
        expected.package.version = 2;
        assert_eq!(classify(Some(&base()), &expected), SyncKind::Simple);
    }

    #[test]
    fn vertical_resource_change_is_simple() {
        let mut expected = base();
        expected.task_resources.memory_mb *= 2.0;
        expected.threads_per_task = 4;
        assert_eq!(classify(Some(&base()), &expected), SyncKind::Simple);
    }

    #[test]
    fn parallelism_change_is_complex() {
        let mut expected = base();
        expected.task_count = 8;
        assert_eq!(classify(Some(&base()), &expected), SyncKind::Complex);
    }

    #[test]
    fn input_layout_change_is_complex() {
        let mut expected = base();
        expected.input_partitions = 128;
        assert_eq!(classify(Some(&base()), &expected), SyncKind::Complex);

        let mut expected = base();
        expected.input_category = "other".into();
        assert_eq!(classify(Some(&base()), &expected), SyncKind::Complex);

        let mut expected = base();
        expected.checkpoint_dir = "/elsewhere".into();
        assert_eq!(classify(Some(&base()), &expected), SyncKind::Complex);
    }

    #[test]
    fn plans_have_the_documented_shapes() {
        let job = JobId(1);
        assert!(build_plan(job, SyncKind::NoChange, Some(&base()), &base()).is_empty());
        assert_eq!(
            build_plan(job, SyncKind::Simple, Some(&base()), &base()),
            vec![SyncAction::CommitRunning { job }]
        );
        let mut expected = base();
        expected.task_count = 16;
        let plan = build_plan(job, SyncKind::Complex, Some(&base()), &expected);
        assert_eq!(plan.len(), 4);
        assert!(matches!(plan[0], SyncAction::StopAllTasks { .. }));
        assert!(matches!(plan[1], SyncAction::AwaitAllStopped { .. }));
        assert!(matches!(
            plan[2],
            SyncAction::RedistributeCheckpoints {
                old_task_count: 4,
                new_task_count: 16,
                ..
            }
        ));
        assert!(matches!(plan[3], SyncAction::CommitRunning { .. }));
        let del = build_delete_plan(job);
        assert!(matches!(del.last(), Some(SyncAction::ClearRunning { .. })));
    }
}
