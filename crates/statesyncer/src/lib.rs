//! The State Syncer (paper §III-B): ACIDF job updates.
//!
//! Turbine separates *planned* updates (the Expected Job Configurations)
//! from *actual* updates (the Running Job Configurations). Every 30 seconds
//! the State Syncer merges the expected levels per precedence, compares the
//! result with the running configuration, generates an **execution plan**
//! — an optimal sequence of idempotent actions — and carries it out:
//!
//! * **Atomicity**: the running configuration is committed only after the
//!   plan fully executed.
//! * **Fault tolerance**: a failed plan is aborted; the expected-vs-running
//!   difference persists, so the next round retries automatically. Jobs
//!   failing repeatedly are quarantined with an operator alert.
//! * **Durability**: expected and running tables live in the WAL-backed
//!   Job Store, so synchronization resumes even if the syncer itself dies.
//!
//! Synchronizations are classified as **simple** (a pure config copy, e.g.
//! package release — batched, tens of thousands per round) or **complex**
//! (multi-phase coordination, e.g. parallelism changes that must stop all
//! old tasks, redistribute checkpoints, then start new tasks — §III-B).

pub mod plan;
pub mod syncer;

pub use plan::{classify, SyncAction, SyncKind};
pub use syncer::{Redistribute, StateSyncer, SyncEnvironment, SyncReport, SyncerConfig};
