//! The State Syncer service loop.

use crate::plan::{build_delete_plan, build_plan, classify, SyncAction, SyncKind};
use std::collections::{BTreeMap, BTreeSet};
use turbine_config::JobConfig;
use turbine_jobstore::{JobService, WalStorage};
use turbine_sim::SimRng;
use turbine_types::JobId;

/// State Syncer tunables.
#[derive(Debug, Clone, Copy)]
pub struct SyncerConfig {
    /// Consecutive plan *failures* after which a job is quarantined and an
    /// operator alert fired (paper: "if it fails for multiple times").
    /// Must be at least 1 — see [`SyncerConfig::validate`].
    pub max_failures: u32,
    /// Consecutive rounds a complex sync may sit waiting (e.g. for tasks
    /// to stop) before it is treated as a failure. At the 30 s round
    /// cadence the default of 20 rounds ≈ 10 minutes.
    pub max_inflight_rounds: u32,
    /// Seed for the backoff jitter, so retry spacing is deterministic per
    /// syncer instance yet decorrelated across failing jobs.
    pub backoff_seed: u64,
}

impl SyncerConfig {
    /// Validate the configuration. `max_failures == 0` would quarantine a
    /// job before its first sync ever ran.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_failures < 1 {
            return Err("syncer max_failures must be >= 1".to_string());
        }
        Ok(())
    }
}

impl Default for SyncerConfig {
    fn default() -> Self {
        SyncerConfig {
            max_failures: 3,
            max_inflight_rounds: 20,
            backoff_seed: 0x5EED_BACC,
        }
    }
}

/// Progress of a (possibly long-running) redistribution step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Redistribute {
    /// Checkpoints/state fully re-mapped; the plan may commit.
    Done,
    /// Still moving state (stateful jobs move real bytes — "may take a
    /// fairly long time", §III-B); the syncer re-enters the plan next
    /// round without counting a failure.
    InProgress,
}

/// The world the syncer acts on. The platform implements this against the
/// real Task Managers; tests use mocks to inject failures.
pub trait SyncEnvironment {
    /// Ask every Task Manager to stop the job's tasks. Must be idempotent.
    fn request_stop(&mut self, job: JobId);

    /// True once no task of the job is running anywhere in the cluster.
    fn all_stopped(&mut self, job: JobId) -> bool;

    /// Re-map checkpoints (and state for stateful jobs) from the old to
    /// the new task layout. Must be idempotent; may fail transiently or
    /// report [`Redistribute::InProgress`] while state is still moving.
    fn redistribute_checkpoints(
        &mut self,
        job: JobId,
        old_task_count: u32,
        new_task_count: u32,
    ) -> Result<Redistribute, String>;
}

/// Outcome of one synchronization round.
#[derive(Debug, Default, Clone)]
pub struct SyncReport {
    /// Jobs whose first running configuration was committed.
    pub started: Vec<JobId>,
    /// Jobs synchronized with a simple (batched) copy.
    pub simple: Vec<JobId>,
    /// Jobs whose complex synchronization fully completed this round.
    pub complex_completed: Vec<JobId>,
    /// Jobs whose complex synchronization is mid-flight (e.g. waiting for
    /// old tasks to stop); they will be resumed next round.
    pub in_progress: Vec<JobId>,
    /// Jobs fully wound down and removed from the running table.
    pub deleted: Vec<JobId>,
    /// Jobs whose plan failed this round, with the reason.
    pub failed: Vec<(JobId, String)>,
    /// Jobs skipped this round because they are backing off after a
    /// failure (retry spacing grows 1/2/4 rounds, plus seeded jitter).
    pub backed_off: Vec<JobId>,
    /// Jobs quarantined this round (alerts fired).
    pub quarantined: Vec<JobId>,
    /// Operator alerts raised this round.
    pub alerts: Vec<String>,
    /// Jobs whose redistribution was satisfied by a consumed warm-handoff
    /// grant this round (fast-path fail-over: the promoted standby already
    /// holds warm state, so nothing moved).
    pub warm_handoffs: Vec<JobId>,
    /// How many jobs this round actually examined. Full rounds examine the
    /// whole expected∪running universe; sparse rounds only the candidates,
    /// so this is the control-plane work measure the scale gate watches.
    pub jobs_examined: usize,
}

impl SyncReport {
    /// Total jobs that changed state this round.
    pub fn total_changed(&self) -> usize {
        self.started.len() + self.simple.len() + self.complex_completed.len() + self.deleted.len()
    }
}

/// The State Syncer.
#[derive(Debug)]
pub struct StateSyncer {
    config: SyncerConfig,
    failure_counts: BTreeMap<JobId, u32>,
    inflight_rounds: BTreeMap<JobId, u32>,
    quarantined: BTreeSet<JobId>,
    /// Monotone round counter driving the retry backoff.
    round: u64,
    /// Earliest round at which a previously-failed job may retry.
    resume_round: BTreeMap<JobId, u64>,
    /// Jitter source for backoff spacing, seeded from the config so two
    /// syncers with the same seed produce the same retry schedule.
    rng: SimRng,
    /// One-shot warm-handoff grants from fast-path promotions: the
    /// promoted standby shadow-consumed the input, so the job's next
    /// checkpoint/state redistribution is already satisfied and must not
    /// pause the job for a state move. Grants are in-memory only — a
    /// syncer crash drops them and the job degrades to the full path.
    warm_handoffs: BTreeSet<JobId>,
    /// Jobs that must be revisited next round regardless of store
    /// changes: mid-flight plans, failures awaiting retry, backoffs.
    attention: BTreeSet<JobId>,
    /// How much of the Job Store changelog the sparse round has consumed.
    changelog_cursor: u64,
}

impl StateSyncer {
    /// A syncer with the given tunables. Panics on an invalid
    /// configuration — see [`SyncerConfig::validate`].
    pub fn new(config: SyncerConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid syncer config: {e}");
        }
        StateSyncer {
            config,
            failure_counts: BTreeMap::new(),
            inflight_rounds: BTreeMap::new(),
            quarantined: BTreeSet::new(),
            round: 0,
            resume_round: BTreeMap::new(),
            rng: SimRng::seeded(config.backoff_seed),
            warm_handoffs: BTreeSet::new(),
            attention: BTreeSet::new(),
            changelog_cursor: 0,
        }
    }

    /// Grant a one-shot warm handoff: the job's next redistribution
    /// completes instantly because its promoted standby already holds warm
    /// state. Issued by the platform when a critical job's standby is
    /// promoted on the fast path.
    pub fn grant_warm_handoff(&mut self, job: JobId) {
        self.warm_handoffs.insert(job);
        // Make sure the sparse round revisits the job even if its store
        // rows have not changed, so the grant is consumed promptly.
        self.attention.insert(job);
    }

    /// True while a warm-handoff grant is pending for the job.
    pub fn has_warm_handoff(&self, job: JobId) -> bool {
        self.warm_handoffs.contains(&job)
    }

    /// The configuration in effect.
    pub fn config(&self) -> &SyncerConfig {
        &self.config
    }

    /// True if the job is quarantined (skipped by sync rounds).
    pub fn is_quarantined(&self, job: JobId) -> bool {
        self.quarantined.contains(&job)
    }

    /// Jobs currently quarantined, in id order.
    pub fn quarantined_jobs(&self) -> impl Iterator<Item = JobId> + '_ {
        self.quarantined.iter().copied()
    }

    /// Consecutive sync failures recorded for a job.
    pub fn failure_count(&self, job: JobId) -> u32 {
        self.failure_counts.get(&job).copied().unwrap_or(0)
    }

    /// Release a job from quarantine (the oncall fixed the root cause).
    pub fn unquarantine(&mut self, job: JobId) {
        self.quarantined.remove(&job);
        self.failure_counts.remove(&job);
        self.inflight_rounds.remove(&job);
        self.resume_round.remove(&job);
        // The job's store rows may not have changed while it sat in
        // quarantine; put it back on the sparse round's radar explicitly.
        self.attention.insert(job);
    }

    /// Run one synchronization round (production cadence: every 30 s) over
    /// every job in the union of the expected and running tables.
    pub fn run_round<W: WalStorage>(
        &mut self,
        service: &mut JobService<W>,
        env: &mut dyn SyncEnvironment,
    ) -> SyncReport {
        let mut report = SyncReport::default();
        self.round += 1;
        let mut jobs: BTreeSet<JobId> = service.store().expected_jobs().into_iter().collect();
        jobs.extend(service.store().running_jobs());
        report.jobs_examined = jobs.len();
        // A full round re-derives everything, so any sparse bookkeeping is
        // both stale and unnecessary afterwards: the changelog is caught up
        // and unfinished business re-enters attention below.
        self.changelog_cursor = service.store().changelog_len();
        self.attention.clear();

        for job in jobs {
            if self.quarantined.contains(&job) {
                continue;
            }
            // Repeatedly-failing jobs back off (1/2/4 rounds plus jitter)
            // so a flapping dependency isn't hammered every 30 s, and the
            // failure counter climbs toward quarantine more slowly than
            // the round cadence.
            if let Some(&resume) = self.resume_round.get(&job) {
                if self.round < resume {
                    report.backed_off.push(job);
                    continue;
                }
                self.resume_round.remove(&job);
            }
            if service.store().has_job(job) {
                self.sync_existing(job, service, env, &mut report);
            } else {
                // Deleted job still running: wind it down.
                self.run_actions(
                    job,
                    &build_delete_plan(job),
                    None,
                    service,
                    env,
                    &mut report,
                );
            }
        }
        self.refresh_attention(&report);
        report
    }

    /// Run one synchronization round over only the jobs that can have
    /// changed: the Job Store changelog since the last round plus the
    /// syncer's own attention set (mid-flight plans, retry backoffs, fresh
    /// warm-handoff grants, just-unquarantined jobs).
    ///
    /// Equivalence with [`Self::run_round`]: a job outside both sets has had no
    /// expected/running row change since it was last seen in sync, so the
    /// full round would take the hot no-op path for it (or `continue` past
    /// it while quarantined) — no report entry, no store write, no RNG
    /// draw. Candidates are processed in ascending job order, the same
    /// relative order the full round visits them in, so the backoff jitter
    /// stream is drawn identically in both modes. If the changelog
    /// regressed (store rebuilt underneath us), the round falls back to a
    /// full rescan — the safe direction.
    pub fn run_round_sparse<W: WalStorage>(
        &mut self,
        service: &mut JobService<W>,
        env: &mut dyn SyncEnvironment,
    ) -> SyncReport {
        let log_len = service.store().changelog_len();
        if self.changelog_cursor > log_len {
            return self.run_round(service, env);
        }
        let mut candidates = std::mem::take(&mut self.attention);
        candidates.extend(service.store().changed_since(self.changelog_cursor));
        // Entries our own commits append *during* this round are
        // deliberately left beyond the cursor: the next round re-verifies
        // those jobs on the hot no-op path, exactly as a full round would.
        self.changelog_cursor = log_len;

        let mut report = SyncReport {
            jobs_examined: candidates.len(),
            ..SyncReport::default()
        };
        self.round += 1;
        for job in candidates {
            if self.quarantined.contains(&job) {
                continue;
            }
            if let Some(&resume) = self.resume_round.get(&job) {
                if self.round < resume {
                    report.backed_off.push(job);
                    continue;
                }
                self.resume_round.remove(&job);
            }
            if service.store().has_job(job) {
                self.sync_existing(job, service, env, &mut report);
            } else if service.store().running(job).is_some() {
                // Deleted job still running: wind it down.
                self.run_actions(
                    job,
                    &build_delete_plan(job),
                    None,
                    service,
                    env,
                    &mut report,
                );
            }
            // Neither expected nor running: fully gone. The full round's
            // universe would not contain it either.
        }
        self.refresh_attention(&report);
        report
    }

    /// Re-arm the attention set from a round's outcome: jobs with
    /// unfinished business must be revisited next round even if the Job
    /// Store stays quiet. (Quarantined jobs appear in `failed` on the
    /// round that quarantines them; they re-enter attention once, get
    /// skipped next round, and drop out — matching the full round's
    /// per-round `continue`.)
    fn refresh_attention(&mut self, report: &SyncReport) {
        self.attention.extend(report.backed_off.iter().copied());
        self.attention.extend(report.in_progress.iter().copied());
        self.attention
            .extend(report.failed.iter().map(|(job, _)| *job));
    }

    fn sync_existing<W: WalStorage>(
        &mut self,
        job: JobId,
        service: &mut JobService<W>,
        env: &mut dyn SyncEnvironment,
        report: &mut SyncReport,
    ) {
        // Compare the (cached) merged expected view to running — the hot
        // no-op path for tens of thousands of in-sync jobs per round.
        match service.store().expected_merged_ref(job) {
            Ok(merged) if Some(merged) == service.store().running(job) => {
                self.inflight_rounds.remove(&job);
                return; // no difference detected
            }
            Ok(_) => {}
            Err(e) => {
                self.record_failure(job, format!("merge failed: {e}"), report);
                return;
            }
        }
        let merged_value = service.store().expected_merged(job).expect("checked above");
        let expected = match JobConfig::from_value(&merged_value) {
            Ok(c) => c,
            Err(e) => {
                // A layer wrote a malformed value (bad user update): this
                // never self-heals, so it counts as a plan failure.
                self.record_failure(job, format!("expected config invalid: {e}"), report);
                return;
            }
        };
        let running = service.running_typed(job);
        let kind = classify(running.as_ref(), &expected);
        let plan = build_plan(job, kind, running.as_ref(), &expected);
        let done = self.run_actions(job, &plan, Some(&merged_value), service, env, report);
        if done {
            match kind {
                SyncKind::Start => report.started.push(job),
                SyncKind::Simple => report.simple.push(job),
                SyncKind::Complex => report.complex_completed.push(job),
                SyncKind::NoChange => {}
            }
        }
    }

    /// Execute a plan's actions in order. Returns true if the plan ran to
    /// completion this round. A waiting barrier leaves the plan
    /// uncommitted; the diff persists, so the next round resumes it (all
    /// actions are idempotent).
    fn run_actions<W: WalStorage>(
        &mut self,
        job: JobId,
        plan: &[SyncAction],
        merged_value: Option<&turbine_config::ConfigValue>,
        service: &mut JobService<W>,
        env: &mut dyn SyncEnvironment,
        report: &mut SyncReport,
    ) -> bool {
        for action in plan {
            match action {
                SyncAction::StopAllTasks { job } => env.request_stop(*job),
                SyncAction::AwaitAllStopped { job } => {
                    if !env.all_stopped(*job) {
                        let waited = self.inflight_rounds.entry(*job).or_insert(0);
                        *waited += 1;
                        if *waited > self.config.max_inflight_rounds {
                            self.inflight_rounds.remove(job);
                            self.record_failure(
                                *job,
                                "tasks did not stop within the in-flight budget".to_string(),
                                report,
                            );
                        } else {
                            report.in_progress.push(*job);
                        }
                        return false;
                    }
                    self.inflight_rounds.remove(job);
                }
                SyncAction::RedistributeCheckpoints { job, .. }
                    if self.warm_handoffs.remove(job) =>
                {
                    // Fast path: the promoted standby shadow-consumed the
                    // input, so the redistribution is already satisfied —
                    // no state move, no pause, grant consumed.
                    report.warm_handoffs.push(*job);
                }
                SyncAction::RedistributeCheckpoints {
                    job,
                    old_task_count,
                    new_task_count,
                } => match env.redistribute_checkpoints(*job, *old_task_count, *new_task_count) {
                    Ok(Redistribute::Done) => {}
                    Ok(Redistribute::InProgress) => {
                        // Same bookkeeping as the stop barrier: progress,
                        // not failure — but bounded by the in-flight
                        // budget so a wedged move still alerts.
                        let waited = self.inflight_rounds.entry(*job).or_insert(0);
                        *waited += 1;
                        if *waited > self.config.max_inflight_rounds {
                            self.inflight_rounds.remove(job);
                            self.record_failure(
                                *job,
                                "state redistribution did not finish within the in-flight budget"
                                    .to_string(),
                                report,
                            );
                        } else {
                            report.in_progress.push(*job);
                        }
                        return false;
                    }
                    Err(e) => {
                        self.record_failure(*job, format!("redistribution failed: {e}"), report);
                        return false;
                    }
                },
                SyncAction::CommitRunning { job } => {
                    let value = merged_value.expect("commit always follows a merge").clone();
                    if let Err(e) = service.store_mut().commit_running(*job, value) {
                        self.record_failure(*job, format!("commit failed: {e}"), report);
                        return false;
                    }
                }
                SyncAction::ClearRunning { job } => {
                    if let Err(e) = service.store_mut().clear_running(*job) {
                        self.record_failure(*job, format!("clear failed: {e}"), report);
                        return false;
                    }
                    report.deleted.push(*job);
                }
            }
        }
        self.failure_counts.remove(&job);
        true
    }

    fn record_failure(&mut self, job: JobId, reason: String, report: &mut SyncReport) {
        let count = self.failure_counts.entry(job).or_insert(0);
        *count += 1;
        if *count >= self.config.max_failures {
            self.quarantined.insert(job);
            report.quarantined.push(job);
            report.alerts.push(format!(
                "{job} quarantined after {count} failed syncs: {reason}"
            ));
        } else {
            // Exponential backoff before the next attempt: skip 1, 2, then
            // 4 rounds (capped), plus 0-1 rounds of seeded jitter so
            // simultaneous failures don't retry in lockstep.
            let skip = 1u64 << (*count - 1).min(2);
            let jitter = self.rng.next_u64() % 2;
            self.resume_round
                .insert(job, self.round + skip + jitter + 1);
        }
        report.failed.push((job, reason));
    }
}

impl Default for StateSyncer {
    fn default() -> Self {
        Self::new(SyncerConfig::default())
    }
}

impl turbine_types::Snap for SyncerConfig {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.u32(self.max_failures);
        w.u32(self.max_inflight_rounds);
        w.u64(self.backoff_seed);
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        let config = SyncerConfig {
            max_failures: r.u32("SyncerConfig.max_failures")?,
            max_inflight_rounds: r.u32("SyncerConfig.max_inflight_rounds")?,
            backoff_seed: r.u64("SyncerConfig.backoff_seed")?,
        };
        if config.validate().is_err() {
            return Err(turbine_types::SnapError::Value("SyncerConfig invalid"));
        }
        Ok(config)
    }
}

impl turbine_types::Snap for StateSyncer {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.put(&self.config);
        w.put(&self.failure_counts);
        w.put(&self.inflight_rounds);
        w.put(&self.quarantined);
        w.u64(self.round);
        w.put(&self.resume_round);
        w.put(&self.rng);
        w.put(&self.warm_handoffs);
        w.put(&self.attention);
        w.u64(self.changelog_cursor);
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        Ok(StateSyncer {
            config: r.get()?,
            failure_counts: r.get()?,
            inflight_rounds: r.get()?,
            quarantined: r.get()?,
            round: r.u64("StateSyncer.round")?,
            resume_round: r.get()?,
            rng: r.get()?,
            warm_handoffs: r.get()?,
            attention: r.get()?,
            changelog_cursor: r.u64("StateSyncer.changelog_cursor")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use turbine_config::ConfigLevel;
    use turbine_jobstore::{JobStore, MemWal};

    const JOB: JobId = JobId(1);

    /// Scriptable environment: tasks stop after `stop_delay_rounds` calls
    /// to `all_stopped`; redistribution fails `redistribute_failures`
    /// times before succeeding.
    #[derive(Default)]
    struct MockEnv {
        stop_requests: Vec<JobId>,
        stop_delay_rounds: u32,
        stopped_polls: u32,
        redistribute_failures: u32,
        redistribute_slow_rounds: u32,
        redistributions: Vec<(JobId, u32, u32)>,
        stopped_jobs: HashSet<JobId>,
    }

    impl SyncEnvironment for MockEnv {
        fn request_stop(&mut self, job: JobId) {
            self.stop_requests.push(job);
        }
        fn all_stopped(&mut self, job: JobId) -> bool {
            if self.stopped_jobs.contains(&job) {
                return true;
            }
            self.stopped_polls += 1;
            if self.stopped_polls > self.stop_delay_rounds {
                self.stopped_jobs.insert(job);
                true
            } else {
                false
            }
        }
        fn redistribute_checkpoints(
            &mut self,
            job: JobId,
            old: u32,
            new: u32,
        ) -> Result<Redistribute, String> {
            if self.redistribute_failures > 0 {
                self.redistribute_failures -= 1;
                return Err("injected storage error".into());
            }
            if self.redistribute_slow_rounds > 0 {
                self.redistribute_slow_rounds -= 1;
                return Ok(Redistribute::InProgress);
            }
            self.redistributions.push((job, old, new));
            Ok(Redistribute::Done)
        }
    }

    fn service_with_job() -> JobService<MemWal> {
        let mut svc = JobService::new(JobStore::new(MemWal::new()));
        svc.provision(JOB, &JobConfig::stateless("tailer", 4, 64))
            .expect("provision");
        svc
    }

    #[test]
    fn first_round_starts_the_job() {
        let mut svc = service_with_job();
        let mut env = MockEnv::default();
        let mut syncer = StateSyncer::default();
        let report = syncer.run_round(&mut svc, &mut env);
        assert_eq!(report.started, vec![JOB]);
        assert!(svc.store().running(JOB).is_some());
        // Second round: nothing to do.
        let report = syncer.run_round(&mut svc, &mut env);
        assert_eq!(report.total_changed(), 0);
    }

    #[test]
    fn package_release_syncs_simply_without_stop() {
        let mut svc = service_with_job();
        let mut env = MockEnv::default();
        let mut syncer = StateSyncer::default();
        syncer.run_round(&mut svc, &mut env);
        svc.set_level_field(
            JOB,
            ConfigLevel::Provisioner,
            "package.version",
            2i64.into(),
        )
        .expect("release");
        let report = syncer.run_round(&mut svc, &mut env);
        assert_eq!(report.simple, vec![JOB]);
        assert!(
            env.stop_requests.is_empty(),
            "simple sync must not stop tasks"
        );
        assert_eq!(svc.running_typed(JOB).expect("running").package.version, 2);
    }

    #[test]
    fn parallelism_change_runs_the_complex_protocol() {
        let mut svc = service_with_job();
        let mut env = MockEnv {
            stop_delay_rounds: 2,
            ..Default::default()
        };
        let mut syncer = StateSyncer::default();
        syncer.run_round(&mut svc, &mut env);
        svc.set_level_field(JOB, ConfigLevel::Scaler, "task_count", 8u32.into())
            .expect("scale");

        // Rounds 1-2: stop requested, tasks still draining.
        let r1 = syncer.run_round(&mut svc, &mut env);
        assert_eq!(r1.in_progress, vec![JOB]);
        assert_eq!(env.stop_requests, vec![JOB]);
        assert_eq!(
            svc.running_typed(JOB).expect("running").task_count,
            4,
            "not committed yet"
        );
        let r2 = syncer.run_round(&mut svc, &mut env);
        assert_eq!(r2.in_progress, vec![JOB]);

        // Round 3: tasks stopped -> redistribute -> commit.
        let r3 = syncer.run_round(&mut svc, &mut env);
        assert_eq!(r3.complex_completed, vec![JOB]);
        assert_eq!(env.redistributions, vec![(JOB, 4, 8)]);
        assert_eq!(svc.running_typed(JOB).expect("running").task_count, 8);
    }

    #[test]
    fn failed_redistribution_backs_off_then_retries() {
        let mut svc = service_with_job();
        let mut env = MockEnv {
            redistribute_failures: 1,
            ..Default::default()
        };
        let mut syncer = StateSyncer::default();
        syncer.run_round(&mut svc, &mut env);
        svc.set_level_field(JOB, ConfigLevel::Scaler, "task_count", 8u32.into())
            .expect("scale");
        let r1 = syncer.run_round(&mut svc, &mut env);
        assert_eq!(r1.failed.len(), 1);
        assert_eq!(
            svc.running_typed(JOB).expect("running").task_count,
            4,
            "aborted plan must not commit"
        );
        // After one failure the job backs off 1 round plus up to 1 round
        // of jitter, then retries; the injected failure is gone so the
        // retry completes.
        let mut backed_off = 0;
        loop {
            let r = syncer.run_round(&mut svc, &mut env);
            if r.complex_completed == vec![JOB] {
                break;
            }
            assert_eq!(r.backed_off, vec![JOB]);
            backed_off += 1;
            assert!(backed_off <= 2, "first backoff must be at most 2 rounds");
        }
        assert!(backed_off >= 1, "a failed job must not retry immediately");
        assert_eq!(svc.running_typed(JOB).expect("running").task_count, 8);
    }

    #[test]
    fn repeated_failures_quarantine_with_alert() {
        let mut svc = service_with_job();
        let mut env = MockEnv {
            redistribute_failures: 99,
            ..Default::default()
        };
        let mut syncer = StateSyncer::new(SyncerConfig {
            max_failures: 3,
            ..Default::default()
        });
        syncer.run_round(&mut svc, &mut env);
        svc.set_level_field(JOB, ConfigLevel::Scaler, "task_count", 8u32.into())
            .expect("scale");
        // Three failures quarantine the job; backoff stretches them over
        // several rounds (1 + ≤2 + ≤3 skipped rounds between attempts).
        let mut failures = 0;
        for _ in 0..12 {
            let r = syncer.run_round(&mut svc, &mut env);
            failures += r.failed.len();
            if !r.quarantined.is_empty() {
                assert_eq!(r.quarantined, vec![JOB]);
                assert_eq!(r.alerts.len(), 1);
                break;
            }
        }
        assert_eq!(
            failures, 3,
            "exactly max_failures attempts before quarantine"
        );
        assert!(syncer.is_quarantined(JOB));
        // Quarantined jobs are skipped entirely.
        let r = syncer.run_round(&mut svc, &mut env);
        assert!(r.failed.is_empty());
        // The oncall releases it once fixed.
        env.redistribute_failures = 0;
        syncer.unquarantine(JOB);
        let r = syncer.run_round(&mut svc, &mut env);
        assert_eq!(r.complex_completed, vec![JOB]);
    }

    #[test]
    fn invalid_expected_config_fails_and_eventually_quarantines() {
        let mut svc = service_with_job();
        let mut env = MockEnv::default();
        let mut syncer = StateSyncer::new(SyncerConfig {
            max_failures: 2,
            ..Default::default()
        });
        syncer.run_round(&mut svc, &mut env);
        // A bad oncall update writes a string where an int belongs.
        svc.set_level_field(JOB, ConfigLevel::Oncall, "task_count", "lots".into())
            .expect("bad write");
        let r1 = syncer.run_round(&mut svc, &mut env);
        assert_eq!(r1.failed.len(), 1);
        let mut quarantined = false;
        for _ in 0..4 {
            let r = syncer.run_round(&mut svc, &mut env);
            if r.quarantined == vec![JOB] {
                quarantined = true;
                break;
            }
            assert_eq!(
                r.backed_off,
                vec![JOB],
                "failed job must back off before retrying"
            );
        }
        assert!(quarantined, "second failure must quarantine");
    }

    #[test]
    fn slow_state_move_counts_as_progress_not_failure() {
        let mut svc = service_with_job();
        let mut env = MockEnv {
            redistribute_slow_rounds: 3,
            ..Default::default()
        };
        let mut syncer = StateSyncer::new(SyncerConfig {
            max_failures: 2, // would quarantine after 2 failures
            ..Default::default()
        });
        syncer.run_round(&mut svc, &mut env);
        svc.set_level_field(JOB, ConfigLevel::Scaler, "task_count", 8u32.into())
            .expect("scale");
        // Three slow rounds: in-progress, never failed, never quarantined.
        for _ in 0..3 {
            let r = syncer.run_round(&mut svc, &mut env);
            assert_eq!(r.in_progress, vec![JOB]);
            assert!(r.failed.is_empty());
        }
        let r = syncer.run_round(&mut svc, &mut env);
        assert_eq!(r.complex_completed, vec![JOB]);
        assert!(!syncer.is_quarantined(JOB));
    }

    #[test]
    fn warm_handoff_skips_redistribution_once() {
        let mut svc = service_with_job();
        // A redistribution that would otherwise crawl for 3 rounds.
        let mut env = MockEnv {
            redistribute_slow_rounds: 3,
            ..Default::default()
        };
        let mut syncer = StateSyncer::default();
        syncer.run_round(&mut svc, &mut env);
        svc.set_level_field(JOB, ConfigLevel::Scaler, "task_count", 8u32.into())
            .expect("scale");
        syncer.grant_warm_handoff(JOB);
        assert!(syncer.has_warm_handoff(JOB));
        // One round: the grant satisfies the redistribution instantly.
        let r = syncer.run_round(&mut svc, &mut env);
        assert_eq!(r.complex_completed, vec![JOB]);
        assert_eq!(r.warm_handoffs, vec![JOB]);
        assert!(
            env.redistributions.is_empty(),
            "warm handoff must not move state"
        );
        assert!(!syncer.has_warm_handoff(JOB), "grant is one-shot");
        // The next redistribution takes the full path again.
        svc.set_level_field(JOB, ConfigLevel::Scaler, "task_count", 4u32.into())
            .expect("scale");
        let mut slow = 0;
        for _ in 0..8 {
            let r = syncer.run_round(&mut svc, &mut env);
            if r.complex_completed == vec![JOB] {
                break;
            }
            slow += 1;
        }
        assert!(slow >= 1, "second sync must pay the slow rounds");
    }

    #[test]
    fn deleted_job_is_wound_down() {
        let mut svc = service_with_job();
        let mut env = MockEnv {
            stop_delay_rounds: 1,
            ..Default::default()
        };
        let mut syncer = StateSyncer::default();
        syncer.run_round(&mut svc, &mut env);
        svc.store_mut().delete_job(JOB).expect("delete");
        let r1 = syncer.run_round(&mut svc, &mut env);
        assert!(r1.deleted.is_empty(), "still draining");
        assert_eq!(env.stop_requests, vec![JOB]);
        let r2 = syncer.run_round(&mut svc, &mut env);
        assert_eq!(r2.deleted, vec![JOB]);
        assert!(svc.store().running(JOB).is_none());
        // Fully gone: later rounds see nothing.
        let r3 = syncer.run_round(&mut svc, &mut env);
        assert_eq!(r3.total_changed(), 0);
    }

    #[test]
    fn stuck_stop_exhausts_inflight_budget_and_fails() {
        let mut svc = service_with_job();
        let mut env = MockEnv {
            stop_delay_rounds: u32::MAX,
            ..Default::default()
        };
        let mut syncer = StateSyncer::new(SyncerConfig {
            max_failures: 2,
            max_inflight_rounds: 3,
            ..Default::default()
        });
        syncer.run_round(&mut svc, &mut env);
        svc.set_level_field(JOB, ConfigLevel::Scaler, "task_count", 8u32.into())
            .expect("scale");
        let mut quarantined = false;
        for _ in 0..40 {
            let r = syncer.run_round(&mut svc, &mut env);
            if !r.quarantined.is_empty() {
                quarantined = true;
                break;
            }
        }
        assert!(quarantined, "stuck job must eventually quarantine");
    }

    #[test]
    fn backoff_spacing_grows_exponentially_with_jitter() {
        let mut svc = service_with_job();
        let mut env = MockEnv {
            redistribute_failures: 99,
            ..Default::default()
        };
        let mut syncer = StateSyncer::new(SyncerConfig {
            max_failures: 4,
            ..Default::default()
        });
        syncer.run_round(&mut svc, &mut env);
        svc.set_level_field(JOB, ConfigLevel::Scaler, "task_count", 8u32.into())
            .expect("scale");
        // Record the round index of every failed attempt until quarantine.
        let mut attempt_rounds = Vec::new();
        for round in 1..=30u64 {
            let r = syncer.run_round(&mut svc, &mut env);
            if !r.failed.is_empty() {
                attempt_rounds.push(round);
            }
            if !r.quarantined.is_empty() {
                break;
            }
        }
        assert_eq!(attempt_rounds.len(), 4);
        // Gap after failure N is skip(N) + jitter + 1 rounds, where
        // skip = 2^(N-1) capped at 4 and jitter ∈ {0, 1}.
        let gaps: Vec<u64> = attempt_rounds.windows(2).map(|w| w[1] - w[0]).collect();
        assert!((2..=3).contains(&gaps[0]), "gaps {gaps:?}");
        assert!((3..=4).contains(&gaps[1]), "gaps {gaps:?}");
        assert!((5..=6).contains(&gaps[2]), "gaps {gaps:?}");
        // Non-decreasing: later retries always wait at least as long.
        assert!(gaps[0] <= gaps[1] && gaps[1] <= gaps[2], "gaps {gaps:?}");
    }

    #[test]
    fn same_backoff_seed_reproduces_the_retry_schedule() {
        let run = || {
            let mut svc = service_with_job();
            let mut env = MockEnv {
                redistribute_failures: 99,
                ..Default::default()
            };
            let mut syncer = StateSyncer::new(SyncerConfig {
                max_failures: 4,
                ..Default::default()
            });
            syncer.run_round(&mut svc, &mut env);
            svc.set_level_field(JOB, ConfigLevel::Scaler, "task_count", 8u32.into())
                .expect("scale");
            let mut schedule = Vec::new();
            for round in 1..=30u64 {
                let r = syncer.run_round(&mut svc, &mut env);
                if !r.failed.is_empty() {
                    schedule.push(round);
                }
            }
            schedule
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn config_validation_rejects_zero_max_failures() {
        let config = SyncerConfig {
            max_failures: 0,
            ..Default::default()
        };
        assert!(config.validate().is_err());
        assert!(SyncerConfig::default().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "max_failures must be >= 1")]
    fn syncer_refuses_zero_max_failures() {
        let _ = StateSyncer::new(SyncerConfig {
            max_failures: 0,
            ..Default::default()
        });
    }

    #[test]
    fn batch_of_simple_syncs_completes_in_one_round() {
        let mut svc = JobService::new(JobStore::new(MemWal::new()));
        let n = 500;
        for i in 0..n {
            svc.provision(JobId(i), &JobConfig::stateless(&format!("job{i}"), 2, 8))
                .expect("provision");
        }
        let mut env = MockEnv::default();
        let mut syncer = StateSyncer::default();
        let r = syncer.run_round(&mut svc, &mut env);
        assert_eq!(r.started.len(), n as usize);
        // Global package release: all simple, one round.
        for i in 0..n {
            svc.set_level_field(
                JobId(i),
                ConfigLevel::Provisioner,
                "package.version",
                2i64.into(),
            )
            .expect("release");
        }
        let r = syncer.run_round(&mut svc, &mut env);
        assert_eq!(r.simple.len(), n as usize);
    }

    /// Everything observable about a round except the work counter, which
    /// legitimately differs between full and sparse rounds.
    fn assert_rounds_equal(round: usize, full: &SyncReport, sparse: &SyncReport) {
        assert_eq!(full.started, sparse.started, "round {round}: started");
        assert_eq!(full.simple, sparse.simple, "round {round}: simple");
        assert_eq!(
            full.complex_completed, sparse.complex_completed,
            "round {round}: complex_completed"
        );
        assert_eq!(
            full.in_progress, sparse.in_progress,
            "round {round}: in_progress"
        );
        assert_eq!(full.deleted, sparse.deleted, "round {round}: deleted");
        assert_eq!(full.failed, sparse.failed, "round {round}: failed");
        assert_eq!(
            full.backed_off, sparse.backed_off,
            "round {round}: backed_off"
        );
        assert_eq!(
            full.quarantined, sparse.quarantined,
            "round {round}: quarantined"
        );
        assert_eq!(full.alerts, sparse.alerts, "round {round}: alerts");
        assert_eq!(
            full.warm_handoffs, sparse.warm_handoffs,
            "round {round}: warm_handoffs"
        );
    }

    fn step(
        round: &mut usize,
        full: &mut StateSyncer,
        sparse: &mut StateSyncer,
        svc_f: &mut JobService<MemWal>,
        svc_s: &mut JobService<MemWal>,
        env_f: &mut MockEnv,
        env_s: &mut MockEnv,
    ) -> (SyncReport, SyncReport) {
        *round += 1;
        let rf = full.run_round(svc_f, env_f);
        let rs = sparse.run_round_sparse(svc_s, env_s);
        assert_rounds_equal(*round, &rf, &rs);
        (rf, rs)
    }

    /// Two identical worlds, one driven by full rounds and one by sparse
    /// rounds, stay observably identical through starts, releases, complex
    /// syncs, injected failures (exercising the backoff RNG), quarantine,
    /// un-quarantine, warm handoffs, and deletion — while the sparse side
    /// examines only the jobs that could have changed.
    #[test]
    fn sparse_rounds_are_observably_identical_to_full_rounds() {
        let mut svc_f = JobService::new(JobStore::new(MemWal::new()));
        let mut svc_s = JobService::new(JobStore::new(MemWal::new()));
        let mut env_f = MockEnv {
            redistribute_failures: 2,
            ..Default::default()
        };
        let mut env_s = MockEnv {
            redistribute_failures: 2,
            ..Default::default()
        };
        let mut full = StateSyncer::default();
        let mut sparse = StateSyncer::default();
        let mut round = 0usize;

        for i in 1..=6u64 {
            let cfg = JobConfig::stateless(&format!("job{i}"), 4, 64);
            svc_f.provision(JobId(i), &cfg).expect("provision");
            svc_s.provision(JobId(i), &cfg).expect("provision");
        }
        let (rf, _) = step(
            &mut round,
            &mut full,
            &mut sparse,
            &mut svc_f,
            &mut svc_s,
            &mut env_f,
            &mut env_s,
        );
        assert_eq!(rf.started.len(), 6);
        // The commits from round 1 leave changelog entries the sparse side
        // re-verifies on the hot path next round; after that it is quiet.
        let (_, rs) = step(
            &mut round,
            &mut full,
            &mut sparse,
            &mut svc_f,
            &mut svc_s,
            &mut env_f,
            &mut env_s,
        );
        assert_eq!(rs.jobs_examined, 6);
        let (rf, rs) = step(
            &mut round,
            &mut full,
            &mut sparse,
            &mut svc_f,
            &mut svc_s,
            &mut env_f,
            &mut env_s,
        );
        assert_eq!(
            rs.jobs_examined, 0,
            "quiescent sparse round examines nothing"
        );
        assert_eq!(rf.jobs_examined, 6, "full round always scans the universe");

        // Complex sync with two injected redistribution failures: the
        // backoff jitter stream must line up between the two modes.
        for svc in [&mut svc_f, &mut svc_s] {
            svc.set_level_field(JobId(3), ConfigLevel::Scaler, "task_count", 8u32.into())
                .expect("scale");
        }
        let mut completed = false;
        for _ in 0..10 {
            let (rf, _) = step(
                &mut round,
                &mut full,
                &mut sparse,
                &mut svc_f,
                &mut svc_s,
                &mut env_f,
                &mut env_s,
            );
            completed |= rf.complex_completed.contains(&JobId(3));
        }
        assert!(completed, "job 3 recovers after the injected failures");
        assert_eq!(env_f.redistributions, env_s.redistributions);

        // A poisoned config never self-heals: the job fails its way into
        // quarantine in both modes, then is released and repaired.
        for svc in [&mut svc_f, &mut svc_s] {
            svc.set_level_field(JobId(4), ConfigLevel::Oncall, "task_count", "lots".into())
                .expect("poison");
        }
        for _ in 0..12 {
            step(
                &mut round,
                &mut full,
                &mut sparse,
                &mut svc_f,
                &mut svc_s,
                &mut env_f,
                &mut env_s,
            );
        }
        assert!(full.is_quarantined(JobId(4)));
        assert!(sparse.is_quarantined(JobId(4)));
        for svc in [&mut svc_f, &mut svc_s] {
            svc.set_level_field(JobId(4), ConfigLevel::Oncall, "task_count", 6u32.into())
                .expect("repair");
        }
        full.unquarantine(JobId(4));
        sparse.unquarantine(JobId(4));

        // A warm-handoff grant satisfies job 5's redistribution in both
        // modes, and a deletion winds job 2 down.
        full.grant_warm_handoff(JobId(5));
        sparse.grant_warm_handoff(JobId(5));
        for svc in [&mut svc_f, &mut svc_s] {
            svc.set_level_field(JobId(5), ConfigLevel::Scaler, "task_count", 2u32.into())
                .expect("scale");
            svc.store_mut().delete_job(JobId(2)).expect("delete");
        }
        let mut deleted = false;
        let mut warm = false;
        for _ in 0..6 {
            let (rf, _) = step(
                &mut round,
                &mut full,
                &mut sparse,
                &mut svc_f,
                &mut svc_s,
                &mut env_f,
                &mut env_s,
            );
            deleted |= rf.deleted.contains(&JobId(2));
            warm |= rf.warm_handoffs.contains(&JobId(5));
        }
        assert!(deleted, "job 2 wound down");
        assert!(warm, "job 5 consumed its warm-handoff grant");

        for i in 1..=6u64 {
            assert_eq!(
                full.failure_count(JobId(i)),
                sparse.failure_count(JobId(i)),
                "job {i} failure count"
            );
            assert_eq!(
                full.is_quarantined(JobId(i)),
                sparse.is_quarantined(JobId(i)),
                "job {i} quarantine"
            );
        }
        let (_, rs) = step(
            &mut round,
            &mut full,
            &mut sparse,
            &mut svc_f,
            &mut svc_s,
            &mut env_f,
            &mut env_s,
        );
        let (_, rs2) = step(
            &mut round,
            &mut full,
            &mut sparse,
            &mut svc_f,
            &mut svc_s,
            &mut env_f,
            &mut env_s,
        );
        assert!(rs.jobs_examined <= 6);
        assert_eq!(rs2.jobs_examined, 0, "the fleet settles back to quiet");
    }

    #[test]
    fn quiescent_sparse_rounds_examine_no_jobs_at_scale() {
        let mut svc = JobService::new(JobStore::new(MemWal::new()));
        let n = 500u64;
        for i in 0..n {
            svc.provision(JobId(i), &JobConfig::stateless(&format!("job{i}"), 2, 8))
                .expect("provision");
        }
        let mut env = MockEnv::default();
        let mut syncer = StateSyncer::default();
        let r = syncer.run_round_sparse(&mut svc, &mut env);
        assert_eq!(r.started.len(), n as usize);
        // Round 2 re-verifies the round-1 commits on the hot path; round 3
        // touches nothing at all.
        let r = syncer.run_round_sparse(&mut svc, &mut env);
        assert_eq!(r.jobs_examined, n as usize);
        assert_eq!(r.total_changed(), 0);
        let r = syncer.run_round_sparse(&mut svc, &mut env);
        assert_eq!(r.jobs_examined, 0);
        assert_eq!(r.total_changed(), 0);
    }

    #[test]
    fn changelog_regression_falls_back_to_a_full_rescan() {
        let mut svc = JobService::new(JobStore::new(MemWal::new()));
        for i in 0..4u64 {
            svc.provision(JobId(i), &JobConfig::stateless(&format!("job{i}"), 2, 8))
                .expect("provision");
        }
        let mut env = MockEnv::default();
        let mut syncer = StateSyncer::default();
        assert_eq!(syncer.run_round_sparse(&mut svc, &mut env).started.len(), 4);
        // The syncer fails over to a freshly-rebuilt Job Store whose
        // (shorter) changelog no longer matches the cursor: the next round
        // must rescan everything rather than trust stale bookkeeping.
        let mut fresh = JobService::new(JobStore::new(MemWal::new()));
        fresh
            .provision(JobId(9), &JobConfig::stateless("late", 2, 8))
            .expect("provision");
        let r = syncer.run_round_sparse(&mut fresh, &mut env);
        assert_eq!(r.started, vec![JobId(9)]);
        assert_eq!(r.jobs_examined, 1);
    }
}
