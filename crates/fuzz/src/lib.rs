//! Fuzz-driven correctness campaign for the Turbine platform.
//!
//! Turbine's operational-safety claim rests on oracles built in earlier
//! work — the per-tick invariant checker, the dense-vs-event fingerprint
//! equivalence, and the deterministic trace digest. This crate turns those
//! oracles into a *search tool*: a seeded generator composes whole-platform
//! scenarios (jobs, traffic, fault plans, host churn, config corner
//! values), a runner drives each scenario in both [`turbine::DriveMode`]s
//! under `catch_unwind`, and every oracle violation is greedily shrunk to a
//! minimal scenario that serializes to a JSON repro file `turbinesim repro`
//! replays bit-for-bit.
//!
//! The pieces:
//!
//! * [`scenario`] — the [`FuzzScenario`] model, the
//!   seeded generator, and the JSON (de)serialization used by repro files;
//! * [`runner`] — drives one scenario through both modes plus an
//!   event-mode replay and evaluates the oracles;
//! * [`mod@shrink`] — greedy minimization of a failing scenario;
//! * [`campaign`] — the N-case loop used by the `fuzz_campaign` binary and
//!   the CI smoke test;
//! * [`bisect`] — when a fingerprint oracle trips, binary-search the runs'
//!   periodic auto-snapshots to name the first divergent round instead of
//!   replaying from minute zero.

pub mod bisect;
pub mod campaign;
pub mod runner;
pub mod scenario;
pub mod shrink;

pub use bisect::{bisect_recorded, DivergenceReport};
pub use campaign::{run_campaign, CampaignFailure, CampaignSummary};
pub use runner::{
    auto_snap_interval, drive_recorded, resume_to_horizon, run_case, CaseReport, Checkpoint,
    OracleFailure, Perturbation, RecordedRun, RunArtifacts,
};
pub use scenario::{generate, FuzzFault, FuzzFlap, FuzzJob, FuzzScenario, FuzzTrafficEvent};
pub use shrink::shrink;
