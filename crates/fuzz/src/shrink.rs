//! Greedy minimization of a failing scenario.
//!
//! The in-tree `proptest` shim generates but does not shrink, so the fuzz
//! harness carries its own shrinker: a fixed pass order (drop whole jobs,
//! halve the horizon, drop faults, drop flaps, drop traffic events, shrink
//! event magnitudes) where each candidate replaces the current scenario
//! only if it *still fails* some oracle. The result is the scenario that
//! gets serialized into a repro file, so smaller is strictly better — a
//! one-job, thirty-minute repro is diagnosable, a three-job two-hour one
//! is not.

use crate::runner::run_case;
use crate::scenario::FuzzScenario;

/// Upper bound on candidate evaluations per shrink. Each evaluation is
/// three full platform runs, so this caps shrink cost at roughly 600
/// simulated hours.
const MAX_ATTEMPTS: u32 = 64;

/// Shrink a failing scenario to a (locally) minimal one that still fails.
/// Returns the input unchanged if it does not fail, or if no smaller
/// variant keeps failing.
pub fn shrink(scenario: &FuzzScenario) -> FuzzScenario {
    let mut current = scenario.clone();
    if run_case(&current).passed() {
        return current;
    }
    let mut attempts = 0u32;
    // A full sweep re-runs every pass; stop when a sweep changes nothing.
    loop {
        let before = current.clone();
        drop_jobs(&mut current, &mut attempts);
        halve_horizon(&mut current, &mut attempts);
        drop_items(&mut current, &mut attempts, Pass::Faults);
        drop_items(&mut current, &mut attempts, Pass::Flaps);
        drop_items(&mut current, &mut attempts, Pass::Events);
        soften_magnitudes(&mut current, &mut attempts);
        if current == before || attempts >= MAX_ATTEMPTS {
            return current;
        }
    }
}

/// Adopt `candidate` if it is valid and still fails.
fn still_fails(candidate: &FuzzScenario, attempts: &mut u32) -> bool {
    if *attempts >= MAX_ATTEMPTS || candidate.validate().is_err() {
        return false;
    }
    *attempts += 1;
    !run_case(candidate).passed()
}

fn drop_jobs(current: &mut FuzzScenario, attempts: &mut u32) {
    let mut i = 0;
    while current.jobs.len() > 1 && i < current.jobs.len() {
        let mut candidate = current.clone();
        candidate.jobs.remove(i);
        // Re-point or drop faults that referenced jobs by index.
        candidate.faults.retain_mut(|f| {
            if f.kind != "scribe_stall" {
                return true;
            }
            match (f.target as usize).cmp(&i) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Equal => false,
                std::cmp::Ordering::Greater => {
                    f.target -= 1;
                    true
                }
            }
        });
        if still_fails(&candidate, attempts) {
            *current = candidate;
        } else {
            i += 1;
        }
    }
}

fn halve_horizon(current: &mut FuzzScenario, attempts: &mut u32) {
    while current.horizon_mins > 10 {
        let mut candidate = current.clone();
        candidate.horizon_mins = (candidate.horizon_mins / 2).max(10);
        let h = candidate.horizon_mins;
        // Clamp everything that referenced the old horizon.
        candidate.faults.retain(|f| f.from_min < h);
        candidate.flaps.retain(|f| f.fail_min < h);
        for flap in &mut candidate.flaps {
            flap.recover_min = flap.recover_min.min(h.saturating_sub(1));
        }
        candidate.flaps.retain(|f| f.recover_min > f.fail_min);
        for job in &mut candidate.jobs {
            job.events.retain(|e| e.start_min < h);
        }
        if still_fails(&candidate, attempts) {
            *current = candidate;
        } else {
            break;
        }
    }
}

enum Pass {
    Faults,
    Flaps,
    Events,
}

fn drop_items(current: &mut FuzzScenario, attempts: &mut u32, pass: Pass) {
    let mut i = 0;
    loop {
        let mut candidate = current.clone();
        let removed = match pass {
            Pass::Faults => {
                if i >= candidate.faults.len() {
                    return;
                }
                candidate.faults.remove(i);
                true
            }
            Pass::Flaps => {
                if i >= candidate.flaps.len() {
                    return;
                }
                candidate.flaps.remove(i);
                true
            }
            Pass::Events => {
                // Flattened index over every job's event list.
                let mut k = i;
                let mut hit = false;
                for job in &mut candidate.jobs {
                    if k < job.events.len() {
                        job.events.remove(k);
                        hit = true;
                        break;
                    }
                    k -= job.events.len();
                }
                hit
            }
        };
        if !removed {
            return;
        }
        if still_fails(&candidate, attempts) {
            *current = candidate;
        } else {
            i += 1;
        }
    }
}

fn soften_magnitudes(current: &mut FuzzScenario, attempts: &mut u32) {
    // Try pulling traffic-event magnitudes toward 1 (no-op multiplier);
    // a failure that survives magnitude 2 is easier to reason about than
    // one that needs a 17.3x spike.
    for j in 0..current.jobs.len() {
        for e in 0..current.jobs[j].events.len() {
            let magnitude = current.jobs[j].events[e].magnitude;
            if magnitude <= 2.0 {
                continue;
            }
            let mut candidate = current.clone();
            candidate.jobs[j].events[e].magnitude = (magnitude / 2.0).max(2.0);
            if still_fails(&candidate, attempts) {
                *current = candidate;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::generate;

    #[test]
    fn shrinking_a_passing_scenario_is_identity() {
        // Seed 0 passes (the campaign relies on this; if it regresses the
        // campaign smoke test fails first and loudly).
        let s = generate(0);
        if run_case(&s).passed() {
            assert_eq!(shrink(&s), s);
        }
    }
}
