//! Campaign driver: `fuzz_campaign [--cases N] [--seed S] [--dump DIR]`.
//!
//! Runs N seeded scenarios through the multi-oracle fuzz harness, prints
//! the summary line CI asserts on, and exits nonzero if any oracle was
//! violated. With `--dump DIR`, each shrunk failing scenario is written to
//! `DIR/fuzz-repro-<seed>.json` for replay via `turbinesim repro`.

use turbine_fuzz::run_campaign;

fn main() {
    let mut cases: u64 = 1000;
    let mut seed: u64 = 1;
    let mut dump: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cases" => {
                cases = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--cases needs an integer"));
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--dump" => {
                dump = Some(args.next().unwrap_or_else(|| usage("--dump needs a dir")));
            }
            other => usage(&format!("unknown argument '{other}'")),
        }
    }

    let summary = run_campaign(seed, cases, true);
    for failure in &summary.failures {
        println!("seed {}:", failure.seed);
        for line in &failure.failures {
            println!("  {line}");
        }
        if let Some(dir) = &dump {
            let path = format!("{dir}/fuzz-repro-{}.json", failure.seed);
            match std::fs::write(&path, &failure.repro_json) {
                Ok(()) => println!("  repro written to {path}"),
                Err(e) => println!("  failed to write {path}: {e}"),
            }
        } else {
            println!("  repro: {}", failure.repro_json);
        }
    }
    println!("{}", summary.render());
    if !summary.clean() {
        std::process::exit(1);
    }
}

fn usage(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!("usage: fuzz_campaign [--cases N] [--seed S] [--dump DIR]");
    std::process::exit(2);
}
