//! The fuzz scenario model: a flat, serializable description of one
//! whole-platform run, plus the seeded generator that composes them.
//!
//! A scenario is deliberately *feasible by construction*: the generator
//! budgets job task counts (including scaler headroom up to
//! `max_task_count`) against the cluster's container capacity and ends
//! every fault window and host flap well before the horizon, so the
//! convergence invariant — a liveness property that assumes feasibility —
//! only fires on genuine platform bugs, never on scenarios that were
//! impossible to satisfy in the first place.
//!
//! Everything is millisecond-free: times are whole minutes, the tick is
//! whole seconds, and every cadence in the platform config stays at its
//! (tick-divisible) default, which keeps the dense-vs-event equivalence
//! oracle applicable to every generated scenario.

use turbine_config::{parse, to_text, ConfigValue, ResiliencyClass};
use turbine_sim::SimRng;

/// Traffic-event kinds a scenario can attach to a job, mirroring
/// `turbine_workloads::TrafficEventKind` in serializable form.
pub const EVENT_KINDS: [&str; 4] = ["multiplier", "ramp", "consumer_disabled", "input_outage"];

/// Fault kinds a scenario can schedule, mirroring `turbine::Fault`.
pub const FAULT_KINDS: [&str; 5] = [
    "task_service_down",
    "job_store_down",
    "syncer_crash",
    "heartbeat_loss",
    "scribe_stall",
];

/// One traffic event on one job.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzTrafficEvent {
    /// One of [`EVENT_KINDS`].
    pub kind: String,
    /// Window start, minutes from scenario start.
    pub start_min: u32,
    /// Window end (exclusive), minutes from scenario start.
    pub end_min: u32,
    /// Multiplier / ramp peak (unused for outage kinds).
    pub magnitude: f64,
    /// Ramp-up/down minutes (ramp kind only).
    pub ramp_mins: u32,
}

/// One job in a scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzJob {
    /// Package/category base name (unique within the scenario).
    pub name: String,
    /// Whether the job keeps state (changes sync protocol and estimators).
    pub stateful: bool,
    /// Initial task count.
    pub tasks: u32,
    /// Worker threads per task (`k` in Eq. 2).
    pub threads: u32,
    /// Input partitions (≥ tasks).
    pub partitions: u32,
    /// Scaling ceiling.
    pub max_tasks: u32,
    /// Base input rate, bytes/sec.
    pub rate: f64,
    /// Diurnal swing fraction (0 = flat).
    pub diurnal: f64,
    /// Traffic-noise seed.
    pub traffic_seed: u64,
    /// True per-thread processing capacity, bytes/sec (the ground truth
    /// the Pattern Analyzer's `P` estimate converges toward).
    pub per_thread_rate: f64,
    /// Mean message size, bytes.
    pub message_bytes: f64,
    /// State key cardinality (stateful jobs only).
    pub key_cardinality: f64,
    /// Resiliency class name (`best_effort`/`standard`/`critical`);
    /// critical jobs get warm standbys and the fast fail-over path.
    pub resiliency: String,
    /// Traffic events in this job's input.
    pub events: Vec<FuzzTrafficEvent>,
}

/// One scheduled fault window.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzFault {
    /// One of [`FAULT_KINDS`].
    pub kind: String,
    /// Host index (heartbeat_loss) or job index (scribe_stall); unused
    /// otherwise.
    pub target: u32,
    /// Window start, minutes from scenario start.
    pub from_min: u32,
    /// Window length, minutes.
    pub len_min: u32,
}

/// One host fail/recover cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzFlap {
    /// Host index into the scenario's host list.
    pub host: u32,
    /// Failure time, minutes from scenario start.
    pub fail_min: u32,
    /// Recovery time, minutes from scenario start.
    pub recover_min: u32,
}

/// A complete generated scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzScenario {
    /// The seed that generated this scenario (kept for provenance; the
    /// scenario replays from its fields, not from the seed).
    pub seed: u64,
    /// Simulated run length, minutes.
    pub horizon_mins: u32,
    /// Data-plane tick, seconds. Always divides every control cadence.
    pub tick_secs: u32,
    /// Number of hosts.
    pub hosts: u32,
    /// Host CPU capacity, cores.
    pub host_cpu: f64,
    /// Host memory capacity, MB.
    pub host_memory_mb: f64,
    /// Placement headroom fraction (corner values approach 1).
    pub headroom: f64,
    /// Placement utilization band half-width.
    pub band: f64,
    /// Whether the Auto Scaler runs.
    pub scaler_enabled: bool,
    /// The jobs.
    pub jobs: Vec<FuzzJob>,
    /// Scheduled fault windows (overlap freely).
    pub faults: Vec<FuzzFault>,
    /// Host flaps (disjoint per host; all recover before the horizon).
    pub flaps: Vec<FuzzFlap>,
}

/// Generate the scenario for one campaign case. The same `seed` always
/// yields the same scenario, bit for bit.
pub fn generate(seed: u64) -> FuzzScenario {
    let mut rng = SimRng::seeded(seed ^ 0x5eed_f0cc_a51a_b1ed);

    let horizon_mins = rng.uniform_usize(30, 120) as u32;
    let tick_secs = [1u32, 2, 5, 10][rng.uniform_usize(0, 4)];
    let hosts = rng.uniform_usize(2, 6) as u32;
    // Host shape: mostly commodity, sometimes tiny (placement corner).
    let host_cpu = if rng.chance(0.15) {
        rng.uniform(1.0, 4.0)
    } else {
        [8.0, 16.0, 56.0][rng.uniform_usize(0, 3)]
    };
    let host_memory_mb = host_cpu * 4096.0;
    // Headroom corners: occasionally 0 or near 1 (but below it).
    let headroom = if rng.chance(0.1) {
        0.0
    } else if rng.chance(0.1) {
        0.95
    } else {
        rng.uniform(0.1, 0.3)
    };
    let band = if rng.chance(0.1) {
        0.01
    } else {
        rng.uniform(0.05, 0.3)
    };
    let scaler_enabled = rng.chance(0.8);

    // Task budget: configured tasks plus scaler growth must fit the
    // containers (0.8 host fraction, 1 cpu/task) with slack, so that
    // convergence is always achievable once faults clear.
    let budget = (hosts as f64 * host_cpu * 0.8 * 0.5).floor().max(1.0) as u32;
    let n_jobs = rng.uniform_usize(1, 4) as u32;
    let mut remaining = budget;
    let mut jobs = Vec::new();
    for j in 0..n_jobs {
        if remaining == 0 {
            break;
        }
        let max_tasks = rng.uniform_usize(1, (remaining as usize + 1).min(9)) as u32;
        remaining -= max_tasks;
        let tasks = rng.uniform_usize(1, max_tasks as usize + 1) as u32;
        let partitions = rng.uniform_usize(max_tasks as usize, 33) as u32;
        let stateful = rng.chance(0.3);
        // Rate regimes: near-zero, moderate, hot.
        let rate = match rng.uniform_usize(0, 3) {
            0 => rng.uniform(10.0, 1.0e4),
            1 => rng.uniform(1.0e5, 2.0e6),
            _ => rng.uniform(2.0e6, 8.0e6),
        };
        let mut events = Vec::new();
        for _ in 0..rng.uniform_usize(0, 3) {
            let kind = EVENT_KINDS[rng.uniform_usize(0, EVENT_KINDS.len())].to_string();
            let start_min = rng.uniform_usize(5, horizon_mins as usize * 3 / 4) as u32;
            let len = rng.uniform_usize(1, (horizon_mins as usize / 4).max(2)) as u32;
            events.push(FuzzTrafficEvent {
                kind,
                start_min,
                end_min: (start_min + len).min(horizon_mins),
                magnitude: rng.uniform(1.2, 20.0),
                ramp_mins: rng.uniform_usize(1, (len as usize).max(2)) as u32,
            });
        }
        jobs.push(FuzzJob {
            name: format!("fuzz{j}"),
            stateful,
            tasks,
            threads: rng.uniform_usize(1, 5) as u32,
            partitions,
            max_tasks,
            rate,
            diurnal: if rng.chance(0.5) {
                rng.uniform(0.05, 0.4)
            } else {
                0.0
            },
            traffic_seed: rng.next_u64() % 1000,
            per_thread_rate: rng.uniform(2.0e5, 2.0e6),
            message_bytes: rng.uniform(64.0, 1024.0),
            key_cardinality: if stateful {
                rng.uniform(1.0e4, 5.0e6)
            } else {
                0.0
            },
            // Critical often enough that the standby machinery gets a real
            // workout across a campaign.
            resiliency: if rng.chance(0.35) {
                "critical"
            } else if rng.chance(0.25) {
                "best_effort"
            } else {
                "standard"
            }
            .to_string(),
            events,
        });
    }

    // Fault windows: every kind, overlap freely, all end by 80 % of the
    // horizon so the convergence clock gets a fair run.
    let mut faults = Vec::new();
    for _ in 0..rng.uniform_usize(0, 5) {
        let kind = FAULT_KINDS[rng.uniform_usize(0, FAULT_KINDS.len())].to_string();
        let from_min = rng.uniform_usize(2, (horizon_mins as usize * 7 / 10).max(3)) as u32;
        let len_min = rng.uniform_usize(1, (horizon_mins as usize / 8).max(2)) as u32;
        let target = match kind.as_str() {
            "heartbeat_loss" => rng.uniform_usize(0, hosts as usize) as u32,
            "scribe_stall" => rng.uniform_usize(0, jobs.len().max(1)) as u32,
            _ => 0,
        };
        faults.push(FuzzFault {
            kind,
            target,
            from_min,
            len_min: len_min.min(horizon_mins * 8 / 10 - from_min.min(horizon_mins * 8 / 10)),
        });
    }

    // A critical job makes a sustained heartbeat loss — the trigger for a
    // warm-standby promotion — much more likely, so campaigns hammer the
    // fast fail-over path instead of finding it by accident.
    let has_critical = jobs.iter().any(|j| j.resiliency == "critical");
    if has_critical && rng.chance(0.6) {
        let from_min = rng.uniform_usize(2, (horizon_mins as usize * 6 / 10).max(3)) as u32;
        faults.push(FuzzFault {
            kind: "heartbeat_loss".to_string(),
            target: rng.uniform_usize(0, hosts as usize) as u32,
            from_min,
            len_min: rng.uniform_usize(2, (horizon_mins as usize / 8).max(3)) as u32,
        });
    }

    // Host flaps: at most one per host, never host 0 (so the tier always
    // keeps capacity), all recovered by 85 % of the horizon. Critical jobs
    // raise the flap rate: a concurrently-flapping host is how a standby
    // replica dies mid-promotion, the corner the tiers must survive.
    let flap_chance = if has_critical { 0.5 } else { 0.25 };
    let mut flaps = Vec::new();
    if hosts > 1 {
        for h in 1..hosts {
            if !rng.chance(flap_chance) {
                continue;
            }
            let fail_min = rng.uniform_usize(5, (horizon_mins as usize * 7 / 10).max(6)) as u32;
            let len = rng.uniform_usize(1, (horizon_mins as usize / 8).max(2)) as u32;
            flaps.push(FuzzFlap {
                host: h,
                fail_min,
                recover_min: (fail_min + len).min(horizon_mins * 85 / 100),
            });
        }
    }
    // Drop degenerate flaps the clamps above may have produced.
    flaps.retain(|f| f.recover_min > f.fail_min);

    FuzzScenario {
        seed,
        horizon_mins,
        tick_secs,
        hosts,
        host_cpu,
        host_memory_mb,
        headroom,
        band,
        scaler_enabled,
        jobs,
        faults,
        flaps,
    }
}

impl FuzzScenario {
    /// Serialize to the compact-JSON repro format (deterministic: equal
    /// scenarios produce equal strings).
    pub fn to_json(&self) -> String {
        to_text(&self.to_value())
    }

    fn to_value(&self) -> ConfigValue {
        let mut root = ConfigValue::empty_map();
        root.insert("seed", ConfigValue::Int(self.seed as i64));
        root.insert("horizon_mins", ConfigValue::Int(self.horizon_mins as i64));
        root.insert("tick_secs", ConfigValue::Int(self.tick_secs as i64));
        root.insert("hosts", ConfigValue::Int(self.hosts as i64));
        root.insert("host_cpu", ConfigValue::Float(self.host_cpu));
        root.insert("host_memory_mb", ConfigValue::Float(self.host_memory_mb));
        root.insert("headroom", ConfigValue::Float(self.headroom));
        root.insert("band", ConfigValue::Float(self.band));
        root.insert("scaler_enabled", ConfigValue::Bool(self.scaler_enabled));
        let jobs = self
            .jobs
            .iter()
            .map(|j| {
                let mut m = ConfigValue::empty_map();
                m.insert("name", ConfigValue::Str(j.name.clone()));
                m.insert("stateful", ConfigValue::Bool(j.stateful));
                m.insert("tasks", ConfigValue::Int(j.tasks as i64));
                m.insert("threads", ConfigValue::Int(j.threads as i64));
                m.insert("partitions", ConfigValue::Int(j.partitions as i64));
                m.insert("max_tasks", ConfigValue::Int(j.max_tasks as i64));
                m.insert("rate", ConfigValue::Float(j.rate));
                m.insert("diurnal", ConfigValue::Float(j.diurnal));
                m.insert("traffic_seed", ConfigValue::Int(j.traffic_seed as i64));
                m.insert("per_thread_rate", ConfigValue::Float(j.per_thread_rate));
                m.insert("message_bytes", ConfigValue::Float(j.message_bytes));
                m.insert("key_cardinality", ConfigValue::Float(j.key_cardinality));
                m.insert("resiliency", ConfigValue::Str(j.resiliency.clone()));
                let events = j
                    .events
                    .iter()
                    .map(|e| {
                        let mut em = ConfigValue::empty_map();
                        em.insert("kind", ConfigValue::Str(e.kind.clone()));
                        em.insert("start_min", ConfigValue::Int(e.start_min as i64));
                        em.insert("end_min", ConfigValue::Int(e.end_min as i64));
                        em.insert("magnitude", ConfigValue::Float(e.magnitude));
                        em.insert("ramp_mins", ConfigValue::Int(e.ramp_mins as i64));
                        em
                    })
                    .collect();
                m.insert("events", ConfigValue::Array(events));
                m
            })
            .collect();
        root.insert("jobs", ConfigValue::Array(jobs));
        let faults = self
            .faults
            .iter()
            .map(|f| {
                let mut m = ConfigValue::empty_map();
                m.insert("kind", ConfigValue::Str(f.kind.clone()));
                m.insert("target", ConfigValue::Int(f.target as i64));
                m.insert("from_min", ConfigValue::Int(f.from_min as i64));
                m.insert("len_min", ConfigValue::Int(f.len_min as i64));
                m
            })
            .collect();
        root.insert("faults", ConfigValue::Array(faults));
        let flaps = self
            .flaps
            .iter()
            .map(|f| {
                let mut m = ConfigValue::empty_map();
                m.insert("host", ConfigValue::Int(f.host as i64));
                m.insert("fail_min", ConfigValue::Int(f.fail_min as i64));
                m.insert("recover_min", ConfigValue::Int(f.recover_min as i64));
                m
            })
            .collect();
        root.insert("flaps", ConfigValue::Array(flaps));
        root
    }

    /// Parse a repro file produced by [`FuzzScenario::to_json`].
    pub fn from_json(input: &str) -> Result<FuzzScenario, String> {
        let value = parse(input).map_err(|e| e.to_string())?;
        Self::from_value(&value)
    }

    fn from_value(value: &ConfigValue) -> Result<FuzzScenario, String> {
        reject_unknown_keys(value, "scenario", &ROOT_KEYS)?;
        let int = |key: &str| -> Result<i64, String> {
            value
                .get(key)
                .and_then(ConfigValue::as_int)
                .ok_or_else(|| format!("missing integer field '{key}'"))
        };
        let float = |key: &str| -> Result<f64, String> {
            value
                .get(key)
                .and_then(ConfigValue::as_float)
                .ok_or_else(|| format!("missing float field '{key}'"))
        };
        let jobs = value
            .get("jobs")
            .and_then(ConfigValue::as_array)
            .ok_or("missing 'jobs' array")?
            .iter()
            .map(parse_job)
            .collect::<Result<Vec<_>, _>>()?;
        let faults = value
            .get("faults")
            .and_then(ConfigValue::as_array)
            .unwrap_or(&[])
            .iter()
            .map(parse_fault)
            .collect::<Result<Vec<_>, _>>()?;
        let flaps = value
            .get("flaps")
            .and_then(ConfigValue::as_array)
            .unwrap_or(&[])
            .iter()
            .map(parse_flap)
            .collect::<Result<Vec<_>, _>>()?;
        let scenario = FuzzScenario {
            seed: int("seed")? as u64,
            horizon_mins: int("horizon_mins")? as u32,
            tick_secs: int("tick_secs")? as u32,
            hosts: int("hosts")? as u32,
            host_cpu: float("host_cpu")?,
            host_memory_mb: float("host_memory_mb")?,
            headroom: float("headroom")?,
            band: float("band")?,
            scaler_enabled: value
                .get("scaler_enabled")
                .and_then(ConfigValue::as_bool)
                .unwrap_or(true),
            jobs,
            faults,
            flaps,
        };
        scenario.validate()?;
        Ok(scenario)
    }

    /// Sanity checks on a parsed scenario (a repro file is user input).
    pub fn validate(&self) -> Result<(), String> {
        if self.horizon_mins == 0 {
            return Err("horizon_mins must be positive".into());
        }
        if self.tick_secs == 0 || 60 % self.tick_secs != 0 {
            return Err("tick_secs must divide 60".into());
        }
        if self.hosts == 0 {
            return Err("at least one host required".into());
        }
        if !(self.host_cpu.is_finite() && self.host_cpu > 0.0) {
            return Err("host_cpu must be positive and finite".into());
        }
        if !(0.0..1.0).contains(&self.headroom) {
            return Err("headroom must be in [0, 1)".into());
        }
        if !(self.band.is_finite() && self.band > 0.0) {
            return Err("band must be positive".into());
        }
        if self.jobs.is_empty() {
            return Err("at least one job required".into());
        }
        for job in &self.jobs {
            if job.tasks == 0 || job.tasks > job.max_tasks || job.max_tasks > job.partitions {
                return Err(format!(
                    "job '{}': need 1 <= tasks <= max_tasks <= partitions",
                    job.name
                ));
            }
            if job.threads == 0 {
                return Err(format!("job '{}': threads must be positive", job.name));
            }
            if !(job.rate.is_finite() && job.rate >= 0.0) {
                return Err(format!("job '{}': rate must be finite and >= 0", job.name));
            }
            if !(job.per_thread_rate.is_finite() && job.per_thread_rate > 0.0) {
                return Err(format!(
                    "job '{}': per_thread_rate must be positive",
                    job.name
                ));
            }
            if ResiliencyClass::from_str(&job.resiliency).is_none() {
                return Err(format!(
                    "job '{}': unknown resiliency class '{}'",
                    job.name, job.resiliency
                ));
            }
            for event in &job.events {
                if !EVENT_KINDS.contains(&event.kind.as_str()) {
                    return Err(format!("unknown traffic event kind '{}'", event.kind));
                }
            }
        }
        for fault in &self.faults {
            if !FAULT_KINDS.contains(&fault.kind.as_str()) {
                return Err(format!("unknown fault kind '{}'", fault.kind));
            }
            if fault.kind == "heartbeat_loss" && fault.target >= self.hosts {
                return Err("heartbeat_loss target host out of range".into());
            }
            if fault.kind == "scribe_stall" && fault.target as usize >= self.jobs.len() {
                return Err("scribe_stall target job out of range".into());
            }
        }
        for flap in &self.flaps {
            if flap.host >= self.hosts {
                return Err("flap host out of range".into());
            }
            if flap.recover_min <= flap.fail_min {
                return Err("flap must recover after it fails".into());
            }
        }
        Ok(())
    }
}

/// Repro files are hand-edited during shrinking and triage; a silently
/// ignored misspelled key (`"len_mins"` for `"len_min"`) would change what
/// the repro reproduces. Every object in the file rejects unknown keys.
const ROOT_KEYS: [&str; 12] = [
    "seed",
    "horizon_mins",
    "tick_secs",
    "hosts",
    "host_cpu",
    "host_memory_mb",
    "headroom",
    "band",
    "scaler_enabled",
    "jobs",
    "faults",
    "flaps",
];
const JOB_KEYS: [&str; 14] = [
    "name",
    "stateful",
    "tasks",
    "threads",
    "partitions",
    "max_tasks",
    "rate",
    "diurnal",
    "traffic_seed",
    "per_thread_rate",
    "message_bytes",
    "key_cardinality",
    "resiliency",
    "events",
];
const TRAFFIC_EVENT_KEYS: [&str; 5] = ["kind", "start_min", "end_min", "magnitude", "ramp_mins"];
const FAULT_KEYS: [&str; 4] = ["kind", "target", "from_min", "len_min"];
const FLAP_KEYS: [&str; 3] = ["host", "fail_min", "recover_min"];

fn reject_unknown_keys(value: &ConfigValue, what: &str, allowed: &[&str]) -> Result<(), String> {
    let Some(map) = value.as_map() else {
        return Err(format!("{what} must be an object"));
    };
    for key in map.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(format!(
                "{what}: unknown key '{key}' (one of: {})",
                allowed.join(", ")
            ));
        }
    }
    Ok(())
}

fn parse_job(value: &ConfigValue) -> Result<FuzzJob, String> {
    reject_unknown_keys(value, "job", &JOB_KEYS)?;
    let int = |key: &str| -> Result<i64, String> {
        value
            .get(key)
            .and_then(ConfigValue::as_int)
            .ok_or_else(|| format!("job missing integer field '{key}'"))
    };
    let float = |key: &str| -> Result<f64, String> {
        value
            .get(key)
            .and_then(ConfigValue::as_float)
            .ok_or_else(|| format!("job missing float field '{key}'"))
    };
    let events = value
        .get("events")
        .and_then(ConfigValue::as_array)
        .unwrap_or(&[])
        .iter()
        .map(parse_event)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(FuzzJob {
        name: value
            .get("name")
            .and_then(ConfigValue::as_str)
            .ok_or("job missing 'name'")?
            .to_string(),
        stateful: value
            .get("stateful")
            .and_then(ConfigValue::as_bool)
            .unwrap_or(false),
        tasks: int("tasks")? as u32,
        threads: int("threads")? as u32,
        partitions: int("partitions")? as u32,
        max_tasks: int("max_tasks")? as u32,
        rate: float("rate")?,
        diurnal: float("diurnal").unwrap_or(0.0),
        traffic_seed: int("traffic_seed").unwrap_or(0) as u64,
        per_thread_rate: float("per_thread_rate")?,
        message_bytes: float("message_bytes").unwrap_or(256.0),
        key_cardinality: float("key_cardinality").unwrap_or(0.0),
        resiliency: value
            .get("resiliency")
            .and_then(ConfigValue::as_str)
            .unwrap_or("standard")
            .to_string(),
        events,
    })
}

fn parse_event(value: &ConfigValue) -> Result<FuzzTrafficEvent, String> {
    reject_unknown_keys(value, "traffic event", &TRAFFIC_EVENT_KEYS)?;
    let int = |key: &str| -> Result<i64, String> {
        value
            .get(key)
            .and_then(ConfigValue::as_int)
            .ok_or_else(|| format!("event missing integer field '{key}'"))
    };
    Ok(FuzzTrafficEvent {
        kind: value
            .get("kind")
            .and_then(ConfigValue::as_str)
            .ok_or("event missing 'kind'")?
            .to_string(),
        start_min: int("start_min")? as u32,
        end_min: int("end_min")? as u32,
        magnitude: value
            .get("magnitude")
            .and_then(ConfigValue::as_float)
            .unwrap_or(1.0),
        ramp_mins: int("ramp_mins").unwrap_or(1) as u32,
    })
}

fn parse_fault(value: &ConfigValue) -> Result<FuzzFault, String> {
    reject_unknown_keys(value, "fault", &FAULT_KEYS)?;
    let int = |key: &str| -> Result<i64, String> {
        value
            .get(key)
            .and_then(ConfigValue::as_int)
            .ok_or_else(|| format!("fault missing integer field '{key}'"))
    };
    Ok(FuzzFault {
        kind: value
            .get("kind")
            .and_then(ConfigValue::as_str)
            .ok_or("fault missing 'kind'")?
            .to_string(),
        target: int("target").unwrap_or(0) as u32,
        from_min: int("from_min")? as u32,
        len_min: int("len_min")? as u32,
    })
}

fn parse_flap(value: &ConfigValue) -> Result<FuzzFlap, String> {
    reject_unknown_keys(value, "flap", &FLAP_KEYS)?;
    let int = |key: &str| -> Result<i64, String> {
        value
            .get(key)
            .and_then(ConfigValue::as_int)
            .ok_or_else(|| format!("flap missing integer field '{key}'"))
    };
    Ok(FuzzFlap {
        host: int("host")? as u32,
        fail_min: int("fail_min")? as u32,
        recover_min: int("recover_min")? as u32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..20 {
            assert_eq!(generate(seed), generate(seed));
        }
    }

    #[test]
    fn misspelled_repro_keys_are_rejected_loudly() {
        let canonical = generate(7).to_json();
        for (good, bad) in [
            ("\"horizon_mins\"", "\"horizon_min\""),
            ("\"len_min\"", "\"len_mins\""),
            ("\"recover_min\"", "\"recovermin\""),
            ("\"per_thread_rate\"", "\"per_thread_rates\""),
        ] {
            if !canonical.contains(good) {
                continue;
            }
            let broken = canonical.replacen(good, bad, 1);
            let err =
                FuzzScenario::from_json(&broken).expect_err("misspelled repro key must not parse");
            assert!(
                err.contains("unknown key"),
                "want unknown-key error for {bad}, got: {err}"
            );
        }
        // The canonical form itself still parses.
        FuzzScenario::from_json(&canonical).expect("canonical repro parses");
    }

    #[test]
    fn generated_scenarios_are_valid_and_roundtrip() {
        for seed in 0..100 {
            let scenario = generate(seed);
            scenario.validate().unwrap_or_else(|e| {
                panic!("seed {seed} generated an invalid scenario: {e}");
            });
            let json = scenario.to_json();
            let back = FuzzScenario::from_json(&json)
                .unwrap_or_else(|e| panic!("seed {seed} repro does not parse: {e}"));
            assert_eq!(back, scenario, "seed {seed} did not roundtrip");
            assert_eq!(back.to_json(), json, "seed {seed} json not canonical");
        }
    }

    #[test]
    fn corner_values_do_appear() {
        let mut tiny_hosts = false;
        let mut high_headroom = false;
        let mut near_zero_rate = false;
        let mut stateful = false;
        let mut critical = false;
        let mut best_effort = false;
        let mut critical_with_heartbeat_loss = false;
        for seed in 0..300 {
            let s = generate(seed);
            tiny_hosts |= s.host_cpu < 4.0;
            high_headroom |= s.headroom >= 0.9;
            near_zero_rate |= s.jobs.iter().any(|j| j.rate < 1.0e4);
            stateful |= s.jobs.iter().any(|j| j.stateful);
            let has_critical = s.jobs.iter().any(|j| j.resiliency == "critical");
            critical |= has_critical;
            best_effort |= s.jobs.iter().any(|j| j.resiliency == "best_effort");
            critical_with_heartbeat_loss |=
                has_critical && s.faults.iter().any(|f| f.kind == "heartbeat_loss");
        }
        assert!(tiny_hosts, "generator never produced tiny hosts");
        assert!(high_headroom, "generator never produced high headroom");
        assert!(near_zero_rate, "generator never produced near-zero rates");
        assert!(stateful, "generator never produced stateful jobs");
        assert!(critical, "generator never produced critical jobs");
        assert!(best_effort, "generator never produced best-effort jobs");
        assert!(
            critical_with_heartbeat_loss,
            "generator never paired a critical job with a heartbeat loss"
        );
    }

    #[test]
    fn invalid_repro_files_are_rejected() {
        assert!(FuzzScenario::from_json("not json").is_err());
        assert!(FuzzScenario::from_json("{}").is_err());
        let mut s = generate(1);
        s.tick_secs = 7; // does not divide 60
        assert!(FuzzScenario::from_json(&s.to_json()).is_err());
        let mut s = generate(1);
        s.jobs[0].resiliency = "gold_plated".to_string();
        assert!(FuzzScenario::from_json(&s.to_json()).is_err());
    }

    #[test]
    fn resiliency_defaults_to_standard_when_absent() {
        let mut v = parse(&generate(2).to_json()).expect("parses");
        let root = v.as_map_mut().expect("map");
        let Some(ConfigValue::Array(jobs)) = root.get_mut("jobs") else {
            panic!("jobs not an array");
        };
        for job in jobs {
            job.as_map_mut().expect("map").remove("resiliency");
        }
        let s = FuzzScenario::from_json(&to_text(&v)).expect("parses without resiliency");
        assert!(s.jobs.iter().all(|j| j.resiliency == "standard"));
    }
}
