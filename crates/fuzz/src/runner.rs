//! Drive one scenario through the platform and evaluate the oracles.
//!
//! Each case runs the same scenario three times — dense-tick, event-driven,
//! and an event-driven replay — inside `catch_unwind`, so a panic anywhere
//! in the platform becomes an oracle failure instead of killing the
//! campaign. Four oracles judge the runs:
//!
//! 1. **Invariant checker** — the per-tick safety/convergence invariants
//!    must record zero violations in every mode.
//! 2. **Mode equivalence** — dense-tick and event-driven fingerprints must
//!    match bit-for-bit (the PR 3 equivalence contract).
//! 3. **Replay determinism** — re-running event-driven must reproduce both
//!    the fingerprint and the full-history trace digest exactly.
//! 4. **Durable readability** — at the end of the run every job's
//!    checkpoints must be readable against the Scribe tails
//!    (`durable_backlog` returns `Ok`).

use crate::bisect::{bisect_recorded, DivergenceReport};
use crate::scenario::{FuzzScenario, FuzzTrafficEvent};
use std::panic::{catch_unwind, AssertUnwindSafe};
use turbine::{
    DriveMode, Fault, FaultPlan, InvariantConfig, PlatformFingerprint, Turbine, TurbineConfig,
};
use turbine_config::{JobConfig, ResiliencyClass};
use turbine_snap::Snapshot;
use turbine_types::{Duration, HostId, JobId, Resources, SimTime};
use turbine_workloads::{TrafficEvent, TrafficEventKind, TrafficModel};

/// What one mode's run produced.
#[derive(Debug, Clone)]
pub struct RunArtifacts {
    /// Bit-exact platform fingerprint at the horizon.
    pub fingerprint: PlatformFingerprint,
    /// Full-history trace digest.
    pub trace_digest: u64,
    /// Rendered invariant violations (empty on a clean run).
    pub invariant_violations: Vec<String>,
    /// Jobs whose checkpoints were unreadable at the end.
    pub durable_errors: Vec<String>,
}

/// One oracle failure. `Display` gives the one-line campaign log form.
#[derive(Debug, Clone)]
pub enum OracleFailure {
    /// The platform panicked while driving a mode.
    Panic {
        /// Which run panicked (`dense`, `event`, `replay`).
        mode: &'static str,
        /// The panic payload, stringified.
        message: String,
    },
    /// The invariant checker recorded violations.
    Invariant {
        /// Which run.
        mode: &'static str,
        /// Rendered violations (capped upstream).
        violations: Vec<String>,
    },
    /// Dense-tick and event-driven fingerprints differ.
    ModeDivergence,
    /// An event-driven replay did not reproduce the first event run.
    ReplayDivergence,
    /// `durable_backlog` errored for some job at the end of a run.
    DurableBacklog {
        /// Which run.
        mode: &'static str,
        /// Per-job error strings.
        errors: Vec<String>,
    },
}

impl std::fmt::Display for OracleFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleFailure::Panic { mode, message } => write!(f, "panic[{mode}]: {message}"),
            OracleFailure::Invariant { mode, violations } => {
                write!(f, "invariant[{mode}]: {}", violations.join("; "))
            }
            OracleFailure::ModeDivergence => write!(f, "dense/event fingerprint divergence"),
            OracleFailure::ReplayDivergence => write!(f, "event replay divergence"),
            OracleFailure::DurableBacklog { mode, errors } => {
                write!(f, "durable_backlog[{mode}]: {}", errors.join("; "))
            }
        }
    }
}

/// The oracle verdicts for one case.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// Every oracle failure observed (empty = case passed).
    pub failures: Vec<OracleFailure>,
    /// The event-mode artifacts, when that run completed without
    /// panicking (repro verification wants the reference digests).
    pub event_artifacts: Option<RunArtifacts>,
    /// Bisection results for each fingerprint-divergence failure: the
    /// first divergent round, localized by binary-searching the runs'
    /// auto-snapshots instead of replaying from minute zero.
    pub divergences: Vec<DivergenceReport>,
}

impl CaseReport {
    /// True when every oracle held.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Build the platform a scenario describes. Public so regression tests can
/// poke at intermediate state; campaign code goes through [`run_case`].
pub fn build_platform(s: &FuzzScenario) -> Result<(Turbine, Vec<HostId>), String> {
    let mut config = TurbineConfig::default();
    config.tick = Duration::from_secs(s.tick_secs as u64);
    config.scaler_enabled = s.scaler_enabled;
    config.trace_enabled = true;
    config.shardmgr.placement.headroom = s.headroom;
    config.shardmgr.placement.band = s.band;
    let mut turbine = Turbine::try_new(config)?;
    let hosts = turbine.add_hosts(
        s.hosts as usize,
        Resources::new(s.host_cpu, s.host_memory_mb, 1.0e6, 1000.0),
    );
    for (i, job) in s.jobs.iter().enumerate() {
        let id = JobId(i as u64 + 1);
        let mut jc = JobConfig::stateless(&job.name, job.tasks, job.partitions);
        jc.threads_per_task = job.threads;
        jc.max_task_count = job.max_tasks;
        jc.resiliency = ResiliencyClass::from_str(&job.resiliency)
            .ok_or_else(|| format!("job '{}': bad resiliency '{}'", job.name, job.resiliency))?;
        let mut traffic = if job.diurnal > 0.0 {
            TrafficModel::diurnal(job.rate, job.diurnal, job.traffic_seed)
        } else {
            TrafficModel::flat(job.rate)
        };
        for event in &job.events {
            traffic = traffic.with_event(to_traffic_event(event));
        }
        if job.stateful {
            turbine.provision_stateful_job(
                id,
                jc,
                traffic,
                job.per_thread_rate,
                job.message_bytes,
                job.key_cardinality,
            )?;
        } else {
            turbine.provision_job(id, jc, traffic, job.per_thread_rate, job.message_bytes)?;
        }
    }
    Ok((turbine, hosts))
}

fn to_traffic_event(event: &FuzzTrafficEvent) -> TrafficEvent {
    let kind = match event.kind.as_str() {
        "multiplier" => TrafficEventKind::Multiplier(event.magnitude),
        "ramp" => TrafficEventKind::RampedMultiplier {
            peak: event.magnitude,
            ramp_mins: event.ramp_mins as u64,
        },
        "consumer_disabled" => TrafficEventKind::ConsumerDisabled,
        "input_outage" => TrafficEventKind::InputOutage,
        other => unreachable!("validated event kind, got '{other}'"),
    };
    TrafficEvent {
        start: at_min(event.start_min),
        end: at_min(event.end_min),
        kind,
    }
}

fn at_min(min: u32) -> SimTime {
    SimTime::ZERO + Duration::from_mins(min as u64)
}

/// Schedule the scenario's fault windows onto a freshly built platform.
fn schedule_faults(turbine: &mut Turbine, s: &FuzzScenario, hosts: &[HostId]) {
    for fault in &s.faults {
        let kind = match fault.kind.as_str() {
            "task_service_down" => Fault::TaskServiceDown,
            "job_store_down" => Fault::JobStoreDown,
            "syncer_crash" => Fault::SyncerCrash,
            "heartbeat_loss" => {
                let host = hosts[fault.target as usize % hosts.len()];
                let containers = turbine.cluster.containers_on(host).unwrap_or_default();
                let Some(&container) = containers.first() else {
                    continue;
                };
                Fault::HeartbeatLoss(container)
            }
            "scribe_stall" => {
                let job = JobId(fault.target as u64 % s.jobs.len() as u64 + 1);
                let Some(category) = turbine.job_category(job) else {
                    continue;
                };
                Fault::ScribeStall(category.to_string())
            }
            other => unreachable!("validated fault kind, got '{other}'"),
        };
        turbine.schedule_fault(FaultPlan {
            fault: kind,
            from: at_min(fault.from_min),
            until: Some(at_min(fault.from_min + fault.len_min.max(1))),
        });
    }
}

/// Seeded divergence injection: fail one extra host at a minute edge in
/// one run but not its counterpart. This is not a scenario feature — it
/// exists so the bisector (and its CI gate) can be exercised against a
/// divergence whose first round is known in advance, without waiting for
/// a real platform bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Perturbation {
    /// Index into the scenario's host list (taken modulo the host count).
    pub host: usize,
    /// Minute edge at which the extra `fail_host` fires.
    pub at_min: u32,
}

/// One auto-snapshot taken during a recorded drive: the platform digests
/// at a minute edge plus the full serialized state to resume from.
pub struct Checkpoint {
    /// Minute the checkpoint was taken at (after that minute's host-flap
    /// edges fired, before the next minute was driven).
    pub minute: u32,
    /// Bit-exact platform fingerprint at the edge.
    pub fingerprint: PlatformFingerprint,
    /// Full-history trace digest at the edge.
    pub trace_digest: u64,
    /// Whole-platform snapshot to restore the run from this edge.
    pub snapshot: Snapshot,
}

/// A drive plus the periodic auto-snapshots recorded along the way.
pub struct RecordedRun {
    /// The mode this run was driven in.
    pub mode: DriveMode,
    /// The seeded divergence applied, if any.
    pub perturb: Option<Perturbation>,
    /// End-of-run oracle artifacts.
    pub artifacts: RunArtifacts,
    /// Auto-snapshots, in minute order (always includes minute 0 and the
    /// horizon minute when recording is on).
    pub checkpoints: Vec<Checkpoint>,
}

/// Host-flap (and seeded-perturbation) edges pending against the minute
/// loop. Factored out so a run resumed from a [`Checkpoint`] replays the
/// exact edge schedule the recording run used.
pub(crate) struct EdgeSet {
    fails: Vec<(SimTime, usize)>,
    recovers: Vec<(SimTime, usize)>,
    perturb: Option<(SimTime, usize)>,
}

impl EdgeSet {
    pub(crate) fn new(s: &FuzzScenario, perturb: Option<Perturbation>) -> EdgeSet {
        EdgeSet {
            fails: s
                .flaps
                .iter()
                .map(|f| (at_min(f.fail_min), f.host as usize))
                .collect(),
            recovers: s
                .flaps
                .iter()
                .map(|f| (at_min(f.recover_min), f.host as usize))
                .collect(),
            perturb: perturb.map(|p| (at_min(p.at_min), p.host)),
        }
    }

    /// Drop edges that had already fired when a checkpoint at `now` was
    /// captured (checkpoints are taken after the edges of their minute).
    pub(crate) fn resume_at(mut self, now: SimTime) -> EdgeSet {
        self.fails.retain(|&(at, _)| at > now);
        self.recovers.retain(|&(at, _)| at > now);
        if let Some((at, _)) = self.perturb {
            if at <= now {
                self.perturb = None;
            }
        }
        self
    }

    /// Fire every edge due at `now`, exactly once.
    pub(crate) fn fire(&mut self, turbine: &mut Turbine, hosts: &[HostId]) {
        let now = turbine.now();
        // Recoveries before failures: a host flapped twice in one scenario
        // must come back up before it can go down again.
        self.recovers.retain(|&(at, h)| {
            if at <= now {
                let _ = turbine.recover_host(hosts[h]);
                false
            } else {
                true
            }
        });
        self.fails.retain(|&(at, h)| {
            if at <= now {
                let _ = turbine.fail_host(hosts[h]);
                false
            } else {
                true
            }
        });
        if let Some((at, h)) = self.perturb {
            if at <= now {
                let _ = turbine.fail_host(hosts[h % hosts.len()]);
                self.perturb = None;
            }
        }
    }
}

fn end_of_run_artifacts(turbine: &Turbine, s: &FuzzScenario) -> RunArtifacts {
    let invariant_violations = turbine
        .invariant_violations()
        .iter()
        .map(|v| format!("{} at {}: {}", v.invariant, v.at, v.detail))
        .collect();
    let durable_errors = (1..=s.jobs.len() as u64)
        .filter_map(|id| turbine.durable_backlog(JobId(id)).err())
        .collect();
    RunArtifacts {
        fingerprint: turbine.fingerprint(),
        trace_digest: turbine.trace().digest(),
        invariant_violations,
        durable_errors,
    }
}

/// Checkpoint cadence for auto-snapshots: aim for ~8 checkpoints per run,
/// at least one per minute, at most one every 30 minutes.
pub fn auto_snap_interval(horizon_mins: u32) -> u32 {
    (horizon_mins / 8).clamp(1, 30)
}

/// Drive one mode to the horizon, applying host flaps on minute edges.
/// With `snap_every`, record a [`Checkpoint`] at minute 0, every
/// `snap_every` minutes, and at the horizon; with `perturb`, apply the
/// seeded divergence at its minute edge.
pub fn drive_recorded(
    s: &FuzzScenario,
    mode: DriveMode,
    snap_every: Option<u32>,
    perturb: Option<Perturbation>,
) -> RecordedRun {
    let (mut turbine, hosts) =
        build_platform(s).expect("generated/validated scenarios always build");
    turbine.enable_invariant_checks(InvariantConfig::default());
    schedule_faults(&mut turbine, s, &hosts);

    let end = at_min(s.horizon_mins);
    let mut edges = EdgeSet::new(s, perturb);
    let mut checkpoints = Vec::new();
    loop {
        let now = turbine.now();
        if now < end {
            edges.fire(&mut turbine, &hosts);
        }
        if let Some(every) = snap_every {
            let minute = (now.as_millis() / 60_000) as u32;
            if minute.is_multiple_of(every) || now >= end {
                checkpoints.push(Checkpoint {
                    minute,
                    fingerprint: turbine.fingerprint(),
                    trace_digest: turbine.trace().digest(),
                    snapshot: Snapshot::capture(&turbine),
                });
            }
        }
        if now >= end {
            break;
        }
        turbine.drive_for(Duration::from_mins(1).min(end.since(now)), mode);
    }

    RecordedRun {
        mode,
        perturb,
        artifacts: end_of_run_artifacts(&turbine, s),
        checkpoints,
    }
}

/// A run resumed from a [`Checkpoint`]: the restored platform plus the
/// edge schedule still ahead of it. Used by the bisector to replay the
/// divergent span one minute at a time.
pub(crate) struct ResumedRun {
    turbine: Turbine,
    hosts: Vec<HostId>,
    edges: EdgeSet,
    mode: DriveMode,
    end: SimTime,
}

impl ResumedRun {
    /// Restore a checkpoint of `run` and rebuild the pending edge set.
    /// Host ids are recovered from the restored cluster — `hosts()`
    /// returns them in creation order, matching [`build_platform`].
    pub(crate) fn from_checkpoint(
        s: &FuzzScenario,
        run: &RecordedRun,
        checkpoint: &Checkpoint,
    ) -> Result<ResumedRun, String> {
        let turbine = checkpoint
            .snapshot
            .restore()
            .map_err(|e| format!("checkpoint at minute {} unreadable: {e}", checkpoint.minute))?;
        let hosts = turbine.cluster.hosts();
        let edges = EdgeSet::new(s, run.perturb).resume_at(turbine.now());
        Ok(ResumedRun {
            turbine,
            hosts,
            edges,
            mode: run.mode,
            end: at_min(s.horizon_mins),
        })
    }

    /// Fire the current minute's edges and drive one minute, mirroring
    /// the recording loop exactly. No-op at the horizon.
    pub(crate) fn step_minute(&mut self) {
        let now = self.turbine.now();
        if now >= self.end {
            return;
        }
        self.edges.fire(&mut self.turbine, &self.hosts);
        self.turbine
            .drive_for(Duration::from_mins(1).min(self.end.since(now)), self.mode);
    }

    pub(crate) fn fingerprint(&self) -> PlatformFingerprint {
        self.turbine.fingerprint()
    }

    pub(crate) fn trace_digest(&self) -> u64 {
        self.turbine.trace().digest()
    }

    /// Trace events recorded in the window `(from_min, to_min]`, rendered
    /// as JSONL lines (the trace export format).
    pub(crate) fn trace_window(&self, from_min: u32, to_min: u32) -> Vec<String> {
        let (from, to) = (at_min(from_min), at_min(to_min));
        self.turbine
            .trace()
            .events()
            .filter(|e| e.at > from && e.at <= to)
            .map(|e| e.to_json())
            .collect()
    }
}

/// Restore one of `run`'s auto-snapshots and drive it to the horizon,
/// replaying the recorded edge schedule. The returned artifacts must match
/// `run.artifacts` bit-for-bit — any mismatch means some platform state
/// escaped serialization (the restore-divergence CI gate).
pub fn resume_to_horizon(
    s: &FuzzScenario,
    run: &RecordedRun,
    checkpoint_index: usize,
) -> Result<RunArtifacts, String> {
    let checkpoint = run
        .checkpoints
        .get(checkpoint_index)
        .ok_or_else(|| format!("run has no checkpoint {checkpoint_index}"))?;
    let mut resumed = ResumedRun::from_checkpoint(s, run, checkpoint)?;
    for _ in checkpoint.minute..s.horizon_mins {
        resumed.step_minute();
    }
    Ok(end_of_run_artifacts(&resumed.turbine, s))
}

fn drive_caught(
    s: &FuzzScenario,
    mode: DriveMode,
    snap_every: Option<u32>,
) -> Result<RecordedRun, String> {
    catch_unwind(AssertUnwindSafe(|| {
        drive_recorded(s, mode, snap_every, None)
    }))
    .map_err(|payload| {
        if let Some(msg) = payload.downcast_ref::<&str>() {
            (*msg).to_string()
        } else if let Some(msg) = payload.downcast_ref::<String>() {
            msg.clone()
        } else {
            "panic with non-string payload".to_string()
        }
    })
}

/// Run one case: three drives, four oracles. Each drive auto-snapshots on
/// a horizon-scaled cadence; when the mode-equivalence or replay oracle
/// trips, the snapshots are bisected to localize the first divergent
/// round (reported in [`CaseReport::divergences`]).
pub fn run_case(s: &FuzzScenario) -> CaseReport {
    let mut failures = Vec::new();
    let mut check = |mode: &'static str, run: &Result<RecordedRun, String>| match run {
        Ok(recorded) => {
            if !recorded.artifacts.invariant_violations.is_empty() {
                failures.push(OracleFailure::Invariant {
                    mode,
                    violations: recorded.artifacts.invariant_violations.clone(),
                });
            }
            if !recorded.artifacts.durable_errors.is_empty() {
                failures.push(OracleFailure::DurableBacklog {
                    mode,
                    errors: recorded.artifacts.durable_errors.clone(),
                });
            }
        }
        Err(message) => failures.push(OracleFailure::Panic {
            mode,
            message: message.clone(),
        }),
    };

    let every = Some(auto_snap_interval(s.horizon_mins));
    let dense = drive_caught(s, DriveMode::DenseTick, every);
    check("dense", &dense);
    let event = drive_caught(s, DriveMode::EventDriven, every);
    check("event", &event);
    let replay = drive_caught(s, DriveMode::EventDriven, every);
    check("replay", &replay);

    let mut divergences = Vec::new();
    if let (Ok(d), Ok(e)) = (&dense, &event) {
        if d.artifacts.fingerprint != e.artifacts.fingerprint {
            failures.push(OracleFailure::ModeDivergence);
            divergences.extend(bisect_recorded(s, d, e, "mode", "dense", "event"));
        }
    }
    if let (Ok(e), Ok(r)) = (&event, &replay) {
        if e.artifacts.fingerprint != r.artifacts.fingerprint
            || e.artifacts.trace_digest != r.artifacts.trace_digest
        {
            failures.push(OracleFailure::ReplayDivergence);
            divergences.extend(bisect_recorded(s, e, r, "replay", "event", "replay"));
        }
    }

    CaseReport {
        failures,
        event_artifacts: event.ok().map(|r| r.artifacts),
        divergences,
    }
}
