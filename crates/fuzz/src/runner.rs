//! Drive one scenario through the platform and evaluate the oracles.
//!
//! Each case runs the same scenario three times — dense-tick, event-driven,
//! and an event-driven replay — inside `catch_unwind`, so a panic anywhere
//! in the platform becomes an oracle failure instead of killing the
//! campaign. Four oracles judge the runs:
//!
//! 1. **Invariant checker** — the per-tick safety/convergence invariants
//!    must record zero violations in every mode.
//! 2. **Mode equivalence** — dense-tick and event-driven fingerprints must
//!    match bit-for-bit (the PR 3 equivalence contract).
//! 3. **Replay determinism** — re-running event-driven must reproduce both
//!    the fingerprint and the full-history trace digest exactly.
//! 4. **Durable readability** — at the end of the run every job's
//!    checkpoints must be readable against the Scribe tails
//!    (`durable_backlog` returns `Ok`).

use crate::scenario::{FuzzScenario, FuzzTrafficEvent};
use std::panic::{catch_unwind, AssertUnwindSafe};
use turbine::{
    DriveMode, Fault, FaultPlan, InvariantConfig, PlatformFingerprint, Turbine, TurbineConfig,
};
use turbine_config::{JobConfig, ResiliencyClass};
use turbine_types::{Duration, HostId, JobId, Resources, SimTime};
use turbine_workloads::{TrafficEvent, TrafficEventKind, TrafficModel};

/// What one mode's run produced.
#[derive(Debug, Clone)]
pub struct RunArtifacts {
    /// Bit-exact platform fingerprint at the horizon.
    pub fingerprint: PlatformFingerprint,
    /// Full-history trace digest.
    pub trace_digest: u64,
    /// Rendered invariant violations (empty on a clean run).
    pub invariant_violations: Vec<String>,
    /// Jobs whose checkpoints were unreadable at the end.
    pub durable_errors: Vec<String>,
}

/// One oracle failure. `Display` gives the one-line campaign log form.
#[derive(Debug, Clone)]
pub enum OracleFailure {
    /// The platform panicked while driving a mode.
    Panic {
        /// Which run panicked (`dense`, `event`, `replay`).
        mode: &'static str,
        /// The panic payload, stringified.
        message: String,
    },
    /// The invariant checker recorded violations.
    Invariant {
        /// Which run.
        mode: &'static str,
        /// Rendered violations (capped upstream).
        violations: Vec<String>,
    },
    /// Dense-tick and event-driven fingerprints differ.
    ModeDivergence,
    /// An event-driven replay did not reproduce the first event run.
    ReplayDivergence,
    /// `durable_backlog` errored for some job at the end of a run.
    DurableBacklog {
        /// Which run.
        mode: &'static str,
        /// Per-job error strings.
        errors: Vec<String>,
    },
}

impl std::fmt::Display for OracleFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleFailure::Panic { mode, message } => write!(f, "panic[{mode}]: {message}"),
            OracleFailure::Invariant { mode, violations } => {
                write!(f, "invariant[{mode}]: {}", violations.join("; "))
            }
            OracleFailure::ModeDivergence => write!(f, "dense/event fingerprint divergence"),
            OracleFailure::ReplayDivergence => write!(f, "event replay divergence"),
            OracleFailure::DurableBacklog { mode, errors } => {
                write!(f, "durable_backlog[{mode}]: {}", errors.join("; "))
            }
        }
    }
}

/// The oracle verdicts for one case.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// Every oracle failure observed (empty = case passed).
    pub failures: Vec<OracleFailure>,
    /// The event-mode artifacts, when that run completed without
    /// panicking (repro verification wants the reference digests).
    pub event_artifacts: Option<RunArtifacts>,
}

impl CaseReport {
    /// True when every oracle held.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Build the platform a scenario describes. Public so regression tests can
/// poke at intermediate state; campaign code goes through [`run_case`].
pub fn build_platform(s: &FuzzScenario) -> Result<(Turbine, Vec<HostId>), String> {
    let mut config = TurbineConfig::default();
    config.tick = Duration::from_secs(s.tick_secs as u64);
    config.scaler_enabled = s.scaler_enabled;
    config.trace_enabled = true;
    config.shardmgr.placement.headroom = s.headroom;
    config.shardmgr.placement.band = s.band;
    let mut turbine = Turbine::try_new(config)?;
    let hosts = turbine.add_hosts(
        s.hosts as usize,
        Resources::new(s.host_cpu, s.host_memory_mb, 1.0e6, 1000.0),
    );
    for (i, job) in s.jobs.iter().enumerate() {
        let id = JobId(i as u64 + 1);
        let mut jc = JobConfig::stateless(&job.name, job.tasks, job.partitions);
        jc.threads_per_task = job.threads;
        jc.max_task_count = job.max_tasks;
        jc.resiliency = ResiliencyClass::from_str(&job.resiliency)
            .ok_or_else(|| format!("job '{}': bad resiliency '{}'", job.name, job.resiliency))?;
        let mut traffic = if job.diurnal > 0.0 {
            TrafficModel::diurnal(job.rate, job.diurnal, job.traffic_seed)
        } else {
            TrafficModel::flat(job.rate)
        };
        for event in &job.events {
            traffic = traffic.with_event(to_traffic_event(event));
        }
        if job.stateful {
            turbine.provision_stateful_job(
                id,
                jc,
                traffic,
                job.per_thread_rate,
                job.message_bytes,
                job.key_cardinality,
            )?;
        } else {
            turbine.provision_job(id, jc, traffic, job.per_thread_rate, job.message_bytes)?;
        }
    }
    Ok((turbine, hosts))
}

fn to_traffic_event(event: &FuzzTrafficEvent) -> TrafficEvent {
    let kind = match event.kind.as_str() {
        "multiplier" => TrafficEventKind::Multiplier(event.magnitude),
        "ramp" => TrafficEventKind::RampedMultiplier {
            peak: event.magnitude,
            ramp_mins: event.ramp_mins as u64,
        },
        "consumer_disabled" => TrafficEventKind::ConsumerDisabled,
        "input_outage" => TrafficEventKind::InputOutage,
        other => unreachable!("validated event kind, got '{other}'"),
    };
    TrafficEvent {
        start: at_min(event.start_min),
        end: at_min(event.end_min),
        kind,
    }
}

fn at_min(min: u32) -> SimTime {
    SimTime::ZERO + Duration::from_mins(min as u64)
}

/// Schedule the scenario's fault windows onto a freshly built platform.
fn schedule_faults(turbine: &mut Turbine, s: &FuzzScenario, hosts: &[HostId]) {
    for fault in &s.faults {
        let kind = match fault.kind.as_str() {
            "task_service_down" => Fault::TaskServiceDown,
            "job_store_down" => Fault::JobStoreDown,
            "syncer_crash" => Fault::SyncerCrash,
            "heartbeat_loss" => {
                let host = hosts[fault.target as usize % hosts.len()];
                let containers = turbine.cluster.containers_on(host).unwrap_or_default();
                let Some(&container) = containers.first() else {
                    continue;
                };
                Fault::HeartbeatLoss(container)
            }
            "scribe_stall" => {
                let job = JobId(fault.target as u64 % s.jobs.len() as u64 + 1);
                let Some(category) = turbine.job_category(job) else {
                    continue;
                };
                Fault::ScribeStall(category.to_string())
            }
            other => unreachable!("validated fault kind, got '{other}'"),
        };
        turbine.schedule_fault(FaultPlan {
            fault: kind,
            from: at_min(fault.from_min),
            until: Some(at_min(fault.from_min + fault.len_min.max(1))),
        });
    }
}

/// Drive one mode to the horizon, applying host flaps on minute edges.
fn drive(s: &FuzzScenario, mode: DriveMode) -> RunArtifacts {
    let (mut turbine, hosts) =
        build_platform(s).expect("generated/validated scenarios always build");
    turbine.enable_invariant_checks(InvariantConfig::default());
    schedule_faults(&mut turbine, s, &hosts);

    let end = at_min(s.horizon_mins);
    let mut fails: Vec<(SimTime, usize)> = s
        .flaps
        .iter()
        .map(|f| (at_min(f.fail_min), f.host as usize))
        .collect();
    let mut recovers: Vec<(SimTime, usize)> = s
        .flaps
        .iter()
        .map(|f| (at_min(f.recover_min), f.host as usize))
        .collect();
    while turbine.now() < end {
        let now = turbine.now();
        // Recoveries before failures: a host flapped twice in one scenario
        // must come back up before it can go down again.
        recovers.retain(|&(at, h)| {
            if at <= now {
                let _ = turbine.recover_host(hosts[h]);
                false
            } else {
                true
            }
        });
        fails.retain(|&(at, h)| {
            if at <= now {
                let _ = turbine.fail_host(hosts[h]);
                false
            } else {
                true
            }
        });
        turbine.drive_for(Duration::from_mins(1).min(end.since(now)), mode);
    }

    let invariant_violations = turbine
        .invariant_violations()
        .iter()
        .map(|v| format!("{} at {}: {}", v.invariant, v.at, v.detail))
        .collect();
    let durable_errors = (1..=s.jobs.len() as u64)
        .filter_map(|id| turbine.durable_backlog(JobId(id)).err())
        .collect();
    RunArtifacts {
        fingerprint: turbine.fingerprint(),
        trace_digest: turbine.trace().digest(),
        invariant_violations,
        durable_errors,
    }
}

fn drive_caught(s: &FuzzScenario, mode: DriveMode) -> Result<RunArtifacts, String> {
    catch_unwind(AssertUnwindSafe(|| drive(s, mode))).map_err(|payload| {
        if let Some(msg) = payload.downcast_ref::<&str>() {
            (*msg).to_string()
        } else if let Some(msg) = payload.downcast_ref::<String>() {
            msg.clone()
        } else {
            "panic with non-string payload".to_string()
        }
    })
}

/// Run one case: three drives, four oracles.
pub fn run_case(s: &FuzzScenario) -> CaseReport {
    let mut failures = Vec::new();
    let mut check = |mode: &'static str, run: &Result<RunArtifacts, String>| match run {
        Ok(artifacts) => {
            if !artifacts.invariant_violations.is_empty() {
                failures.push(OracleFailure::Invariant {
                    mode,
                    violations: artifacts.invariant_violations.clone(),
                });
            }
            if !artifacts.durable_errors.is_empty() {
                failures.push(OracleFailure::DurableBacklog {
                    mode,
                    errors: artifacts.durable_errors.clone(),
                });
            }
        }
        Err(message) => failures.push(OracleFailure::Panic {
            mode,
            message: message.clone(),
        }),
    };

    let dense = drive_caught(s, DriveMode::DenseTick);
    check("dense", &dense);
    let event = drive_caught(s, DriveMode::EventDriven);
    check("event", &event);
    let replay = drive_caught(s, DriveMode::EventDriven);
    check("replay", &replay);

    if let (Ok(d), Ok(e)) = (&dense, &event) {
        if d.fingerprint != e.fingerprint {
            failures.push(OracleFailure::ModeDivergence);
        }
    }
    if let (Ok(e), Ok(r)) = (&event, &replay) {
        if e.fingerprint != r.fingerprint || e.trace_digest != r.trace_digest {
            failures.push(OracleFailure::ReplayDivergence);
        }
    }

    CaseReport {
        failures,
        event_artifacts: event.ok(),
    }
}
