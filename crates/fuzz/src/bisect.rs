//! Digest-divergence bisection: localize the first divergent round of two
//! runs that should have been bit-for-bit identical.
//!
//! When the mode-equivalence or replay oracle trips, the naive repro
//! replays both runs from minute zero and compares every round —
//! O(horizon) simulated rounds. The recorded runs instead carry periodic
//! auto-snapshots ([`Checkpoint`](crate::runner::Checkpoint)s) with their fingerprints and trace
//! digests; this module binary-searches the aligned checkpoint lists for
//! the agreement boundary (O(log) digest comparisons, no simulation),
//! restores both sides once at the last agreeing checkpoint, and replays
//! only the span up to the first disagreeing checkpoint in lockstep —
//! at most `2 * snap_every` simulated rounds — to name the exact first
//! divergent minute and extract the trace events recorded inside it.

use crate::runner::{RecordedRun, ResumedRun};
use crate::scenario::FuzzScenario;

/// Cap on trace lines kept per side of a divergence report.
const TRACE_CAP: usize = 40;

/// Where two recorded runs first disagreed, and what it cost to find out.
#[derive(Debug, Clone)]
pub struct DivergenceReport {
    /// Which oracle tripped: `"mode"` (dense vs event) or `"replay"`.
    pub oracle: &'static str,
    /// Display label of the first run (e.g. `dense`).
    pub label_a: &'static str,
    /// Display label of the second run (e.g. `event`).
    pub label_b: &'static str,
    /// Last minute at which both runs' fingerprint and trace digest agreed.
    pub last_agree_min: u32,
    /// First minute at which they disagreed.
    pub first_divergent_min: u32,
    /// Simulated rounds driven to localize the divergence (both sides).
    pub bisect_rounds: u64,
    /// Simulated rounds a from-zero lockstep replay would have driven.
    pub full_replay_rounds: u64,
    /// Trace events the first run recorded in the divergent minute (JSONL).
    pub trace_a: Vec<String>,
    /// Trace events the second run recorded in the divergent minute (JSONL).
    pub trace_b: Vec<String>,
}

impl std::fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} divergence ({} vs {}): first divergent round at minute {} \
             (agreed through minute {}); bisect drove {} rounds vs {} for a full replay",
            self.oracle,
            self.label_a,
            self.label_b,
            self.first_divergent_min,
            self.last_agree_min,
            self.bisect_rounds,
            self.full_replay_rounds,
        )?;
        for (label, lines) in [(self.label_a, &self.trace_a), (self.label_b, &self.trace_b)] {
            writeln!(f, "  trace[{label}] in the divergent minute:")?;
            for line in lines {
                writeln!(f, "    {line}")?;
            }
        }
        Ok(())
    }
}

/// Bisect two recorded runs of the same scenario down to their first
/// divergent minute. Returns `None` when the runs carry no aligned
/// checkpoints or never actually disagree along the recorded timeline.
pub fn bisect_recorded(
    s: &FuzzScenario,
    a: &RecordedRun,
    b: &RecordedRun,
    oracle: &'static str,
    label_a: &'static str,
    label_b: &'static str,
) -> Option<DivergenceReport> {
    let n = a.checkpoints.len().min(b.checkpoints.len());
    if n == 0 {
        return None;
    }
    let agree = |i: usize| {
        let (ca, cb) = (&a.checkpoints[i], &b.checkpoints[i]);
        ca.minute == cb.minute
            && ca.fingerprint == cb.fingerprint
            && ca.trace_digest == cb.trace_digest
    };

    // Binary-search the aligned checkpoint lists for the agreement
    // boundary. Divergence of a deterministic run is persistent, so the
    // lists split into an agreeing prefix and a disagreeing suffix.
    let (mut lo, mut hi) = (0usize, n);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if agree(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    let first_bad = lo;
    if first_bad == 0 {
        // Both runs are built identically, so checkpoint 0 (taken before
        // any driving) can only disagree if the build itself diverged.
        return Some(DivergenceReport {
            oracle,
            label_a,
            label_b,
            last_agree_min: 0,
            first_divergent_min: a.checkpoints[0].minute,
            bisect_rounds: 0,
            full_replay_rounds: 2 * s.horizon_mins as u64,
            trace_a: Vec::new(),
            trace_b: Vec::new(),
        });
    }
    if first_bad == n {
        // Every aligned checkpoint agrees — and recording always places
        // the final checkpoint on the horizon minute, so the runs never
        // actually disagreed along the recorded timeline.
        return None;
    }

    // Restore both sides once at the last agreeing checkpoint, then
    // replay in lockstep one minute at a time until the digests split.
    // The disagreeing checkpoint guarantees a split within one span (one
    // extra minute when the divergence sits on the checkpoint's own
    // minute edge, which fires after the lockstep comparison point).
    let last_agree = first_bad - 1;
    let mut ra = ResumedRun::from_checkpoint(s, a, &a.checkpoints[last_agree]).ok()?;
    let mut rb = ResumedRun::from_checkpoint(s, b, &b.checkpoints[last_agree]).ok()?;
    let start_min = a.checkpoints[last_agree].minute;
    let mut bisect_rounds = 0u64;
    for minute in (start_min + 1)..=s.horizon_mins {
        ra.step_minute();
        rb.step_minute();
        bisect_rounds += 2;
        if ra.fingerprint() != rb.fingerprint() || ra.trace_digest() != rb.trace_digest() {
            let mut trace_a = ra.trace_window(minute - 1, minute);
            let mut trace_b = rb.trace_window(minute - 1, minute);
            trace_a.truncate(TRACE_CAP);
            trace_b.truncate(TRACE_CAP);
            return Some(DivergenceReport {
                oracle,
                label_a,
                label_b,
                last_agree_min: minute - 1,
                first_divergent_min: minute,
                bisect_rounds,
                full_replay_rounds: 2 * s.horizon_mins as u64,
                trace_a,
                trace_b,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{auto_snap_interval, drive_recorded, Perturbation};
    use turbine::DriveMode;

    fn scenario() -> FuzzScenario {
        let s = FuzzScenario {
            seed: 11,
            horizon_mins: 120,
            tick_secs: 10,
            hosts: 4,
            host_cpu: 56.0,
            host_memory_mb: 256.0 * 1024.0,
            headroom: 0.1,
            band: 0.2,
            scaler_enabled: true,
            jobs: vec![crate::scenario::FuzzJob {
                name: "steady".into(),
                stateful: false,
                tasks: 4,
                threads: 2,
                partitions: 16,
                max_tasks: 8,
                rate: 5.0,
                diurnal: 0.0,
                traffic_seed: 0,
                per_thread_rate: 1.0,
                message_bytes: 256.0,
                key_cardinality: 0.0,
                resiliency: "standard".into(),
                events: vec![],
            }],
            faults: vec![],
            flaps: vec![],
        };
        s.validate().expect("test scenario must be valid");
        s
    }

    #[test]
    fn identical_runs_yield_no_divergence() {
        let s = scenario();
        let every = auto_snap_interval(s.horizon_mins);
        let a = drive_recorded(&s, DriveMode::EventDriven, Some(every), None);
        let b = drive_recorded(&s, DriveMode::EventDriven, Some(every), None);
        assert_eq!(a.artifacts.fingerprint, b.artifacts.fingerprint);
        assert!(bisect_recorded(&s, &a, &b, "replay", "event", "replay").is_none());
    }

    #[test]
    fn seeded_divergence_is_localized_to_the_exact_minute() {
        let s = scenario();
        let every = auto_snap_interval(s.horizon_mins); // 15
        let perturb = Perturbation {
            host: 2,
            at_min: 67,
        };
        let a = drive_recorded(&s, DriveMode::EventDriven, Some(every), None);
        let b = drive_recorded(&s, DriveMode::EventDriven, Some(every), Some(perturb));
        assert_ne!(
            a.artifacts.fingerprint, b.artifacts.fingerprint,
            "perturbation must actually diverge the run"
        );

        let report = bisect_recorded(&s, &a, &b, "replay", "clean", "perturbed")
            .expect("diverged runs must produce a report");
        // The extra fail_host fires at the minute-67 edge, so the first
        // minute whose post-drive digests can differ is 68.
        assert_eq!(report.first_divergent_min, 68, "{report}");
        assert_eq!(report.last_agree_min, 67, "{report}");
        // The bisect replays at most one checkpoint span per side instead
        // of the whole horizon twice: the >= 5x CI gate with margin.
        assert!(
            report.bisect_rounds * 5 <= report.full_replay_rounds,
            "bisect drove {} rounds, full replay {}",
            report.bisect_rounds,
            report.full_replay_rounds
        );
        // The divergent minute's trace shows what the perturbed side did.
        assert!(
            !report.trace_b.is_empty(),
            "expected trace events in the divergent minute"
        );
    }

    #[test]
    fn bisection_survives_checkpoint_boundaries() {
        // Perturb exactly on a checkpoint minute: the checkpoint at that
        // minute is captured after the edge fired, so it already carries
        // the divergence and the lockstep starts one span earlier.
        let s = scenario();
        let every = auto_snap_interval(s.horizon_mins);
        let at_min = every * 3;
        let perturb = Perturbation { host: 1, at_min };
        let a = drive_recorded(&s, DriveMode::EventDriven, Some(every), None);
        let b = drive_recorded(&s, DriveMode::EventDriven, Some(every), Some(perturb));
        let report = bisect_recorded(&s, &a, &b, "replay", "clean", "perturbed")
            .expect("diverged runs must produce a report");
        assert!(report.first_divergent_min > at_min, "{report}");
        assert!(report.first_divergent_min <= at_min + every, "{report}");
    }
}
