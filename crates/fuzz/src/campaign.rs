//! The campaign loop: generate → run → (on failure) shrink → report.

use crate::runner::run_case;
use crate::scenario::{generate, FuzzScenario};
use crate::shrink::shrink;

/// One oracle-violating case, already shrunk.
#[derive(Debug, Clone)]
pub struct CampaignFailure {
    /// The seed that produced the original failing scenario.
    pub seed: u64,
    /// One-line descriptions of every oracle failure on the *shrunk*
    /// scenario (the shrink predicate preserves "some oracle fails", not
    /// which one, so these may differ from the original case's failures).
    pub failures: Vec<String>,
    /// The shrunk scenario.
    pub scenario: FuzzScenario,
    /// The repro file contents for the shrunk scenario.
    pub repro_json: String,
}

/// What a campaign run found.
#[derive(Debug, Clone, Default)]
pub struct CampaignSummary {
    /// Number of cases executed.
    pub cases: u64,
    /// Every failing case, shrunk.
    pub failures: Vec<CampaignFailure>,
}

impl CampaignSummary {
    /// True when every case passed every oracle.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// The one-line form the CI smoke test greps for.
    pub fn render(&self) -> String {
        format!(
            "fuzz campaign: {} cases, {} oracle violations",
            self.cases,
            self.failures.len()
        )
    }
}

/// Run `cases` scenarios starting at `base_seed`. Failing cases are
/// shrunk before being recorded; `progress` (when true) logs a line every
/// 100 cases and every failure to stderr.
pub fn run_campaign(base_seed: u64, cases: u64, progress: bool) -> CampaignSummary {
    let mut summary = CampaignSummary::default();
    for i in 0..cases {
        let seed = base_seed.wrapping_add(i);
        let scenario = generate(seed);
        let report = run_case(&scenario);
        summary.cases += 1;
        if !report.passed() {
            if progress {
                for failure in &report.failures {
                    eprintln!("seed {seed}: {failure}");
                }
                eprintln!("seed {seed}: shrinking...");
            }
            let shrunk = shrink(&scenario);
            let shrunk_report = run_case(&shrunk);
            summary.failures.push(CampaignFailure {
                seed,
                failures: shrunk_report
                    .failures
                    .iter()
                    .map(|f| f.to_string())
                    .collect(),
                repro_json: shrunk.to_json(),
                scenario: shrunk,
            });
        }
        if progress && (i + 1) % 100 == 0 {
            eprintln!(
                "fuzz campaign: {}/{} cases, {} failures",
                i + 1,
                cases,
                summary.failures.len()
            );
        }
    }
    summary
}
