//! Criterion bench for batched simple synchronization (paper §III-B:
//! "tens of thousands of jobs within seconds through batching").

#![allow(missing_docs)] // criterion_group!/criterion_main! expansions

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use turbine_config::{ConfigLevel, ConfigValue, JobConfig};
use turbine_jobstore::{JobService, JobStore, MemWal};
use turbine_statesyncer::{Redistribute, StateSyncer, SyncEnvironment};
use turbine_types::JobId;

struct NoopEnv;
impl SyncEnvironment for NoopEnv {
    fn request_stop(&mut self, _job: JobId) {}
    fn all_stopped(&mut self, _job: JobId) -> bool {
        true
    }
    fn redistribute_checkpoints(
        &mut self,
        _j: JobId,
        _o: u32,
        _n: u32,
    ) -> Result<Redistribute, String> {
        Ok(Redistribute::Done)
    }
}

fn service_with(jobs: u64) -> (JobService<MemWal>, StateSyncer) {
    let mut svc = JobService::new(JobStore::new(MemWal::new()));
    for i in 0..jobs {
        svc.provision(JobId(i), &JobConfig::stateless(&format!("j{i}"), 2, 8))
            .expect("provision");
    }
    let mut syncer = StateSyncer::default();
    syncer.run_round(&mut svc, &mut NoopEnv);
    (svc, syncer)
}

fn bench_sync(c: &mut Criterion) {
    let mut group = c.benchmark_group("state_sync");
    group.sample_size(10);
    for jobs in [1_000u64, 10_000] {
        // No-op round: every job in sync (the steady-state hot path).
        let (mut svc, mut syncer) = service_with(jobs);
        group.bench_with_input(BenchmarkId::new("noop_round", jobs), &jobs, |b, _| {
            b.iter(|| syncer.run_round(&mut svc, &mut NoopEnv))
        });
        // Release round: every job needs one simple sync. (Each iteration
        // must re-dirty the store, so we measure write+sync together.)
        let (mut svc, mut syncer) = service_with(jobs);
        let mut version = 2i64;
        group.bench_with_input(BenchmarkId::new("release_round", jobs), &jobs, |b, _| {
            b.iter(|| {
                for i in 0..jobs {
                    svc.set_level_field(
                        JobId(i),
                        ConfigLevel::Provisioner,
                        "package.version",
                        ConfigValue::Int(version),
                    )
                    .expect("release");
                }
                version += 1;
                syncer.run_round(&mut svc, &mut NoopEnv)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sync);
criterion_main!(benches);
