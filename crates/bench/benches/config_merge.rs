//! Criterion bench for Algorithm 1 config layering: the State Syncer
//! merges four levels per job per 30 s round, so layering must stay
//! microsecond-cheap.

#![allow(missing_docs)] // criterion_group!/criterion_main! expansions

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use turbine_config::{layer_all, ConfigLevel, ConfigValue, JobConfig};

fn bench_merge(c: &mut Criterion) {
    let base = JobConfig::stateless("tailer", 8, 64).to_value();
    let mut provisioner = ConfigValue::empty_map();
    provisioner.insert_path("package.version", ConfigValue::Int(7));
    let mut scaler = ConfigValue::empty_map();
    scaler.insert("task_count", ConfigValue::Int(12));
    scaler.insert_path("resources.memory_mb", ConfigValue::Float(900.0));
    let mut oncall = ConfigValue::empty_map();
    oncall.insert("task_count", ConfigValue::Int(32));

    c.bench_function("layer_all/4_levels", |b| {
        b.iter(|| layer_all(black_box(&[&base, &provisioner, &scaler, &oncall])))
    });
    c.bench_function("typed_decode", |b| {
        let merged = layer_all(&[&base, &provisioner, &scaler, &oncall]);
        b.iter(|| JobConfig::from_value(black_box(&merged)).expect("valid"))
    });
    let _ = ConfigLevel::PRECEDENCE;
}

criterion_group!(benches, bench_merge);
criterion_main!(benches);
