//! Criterion bench for Job Store primitives: versioned read-modify-write,
//! WAL append, merged-view reads, and recovery.

#![allow(missing_docs)] // criterion_group!/criterion_main! expansions

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use turbine_config::{ConfigLevel, ConfigValue, JobConfig};
use turbine_jobstore::{JobService, JobStore, MemWal};
use turbine_types::JobId;

fn bench_ops(c: &mut Criterion) {
    let mut svc = JobService::new(JobStore::new(MemWal::new()));
    for i in 0..1_000u64 {
        svc.provision(JobId(i), &JobConfig::stateless(&format!("j{i}"), 2, 8))
            .expect("provision");
    }
    c.bench_function("jobstore/rmw_scaler_level", |b| {
        let mut n = 2u32;
        b.iter(|| {
            n += 1;
            svc.set_level_field(
                black_box(JobId(500)),
                ConfigLevel::Scaler,
                "task_count",
                ConfigValue::Int(n as i64 % 32 + 1),
            )
            .expect("write")
        })
    });
    c.bench_function("jobstore/expected_typed_cached", |b| {
        b.iter(|| svc.expected_typed(black_box(JobId(500))).expect("typed"))
    });
    c.bench_function("jobstore/expected_merged_ref", |b| {
        b.iter(|| {
            svc.store()
                .expected_merged_ref(black_box(JobId(500)))
                .expect("merged")
                .len()
        })
    });
    let mut group = c.benchmark_group("jobstore_recovery");
    group.sample_size(10);
    group.bench_function("recover_1000_jobs", |b| {
        let wal = {
            let mut svc = JobService::new(JobStore::new(MemWal::new()));
            for i in 0..1_000u64 {
                svc.provision(JobId(i), &JobConfig::stateless(&format!("j{i}"), 2, 8))
                    .expect("provision");
            }
            svc.store().wal().clone()
        };
        b.iter(|| JobStore::recover(black_box(wal.clone())).expect("recover"))
    });
    group.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
