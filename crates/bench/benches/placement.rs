//! Criterion bench for the shard placement algorithm (paper §VI-A: 100 K
//! shards onto thousands of containers in < 2 s; we verify the scaling
//! curve at 1 K / 10 K / 100 K shards, cold and warm).

#![allow(missing_docs)] // criterion_group!/criterion_main! expansions

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::HashMap;
use std::hint::black_box;
use turbine_shardmgr::{compute_placement, PlacementConfig, PlacementInput};
use turbine_types::{ContainerId, Resources, ShardId};

fn shards(n: u64) -> Vec<(ShardId, Resources)> {
    (0..n)
        .map(|i| {
            (
                ShardId(i),
                Resources::cpu_mem(0.1 + (i % 17) as f64 * 0.05, 200.0 + (i % 23) as f64 * 40.0),
            )
        })
        .collect()
}

fn containers(n: u64) -> Vec<(ContainerId, Resources)> {
    (0..n)
        .map(|i| (ContainerId(i), Resources::cpu_mem(45.0, 210_000.0)))
        .collect()
}

fn bench_placement(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement");
    group.sample_size(10);
    for (n_shards, n_containers) in [(1_000u64, 30u64), (10_000, 300), (100_000, 3_000)] {
        let shards = shards(n_shards);
        let conts = containers(n_containers);
        group.bench_with_input(BenchmarkId::new("cold", n_shards), &n_shards, |b, _| {
            b.iter(|| {
                compute_placement(
                    PlacementInput {
                        shards: black_box(&shards),
                        containers: black_box(&conts),
                        current: &HashMap::new(),
                    },
                    PlacementConfig::default(),
                )
            })
        });
        let warm = compute_placement(
            PlacementInput {
                shards: &shards,
                containers: &conts,
                current: &HashMap::new(),
            },
            PlacementConfig::default(),
        );
        group.bench_with_input(BenchmarkId::new("warm", n_shards), &n_shards, |b, _| {
            b.iter(|| {
                compute_placement(
                    PlacementInput {
                        shards: black_box(&shards),
                        containers: black_box(&conts),
                        current: black_box(&warm.assignment),
                    },
                    PlacementConfig::default(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_placement);
criterion_main!(benches);
