//! Criterion bench for Task Service spec expansion and snapshot indexing
//! (runs on every cache refresh; paper cadence 90 s for the whole tier).

#![allow(missing_docs)] // criterion_group!/criterion_main! expansions

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::HashMap;
use std::hint::black_box;
use turbine_config::JobConfig;
use turbine_taskmgr::{snapshot::TaskSnapshot, TaskService};
use turbine_types::JobId;

fn bench_specs(c: &mut Criterion) {
    let mut group = c.benchmark_group("task_specs");
    let config = JobConfig::stateless("tailer", 16, 64);
    group.bench_function("generate_specs/16_tasks", |b| {
        b.iter(|| TaskService::generate_specs(black_box(JobId(1)), black_box(&config)))
    });
    group.sample_size(10);
    for jobs in [1_000u64, 10_000] {
        let specs: Vec<_> = (0..jobs)
            .flat_map(|i| TaskService::generate_specs(JobId(i), &JobConfig::stateless("t", 2, 8)))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("snapshot_build", jobs * 2),
            &jobs,
            |b, _| {
                let mut cache = HashMap::new();
                b.iter(|| TaskSnapshot::build(black_box(specs.clone()), 1024, &mut cache))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_specs);
criterion_main!(benches);
