//! The shared chaos-soak scenario: a seeded multi-fault timeline against
//! the whole platform, used by both the `chaos_soak` correctness gate and
//! the `trace_soak` tracing-overhead benchmark (same workload, different
//! assertions — the timeline must not drift between them).

use crate::scuba_host;
use turbine::{DriveMode, Fault, FaultPlan, InvariantConfig, Turbine, TurbineConfig};
use turbine_config::{JobConfig, ResiliencyClass};
use turbine_sim::SimRng;
use turbine_types::{Duration, HostId, JobId, SimTime, TaskId};
use turbine_workloads::TrafficModel;

/// One host flap derived from the seed: fail at `fail_at`, recover at
/// `recover_at`.
pub struct HostFlap {
    /// Index into the soak platform's host list.
    pub host: usize,
    /// When the host fails.
    pub fail_at: SimTime,
    /// When the host recovers.
    pub recover_at: SimTime,
}

/// How a soak run is driven.
pub struct SoakParams {
    /// Total simulated time.
    pub total: Duration,
    /// Seed for the host-flap schedule.
    pub seed: u64,
    /// Drive mode (dense reference or event-driven).
    pub mode: DriveMode,
    /// Whether the causal decision trace is recorded.
    pub trace_enabled: bool,
    /// Whether the ODS metrics registry and alerting engine run (with the
    /// default per-critical-job lag rules installed).
    pub ods: bool,
    /// Whether the invariant checker runs on every tick.
    pub invariants: bool,
}

/// Build the soak platform: eight hosts, three stateless pipelines, and
/// one stateful job with a modest key space (~1 GB of state, a few
/// seconds per state move) so complex syncs complete well inside the
/// convergence window. The fleet spans all three resiliency tiers so the
/// soak exercises the warm-standby fast path next to the standard one:
/// `soak_counters` and the stateful `soak_sessions` are critical,
/// `soak_events` standard, `soak_metrics` best-effort.
pub fn build_platform(trace_enabled: bool, ods_enabled: bool) -> (Turbine, Vec<HostId>) {
    let mut config = TurbineConfig::default();
    config.scaler.downscale_stability = Duration::from_hours(4);
    config.trace_enabled = trace_enabled;
    config.ods_enabled = ods_enabled;
    let mut turbine = Turbine::new(config);
    let hosts = turbine.add_hosts(8, scuba_host());
    for (i, &(name, tasks, rate, swing, seed, tier)) in [
        (
            "soak_events",
            8u32,
            6.0e6,
            0.3,
            101u64,
            ResiliencyClass::Standard,
        ),
        (
            "soak_metrics",
            4,
            3.0e6,
            0.25,
            102,
            ResiliencyClass::BestEffort,
        ),
        (
            "soak_counters",
            4,
            2.0e6,
            0.2,
            103,
            ResiliencyClass::Critical,
        ),
    ]
    .iter()
    .enumerate()
    {
        let mut jc = JobConfig::stateless(name, tasks, 64);
        jc.max_task_count = 64;
        jc.resiliency = tier;
        turbine
            .provision_job(
                JobId(i as u64 + 1),
                jc,
                TrafficModel::diurnal(rate, swing, seed),
                1.0e6,
                256.0,
            )
            .expect("provision");
    }
    let mut jc = JobConfig::stateless("soak_sessions", 4, 64);
    jc.max_task_count = 64;
    jc.resiliency = ResiliencyClass::Critical;
    turbine
        .provision_stateful_job(
            JobId(4),
            jc,
            TrafficModel::diurnal(2.0e6, 0.2, 104),
            1.0e6,
            256.0,
            1.0e6,
        )
        .expect("provision");
    (turbine, hosts)
}

/// Schedule the fault timeline. Positions are fractions of the total run
/// so the same shape works for a 30-minute smoke run and a 72-hour soak;
/// every window ends by 88 % of the run.
pub fn schedule_faults(turbine: &mut Turbine, total: Duration) {
    let frac = |f: f64| SimTime::ZERO + Duration::from_secs_f64(total.as_secs_f64() * f);
    let span = |f: f64| Duration::from_secs_f64(total.as_secs_f64() * f);
    let plan = |fault: Fault, from: SimTime, len: Duration| FaultPlan {
        fault,
        from,
        until: Some(from + len),
    };

    turbine.schedule_fault(plan(Fault::TaskServiceDown, frac(0.10), span(0.05)));
    turbine.schedule_fault(plan(Fault::JobStoreDown, frac(0.25), span(0.05)));

    // Heartbeat loss: one transient single-beat drop (must not trigger
    // fail-over) and one sustained loss (must). Victims come from the
    // first two hosts; host flaps only touch the rest.
    let transient = turbine
        .cluster
        .containers_on(turbine.cluster.hosts()[0])
        .expect("containers")[0];
    turbine.schedule_fault(plan(
        Fault::HeartbeatLoss(transient),
        frac(0.40),
        Duration::from_secs(15),
    ));
    // The sustained loss targets wherever the critical `soak_counters`
    // job's first task landed, so every soak exercises the warm-standby
    // promotion path on top of the standard fail-over.
    let sustained = turbine
        .task_container(TaskId::new(JobId(3), 0))
        .expect("soak_counters task 0 placed");
    turbine.schedule_fault(plan(
        Fault::HeartbeatLoss(sustained),
        frac(0.50),
        span(0.04),
    ));

    turbine.schedule_fault(plan(Fault::SyncerCrash, frac(0.65), span(0.04)));

    let category = turbine
        .job_category(JobId(3))
        .expect("category")
        .to_string();
    turbine.schedule_fault(plan(Fault::ScribeStall(category), frac(0.78), span(0.05)));
}

/// Derive the host-flap schedule from the seed: one flap roughly every
/// 6 hours (at least one per run), each 10–30 minutes, all on hosts 2+,
/// all recovered by 85 % of the run.
pub fn flap_schedule(total: Duration, hosts: usize, rng: &mut SimRng) -> Vec<HostFlap> {
    let flaps = ((total.as_secs_f64() / 21_600.0).ceil() as usize).max(1);
    (0..flaps)
        .map(|i| {
            let slot =
                total.as_secs_f64() * 0.80 * (i as f64 + rng.uniform(0.2, 0.8)) / flaps as f64;
            let fail_at = SimTime::ZERO + Duration::from_secs_f64(slot);
            let len = rng.uniform(600.0, 1800.0).min(total.as_secs_f64() * 0.05);
            HostFlap {
                host: 2 + rng.uniform_usize(0, hosts - 2),
                fail_at,
                recover_at: fail_at + Duration::from_secs_f64(len),
            }
        })
        .collect()
}

/// Run the full soak scenario and return the driven platform; callers
/// pull whatever they assert on (fingerprint, fault log, trace digest,
/// invariant checker) from it.
pub fn run_soak(params: &SoakParams) -> Turbine {
    let mut rng = SimRng::seeded(params.seed);
    let (mut turbine, hosts) = build_platform(params.trace_enabled, params.ods);
    if params.ods {
        turbine.install_default_alert_rules();
    }
    if params.invariants {
        turbine.enable_invariant_checks(InvariantConfig::default());
    }
    // Settle before chaos.
    turbine.drive_for(Duration::from_mins(5).min(params.total), params.mode);
    schedule_faults(&mut turbine, params.total);
    let flaps = flap_schedule(params.total, hosts.len(), &mut rng);

    let end = SimTime::ZERO + params.total;
    let mut fail_queue: Vec<(SimTime, usize)> = flaps.iter().map(|f| (f.fail_at, f.host)).collect();
    let mut recover_queue: Vec<(SimTime, usize)> =
        flaps.iter().map(|f| (f.recover_at, f.host)).collect();
    while turbine.now() < end {
        let now = turbine.now();
        // Recoveries first so a host is never failed while already down.
        recover_queue.retain(|&(at, h)| {
            if at <= now {
                turbine.recover_host(hosts[h]).expect("recover host");
                false
            } else {
                true
            }
        });
        fail_queue.retain(|&(at, h)| {
            if at <= now {
                turbine.fail_host(hosts[h]).expect("fail host");
                false
            } else {
                true
            }
        });
        turbine.drive_for(Duration::from_mins(1).min(end.since(now)), params.mode);
    }
    turbine
}
