//! Shared utilities for the experiment binaries that regenerate every
//! table and figure of the paper's evaluation (see EXPERIMENTS.md for the
//! index and DESIGN.md for the substitutions).
//!
//! Each figure has its own binary under `src/bin/`; micro-benchmarks with
//! statistical rigor live under `benches/` (Criterion). The binaries print
//! the same rows/series the paper reports, plus a `paper vs measured`
//! summary line per headline claim.

pub mod soak;

use turbine::{Turbine, TurbineConfig};
use turbine_config::JobConfig;
use turbine_types::{Duration, JobId, Resources, TimeSeries};
use turbine_workloads::SyntheticJob;

/// The host shape used throughout the paper's Scuba Tailer evaluation:
/// 256 GB of memory and 56 cores.
pub fn scuba_host() -> Resources {
    Resources::new(56.0, 256.0 * 1024.0, 2.0e6, 1000.0)
}

/// Provision a synthesized fleet onto a platform. Returns the job ids.
pub fn provision_fleet(
    turbine: &mut Turbine,
    fleet: &[SyntheticJob],
    configure: impl Fn(&SyntheticJob, &mut JobConfig),
) -> Vec<JobId> {
    fleet
        .iter()
        .enumerate()
        .map(|(i, job)| {
            let id = JobId(i as u64 + 1);
            let mut config =
                JobConfig::stateless(&job.name, job.initial_task_count, job.input_partitions);
            config.task_resources = job.expected_task_usage.scale(1.3);
            config.task_resources.cpu = config.task_resources.cpu.max(0.25);
            configure(job, &mut config);
            turbine
                .provision_job(
                    id,
                    config,
                    job.traffic.clone(),
                    1.0e6,
                    job.avg_message_bytes,
                )
                .expect("fleet job provisions");
            id
        })
        .collect()
}

/// Down-sample a time series to one value per `every` (last sample wins),
/// returning (hours, value) pairs — the rows the figures print.
pub fn downsample(series: &TimeSeries, every: Duration) -> Vec<(f64, f64)> {
    let mut rows = Vec::new();
    let mut next_slot = 0u64;
    for &(at, value) in series.points() {
        let slot = at.as_millis() / every.as_millis();
        if slot >= next_slot {
            rows.push((at.as_hours_f64(), value));
            next_slot = slot + 1;
        }
    }
    rows
}

/// Align several series on the slots of the first and print a table.
pub fn print_table(title: &str, columns: &[(&str, Vec<(f64, f64)>)]) {
    println!("## {title}");
    print!("{:>8}", "hour");
    for (name, _) in columns {
        print!("  {name:>12}");
    }
    println!();
    let rows = columns.first().map_or(0, |(_, c)| c.len());
    for i in 0..rows {
        let hour = columns[0].1[i].0;
        print!("{hour:>8.1}");
        for (_, col) in columns {
            match col.get(i) {
                Some(&(_, v)) => print!("  {v:>12.3}"),
                None => print!("  {:>12}", "-"),
            }
        }
        println!();
    }
    println!();
}

/// Print one `paper vs measured` conclusion row.
pub fn verdict(claim: &str, paper: &str, measured: &str, holds: bool) {
    println!(
        "[{}] {claim}: paper = {paper}, measured = {measured}",
        if holds { "OK" } else { "DIVERGES" }
    );
}

/// A platform config tuned for fleet-scale experiment runs: identical
/// control cadences to production, with experiment-friendly scaler
/// stability windows (the paper's 24 h window would hide behaviour in
/// short runs; experiments that need the production value override it).
pub fn experiment_config() -> TurbineConfig {
    let mut config = TurbineConfig::default();
    config.scaler.downscale_stability = Duration::from_hours(4);
    config
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbine_types::SimTime;

    #[test]
    fn downsample_keeps_one_row_per_slot() {
        let mut ts = TimeSeries::new();
        for m in 0..180 {
            ts.record(SimTime::ZERO + Duration::from_mins(m), m as f64);
        }
        let rows = downsample(&ts, Duration::from_hours(1));
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].1, 0.0);
        assert_eq!(rows[1].1, 60.0);
    }

    #[test]
    fn provision_fleet_creates_all_jobs() {
        let mut turbine = Turbine::new(TurbineConfig::default());
        turbine.add_hosts(4, scuba_host());
        let fleet = turbine_workloads::synthesize_fleet(&turbine_workloads::FleetConfig {
            jobs: 10,
            ..Default::default()
        });
        let ids = provision_fleet(&mut turbine, &fleet, |_, _| {});
        assert_eq!(ids.len(), 10);
        turbine.run_for(Duration::from_mins(3));
        for id in ids {
            assert!(turbine.job_status(id).expect("status").running_tasks > 0);
        }
    }
}
