//! Scale soak — the sparse-data-plane gate at fleet scale.
//!
//! The scenario models the paper's deployment shape: ~10k hosts and
//! 120k+ tasks (12k jobs x 10 tasks), where at any instant the
//! overwhelming majority of the fleet is converged and quiet. A dense
//! control plane pays O(fleet) every round regardless; the sparse data
//! plane (attention sets + changelog cursors + dirty-set bookkeeping)
//! must pay only for what changed. Two bursts punctuate 24 quiet
//! simulated hours: an oncall scale-up wave at hour 6 and a host flap at
//! hour 12.
//!
//! Both modes run the identical scenario from the same seed and must
//! produce bit-for-bit identical platform fingerprints — the work
//! reduction is only reported if the sparse plane changed nothing
//! observable. Gates:
//!   1. fingerprint(full) == fingerprint(sparse)
//!   2. full/sparse `sync_jobs_examined` ratio >= 5x
//!   3. sparse wall clock <= --max-wall-secs
//!
//! Results go to stdout and `BENCH_scale.json`.
//!
//! ```sh
//! cargo run --release -p turbine-bench --bin scale_soak              # 10k hosts, 24 h
//! cargo run --release -p turbine-bench --bin scale_soak -- \
//!     --hosts 1000 --jobs 1000 --hours 13                            # smoke size
//! ```

use std::time::Instant;
use turbine::{DriveMode, PlatformFingerprint, Turbine, TurbineConfig};
use turbine_bench::scuba_host;
use turbine_config::{ConfigValue, JobConfig};
use turbine_types::{Duration, JobId};
use turbine_workloads::TrafficModel;

const TASKS_PER_JOB: u32 = 10;
/// One job in this many carries live traffic; the rest sit drained, the
/// way an off-peak tier does. The quiet majority is exactly what the
/// sparse plane must never re-walk.
const ACTIVE_EVERY: u64 = 20;

struct Params {
    hosts: u64,
    jobs: u64,
    hours: u64,
    seed: u64,
    max_wall_secs: f64,
}

/// One run's observables: the fingerprint the equivalence gate compares
/// and the per-round work the reduction gate measures.
struct RunResult {
    fingerprint: PlatformFingerprint,
    wall_secs: f64,
    sync_jobs_examined: u64,
    load_reports_sent: u64,
}

fn build_platform(p: &Params, sparse: bool) -> Turbine {
    let mut config = TurbineConfig::default();
    config.sparse_data_plane = sparse;
    // Fleet-shaped control cadences: shard space sized to the host count,
    // and the loops that are O(fleet) even when idle (heartbeat walks
    // containers, TM refresh rebuilds the task snapshot, metrics walks
    // tasks) spread out the way a real regional deployment staggers them.
    // The sync loop keeps a tight 1-minute cadence — that is the loop
    // whose work the sparse plane makes proportional to change.
    config.shard_count = (p.hosts * 2).max(1024);
    config.sync_interval = Duration::from_mins(1);
    config.heartbeat_interval = Duration::from_mins(1);
    config.tm_refresh_interval = Duration::from_mins(15);
    config.load_report_interval = Duration::from_mins(5);
    config.metrics_interval = Duration::from_mins(10);
    config.checkpoint_interval = Duration::from_mins(15);
    config.capacity_interval = Duration::from_hours(1);
    config.rebalance_interval = Duration::from_hours(1);
    // The scenario is about control-plane work on a quiet fleet, not
    // elasticity: pin parallelism so the quiet spans stay task-stable.
    config.scaler_enabled = false;
    let mut turbine = Turbine::new(config);
    turbine.add_hosts(p.hosts as usize, scuba_host());
    for i in 0..p.jobs {
        let id = JobId(i + 1);
        let active = i % ACTIVE_EVERY == 0;
        let name = format!("scale_{}_{i}", if active { "live" } else { "idle" });
        let config = JobConfig::stateless(&name, TASKS_PER_JOB, 32);
        let traffic = if active {
            TrafficModel::flat(1.0e6)
        } else {
            TrafficModel::flat(0.0)
        };
        turbine
            .provision_job(id, config, traffic, 1.0e6, 256.0)
            .expect("scale fleet provisions");
    }
    turbine
}

fn run(p: &Params, sparse: bool) -> RunResult {
    let started = Instant::now();
    let mut t = build_platform(p, sparse);
    // Hours 0-6: converge, then sit quiet.
    t.drive_for(Duration::from_hours(6), DriveMode::EventDriven);
    // Hour 6: an oncall scale-up wave across a handful of live jobs — a
    // changelog burst the sparse syncer must pick up via its cursor.
    for wave in 0..5u64 {
        let job = JobId(wave * ACTIVE_EVERY + 1);
        t.oncall_set(
            job,
            "task_count",
            ConfigValue::Int(TASKS_PER_JOB as i64 + 2),
        )
        .expect("oncall scale");
    }
    t.drive_for(Duration::from_hours(6), DriveMode::EventDriven);
    // Hour 12: a host flap — fail-over, standby churn, and cluster-scope
    // dirt, then 11.5 quiet hours of tail.
    let victim = t.cluster.hosts()[(p.seed % p.hosts) as usize];
    t.fail_host(victim).expect("fail host");
    t.drive_for(Duration::from_mins(30), DriveMode::EventDriven);
    t.recover_host(victim).expect("recover host");
    t.drive_for(
        Duration::from_hours(p.hours.saturating_sub(12)) - Duration::from_mins(30),
        DriveMode::EventDriven,
    );
    RunResult {
        fingerprint: t.fingerprint(),
        wall_secs: started.elapsed().as_secs_f64(),
        sync_jobs_examined: t.metrics.sync_jobs_examined.get(),
        load_reports_sent: t.metrics.load_reports_sent.get(),
    }
}

fn main() {
    let mut p = Params {
        hosts: 10_000,
        jobs: 12_000,
        hours: 24,
        seed: 7,
        // A backstop, not the work measure (that is the sync ratio): the
        // sparse leg's wall time is dominated by the O(fleet) costs both
        // modes share (data-plane ticks, heartbeat walks, TM snapshot
        // rebuilds). Sized for a single-core CI box at the full default
        // scale; pass --max-wall-secs to tighten on faster hardware.
        max_wall_secs: 900.0,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = args.get(i + 1);
        match (args[i].as_str(), value.and_then(|v| v.parse::<u64>().ok())) {
            ("--hosts", Some(v)) if v > 0 => p.hosts = v,
            ("--jobs", Some(v)) if v > 0 => p.jobs = v,
            ("--hours", Some(v)) if v >= 13 => p.hours = v,
            ("--seed", Some(v)) => p.seed = v,
            ("--max-wall-secs", Some(v)) if v > 0 => p.max_wall_secs = v as f64,
            _ => {
                eprintln!(
                    "usage: scale_soak [--hosts N] [--jobs N] [--hours H>=13] [--seed S] \
                     [--max-wall-secs W]"
                );
                std::process::exit(2);
            }
        }
        i += 2;
    }
    let tasks = p.jobs * TASKS_PER_JOB as u64;
    eprintln!(
        "scale soak: {} hosts, {} jobs ({tasks} tasks), {} simulated hours, seed {}",
        p.hosts, p.jobs, p.hours, p.seed
    );

    eprintln!("sparse data plane...");
    let sparse = run(&p, true);
    eprintln!(
        "  {:.1}s wall, {} jobs examined, {} load reports",
        sparse.wall_secs, sparse.sync_jobs_examined, sparse.load_reports_sent
    );
    eprintln!("full-scan reference...");
    let full = run(&p, false);
    eprintln!(
        "  {:.1}s wall, {} jobs examined, {} load reports",
        full.wall_secs, full.sync_jobs_examined, full.load_reports_sent
    );

    let matches = full.fingerprint == sparse.fingerprint;
    let sync_ratio = full.sync_jobs_examined as f64 / sparse.sync_jobs_examined.max(1) as f64;
    let load_ratio = full.load_reports_sent as f64 / sparse.load_reports_sent.max(1) as f64;
    println!(
        "## scale soak ({} hosts, {tasks} tasks, {} h, two bursts)",
        p.hosts, p.hours
    );
    println!(
        "  syncer work : full {} vs sparse {} jobs examined ({sync_ratio:.1}x less)",
        full.sync_jobs_examined, sparse.sync_jobs_examined
    );
    println!(
        "  load reports: full {} vs sparse {} sent ({load_ratio:.1}x less)",
        full.load_reports_sent, sparse.load_reports_sent
    );
    println!(
        "  wall clock  : sparse {:.1}s, full {:.1}s (gate {:.0}s)",
        sparse.wall_secs, full.wall_secs, p.max_wall_secs
    );
    println!(
        "  fingerprint : now_ms {} counters {:?} fault 0x{:016x} slo 0x{:016x}",
        sparse.fingerprint.now_ms,
        sparse.fingerprint.counters,
        sparse.fingerprint.fault_digest,
        sparse.fingerprint.slo_digest
    );

    let json = format!(
        "{{\n  \"bench\": \"scale_soak\",\n  \"hosts\": {},\n  \"jobs\": {},\n  \
         \"tasks\": {tasks},\n  \"sim_hours\": {},\n  \"seed\": {},\n  \
         \"sparse_wall_secs\": {:.3},\n  \"full_wall_secs\": {:.3},\n  \
         \"sparse_sync_jobs_examined\": {},\n  \"full_sync_jobs_examined\": {},\n  \
         \"sync_work_ratio\": {sync_ratio:.3},\n  \
         \"sparse_load_reports\": {},\n  \"full_load_reports\": {},\n  \
         \"load_report_ratio\": {load_ratio:.3},\n  \
         \"fingerprint_match\": {matches},\n  \"counters\": {:?},\n  \"now_ms\": {}\n}}\n",
        p.hosts,
        p.jobs,
        p.hours,
        p.seed,
        sparse.wall_secs,
        full.wall_secs,
        sparse.sync_jobs_examined,
        full.sync_jobs_examined,
        sparse.load_reports_sent,
        full.load_reports_sent,
        sparse.fingerprint.counters,
        sparse.fingerprint.now_ms
    );
    std::fs::write("BENCH_scale.json", &json).expect("write BENCH_scale.json");
    print!("{json}");

    if !matches {
        eprintln!(
            "SPARSE DIVERGENCE: full fingerprint {:?} vs sparse {:?}",
            full.fingerprint, sparse.fingerprint
        );
        std::process::exit(1);
    }
    if sync_ratio < 5.0 {
        eprintln!(
            "WORK REDUCTION BELOW TARGET: {sync_ratio:.2}x < 5x syncer work reduction on a \
             mostly-quiet fleet"
        );
        std::process::exit(1);
    }
    if sparse.wall_secs > p.max_wall_secs {
        eprintln!(
            "WALL CLOCK OVER BUDGET: sparse run took {:.1}s > {:.0}s",
            sparse.wall_secs, p.max_wall_secs
        );
        std::process::exit(1);
    }
}
