//! ODS soak — the cost and determinism gate for the metrics registry and
//! alerting engine, on the exact chaos-soak workload (shared via
//! [`turbine_bench::soak`]).
//!
//! Four assertions, any miss is a non-zero exit:
//!
//! 1. **observational**: ODS on vs off leaves the platform fingerprint
//!    bit-for-bit unchanged;
//! 2. **drive-mode independent**: dense-tick and event-driven runs with
//!    ODS on produce the identical trace digest and fingerprint (so
//!    incident trace events are deterministic too);
//! 3. **replayable**: re-running the same seed reproduces the identical
//!    incident log;
//! 4. **cheap**: min-of-repeats wall clock with ODS on is less than 5 %
//!    above ODS off.
//!
//! Results (plus a registry census and the incident log) go to stdout and
//! `BENCH_ods.json`.
//!
//! ```sh
//! cargo run --release -p turbine-bench --bin ods_soak             # 12 h
//! cargo run --release -p turbine-bench --bin ods_soak -- --mins 60
//! ```

use std::time::Instant;
use turbine::{DriveMode, Turbine};
use turbine_bench::soak::{run_soak, SoakParams};
use turbine_types::Duration;

/// The overhead budget: ODS must cost less than this fraction of the
/// ODS-off wall clock.
const OVERHEAD_BUDGET: f64 = 0.05;

/// Absolute slack on the overhead gate, in milliseconds — short smoke
/// runs sit below what wall-clock timing can resolve (same rationale as
/// `trace_soak`).
const OVERHEAD_NOISE_FLOOR_MS: f64 = 2.0;

fn run(total: Duration, seed: u64, mode: DriveMode, ods: bool) -> (Turbine, f64) {
    let started = Instant::now();
    let turbine = run_soak(&SoakParams {
        total,
        seed,
        mode,
        // Tracing stays on (its production default) so ODS cost is the
        // only variable between the two arms.
        trace_enabled: true,
        ods,
        // The invariant checker's per-tick sweep would drown the signal
        // this benchmark measures; correctness runs under chaos_soak.
        invariants: false,
    });
    let wall_ms = started.elapsed().as_secs_f64() * 1.0e3;
    (turbine, wall_ms)
}

/// Render an incident log as comparable one-line summaries.
fn incident_lines(turbine: &Turbine) -> Vec<String> {
    turbine
        .incidents()
        .iter()
        .map(|i| {
            format!(
                "[{}] {} {} opened {} resolved {:?}: {}",
                i.severity, i.rule, i.metric, i.opened_at, i.resolved_at, i.message
            )
        })
        .collect()
}

fn main() {
    let mut hours = 12u64;
    let mut mins: Option<u64> = None;
    let mut seed = 0xC4A05u64;
    let mut repeats = 5usize;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = args.get(i + 1).and_then(|v| v.parse::<u64>().ok());
        match (args[i].as_str(), value) {
            ("--hours", Some(v)) => hours = v,
            ("--mins", Some(v)) => mins = Some(v),
            ("--seed", Some(v)) => seed = v,
            ("--repeats", Some(v)) => repeats = (v as usize).max(1),
            _ => {
                eprintln!("usage: ods_soak [--hours H] [--mins M] [--seed S] [--repeats R]");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    let total = mins.map_or_else(|| Duration::from_hours(hours), Duration::from_mins);
    let sim_hours = total.as_hours_f64();

    eprintln!("ods soak: {sim_hours:.1} simulated hours, seed {seed:#x}");
    let mut failed = false;

    // Correctness first: observational, drive-mode independent,
    // replayable. (These runs also warm the allocator for the timings.)
    let (with_ods, _) = run(total, seed, DriveMode::EventDriven, true);
    let (without_ods, _) = run(total, seed, DriveMode::EventDriven, false);
    let (dense, _) = run(total, seed, DriveMode::DenseTick, true);
    let (replay, _) = run(total, seed, DriveMode::EventDriven, true);

    let fingerprint_match = with_ods.fingerprint() == without_ods.fingerprint();
    if fingerprint_match {
        println!("[OK] ODS is observational: fingerprints match with ODS on and off");
    } else {
        failed = true;
        eprintln!(
            "ODS CHANGED PLATFORM STATE: on {:?} vs off {:?}",
            with_ods.fingerprint(),
            without_ods.fingerprint()
        );
    }
    let dense_event_match = dense.trace().digest() == with_ods.trace().digest()
        && dense.fingerprint() == with_ods.fingerprint()
        && incident_lines(&dense) == incident_lines(&with_ods);
    if dense_event_match {
        println!(
            "[OK] dense-tick and event-driven runs agree (trace digest {:#018x})",
            with_ods.trace().digest()
        );
    } else {
        failed = true;
        eprintln!(
            "ODS DIVERGENCE ACROSS DRIVE MODES: dense {:#018x} vs event {:#018x}",
            dense.trace().digest(),
            with_ods.trace().digest()
        );
    }
    let replay_match = incident_lines(&replay) == incident_lines(&with_ods)
        && replay.trace().digest() == with_ods.trace().digest();
    if replay_match {
        println!("[OK] identical incident log and trace digest on replay");
    } else {
        failed = true;
        eprintln!(
            "NON-DETERMINISTIC ODS: incident logs or digests differ on replay\n on: {:?}\n re: {:?}",
            incident_lines(&with_ods),
            incident_lines(&replay)
        );
    }

    // Overhead: interleaved min-of-repeats, ODS on vs off.
    let mut ods_ms = f64::INFINITY;
    let mut base_ms = f64::INFINITY;
    for r in 0..repeats {
        eprintln!("timing repeat {} of {repeats}...", r + 1);
        let (_, on) = run(total, seed, DriveMode::EventDriven, true);
        let (_, off) = run(total, seed, DriveMode::EventDriven, false);
        ods_ms = ods_ms.min(on);
        base_ms = base_ms.min(off);
    }
    let overhead = (ods_ms - base_ms) / base_ms;
    let overhead_ok = overhead < OVERHEAD_BUDGET || (ods_ms - base_ms) < OVERHEAD_NOISE_FLOOR_MS;

    let registry = with_ods.ods_registry();
    let samples: u64 = registry.iter().map(|(_, s)| s.len() as u64).sum();
    let incidents = incident_lines(&with_ods);

    println!("## ods soak ({sim_hours:.1} h chaos workload, min of {repeats})");
    println!("  ods on    : {ods_ms:9.1} ms wall");
    println!("  ods off   : {base_ms:9.1} ms wall");
    println!(
        "  overhead  : {:9.2} % (budget {:.0} %)",
        overhead * 100.0,
        OVERHEAD_BUDGET * 100.0
    );
    println!(
        "  registry  : {} series, {} retained samples",
        registry.len(),
        samples
    );
    println!("  incidents : {}", incidents.len());
    for line in &incidents {
        println!("    {line}");
    }

    let json = format!(
        "{{\n  \"bench\": \"ods_soak\",\n  \"sim_hours\": {sim_hours:.1},\n  \
         \"ods_wall_ms\": {ods_ms:.3},\n  \"base_wall_ms\": {base_ms:.3},\n  \
         \"overhead_pct\": {:.3},\n  \"overhead_budget_pct\": {:.1},\n  \
         \"overhead_ok\": {overhead_ok},\n  \"registry_series\": {},\n  \
         \"registry_samples\": {samples},\n  \"incidents\": {},\n  \
         \"trace_digest\": \"{:#018x}\",\n  \"fingerprint_match\": {fingerprint_match},\n  \
         \"dense_event_match\": {dense_event_match},\n  \
         \"replay_match\": {replay_match}\n}}\n",
        overhead * 100.0,
        OVERHEAD_BUDGET * 100.0,
        registry.len(),
        incidents.len(),
        with_ods.trace().digest(),
    );
    std::fs::write("BENCH_ods.json", &json).expect("write BENCH_ods.json");
    print!("{json}");

    if !overhead_ok {
        failed = true;
        eprintln!(
            "ODS TOO EXPENSIVE: {:.2} % overhead exceeds the {:.0} % budget",
            overhead * 100.0,
            OVERHEAD_BUDGET * 100.0
        );
    }
    if failed {
        std::process::exit(1);
    }
}
