//! Figure 5 — CPU and memory usage of Scuba Tailer tasks.
//!
//! Paper: CDFs over ~120 K tasks; (a) over 80 % of tasks consume less than
//! one CPU thread, a small percentage need over four; (b) every task
//! consumes at least ~400 MB and over 99 % consume less than 2 GB.
//!
//! ```sh
//! cargo run --release -p turbine-bench --bin fig5_task_footprints
//! ```

use turbine_types::Cdf;
use turbine_workloads::{synthesize_fleet, FleetConfig};

fn main() {
    // Enough jobs to reach the paper's ~120 K task scale.
    let fleet = synthesize_fleet(&FleetConfig {
        jobs: 60_000,
        seed: 0xF1605,
        ..FleetConfig::default()
    });
    let mut cpu = Vec::new();
    let mut mem = Vec::new();
    for job in &fleet {
        for _ in 0..job.initial_task_count {
            cpu.push(job.expected_task_usage.cpu);
            mem.push(job.expected_task_usage.memory_mb);
        }
    }
    println!(
        "synthesized {} tasks across {} jobs\n",
        cpu.len(),
        fleet.len()
    );

    let cpu_cdf = Cdf::from_samples(&cpu);
    let mem_cdf = Cdf::from_samples(&mem);

    println!("## Fig 5(a): CDF of per-task CPU usage (cores)");
    println!("{:>8}  {:>8}", "cores", "cdf");
    for x in [0.1, 0.25, 0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0] {
        println!("{x:>8.2}  {:>8.4}", cpu_cdf.fraction_at_or_below(x));
    }
    println!();
    println!("## Fig 5(b): CDF of per-task memory usage (GB)");
    println!("{:>8}  {:>8}", "gb", "cdf");
    for x in [0.25, 0.4, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0, 8.0, 10.0] {
        println!(
            "{x:>8.2}  {:>8.4}",
            mem_cdf.fraction_at_or_below(x * 1024.0)
        );
    }
    println!();

    let under_one = cpu_cdf.fraction_at_or_below(1.0);
    let over_four = 1.0 - cpu_cdf.fraction_at_or_below(4.0);
    let mem_floor = mem_cdf.quantile(0.001).unwrap_or(0.0);
    let under_2gb = mem_cdf.fraction_at_or_below(2048.0);
    turbine_bench::verdict(
        "tasks under one CPU",
        "> 80%",
        &format!("{:.1}%", under_one * 100.0),
        under_one > 0.8,
    );
    turbine_bench::verdict(
        "tasks over four CPUs",
        "a small percentage",
        &format!("{:.2}%", over_four * 100.0),
        over_four > 0.0 && over_four < 0.05,
    );
    turbine_bench::verdict(
        "per-task memory floor",
        "~400 MB (binary + metric sidecar)",
        &format!("{mem_floor:.0} MB"),
        mem_floor >= 390.0,
    );
    turbine_bench::verdict(
        "tasks under 2 GB memory",
        "over 99%",
        &format!("{:.2}%", under_2gb * 100.0),
        under_2gb > 0.99,
    );
}
