//! Ablation: vertical-first scaling vs horizontal-only (paper §V-E).
//!
//! Vertical scaling (more threads per task) propagates as a *simple* sync
//! — tasks restart once, no checkpoint redistribution, no stop-the-world
//! pause — while horizontal scaling is a *complex* sync that stops the
//! whole job first. The paper caps vertical growth at a fraction of a
//! container (1/5) to keep tasks movable, and prefers it until that limit.
//! This ablation measures what that preference buys: downtime, sync
//! complexity, and recovery speed under a ramping load.
//!
//! ```sh
//! cargo run --release -p turbine-bench --bin ablation_vertical_first
//! ```

use turbine::{Turbine, TurbineConfig};
use turbine_bench::{scuba_host, verdict};
use turbine_config::JobConfig;
use turbine_types::{Duration, JobId, SimTime};
use turbine_workloads::{TrafficEvent, TrafficEventKind, TrafficModel};

struct Outcome {
    label: &'static str,
    violation_minutes: u64,
    restarts: u64,
    stops: u64,
    final_tasks: u32,
    final_threads: u32,
}

fn run(vertical_cpu_limit: f64) -> Outcome {
    let mut config = TurbineConfig::default();
    config.scaler.min_action_gap = Duration::from_mins(2);
    config.scaler.vertical_limit.cpu = vertical_cpu_limit;
    let mut t = Turbine::new(config);
    t.add_hosts(12, scuba_host());
    let job = JobId(1);
    let mut jc = JobConfig::stateless("ramping", 4, 256);
    jc.max_task_count = 256;
    // Load ramps 4x over two hours starting at minute 30.
    let ramp = TrafficEvent {
        start: SimTime::ZERO + Duration::from_mins(30),
        end: SimTime::ZERO + Duration::from_hours(6),
        kind: TrafficEventKind::RampedMultiplier {
            peak: 4.0,
            ramp_mins: 120,
        },
    };
    t.provision_job(
        job,
        jc,
        TrafficModel::flat(4.0e6).with_event(ramp),
        1.0e6,
        256.0,
    )
    .expect("provision");

    let mut violation_minutes = 0;
    for _ in 0..300u64 {
        t.run_for(Duration::from_mins(1));
        let rate = t.job_arrival_rate(job).expect("rate");
        if t.job_status(job).expect("status").backlog_bytes > rate * 90.0 {
            violation_minutes += 1;
        }
    }
    let cfg = t.job_service_mut().expected_typed(job).expect("config");
    Outcome {
        label: if vertical_cpu_limit > 1.0 {
            "vertical-first"
        } else {
            "horizontal-only"
        },
        violation_minutes,
        restarts: t.metrics.task_restarts.get(),
        stops: t.metrics.task_stops.get(),
        final_tasks: cfg.task_count,
        final_threads: cfg.threads_per_task,
    }
}

fn main() {
    // Horizontal-only: 1-core tasks, every capacity change is a complex
    // sync. Vertical-first: tasks may grow to 8 cores before splitting.
    let horizontal = run(1.0);
    let vertical = run(8.0);

    println!(
        "{:<16} {:>14} {:>9} {:>7} {:>7} {:>9}",
        "policy", "slo_viol_min", "restarts", "stops", "tasks", "threads"
    );
    for o in [&horizontal, &vertical] {
        println!(
            "{:<16} {:>14} {:>9} {:>7} {:>7} {:>9}",
            o.label, o.violation_minutes, o.restarts, o.stops, o.final_tasks, o.final_threads
        );
    }
    println!();

    verdict(
        "vertical-first needs fewer task stops (no complex syncs)",
        "parallelism changes require stopping all tasks first; vertical does not",
        &format!(
            "stops: horizontal-only = {}, vertical-first = {}",
            horizontal.stops, vertical.stops
        ),
        vertical.stops < horizontal.stops,
    );
    verdict(
        "vertical-first tracks a 4x ramp with less SLO damage",
        "simple syncs keep the job processing through every resize",
        &format!(
            "violation minutes: horizontal-only = {}, vertical-first = {}",
            horizontal.violation_minutes, vertical.violation_minutes
        ),
        vertical.violation_minutes <= horizontal.violation_minutes,
    );
    verdict(
        "vertical-first keeps the task count small",
        "tasks stay fine-grained but fewer of them move around",
        &format!(
            "final layout: horizontal-only = {}x{}, vertical-first = {}x{}",
            horizontal.final_tasks,
            horizontal.final_threads,
            vertical.final_tasks,
            vertical.final_threads
        ),
        vertical.final_tasks < horizontal.final_tasks && vertical.final_threads > 1,
    );
}
