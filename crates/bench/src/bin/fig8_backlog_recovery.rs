//! Figure 8 — backlog recovery with and without the Auto Scaler.
//!
//! Paper: a Scuba tailer job was disabled for five days (application
//! problem), accumulating terabytes of backlog. In `cluster1` the Auto
//! Scaler scaled it 16 → 32 tasks (the default cap), the operator lifted
//! the cap, the scaler jumped to 128 tasks and redistributed traffic; in
//! `cluster2` (no scaler) the same backlog was processed with a manual bump
//! to 128 tasks but uneven traffic distribution — taking over two days,
//! ~8× slower.
//!
//! ```sh
//! cargo run --release -p turbine-bench --bin fig8_backlog_recovery
//! ```

use turbine::{Turbine, TurbineConfig};
use turbine_bench::{downsample, print_table, scuba_host, verdict};
use turbine_config::{ConfigValue, JobConfig};
use turbine_types::{Duration, JobId, SimTime};
use turbine_workloads::{TrafficEvent, TrafficEventKind, TrafficModel};

const RATE: f64 = 8.0e6; // 8 MB/s input
const OUTAGE_DAYS: u64 = 5;

fn outage() -> TrafficEvent {
    TrafficEvent {
        start: SimTime::ZERO + Duration::from_hours(2),
        end: SimTime::ZERO + Duration::from_hours(2 + OUTAGE_DAYS * 24),
        kind: TrafficEventKind::ConsumerDisabled,
    }
}

fn platform(scaler_enabled: bool) -> (Turbine, JobId) {
    let mut config = TurbineConfig::default();
    config.scaler_enabled = scaler_enabled;
    config.scaler.vertical_limit.cpu = 1.0; // single-threaded tailer tasks
    config.scaler.downscale_stability = Duration::from_hours(12);
    let mut t = Turbine::new(config);
    t.add_hosts(24, scuba_host());
    let job = JobId(1);
    let mut jc = JobConfig::stateless("backlogged_tailer", 16, 256);
    jc.max_task_count = 32; // default cap for unprivileged tailers
    t.provision_job(
        job,
        jc,
        TrafficModel::flat(RATE).with_event(outage()),
        1.0e6,
        256.0,
    )
    .expect("provision");
    t.metrics.watch_job(job);
    (t, job)
}

fn main() {
    // cluster1: Auto Scaler available. The operator lifts the 32-task cap
    // six hours into the recovery.
    let (mut cluster1, job1) = platform(true);
    // cluster2: no Auto Scaler; the operator manually sets 128 tasks at
    // the same moment but the traffic distribution stays uneven (skewed
    // partition weights), so per-task utilization is poor.
    let (mut cluster2, job2) = platform(false);
    // Skew: 10% of partitions carry 90% of traffic.
    let mut weights = vec![0.1 / 230.0; 256];
    for w in weights.iter_mut().take(26) {
        *w = 0.9 / 26.0;
    }
    cluster2.skew_job_input(job2, weights);

    let recovery_start = SimTime::ZERO + Duration::from_hours(2 + OUTAGE_DAYS * 24);
    let cap_lift_at = recovery_start + Duration::from_hours(6);
    let horizon = recovery_start + Duration::from_days(4);

    eprintln!("simulating {OUTAGE_DAYS} days of outage + up to 4 days of recovery...");
    let mut lifted = false;
    let mut recovered1: Option<SimTime> = None;
    let mut recovered2: Option<SimTime> = None;
    while cluster1.now() < horizon && (recovered1.is_none() || recovered2.is_none()) {
        cluster1.run_for(Duration::from_mins(30));
        cluster2.run_for(Duration::from_mins(30));
        if !lifted && cluster1.now() >= cap_lift_at {
            cluster1
                .oncall_set(job1, "max_task_count", ConfigValue::Int(128))
                .expect("lift cap");
            cluster2
                .oncall_set(job2, "task_count", ConfigValue::Int(128))
                .expect("manual bump");
            cluster2
                .oncall_set(job2, "max_task_count", ConfigValue::Int(128))
                .expect("manual cap");
            lifted = true;
            eprintln!(
                "{}: cap lifted on cluster1; manual 128 tasks on cluster2",
                cluster1.now()
            );
        }
        let slo_budget = RATE * 90.0;
        if recovered1.is_none()
            && cluster1.now() > recovery_start
            && cluster1.job_status(job1).expect("status").backlog_bytes < slo_budget
        {
            recovered1 = Some(cluster1.now());
        }
        if recovered2.is_none()
            && cluster2.now() > recovery_start
            && cluster2.job_status(job2).expect("status").backlog_bytes < slo_budget
        {
            recovered2 = Some(cluster2.now());
        }
    }

    let every = Duration::from_hours(6);
    let lag_tb = |t: &Turbine, job: JobId| {
        downsample(&t.metrics.watched_job_lag[&job], every)
            .into_iter()
            .map(|(h, lag_secs)| (h, lag_secs * RATE / 1.0e12))
            .collect::<Vec<_>>()
    };
    print_table(
        "Fig 8: backlog (TB) over time",
        &[
            ("cluster1_w_as", lag_tb(&cluster1, job1)),
            ("cluster2_wo_as", lag_tb(&cluster2, job2)),
            (
                "c1_tasks",
                downsample(&cluster1.metrics.watched_job_tasks[&job1], every),
            ),
            (
                "c2_tasks",
                downsample(&cluster2.metrics.watched_job_tasks[&job2], every),
            ),
        ],
    );

    let t1 = recovered1.map(|t| t.since(recovery_start).as_hours_f64());
    let t2 = recovered2.map(|t| t.since(recovery_start).as_hours_f64());
    let t1v = t1.unwrap_or(f64::INFINITY);
    let t2v = t2.unwrap_or(96.0); // did not finish within the horizon
    verdict(
        "auto-scaled cluster recovers the backlog much faster",
        "~8x faster (over two days vs a fraction of a day)",
        &format!(
            "cluster1 = {:.1} h, cluster2 = {} h -> {:.1}x",
            t1v,
            t2.map_or("[>96]".to_string(), |v| format!("{v:.1}")),
            t2v / t1v
        ),
        t2v / t1v > 3.0,
    );
    let peak_tasks1 = cluster1.metrics.watched_job_tasks[&job1]
        .points()
        .iter()
        .map(|&(_, v)| v)
        .fold(0.0, f64::max);
    verdict(
        "scaler ramps 16 -> 32 (cap) -> 128 after the lift",
        "task count reaches 128",
        &format!("peak tasks = {peak_tasks1:.0}"),
        (96.0..=128.0).contains(&peak_tasks1),
    );
}
