//! Scheduler soak — wall-clock comparison of the dense-tick reference
//! stepper against the event-driven control plane on a quiescent-heavy
//! scenario.
//!
//! The scenario is built to look like a real off-peak tier: flat
//! pipelines that burst for 30 minutes at the start of every 8-hour
//! window and sit fully drained behind an input outage the rest of the
//! time, with control cadences spread out (heartbeats every minute, no
//! sub-minute loops). The dense stepper still pays for every 10 s tick;
//! the event-driven scheduler sparse-jumps the quiet spans and only
//! executes the instants where a control round fires. Both runs must
//! produce bit-for-bit identical platform fingerprints — the speedup is
//! only reported if the refactor changed nothing observable.
//!
//! Results go to stdout and `BENCH_sched.json`.
//!
//! ```sh
//! cargo run --release -p turbine-bench --bin sched_soak             # 48 h
//! cargo run --release -p turbine-bench --bin sched_soak -- --hours 24
//! ```

use std::time::Instant;
use turbine::{DriveMode, PlatformFingerprint, Turbine, TurbineConfig};
use turbine_bench::scuba_host;
use turbine_config::JobConfig;
use turbine_types::{Duration, JobId, SimTime};
use turbine_workloads::{TrafficEvent, TrafficEventKind, TrafficModel};

/// Flat traffic that is live only during a 30-minute burst at the start
/// of every 8-hour window; input outages cover everything else (plus the
/// tail past `total`, so the final span is quiet too).
fn bursty_traffic(rate: f64, total: Duration) -> TrafficModel {
    let mut model = TrafficModel::flat(rate);
    let burst = Duration::from_mins(30);
    let window_hours = 8u64;
    let windows = (total.as_secs_f64() / (window_hours as f64 * 3600.0)).ceil() as u64;
    for i in 0..windows {
        let quiet_from = SimTime::ZERO + Duration::from_hours(window_hours * i) + burst;
        // The last quiet span stretches past `total` so the tail stays
        // quiet even after the drive loop overshoots to the tick grid.
        let quiet_until = if i + 1 == windows {
            SimTime::ZERO + total + Duration::from_hours(1)
        } else {
            SimTime::ZERO + Duration::from_hours(window_hours * (i + 1))
        };
        model = model.with_event(TrafficEvent {
            start: quiet_from,
            end: quiet_until,
            kind: TrafficEventKind::InputOutage,
        });
    }
    model
}

fn build_platform(total: Duration) -> Turbine {
    let mut config = TurbineConfig::default();
    // A small off-peak tier: few shards, and no control loop firing more
    // often than every few minutes — the 10 s tick grid is
    // overwhelmingly idle instants that only the dense stepper pays for.
    config.shard_count = 256;
    config.heartbeat_interval = Duration::from_mins(10);
    config.sync_interval = Duration::from_mins(15);
    config.tm_refresh_interval = Duration::from_mins(15);
    config.checkpoint_interval = Duration::from_mins(15);
    config.scaler_interval = Duration::from_mins(30);
    config.metrics_interval = Duration::from_mins(30);
    config.capacity_interval = Duration::from_hours(1);
    config.load_report_interval = Duration::from_hours(1);
    config.rebalance_interval = Duration::from_hours(1);
    // The scenario is about scheduler overhead, not elasticity: pin the
    // parallelism so the quiet spans stay task-stable.
    config.scaler_enabled = false;
    let mut turbine = Turbine::new(config);
    turbine.add_hosts(16, scuba_host());
    for i in 0..8u64 {
        turbine
            .provision_job(
                JobId(i + 1),
                JobConfig::stateless(&format!("sched_pipeline_{i}"), 4, 32),
                bursty_traffic(2.0e6, total),
                1.0e6,
                256.0,
            )
            .expect("provision");
    }
    turbine
}

fn run(total: Duration, mode: DriveMode) -> (PlatformFingerprint, f64, u64) {
    let mut turbine = build_platform(total);
    let started = Instant::now();
    turbine.drive_for(total, mode);
    let wall_ms = started.elapsed().as_secs_f64() * 1.0e3;
    let ticks = turbine.metrics.ticks_executed.get();
    (turbine.fingerprint(), wall_ms, ticks)
}

fn main() {
    let mut hours = 48u64;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match (
            args[i].as_str(),
            args.get(i + 1).and_then(|v| v.parse::<u64>().ok()),
        ) {
            ("--hours", Some(v)) => hours = v,
            _ => {
                eprintln!("usage: sched_soak [--hours H]");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    let total = Duration::from_hours(hours);

    eprintln!("sched soak: {hours} simulated hours, dense-tick reference...");
    let (dense_fp, dense_ms, dense_ticks) = run(total, DriveMode::DenseTick);
    eprintln!("event-driven...");
    let (event_fp, event_ms, event_ticks) = run(total, DriveMode::EventDriven);

    let matches = dense_fp == event_fp;
    let speedup = dense_ms / event_ms.max(1.0e-3);
    println!("## sched soak ({hours} h quiescent-heavy, 10 s tick)");
    println!("  dense-tick : {dense_ms:9.1} ms wall, {dense_ticks} data-plane ticks");
    println!("  event-drive: {event_ms:9.1} ms wall, {event_ticks} data-plane ticks");
    println!("  speedup    : {speedup:9.2}x");
    println!("  fingerprint: {event_fp:?}");

    let json = format!(
        "{{\n  \"bench\": \"sched_soak\",\n  \"sim_hours\": {hours},\n  \
         \"dense_wall_ms\": {dense_ms:.3},\n  \"event_wall_ms\": {event_ms:.3},\n  \
         \"speedup\": {speedup:.3},\n  \"dense_ticks\": {dense_ticks},\n  \
         \"event_ticks\": {event_ticks},\n  \"fingerprint_match\": {matches},\n  \
         \"counters\": {:?},\n  \"now_ms\": {}\n}}\n",
        event_fp.counters, event_fp.now_ms
    );
    std::fs::write("BENCH_sched.json", &json).expect("write BENCH_sched.json");
    print!("{json}");

    if !matches {
        eprintln!("SCHEDULER DIVERGENCE: dense fingerprint {dense_fp:?} vs event {event_fp:?}");
        std::process::exit(1);
    }
    if speedup < 3.0 {
        eprintln!("SPEEDUP BELOW TARGET: {speedup:.2}x < 3x on a quiescent-heavy scenario");
        std::process::exit(1);
    }
}
