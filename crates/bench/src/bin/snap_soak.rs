//! Snapshot soak — the restore-divergence and bisection-speedup gate for
//! `turbine-snap`.
//!
//! Three assertions, any miss is a non-zero exit:
//!
//! 1. **restore divergence == none**: every auto-snapshot taken during a
//!    chaos run (faults + host flaps + traffic storms) restores to a
//!    platform that, driven to the horizon, reproduces the uninterrupted
//!    run's fingerprint and trace digest bit-for-bit — in both dense-tick
//!    and event-driven modes. Any state that escaped serialization shows
//!    up here as a divergence naming the checkpoint minute.
//! 2. **bisection is exact**: on a seeded injected divergence (an extra
//!    `fail_host` at a known minute in one of two otherwise identical
//!    runs), the bisector names exactly the first divergent round.
//! 3. **bisection is >= 5x cheaper**: localizing that round simulates at
//!    least 5x fewer rounds than a from-zero lockstep replay would.
//!
//! Results go to stdout and `BENCH_snap.json`.
//!
//! ```sh
//! cargo run --release -p turbine-bench --bin snap_soak             # 120 min
//! cargo run --release -p turbine-bench --bin snap_soak -- --mins 90
//! ```

use turbine::DriveMode;
use turbine_fuzz::{
    auto_snap_interval, bisect_recorded, drive_recorded, resume_to_horizon, FuzzFault, FuzzFlap,
    FuzzJob, FuzzScenario, FuzzTrafficEvent, Perturbation,
};

/// The speedup the bisection must deliver over a full lockstep replay.
const SPEEDUP_GATE: f64 = 5.0;

/// The chaos workload: two jobs (one diurnal with a storm window), a
/// heartbeat-loss and a syncer-crash fault, and a flapping host — enough
/// churn to touch every serialized subsystem mid-run.
fn chaos_scenario(horizon_mins: u32, seed: u64) -> FuzzScenario {
    let storm_start = horizon_mins / 4;
    let s = FuzzScenario {
        seed,
        horizon_mins,
        tick_secs: 10,
        hosts: 5,
        host_cpu: 56.0,
        host_memory_mb: 256.0 * 1024.0,
        headroom: 0.1,
        band: 0.2,
        scaler_enabled: true,
        jobs: vec![
            FuzzJob {
                name: "ingest".into(),
                stateful: false,
                tasks: 4,
                threads: 2,
                partitions: 16,
                max_tasks: 8,
                rate: 6.0,
                diurnal: 0.3,
                traffic_seed: seed,
                per_thread_rate: 1.0,
                message_bytes: 256.0,
                key_cardinality: 0.0,
                resiliency: "standard".into(),
                events: vec![FuzzTrafficEvent {
                    kind: "multiplier".into(),
                    start_min: storm_start,
                    end_min: storm_start + horizon_mins / 8,
                    magnitude: 2.5,
                    ramp_mins: 1,
                }],
            },
            FuzzJob {
                name: "aggregate".into(),
                stateful: true,
                tasks: 2,
                threads: 2,
                partitions: 8,
                max_tasks: 6,
                rate: 2.0,
                diurnal: 0.0,
                traffic_seed: 0,
                per_thread_rate: 1.0,
                message_bytes: 512.0,
                key_cardinality: 1.0e4,
                resiliency: "critical".into(),
                events: vec![],
            },
        ],
        faults: vec![
            FuzzFault {
                kind: "heartbeat_loss".into(),
                target: 1,
                from_min: horizon_mins / 6,
                len_min: horizon_mins / 10,
            },
            FuzzFault {
                kind: "syncer_crash".into(),
                target: 0,
                from_min: horizon_mins / 2,
                len_min: horizon_mins / 12,
            },
        ],
        flaps: vec![FuzzFlap {
            host: 3,
            fail_min: horizon_mins / 3,
            recover_min: horizon_mins / 3 + horizon_mins / 10,
        }],
    };
    s.validate().expect("chaos scenario must be valid");
    s
}

fn main() {
    let mut mins = 120u32;
    let mut seed = 0x5AA9u64;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = args.get(i + 1).and_then(|v| v.parse::<u64>().ok());
        match (args[i].as_str(), value) {
            ("--mins", Some(v)) => mins = v as u32,
            ("--seed", Some(v)) => seed = v,
            _ => {
                eprintln!("usage: snap_soak [--mins M] [--seed S]");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    if mins < 30 {
        eprintln!("snap_soak needs at least 30 simulated minutes");
        std::process::exit(2);
    }
    let s = chaos_scenario(mins, seed);
    let every = auto_snap_interval(mins);
    eprintln!(
        "snap soak: {mins} simulated minutes of chaos, snapshot every {every} min, seed {seed:#x}"
    );
    let mut failed = false;

    // Gate 1: every checkpoint restore reproduces the uninterrupted run.
    let mut divergences: Vec<String> = Vec::new();
    let mut restores_checked = 0usize;
    let mut checkpoints = 0usize;
    for mode in [DriveMode::EventDriven, DriveMode::DenseTick] {
        let mode_name = match mode {
            DriveMode::EventDriven => "event",
            DriveMode::DenseTick => "dense",
        };
        let run = drive_recorded(&s, mode, Some(every), None);
        checkpoints = run.checkpoints.len();
        for index in 0..run.checkpoints.len() {
            let minute = run.checkpoints[index].minute;
            restores_checked += 1;
            match resume_to_horizon(&s, &run, index) {
                Ok(resumed) => {
                    if resumed.fingerprint != run.artifacts.fingerprint {
                        divergences
                            .push(format!("{mode_name}: fingerprint after restore @{minute}m"));
                    }
                    if resumed.trace_digest != run.artifacts.trace_digest {
                        divergences.push(format!(
                            "{mode_name}: trace digest after restore @{minute}m"
                        ));
                    }
                }
                Err(e) => divergences.push(format!("{mode_name}: restore @{minute}m failed: {e}")),
            }
        }
    }
    let restore_ok = divergences.is_empty();
    if restore_ok {
        println!(
            "[OK] restore divergence: none ({restores_checked} restores across both drive modes)"
        );
    } else {
        failed = true;
        for d in &divergences {
            eprintln!("RESTORE DIVERGENCE: {d}");
        }
    }

    // Gate 2 + 3: bisect a seeded divergence to its exact first round, at
    // >= 5x fewer simulated rounds than a full replay.
    let inject_min = mins * 2 / 3 + 1;
    let expected_min = inject_min + 1;
    let clean = drive_recorded(&s, DriveMode::EventDriven, Some(every), None);
    let perturbed = drive_recorded(
        &s,
        DriveMode::EventDriven,
        Some(every),
        Some(Perturbation {
            host: 2,
            at_min: inject_min,
        }),
    );
    let report = bisect_recorded(&s, &clean, &perturbed, "replay", "clean", "perturbed");
    let (exact_ok, speedup_ok, first_divergent, last_agree, bisect_rounds, full_rounds, speedup) =
        match &report {
            Some(r) => {
                let speedup = r.full_replay_rounds as f64 / r.bisect_rounds.max(1) as f64;
                (
                    r.first_divergent_min == expected_min,
                    speedup >= SPEEDUP_GATE,
                    r.first_divergent_min,
                    r.last_agree_min,
                    r.bisect_rounds,
                    r.full_replay_rounds,
                    speedup,
                )
            }
            None => (false, false, 0, 0, 0, 0, 0.0),
        };
    if exact_ok {
        println!(
            "[OK] bisection exact: seeded divergence at minute {inject_min} localized to \
             first divergent round {first_divergent} (agreed through {last_agree})"
        );
    } else {
        failed = true;
        eprintln!(
            "BISECTION MISSED: expected first divergent round {expected_min}, report: {:?}",
            report.as_ref().map(|r| r.first_divergent_min)
        );
    }
    if speedup_ok {
        println!(
            "[OK] bisection cheap: {bisect_rounds} rounds vs {full_rounds} for a full replay \
             ({speedup:.1}x, gate {SPEEDUP_GATE:.0}x)"
        );
    } else {
        failed = true;
        eprintln!(
            "BISECTION TOO EXPENSIVE: {bisect_rounds} rounds vs {full_rounds} full-replay \
             rounds is below the {SPEEDUP_GATE:.0}x gate"
        );
    }

    let divergence_field = if restore_ok {
        "\"none\"".to_string()
    } else {
        format!("{divergences:?}")
    };
    let json = format!(
        "{{\n  \"bench\": \"snap_soak\",\n  \"sim_mins\": {mins},\n  \
         \"snap_every_mins\": {every},\n  \"checkpoints_per_run\": {checkpoints},\n  \
         \"restores_checked\": {restores_checked},\n  \
         \"restore_divergence\": {divergence_field},\n  \
         \"inject_min\": {inject_min},\n  \"expected_first_divergent_min\": {expected_min},\n  \
         \"first_divergent_min\": {first_divergent},\n  \"last_agree_min\": {last_agree},\n  \
         \"bisect_rounds\": {bisect_rounds},\n  \"full_replay_rounds\": {full_rounds},\n  \
         \"bisect_speedup_x\": {speedup:.1},\n  \"speedup_gate_x\": {SPEEDUP_GATE:.1},\n  \
         \"restore_ok\": {restore_ok},\n  \"bisect_exact_ok\": {exact_ok},\n  \
         \"bisect_speedup_ok\": {speedup_ok}\n}}\n"
    );
    std::fs::write("BENCH_snap.json", &json).expect("write BENCH_snap.json");
    print!("{json}");

    if failed {
        std::process::exit(1);
    }
}
