//! Trace soak — the cost and determinism gate for the causal decision
//! trace, on the exact chaos-soak workload (shared via
//! [`turbine_bench::soak`]).
//!
//! Four assertions, any miss is a non-zero exit:
//!
//! 1. **observational**: tracing on vs off leaves the platform
//!    fingerprint bit-for-bit unchanged;
//! 2. **drive-mode independent**: dense-tick and event-driven runs
//!    produce the identical trace digest;
//! 3. **replayable**: re-running the same seed reproduces the identical
//!    trace digest;
//! 4. **cheap**: min-of-repeats wall clock with tracing on is less than
//!    5 % above tracing off.
//!
//! Results (plus per-component round-latency histogram summaries) go to
//! stdout and `BENCH_trace.json`.
//!
//! ```sh
//! cargo run --release -p turbine-bench --bin trace_soak             # 12 h
//! cargo run --release -p turbine-bench --bin trace_soak -- --mins 60
//! ```

use std::time::Instant;
use turbine::{DriveMode, Turbine};
use turbine_bench::soak::{run_soak, SoakParams};
use turbine_types::Duration;

/// The overhead budget: tracing must cost less than this fraction of the
/// traced-off wall clock.
const OVERHEAD_BUDGET: f64 = 0.05;

/// Absolute slack on the overhead gate, in milliseconds. Short smoke runs
/// finish in single-digit milliseconds, where scheduler jitter alone swings
/// the traced-minus-untraced delta by more than 5 % of the wall clock; a
/// sub-2 ms delta is below what wall-clock timing can resolve, so it never
/// fails the gate. The relative budget does the real work on the default
/// 12 h run (tens of milliseconds of wall time).
const OVERHEAD_NOISE_FLOOR_MS: f64 = 2.0;

fn run(total: Duration, seed: u64, mode: DriveMode, trace_enabled: bool) -> (Turbine, f64) {
    let started = Instant::now();
    let turbine = run_soak(&SoakParams {
        total,
        seed,
        mode,
        trace_enabled,
        // ODS stays on (its production default) so tracing cost is the
        // only variable between the two arms.
        ods: true,
        // The invariant checker's per-tick sweep would drown the signal
        // this benchmark measures; correctness runs under chaos_soak.
        invariants: false,
    });
    let wall_ms = started.elapsed().as_secs_f64() * 1.0e3;
    (turbine, wall_ms)
}

fn main() {
    let mut hours = 12u64;
    let mut mins: Option<u64> = None;
    let mut seed = 0xC4A05u64;
    let mut repeats = 5usize;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = args.get(i + 1).and_then(|v| v.parse::<u64>().ok());
        match (args[i].as_str(), value) {
            ("--hours", Some(v)) => hours = v,
            ("--mins", Some(v)) => mins = Some(v),
            ("--seed", Some(v)) => seed = v,
            ("--repeats", Some(v)) => repeats = (v as usize).max(1),
            _ => {
                eprintln!("usage: trace_soak [--hours H] [--mins M] [--seed S] [--repeats R]");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    let total = mins.map_or_else(|| Duration::from_hours(hours), Duration::from_mins);
    let sim_hours = total.as_hours_f64();

    eprintln!("trace soak: {sim_hours:.1} simulated hours, seed {seed:#x}");
    let mut failed = false;

    // Correctness first: observational, drive-mode independent,
    // replayable. (These runs also warm the allocator for the timings.)
    let (traced, _) = run(total, seed, DriveMode::EventDriven, true);
    let (untraced, _) = run(total, seed, DriveMode::EventDriven, false);
    let (dense, _) = run(total, seed, DriveMode::DenseTick, true);
    let (replay, _) = run(total, seed, DriveMode::EventDriven, true);

    let fingerprint_match = traced.fingerprint() == untraced.fingerprint();
    if fingerprint_match {
        println!("[OK] tracing is observational: fingerprints match with tracing on and off");
    } else {
        failed = true;
        eprintln!(
            "TRACING CHANGED PLATFORM STATE: traced {:?} vs untraced {:?}",
            traced.fingerprint(),
            untraced.fingerprint()
        );
    }
    let dense_event_match = dense.trace().digest() == traced.trace().digest()
        && dense.fingerprint() == traced.fingerprint();
    if dense_event_match {
        println!(
            "[OK] dense-tick and event-driven runs agree (trace digest {:#018x})",
            traced.trace().digest()
        );
    } else {
        failed = true;
        eprintln!(
            "TRACE DIVERGENCE ACROSS DRIVE MODES: dense {:#018x} vs event {:#018x}",
            dense.trace().digest(),
            traced.trace().digest()
        );
    }
    let replay_match = replay.trace().digest() == traced.trace().digest();
    if replay_match {
        println!("[OK] identical trace digest on replay");
    } else {
        failed = true;
        eprintln!(
            "NON-DETERMINISTIC TRACE: {:#018x} vs {:#018x} on replay",
            traced.trace().digest(),
            replay.trace().digest()
        );
    }

    // Overhead: interleaved min-of-repeats, tracing on vs off.
    let mut traced_ms = f64::INFINITY;
    let mut untraced_ms = f64::INFINITY;
    for r in 0..repeats {
        eprintln!("timing repeat {} of {repeats}...", r + 1);
        let (_, on) = run(total, seed, DriveMode::EventDriven, true);
        let (_, off) = run(total, seed, DriveMode::EventDriven, false);
        traced_ms = traced_ms.min(on);
        untraced_ms = untraced_ms.min(off);
    }
    let overhead = (traced_ms - untraced_ms) / untraced_ms;
    let overhead_ok =
        overhead < OVERHEAD_BUDGET || (traced_ms - untraced_ms) < OVERHEAD_NOISE_FLOOR_MS;

    println!("## trace soak ({sim_hours:.1} h chaos workload, min of {repeats})");
    println!("  traced    : {traced_ms:9.1} ms wall");
    println!("  untraced  : {untraced_ms:9.1} ms wall");
    println!(
        "  overhead  : {:9.2} % (budget {:.0} %)",
        overhead * 100.0,
        OVERHEAD_BUDGET * 100.0
    );
    println!(
        "  records   : {} recorded, {} retained, {} evicted",
        traced.trace().total_recorded(),
        traced.trace().len(),
        traced.trace().evicted()
    );

    println!("## per-component round latency (wall clock, traced run)");
    println!(
        "  {:<18} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "component", "rounds", "mean_us", "p50_us", "p99_us", "max_us"
    );
    for (component, hist) in traced.trace().latencies() {
        if hist.count == 0 {
            continue;
        }
        println!(
            "  {:<18} {:>8} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            component.name(),
            hist.count,
            hist.mean_ns() as f64 / 1.0e3,
            hist.quantile_ns(0.5).unwrap_or(0) as f64 / 1.0e3,
            hist.quantile_ns(0.99).unwrap_or(0) as f64 / 1.0e3,
            hist.max_ns as f64 / 1.0e3,
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"trace_soak\",\n  \"sim_hours\": {sim_hours:.1},\n  \
         \"traced_wall_ms\": {traced_ms:.3},\n  \"untraced_wall_ms\": {untraced_ms:.3},\n  \
         \"overhead_pct\": {:.3},\n  \"overhead_budget_pct\": {:.1},\n  \
         \"overhead_ok\": {overhead_ok},\n  \"trace_records\": {},\n  \
         \"trace_digest\": \"{:#018x}\",\n  \"fingerprint_match\": {fingerprint_match},\n  \
         \"dense_event_trace_match\": {dense_event_match},\n  \
         \"replay_match\": {replay_match}\n}}\n",
        overhead * 100.0,
        OVERHEAD_BUDGET * 100.0,
        traced.trace().total_recorded(),
        traced.trace().digest(),
    );
    std::fs::write("BENCH_trace.json", &json).expect("write BENCH_trace.json");
    print!("{json}");

    if !overhead_ok {
        failed = true;
        eprintln!(
            "TRACING TOO EXPENSIVE: {:.2} % overhead exceeds the {:.0} % budget",
            overhead * 100.0,
            OVERHEAD_BUDGET * 100.0
        );
    }
    if failed {
        std::process::exit(1);
    }
}
