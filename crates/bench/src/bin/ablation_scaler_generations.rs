//! Ablation: generation-1 (reactive, Dhalion-like) vs generation-2
//! (proactive + preactive) Auto Scaler — the paper's §V-A list of reactive
//! flaws, quantified:
//!
//! 1. slow convergence to a stable state (no resource estimates);
//! 2. incorrect downscaling of healthy jobs (no lower-bound estimates);
//! 3. harmful scaling on untriaged problems (no root-cause guard).
//!
//! ```sh
//! cargo run --release -p turbine-bench --bin ablation_scaler_generations
//! ```

use turbine::{Turbine, TurbineConfig};
use turbine_autoscaler::ScalerMode;
use turbine_bench::{scuba_host, verdict};
use turbine_config::JobConfig;
use turbine_types::{Duration, JobId};
use turbine_workloads::TrafficModel;

fn platform(mode: ScalerMode) -> Turbine {
    let mut config = TurbineConfig::default();
    config.scaler.mode = mode;
    config.scaler.min_action_gap = Duration::from_mins(2);
    config.scaler.downscale_stability = Duration::from_mins(30);
    config.scaler.vertical_limit.cpu = 1.0;
    let mut t = Turbine::new(config);
    t.add_hosts(16, scuba_host());
    t
}

fn main() {
    // --- Flaw 1: convergence speed on an undersized job.
    let mut times = Vec::new();
    for mode in [ScalerMode::Reactive, ScalerMode::Full] {
        let mut t = platform(mode);
        let job = JobId(1);
        let mut jc = JobConfig::stateless("undersized", 2, 256);
        jc.max_task_count = 256;
        t.provision_job(job, jc, TrafficModel::flat(24.0e6), 1.0e6, 256.0)
            .expect("provision");
        let mut converged = None;
        for m in 1..=240u64 {
            t.run_for(Duration::from_mins(1));
            let s = t.job_status(job).expect("status");
            if s.backlog_bytes < 24.0e6 * 90.0 && s.running_tasks >= 24 && !s.paused {
                converged = Some(m);
                break;
            }
        }
        times.push((mode, converged, t.metrics.scaling_actions.get()));
    }
    let (_, reactive_time, reactive_actions) = times[0];
    let (_, full_time, full_actions) = times[1];
    verdict(
        "gen-2 converges an undersized job faster",
        "reactive doubling takes many rounds; estimates size it at once",
        &format!(
            "reactive: {:?} min / {reactive_actions} actions, full: {:?} min / {full_actions} actions",
            reactive_time, full_time
        ),
        full_time.unwrap_or(999) <= reactive_time.unwrap_or(999)
            && full_actions < reactive_actions,
    );

    // --- Flaw 2: blind downscale of a healthy-but-needed job.
    let mut violations = Vec::new();
    for mode in [ScalerMode::Reactive, ScalerMode::Full] {
        let mut t = platform(mode);
        let job = JobId(1);
        let mut jc = JobConfig::stateless("steady", 12, 256);
        jc.max_task_count = 256;
        // 10 MB/s against 12 tasks: correctly sized with a little headroom.
        t.provision_job(job, jc, TrafficModel::flat(10.0e6), 1.0e6, 256.0)
            .expect("provision");
        let mut slo_violation_minutes = 0u64;
        for _ in 0..360u64 {
            t.run_for(Duration::from_mins(1));
            let s = t.job_status(job).expect("status");
            if s.backlog_bytes > 10.0e6 * 90.0 {
                slo_violation_minutes += 1;
            }
        }
        violations.push((mode, slo_violation_minutes));
    }
    verdict(
        "gen-2 never downscales a healthy job into unhealthiness",
        "reactive blind shrink causes backlog on a previously healthy job",
        &format!(
            "SLO-violation minutes over 6h — reactive: {}, full: {}",
            violations[0].1, violations[1].1
        ),
        violations[1].1 == 0,
    );

    // --- Flaw 3: untriaged problems (dependency failure stalls the sink:
    // processing drops regardless of capacity).
    let mut grew = Vec::new();
    for mode in [ScalerMode::Reactive, ScalerMode::Full] {
        let mut t = platform(mode);
        let job = JobId(1);
        let mut jc = JobConfig::stateless("dependency_victim", 8, 256);
        jc.max_task_count = 256;
        t.provision_job(job, jc, TrafficModel::flat(4.0e6), 1.0e6, 256.0)
            .expect("provision");
        t.run_for(Duration::from_mins(10));
        // The dependency "fails": tasks can only process at 10% speed. The
        // engine models this as a collapsed true per-thread rate... which
        // the scaler cannot know; capacity estimates still say the job has
        // plenty. Scaling up cannot help (and amplifies downstream load).
        t.with_job_true_rate(job, 0.1e6);
        let before = t.job_status(job).expect("status").running_config_tasks;
        t.run_for(Duration::from_mins(40));
        let after = t.job_status(job).expect("status").running_config_tasks;
        grew.push((mode, before, after, t.metrics.alerts.get()));
    }
    let (_, _, reactive_after, _) = grew[0];
    let (_, full_before, full_after, full_alerts) = grew[1];
    verdict(
        "gen-2 alerts instead of scaling on untriaged problems",
        "no unnecessary and potentially harmful scaling; operator alert fired",
        &format!(
            "reactive grew to {reactive_after} tasks; full stayed at {full_after} (from {full_before}) with {full_alerts} alerts"
        ),
        full_alerts > 0 && reactive_after >= full_after * 3,
    );
}
