//! Chaos soak — a seeded multi-fault timeline against the whole platform
//! with the invariant checker on every tick.
//!
//! The run schedules host flaps plus every chaos-engine fault class
//! (Task Service outage, Job Store outage, transient and sustained
//! heartbeat loss, a State Syncer crash, a Scribe read stall) across the
//! soak window, leaving at least the final 10 % of the run fault-free so
//! convergence can be asserted. The timeline is executed three times:
//! once under the dense-tick reference stepper, then twice under the
//! event-driven scheduler from the same seed. The event-driven platform
//! fingerprint AND decision-trace digest must match the dense reference
//! bit-for-bit, the replay must reproduce itself bit-for-bit, and zero
//! invariants may fire — any miss is a non-zero exit.
//!
//! The scenario itself lives in [`turbine_bench::soak`], shared with the
//! `trace_soak` overhead benchmark.
//!
//! ```sh
//! cargo run --release -p turbine-bench --bin chaos_soak            # 48 h soak
//! cargo run --release -p turbine-bench --bin chaos_soak -- --mins 30
//! cargo run --release -p turbine-bench --bin chaos_soak -- --hours 72 --seed 7
//! ```

use turbine::{DriveMode, PlatformFingerprint};
use turbine_bench::soak::{run_soak, SoakParams};
use turbine_types::{Duration, SimTime};

struct SoakOutcome {
    fault_log: Vec<(SimTime, String)>,
    digest: u64,
    trace_digest: u64,
    trace_records: u64,
    violations: Vec<String>,
    total_violations: u64,
    ticks_checked: u64,
    fingerprint: PlatformFingerprint,
}

fn soak(total: Duration, seed: u64, mode: DriveMode) -> SoakOutcome {
    let turbine = run_soak(&SoakParams {
        total,
        seed,
        mode,
        trace_enabled: true,
        invariants: true,
    });
    let checker = turbine.invariant_checker().expect("checker enabled");
    SoakOutcome {
        fault_log: turbine.fault_injector().log().to_vec(),
        digest: turbine.fault_injector().log_digest(),
        trace_digest: turbine.trace().digest(),
        trace_records: turbine.trace().total_recorded(),
        violations: turbine
            .invariant_violations()
            .iter()
            .map(|v| {
                format!(
                    "[{:>9.2} h] {}: {}",
                    v.at.as_hours_f64(),
                    v.invariant,
                    v.detail
                )
            })
            .collect(),
        total_violations: checker.total_violations(),
        ticks_checked: checker.ticks_checked(),
        fingerprint: turbine.fingerprint(),
    }
}

fn main() {
    let mut hours = 48u64;
    let mut mins: Option<u64> = None;
    let mut seed = 0xC4A05u64;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = args.get(i + 1).and_then(|v| v.parse::<u64>().ok());
        match (args[i].as_str(), value) {
            ("--hours", Some(v)) => hours = v,
            ("--mins", Some(v)) => mins = Some(v),
            ("--seed", Some(v)) => seed = v,
            _ => {
                eprintln!("usage: chaos_soak [--hours H] [--mins M] [--seed S]");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    let total = mins.map_or_else(|| Duration::from_hours(hours), Duration::from_mins);

    eprintln!(
        "chaos soak: {:.1} simulated hours, seed {seed:#x}, run 1 of 3 (dense reference)...",
        total.as_hours_f64()
    );
    let dense = soak(total, seed, DriveMode::DenseTick);
    eprintln!("run 2 of 3 (event-driven, must match the dense reference bit-for-bit)...");
    let first = soak(total, seed, DriveMode::EventDriven);
    eprintln!("run 3 of 3 (event-driven replay, must reproduce bit-for-bit)...");
    let second = soak(total, seed, DriveMode::EventDriven);

    println!(
        "## chaos soak fault timeline ({:.1} h, seed {seed:#x})",
        total.as_hours_f64()
    );
    for (at, entry) in &first.fault_log {
        println!("  [{:>9.2} h] {entry}", at.as_hours_f64());
    }
    println!(
        "## {} fault transitions, {} ticks checked, digest {:#018x}",
        first.fault_log.len(),
        first.ticks_checked,
        first.digest
    );
    println!(
        "## {} trace records, trace digest {:#018x}",
        first.trace_records, first.trace_digest
    );
    println!("## fingerprint {:?}", first.fingerprint);

    let mut failed = false;
    if first.total_violations > 0 {
        failed = true;
        eprintln!("INVARIANT VIOLATIONS ({}):", first.total_violations);
        for v in &first.violations {
            eprintln!("  {v}");
        }
    } else {
        println!(
            "[OK] zero invariant violations across {} ticks",
            first.ticks_checked
        );
    }
    if dense.fingerprint == first.fingerprint && dense.fault_log == first.fault_log {
        println!("[OK] event-driven run matches the dense-tick reference bit-for-bit");
    } else {
        failed = true;
        eprintln!(
            "SCHEDULER DIVERGENCE: dense fingerprint {:?} vs event {:?}",
            dense.fingerprint, first.fingerprint
        );
    }
    if dense.trace_digest == first.trace_digest {
        println!(
            "[OK] event-driven decision trace matches the dense reference \
             (digest {:#018x})",
            first.trace_digest
        );
    } else {
        failed = true;
        eprintln!(
            "TRACE DIVERGENCE: dense trace digest {:#018x} vs event {:#018x}",
            dense.trace_digest, first.trace_digest
        );
    }
    if first.fault_log == second.fault_log && first.digest == second.digest {
        println!(
            "[OK] identical fault log on replay (digest {:#018x})",
            second.digest
        );
    } else {
        failed = true;
        eprintln!(
            "NON-DETERMINISTIC REPLAY: digest {:#018x} vs {:#018x}, {} vs {} entries",
            first.digest,
            second.digest,
            first.fault_log.len(),
            second.fault_log.len()
        );
    }
    if first.fingerprint == second.fingerprint && first.trace_digest == second.trace_digest {
        println!("[OK] identical platform fingerprint and trace digest on replay");
    } else {
        failed = true;
        eprintln!(
            "NON-DETERMINISTIC REPLAY: fingerprint {:?} (trace {:#018x}) vs {:?} (trace {:#018x})",
            first.fingerprint, first.trace_digest, second.fingerprint, second.trace_digest
        );
    }
    if failed {
        std::process::exit(1);
    }
}
