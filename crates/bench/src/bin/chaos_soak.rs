//! Chaos soak — a seeded multi-fault timeline against the whole platform
//! with the invariant checker on every tick.
//!
//! The run schedules host flaps plus every chaos-engine fault class
//! (Task Service outage, Job Store outage, transient and sustained
//! heartbeat loss, a State Syncer crash, a Scribe read stall) across the
//! soak window, leaving at least the final 10 % of the run fault-free so
//! convergence can be asserted. The timeline is executed three times:
//! once under the dense-tick reference stepper, then twice under the
//! event-driven scheduler from the same seed. The event-driven platform
//! fingerprint must match the dense reference bit-for-bit, the replay
//! must reproduce itself bit-for-bit, and zero invariants may fire — any
//! miss is a non-zero exit.
//!
//! ```sh
//! cargo run --release -p turbine-bench --bin chaos_soak            # 48 h soak
//! cargo run --release -p turbine-bench --bin chaos_soak -- --mins 30
//! cargo run --release -p turbine-bench --bin chaos_soak -- --hours 72 --seed 7
//! ```

use turbine::{
    DriveMode, Fault, FaultPlan, InvariantConfig, PlatformFingerprint, Turbine, TurbineConfig,
};
use turbine_bench::scuba_host;
use turbine_config::JobConfig;
use turbine_sim::SimRng;
use turbine_types::{Duration, HostId, JobId, SimTime};
use turbine_workloads::TrafficModel;

/// One host flap derived from the seed: fail at `fail_at`, recover at
/// `recover_at`.
struct HostFlap {
    host: usize,
    fail_at: SimTime,
    recover_at: SimTime,
}

struct SoakOutcome {
    fault_log: Vec<(SimTime, String)>,
    digest: u64,
    violations: Vec<String>,
    total_violations: u64,
    ticks_checked: u64,
    fingerprint: PlatformFingerprint,
}

fn build_platform() -> (Turbine, Vec<HostId>) {
    let mut config = TurbineConfig::default();
    config.scaler.downscale_stability = Duration::from_hours(4);
    let mut turbine = Turbine::new(config);
    let hosts = turbine.add_hosts(8, scuba_host());
    // Three stateless pipelines plus one stateful job with a modest key
    // space (~1 GB of state, a few seconds per state move) so complex
    // syncs complete well inside the convergence window.
    for (i, &(name, tasks, rate, swing, seed)) in [
        ("soak_events", 8u32, 6.0e6, 0.3, 101u64),
        ("soak_metrics", 4, 3.0e6, 0.25, 102),
        ("soak_counters", 4, 2.0e6, 0.2, 103),
    ]
    .iter()
    .enumerate()
    {
        let mut jc = JobConfig::stateless(name, tasks, 64);
        jc.max_task_count = 64;
        turbine
            .provision_job(
                JobId(i as u64 + 1),
                jc,
                TrafficModel::diurnal(rate, swing, seed),
                1.0e6,
                256.0,
            )
            .expect("provision");
    }
    let mut jc = JobConfig::stateless("soak_sessions", 4, 64);
    jc.max_task_count = 64;
    turbine
        .provision_stateful_job(
            JobId(4),
            jc,
            TrafficModel::diurnal(2.0e6, 0.2, 104),
            1.0e6,
            256.0,
            1.0e6,
        )
        .expect("provision");
    (turbine, hosts)
}

/// Schedule the fault timeline. Positions are fractions of the total run
/// so the same shape works for a 30-minute smoke run and a 72-hour soak;
/// every window ends by 88 % of the run.
fn schedule_faults(turbine: &mut Turbine, total: Duration) {
    let frac = |f: f64| SimTime::ZERO + Duration::from_secs_f64(total.as_secs_f64() * f);
    let span = |f: f64| Duration::from_secs_f64(total.as_secs_f64() * f);
    let plan = |fault: Fault, from: SimTime, len: Duration| FaultPlan {
        fault,
        from,
        until: Some(from + len),
    };

    turbine.schedule_fault(plan(Fault::TaskServiceDown, frac(0.10), span(0.05)));
    turbine.schedule_fault(plan(Fault::JobStoreDown, frac(0.25), span(0.05)));

    // Heartbeat loss: one transient single-beat drop (must not trigger
    // fail-over) and one sustained loss (must). Victims come from the
    // first two hosts; host flaps only touch the rest.
    let transient = turbine
        .cluster
        .containers_on(turbine.cluster.hosts()[0])
        .expect("containers")[0];
    turbine.schedule_fault(plan(
        Fault::HeartbeatLoss(transient),
        frac(0.40),
        Duration::from_secs(15),
    ));
    let sustained = turbine
        .cluster
        .containers_on(turbine.cluster.hosts()[1])
        .expect("containers")[0];
    turbine.schedule_fault(plan(
        Fault::HeartbeatLoss(sustained),
        frac(0.50),
        span(0.04),
    ));

    turbine.schedule_fault(plan(Fault::SyncerCrash, frac(0.65), span(0.04)));

    let category = turbine
        .job_category(JobId(3))
        .expect("category")
        .to_string();
    turbine.schedule_fault(plan(Fault::ScribeStall(category), frac(0.78), span(0.05)));
}

/// Derive the host-flap schedule from the seed: one flap roughly every
/// 6 hours (at least one per run), each 10–30 minutes, all on hosts 2+,
/// all recovered by 85 % of the run.
fn flap_schedule(total: Duration, hosts: usize, rng: &mut SimRng) -> Vec<HostFlap> {
    let flaps = ((total.as_secs_f64() / 21_600.0).ceil() as usize).max(1);
    (0..flaps)
        .map(|i| {
            let slot =
                total.as_secs_f64() * 0.80 * (i as f64 + rng.uniform(0.2, 0.8)) / flaps as f64;
            let fail_at = SimTime::ZERO + Duration::from_secs_f64(slot);
            let len = rng.uniform(600.0, 1800.0).min(total.as_secs_f64() * 0.05);
            HostFlap {
                host: 2 + rng.uniform_usize(0, hosts - 2),
                fail_at,
                recover_at: fail_at + Duration::from_secs_f64(len),
            }
        })
        .collect()
}

fn soak(total: Duration, seed: u64, mode: DriveMode) -> SoakOutcome {
    let mut rng = SimRng::seeded(seed);
    let (mut turbine, hosts) = build_platform();
    turbine.enable_invariant_checks(InvariantConfig::default());
    turbine.drive_for(Duration::from_mins(5).min(total), mode); // settle before chaos
    schedule_faults(&mut turbine, total);
    let flaps = flap_schedule(total, hosts.len(), &mut rng);

    let end = SimTime::ZERO + total;
    let mut fail_queue: Vec<(SimTime, usize)> = flaps.iter().map(|f| (f.fail_at, f.host)).collect();
    let mut recover_queue: Vec<(SimTime, usize)> =
        flaps.iter().map(|f| (f.recover_at, f.host)).collect();
    while turbine.now() < end {
        let now = turbine.now();
        // Recoveries first so a host is never failed while already down.
        recover_queue.retain(|&(at, h)| {
            if at <= now {
                turbine.recover_host(hosts[h]).expect("recover host");
                false
            } else {
                true
            }
        });
        fail_queue.retain(|&(at, h)| {
            if at <= now {
                turbine.fail_host(hosts[h]).expect("fail host");
                false
            } else {
                true
            }
        });
        turbine.drive_for(Duration::from_mins(1).min(end.since(now)), mode);
    }

    let checker = turbine.invariant_checker().expect("checker enabled");
    let fingerprint = turbine.fingerprint();
    SoakOutcome {
        fault_log: turbine.fault_injector().log().to_vec(),
        digest: turbine.fault_injector().log_digest(),
        violations: turbine
            .invariant_violations()
            .iter()
            .map(|v| {
                format!(
                    "[{:>9.2} h] {}: {}",
                    v.at.as_hours_f64(),
                    v.invariant,
                    v.detail
                )
            })
            .collect(),
        total_violations: checker.total_violations(),
        ticks_checked: checker.ticks_checked(),
        fingerprint,
    }
}

fn main() {
    let mut hours = 48u64;
    let mut mins: Option<u64> = None;
    let mut seed = 0xC4A05u64;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = args.get(i + 1).and_then(|v| v.parse::<u64>().ok());
        match (args[i].as_str(), value) {
            ("--hours", Some(v)) => hours = v,
            ("--mins", Some(v)) => mins = Some(v),
            ("--seed", Some(v)) => seed = v,
            _ => {
                eprintln!("usage: chaos_soak [--hours H] [--mins M] [--seed S]");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    let total = mins.map_or_else(|| Duration::from_hours(hours), Duration::from_mins);

    eprintln!(
        "chaos soak: {:.1} simulated hours, seed {seed:#x}, run 1 of 3 (dense reference)...",
        total.as_hours_f64()
    );
    let dense = soak(total, seed, DriveMode::DenseTick);
    eprintln!("run 2 of 3 (event-driven, must match the dense reference bit-for-bit)...");
    let first = soak(total, seed, DriveMode::EventDriven);
    eprintln!("run 3 of 3 (event-driven replay, must reproduce bit-for-bit)...");
    let second = soak(total, seed, DriveMode::EventDriven);

    println!(
        "## chaos soak fault timeline ({:.1} h, seed {seed:#x})",
        total.as_hours_f64()
    );
    for (at, entry) in &first.fault_log {
        println!("  [{:>9.2} h] {entry}", at.as_hours_f64());
    }
    println!(
        "## {} fault transitions, {} ticks checked, digest {:#018x}",
        first.fault_log.len(),
        first.ticks_checked,
        first.digest
    );
    println!("## fingerprint {:?}", first.fingerprint);

    let mut failed = false;
    if first.total_violations > 0 {
        failed = true;
        eprintln!("INVARIANT VIOLATIONS ({}):", first.total_violations);
        for v in &first.violations {
            eprintln!("  {v}");
        }
    } else {
        println!(
            "[OK] zero invariant violations across {} ticks",
            first.ticks_checked
        );
    }
    if dense.fingerprint == first.fingerprint && dense.fault_log == first.fault_log {
        println!("[OK] event-driven run matches the dense-tick reference bit-for-bit");
    } else {
        failed = true;
        eprintln!(
            "SCHEDULER DIVERGENCE: dense fingerprint {:?} vs event {:?}",
            dense.fingerprint, first.fingerprint
        );
    }
    if first.fault_log == second.fault_log && first.digest == second.digest {
        println!(
            "[OK] identical fault log on replay (digest {:#018x})",
            second.digest
        );
    } else {
        failed = true;
        eprintln!(
            "NON-DETERMINISTIC REPLAY: digest {:#018x} vs {:#018x}, {} vs {} entries",
            first.digest,
            second.digest,
            first.fault_log.len(),
            second.fault_log.len()
        );
    }
    if first.fingerprint == second.fingerprint {
        println!("[OK] identical platform fingerprint on replay");
    } else {
        failed = true;
        eprintln!(
            "NON-DETERMINISTIC REPLAY: fingerprint {:?} vs {:?}",
            first.fingerprint, second.fingerprint
        );
    }
    if failed {
        std::process::exit(1);
    }
}
