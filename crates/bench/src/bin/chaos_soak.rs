//! Chaos soak — a seeded multi-fault timeline against the whole platform
//! with the invariant checker on every tick.
//!
//! The run schedules host flaps plus every chaos-engine fault class
//! (Task Service outage, Job Store outage, transient and sustained
//! heartbeat loss, a State Syncer crash, a Scribe read stall) across the
//! soak window, leaving at least the final 10 % of the run fault-free so
//! convergence can be asserted. The timeline is executed three times:
//! once under the dense-tick reference stepper, then twice under the
//! event-driven scheduler from the same seed. The event-driven platform
//! fingerprint AND decision-trace digest must match the dense reference
//! bit-for-bit, the replay must reproduce itself bit-for-bit, and zero
//! invariants may fire — any miss is a non-zero exit.
//!
//! On top of the determinism gates the soak enforces the per-tier SLO
//! contract: every resiliency tier that recovered must land its p99
//! recovery time inside that tier's budget, the critical tier must have
//! recorded at least one recovery (the timeline aims a sustained
//! heartbeat loss at a critical job on purpose), and the warm-standby
//! fast path must beat the standard full-sync fail-over by at least 5×
//! on the median recovery (p99 carries one heartbeat interval of
//! detection-phase jitter, bounded by the absolute budgets instead).
//! Pass `--slo PATH` to emit the per-tier report as JSON
//! (`BENCH_slo.json` in CI).
//!
//! The scenario itself lives in [`turbine_bench::soak`], shared with the
//! `trace_soak` overhead benchmark.
//!
//! ```sh
//! cargo run --release -p turbine-bench --bin chaos_soak            # 48 h soak
//! cargo run --release -p turbine-bench --bin chaos_soak -- --mins 30
//! cargo run --release -p turbine-bench --bin chaos_soak -- --hours 72 --seed 7
//! cargo run --release -p turbine-bench --bin chaos_soak -- --mins 30 --slo BENCH_slo.json
//! ```

use turbine::{tier_slo_table, DriveMode, PlatformFingerprint, TierSlo};
use turbine_bench::soak::{run_soak, SoakParams};
use turbine_config::ResiliencyClass;
use turbine_types::{Duration, SimTime};

struct SoakOutcome {
    fault_log: Vec<(SimTime, String)>,
    digest: u64,
    trace_digest: u64,
    trace_records: u64,
    violations: Vec<String>,
    total_violations: u64,
    ticks_checked: u64,
    fingerprint: PlatformFingerprint,
    tier_slo: Vec<TierSlo>,
}

fn soak(total: Duration, seed: u64, mode: DriveMode) -> SoakOutcome {
    let turbine = run_soak(&SoakParams {
        total,
        seed,
        mode,
        trace_enabled: true,
        ods: true,
        invariants: true,
    });
    let checker = turbine.invariant_checker().expect("checker enabled");
    SoakOutcome {
        fault_log: turbine.fault_injector().log().to_vec(),
        digest: turbine.fault_injector().log_digest(),
        trace_digest: turbine.trace().digest(),
        trace_records: turbine.trace().total_recorded(),
        violations: turbine
            .invariant_violations()
            .iter()
            .map(|v| {
                format!(
                    "[{:>9.2} h] {}: {}",
                    v.at.as_hours_f64(),
                    v.invariant,
                    v.detail
                )
            })
            .collect(),
        total_violations: checker.total_violations(),
        ticks_checked: checker.ticks_checked(),
        fingerprint: turbine.fingerprint(),
        tier_slo: tier_slo_table(&turbine),
    }
}

fn slo_json(total: Duration, seed: u64, tiers: &[TierSlo], slo_digest: u64) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"simulated_hours\": {:.2},\n  \"seed\": \"{seed:#x}\",\n  \
         \"slo_digest\": \"{slo_digest:#018x}\",\n  \"tiers\": [\n",
        total.as_hours_f64()
    ));
    for (i, t) in tiers.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"tier\": \"{}\", \"jobs\": {}, \"recoveries\": {}, \
             \"fast_recoveries\": {}, \"p50_ms\": {}, \"p99_ms\": {}, \
             \"budget_ms\": {}, \"downtime_ms\": {}, \"within_budget\": {}}}{}\n",
            t.tier.as_str(),
            t.jobs,
            t.recoveries,
            t.fast_recoveries,
            t.p50_ms,
            t.p99_ms,
            t.budget_ms,
            t.downtime_ms,
            t.within_budget(),
            if i + 1 < tiers.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut hours = 48u64;
    let mut mins: Option<u64> = None;
    let mut seed = 0xC4A05u64;
    let mut slo_path: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = args.get(i + 1).and_then(|v| v.parse::<u64>().ok());
        match (args[i].as_str(), value) {
            ("--hours", Some(v)) => hours = v,
            ("--mins", Some(v)) => mins = Some(v),
            ("--seed", Some(v)) => seed = v,
            ("--slo", _) if args.get(i + 1).is_some() => {
                slo_path = Some(args[i + 1].clone());
            }
            _ => {
                eprintln!("usage: chaos_soak [--hours H] [--mins M] [--seed S] [--slo PATH]");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    let total = mins.map_or_else(|| Duration::from_hours(hours), Duration::from_mins);

    eprintln!(
        "chaos soak: {:.1} simulated hours, seed {seed:#x}, run 1 of 3 (dense reference)...",
        total.as_hours_f64()
    );
    let dense = soak(total, seed, DriveMode::DenseTick);
    eprintln!("run 2 of 3 (event-driven, must match the dense reference bit-for-bit)...");
    let first = soak(total, seed, DriveMode::EventDriven);
    eprintln!("run 3 of 3 (event-driven replay, must reproduce bit-for-bit)...");
    let second = soak(total, seed, DriveMode::EventDriven);

    println!(
        "## chaos soak fault timeline ({:.1} h, seed {seed:#x})",
        total.as_hours_f64()
    );
    for (at, entry) in &first.fault_log {
        println!("  [{:>9.2} h] {entry}", at.as_hours_f64());
    }
    println!(
        "## {} fault transitions, {} ticks checked, digest {:#018x}",
        first.fault_log.len(),
        first.ticks_checked,
        first.digest
    );
    println!(
        "## {} trace records, trace digest {:#018x}",
        first.trace_records, first.trace_digest
    );
    println!("## fingerprint {:?}", first.fingerprint);

    let mut failed = false;
    if first.total_violations > 0 {
        failed = true;
        eprintln!("INVARIANT VIOLATIONS ({}):", first.total_violations);
        for v in &first.violations {
            eprintln!("  {v}");
        }
    } else {
        println!(
            "[OK] zero invariant violations across {} ticks",
            first.ticks_checked
        );
    }
    if dense.fingerprint == first.fingerprint && dense.fault_log == first.fault_log {
        println!("[OK] event-driven run matches the dense-tick reference bit-for-bit");
    } else {
        failed = true;
        eprintln!(
            "SCHEDULER DIVERGENCE: dense fingerprint {:?} vs event {:?}",
            dense.fingerprint, first.fingerprint
        );
    }
    if dense.trace_digest == first.trace_digest {
        println!(
            "[OK] event-driven decision trace matches the dense reference \
             (digest {:#018x})",
            first.trace_digest
        );
    } else {
        failed = true;
        eprintln!(
            "TRACE DIVERGENCE: dense trace digest {:#018x} vs event {:#018x}",
            dense.trace_digest, first.trace_digest
        );
    }
    if first.fault_log == second.fault_log && first.digest == second.digest {
        println!(
            "[OK] identical fault log on replay (digest {:#018x})",
            second.digest
        );
    } else {
        failed = true;
        eprintln!(
            "NON-DETERMINISTIC REPLAY: digest {:#018x} vs {:#018x}, {} vs {} entries",
            first.digest,
            second.digest,
            first.fault_log.len(),
            second.fault_log.len()
        );
    }
    if first.fingerprint == second.fingerprint && first.trace_digest == second.trace_digest {
        println!("[OK] identical platform fingerprint and trace digest on replay");
    } else {
        failed = true;
        eprintln!(
            "NON-DETERMINISTIC REPLAY: fingerprint {:?} (trace {:#018x}) vs {:?} (trace {:#018x})",
            first.fingerprint, first.trace_digest, second.fingerprint, second.trace_digest
        );
    }

    println!(
        "## per-tier SLO report (slo digest {:#018x})",
        first.fingerprint.slo_digest
    );
    for t in &first.tier_slo {
        println!(
            "  tier {:>11}: {} job(s) | {} recover(ies), {} fast | p50 {}ms p99 {}ms \
             (budget {}ms, {}) | downtime {}ms",
            t.tier.as_str(),
            t.jobs,
            t.recoveries,
            t.fast_recoveries,
            t.p50_ms,
            t.p99_ms,
            t.budget_ms,
            if t.within_budget() {
                "ok"
            } else {
                "OVER BUDGET"
            },
            t.downtime_ms,
        );
    }
    let tier = |c: ResiliencyClass| first.tier_slo.iter().find(|t| t.tier == c);
    let critical = tier(ResiliencyClass::Critical);
    let standard = tier(ResiliencyClass::Standard);
    match critical {
        Some(c) if c.recoveries > 0 => {
            println!(
                "[OK] critical tier recorded {} recover(ies), {} via the fast path",
                c.recoveries, c.fast_recoveries
            );
        }
        _ => {
            failed = true;
            eprintln!("SLO GATE: critical tier recorded no recoveries (fast path never exercised)");
        }
    }
    for t in &first.tier_slo {
        if !t.within_budget() {
            failed = true;
            eprintln!(
                "SLO GATE: tier {} p99 recovery {}ms exceeds its {}ms budget",
                t.tier.as_str(),
                t.p99_ms,
                t.budget_ms
            );
        }
    }
    if first.tier_slo.iter().all(TierSlo::within_budget) {
        println!("[OK] every tier's p99 recovery is within its budget");
    }
    // The speedup gate compares medians: individual recoveries carry up
    // to one heartbeat interval of detection-phase jitter (a sever landing
    // right after a beat is noticed a round later), which a p99 over a
    // long soak always absorbs while the typical path stays put. The p99
    // absolute budgets above already bound the tail.
    if let (Some(c), Some(s)) = (critical, standard) {
        if c.recoveries > 0 && s.recoveries > 0 {
            if s.p50_ms >= 5 * c.p50_ms {
                println!(
                    "[OK] warm-standby fast path is {:.1}x faster than the standard \
                     full-sync path (critical p50 {}ms vs standard p50 {}ms, need 5x)",
                    s.p50_ms as f64 / c.p50_ms as f64,
                    c.p50_ms,
                    s.p50_ms
                );
            } else {
                failed = true;
                eprintln!(
                    "SLO GATE: fast path only {:.1}x faster (critical p50 {}ms vs \
                     standard p50 {}ms, need 5x)",
                    s.p50_ms as f64 / c.p50_ms as f64,
                    c.p50_ms,
                    s.p50_ms
                );
            }
        }
    }
    if let Some(path) = &slo_path {
        let json = slo_json(total, seed, &first.tier_slo, first.fingerprint.slo_digest);
        if let Err(e) = std::fs::write(path, &json) {
            failed = true;
            eprintln!("SLO GATE: cannot write {path}: {e}");
        } else {
            println!("[OK] per-tier SLO report written to {path}");
        }
    }

    if failed {
        std::process::exit(1);
    }
}
