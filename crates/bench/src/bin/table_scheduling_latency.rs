//! Scheduling & synchronization latency claims (paper §III-B, §IV-D,
//! §VI-A text) — the "table" of headline numbers.
//!
//! * placing 100 K shards onto thousands of containers takes < 2 s;
//! * simple synchronization of tens of thousands of jobs completes within
//!   seconds (batched);
//! * end-to-end scheduling of a new job is 1–2 minutes;
//! * a global stream-processing engine push restarting every task
//!   completes within 5 minutes;
//! * after a host failure, fail-over starts within 60 s and average task
//!   downtime stays under 2 minutes.
//!
//! ```sh
//! cargo run --release -p turbine-bench --bin table_scheduling_latency
//! ```

use std::collections::HashMap;
use std::time::Instant;
use turbine::{Turbine, TurbineConfig};
use turbine_bench::{scuba_host, verdict};
use turbine_config::{ConfigLevel, ConfigValue, JobConfig};
use turbine_jobstore::{JobService, JobStore, MemWal};
use turbine_shardmgr::{compute_placement, PlacementConfig, PlacementInput};
use turbine_statesyncer::{Redistribute, StateSyncer, SyncEnvironment};
use turbine_types::{ContainerId, Duration, JobId, Resources, ShardId};
use turbine_workloads::TrafficModel;

struct NoopEnv;
impl SyncEnvironment for NoopEnv {
    fn request_stop(&mut self, _job: JobId) {}
    fn all_stopped(&mut self, _job: JobId) -> bool {
        true
    }
    fn redistribute_checkpoints(
        &mut self,
        _job: JobId,
        _o: u32,
        _n: u32,
    ) -> Result<Redistribute, String> {
        Ok(Redistribute::Done)
    }
}

fn main() {
    // ---- 1. Placement of 100K shards onto 3000 containers (wall clock).
    let shards: Vec<(ShardId, Resources)> = (0..100_000u64)
        .map(|i| {
            (
                ShardId(i),
                Resources::cpu_mem(0.1 + (i % 17) as f64 * 0.05, 200.0 + (i % 23) as f64 * 40.0),
            )
        })
        .collect();
    let containers: Vec<(ContainerId, Resources)> = (0..3_000u64)
        .map(|i| (ContainerId(i), Resources::cpu_mem(45.0, 210_000.0)))
        .collect();
    let start = Instant::now();
    let placement = compute_placement(
        PlacementInput {
            shards: &shards,
            containers: &containers,
            current: &HashMap::new(),
        },
        PlacementConfig::default(),
    );
    let cold = start.elapsed();
    let start = Instant::now();
    let warm = compute_placement(
        PlacementInput {
            shards: &shards,
            containers: &containers,
            current: &placement.assignment,
        },
        PlacementConfig::default(),
    );
    let warm_elapsed = start.elapsed();
    verdict(
        "placement of 100K shards onto 3000 containers",
        "< 2 s",
        &format!(
            "{:.0} ms cold / {:.0} ms warm ({} moves)",
            cold.as_secs_f64() * 1e3,
            warm_elapsed.as_secs_f64() * 1e3,
            warm.stats.moved
        ),
        cold.as_secs_f64() < 2.0,
    );

    // ---- 2. Simple synchronization of 50K jobs in one batched round.
    let mut service = JobService::new(JobStore::new(MemWal::new()));
    let n_jobs = 50_000u64;
    for i in 0..n_jobs {
        service
            .provision(JobId(i), &JobConfig::stateless(&format!("job{i}"), 2, 8))
            .expect("provision");
    }
    let mut syncer = StateSyncer::default();
    syncer.run_round(&mut service, &mut NoopEnv); // initial starts
    for i in 0..n_jobs {
        service
            .set_level_field(
                JobId(i),
                ConfigLevel::Provisioner,
                "package.version",
                ConfigValue::Int(2),
            )
            .expect("release");
    }
    let start = Instant::now();
    let report = syncer.run_round(&mut service, &mut NoopEnv);
    let sync_elapsed = start.elapsed();
    verdict(
        "simple sync of 50K jobs (global package release)",
        "tens of thousands of jobs within seconds",
        &format!(
            "{} jobs in {:.2} s",
            report.simple.len(),
            sync_elapsed.as_secs_f64()
        ),
        report.simple.len() == n_jobs as usize && sync_elapsed.as_secs_f64() < 10.0,
    );

    // ---- 3-5: simulated-time latencies on a live platform.
    let mut turbine = Turbine::new(TurbineConfig::default());
    turbine.add_hosts(8, scuba_host());
    for i in 0..40u64 {
        turbine
            .provision_job(
                JobId(i + 1),
                JobConfig::stateless(&format!("svc_{i}"), 4, 16),
                TrafficModel::flat(1.0e6),
                1.0e6,
                256.0,
            )
            .expect("provision");
    }
    turbine.run_for(Duration::from_mins(5));

    // 3. End-to-end scheduling of a newly provisioned job.
    let new_job = JobId(999);
    turbine
        .provision_job(
            new_job,
            JobConfig::stateless("newcomer", 4, 16),
            TrafficModel::flat(1.0e6),
            1.0e6,
            256.0,
        )
        .expect("provision");
    let t0 = turbine.now();
    let mut scheduled_in = None;
    for _ in 0..30 {
        turbine.run_for(Duration::from_secs(10));
        if turbine.job_status(new_job).expect("status").running_tasks == 4 {
            scheduled_in = Some(turbine.now().since(t0));
            break;
        }
    }
    let scheduled_in = scheduled_in.expect("job must schedule");
    verdict(
        "end-to-end scheduling of a new job",
        "1-2 minutes on average",
        &format!("{scheduled_in}"),
        scheduled_in <= Duration::from_mins(3),
    );

    // 4. Global engine push: bump every job's package version.
    let restarts_before = turbine.metrics.task_restarts.get();
    let total_tasks = turbine.metrics.task_count.last().unwrap_or(0.0) as u64;
    for i in 0..40u64 {
        turbine
            .job_service_mut()
            .set_level_field(
                JobId(i + 1),
                ConfigLevel::Provisioner,
                "package.version",
                ConfigValue::Int(2),
            )
            .expect("release");
    }
    let t0 = turbine.now();
    let mut pushed_in = None;
    for _ in 0..60 {
        turbine.run_for(Duration::from_secs(10));
        if turbine.metrics.task_restarts.get() - restarts_before >= total_tasks - 4 {
            pushed_in = Some(turbine.now().since(t0));
            break;
        }
    }
    let pushed_in = pushed_in.expect("push must complete");
    verdict(
        "global engine push (restart every task)",
        "within 5 minutes",
        &format!("{} tasks in {pushed_in}", total_tasks - 4),
        pushed_in <= Duration::from_mins(5),
    );

    // 5. Task downtime after a host failure — count only tasks placed on
    // *healthy* containers (tasks on the dead host are down even though
    // the dead Task Manager still believes it runs them).
    turbine.run_for(Duration::from_mins(3));
    let healthy_tasks = |t: &Turbine| {
        let healthy: std::collections::HashSet<_> =
            t.cluster.healthy_containers().into_iter().collect();
        t.task_placements()
            .iter()
            .filter(|(_, c)| healthy.contains(c))
            .count()
    };
    let victim = turbine.cluster.hosts()[0];
    let tasks_before_fail = healthy_tasks(&turbine);
    turbine.fail_host(victim).expect("fail");
    assert!(
        healthy_tasks(&turbine) < tasks_before_fail,
        "victim hosted tasks"
    );
    let t0 = turbine.now();
    let mut recovered_in = None;
    for _ in 0..60 {
        turbine.run_for(Duration::from_secs(10));
        if healthy_tasks(&turbine) >= tasks_before_fail {
            recovered_in = Some(turbine.now().since(t0));
            break;
        }
    }
    let recovered_in = recovered_in.expect("failover must recover");
    verdict(
        "task downtime after host failure",
        "fail-over starts after 60 s; average downtime < 2 min",
        &format!("all tasks back after {recovered_in}"),
        recovered_in <= Duration::from_mins(3),
    );
}
