//! The migration footprint claim (paper §VI-A): "Before Turbine, each
//! Scuba Tailer task ran in a separate Tupperware container. The migration
//! to Turbine resulted in a ~33 % footprint reduction thanks to Turbine's
//! better use of the fragmented resources within each container."
//!
//! We synthesize the Fig. 5 fleet and cost it both ways:
//!
//! * **one-task-per-container**: every task gets its own container whose
//!   allocation is its reservation rounded up to the cluster manager's
//!   allocation quanta, plus per-container agent overhead — the
//!   fragmentation Turbine eliminates;
//! * **Turbine**: tasks are packed into shared Turbine containers with the
//!   standard balancing headroom.
//!
//! ```sh
//! cargo run --release -p turbine-bench --bin table_footprint_migration
//! ```

use turbine_bench::verdict;
use turbine_types::Resources;
use turbine_workloads::{synthesize_fleet, FleetConfig};

/// Tupperware-style allocation quanta for standalone containers.
const CPU_QUANTUM: f64 = 0.5;
const MEM_QUANTUM_MB: f64 = 512.0;
/// Per-container agent/runtime overhead.
const AGENT_OVERHEAD_MB: f64 = 96.0;
/// Turbine's balancing headroom (shared containers).
const TURBINE_HEADROOM: f64 = 0.15;

fn round_up(v: f64, quantum: f64) -> f64 {
    (v / quantum).ceil() * quantum
}

fn main() {
    let fleet = synthesize_fleet(&FleetConfig {
        jobs: 40_000,
        seed: 0xF1611,
        ..FleetConfig::default()
    });

    let mut tasks = 0u64;
    let mut standalone = Resources::ZERO;
    let mut packed_usage = Resources::ZERO;
    for job in &fleet {
        // Reservation = expected usage + the same 1.3x margin both eras
        // used per task.
        let reservation = job.expected_task_usage.scale(1.3);
        for _ in 0..job.initial_task_count {
            tasks += 1;
            // One container per task: quantized + agent overhead.
            standalone.cpu += round_up(reservation.cpu.max(0.1), CPU_QUANTUM);
            standalone.memory_mb +=
                round_up(reservation.memory_mb + AGENT_OVERHEAD_MB, MEM_QUANTUM_MB);
            // Turbine: tasks share containers; the fleet costs its summed
            // reservation plus the balancing headroom.
            packed_usage += reservation;
        }
    }
    let turbine_footprint = packed_usage.scale(1.0 / (1.0 - TURBINE_HEADROOM));

    println!("fleet: {} jobs, {tasks} tasks\n", fleet.len());
    println!(
        "{:<28} {:>14} {:>16}",
        "deployment", "cpu (cores)", "memory (GB)"
    );
    println!(
        "{:<28} {:>14.0} {:>16.0}",
        "one container per task",
        standalone.cpu,
        standalone.memory_mb / 1024.0
    );
    println!(
        "{:<28} {:>14.0} {:>16.0}",
        "turbine (shared containers)",
        turbine_footprint.cpu,
        turbine_footprint.memory_mb / 1024.0
    );
    println!();

    // Footprint as the dominant of the two dimensions against the Scuba
    // host shape (56 cores / 256 GB): how many hosts each era needs.
    let host = Resources::new(56.0, 256.0 * 1024.0, 0.0, 0.0);
    let hosts_standalone = (standalone.cpu / host.cpu).max(standalone.memory_mb / host.memory_mb);
    let hosts_turbine =
        (turbine_footprint.cpu / host.cpu).max(turbine_footprint.memory_mb / host.memory_mb);
    let reduction = (1.0 - hosts_turbine / hosts_standalone) * 100.0;
    println!("hosts needed: {hosts_standalone:.0} standalone vs {hosts_turbine:.0} under Turbine");
    verdict(
        "footprint reduction from the Turbine migration",
        "~33%",
        &format!("{reduction:.0}%"),
        (20.0..50.0).contains(&reduction),
    );
}
