//! Figure 1 — growth of the Scuba Tailer service over one year: traffic
//! volume roughly doubles, and the managed task count tracks it.
//!
//! The paper plots production telemetry over 12 months. Simulating a year
//! tick-by-tick is wasteful; instead we snapshot one steady-state day per
//! month with the fleet's traffic grown by the yearly-doubling trend, let
//! the Auto Scaler size the fleet each month, and report the same two
//! series (traffic volume, task count).
//!
//! ```sh
//! cargo run --release -p turbine-bench --bin fig1_growth
//! ```

use turbine::Turbine;
use turbine_bench::{experiment_config, provision_fleet, scuba_host};
use turbine_types::Duration;
use turbine_workloads::{synthesize_fleet, FleetConfig};

fn main() {
    let growth_per_day = 2f64.ln() / 365.0; // doubles in a year
    println!("{:>6}  {:>16}  {:>10}", "month", "traffic_gb_s", "tasks");

    let mut first: Option<(f64, f64)> = None;
    let mut last = (0.0, 0.0);
    let mut base_total = 0.0;
    for month in 0..=12u64 {
        // Service growth is dominated by adoption: new Scuba tables mean
        // new tailer jobs. Traffic doubles over the year through a mix of
        // fleet growth (most of it) and per-job growth.
        let factor = (growth_per_day * 30.4 * month as f64).exp();
        let job_growth = factor.powf(0.8);
        let per_job_growth = factor / job_growth;
        let mut fleet = synthesize_fleet(&FleetConfig {
            jobs: (400.0 * job_growth) as usize,
            seed: 0xF161,
            ..FleetConfig::default()
        });
        for job in &mut fleet {
            job.traffic.base_rate *= per_job_growth;
        }
        // Heavy-tailed draws make the fleet total noisy; normalize so the
        // aggregate follows the yearly-doubling trend exactly (Fig. 1's
        // x-axis is the trend, not sampling noise).
        let total: f64 = fleet.iter().map(|j| j.traffic.base_rate).sum();
        if month == 0 {
            base_total = total;
        }
        let norm = base_total * factor / total;
        for job in &mut fleet {
            job.traffic.base_rate *= norm;
        }

        let mut config = experiment_config();
        config.scaler.downscale_stability = Duration::from_hours(1);
        let mut turbine = Turbine::new(config);
        turbine.add_hosts(48, scuba_host());
        provision_fleet(&mut turbine, &fleet, |job, cfg| {
            // Initial sizing is last month's; the scaler adapts.
            cfg.max_task_count = (job.input_partitions).min(256);
        });
        // Let the platform settle into steady state for this month.
        turbine.run_for(Duration::from_hours(4));

        let traffic = turbine.metrics.cluster_traffic.last().unwrap_or(0.0) / 1.0e9;
        let tasks = turbine.metrics.task_count.last().unwrap_or(0.0);
        println!("{month:>6}  {traffic:>16.3}  {tasks:>10.0}");
        if first.is_none() {
            first = Some((traffic, tasks));
        }
        last = (traffic, tasks);
    }

    let (t0, n0) = first.expect("month 0 ran");
    let traffic_ratio = last.0 / t0;
    let task_ratio = last.1 / n0;
    println!();
    turbine_bench::verdict(
        "traffic doubles over the year",
        "~2x",
        &format!("{traffic_ratio:.2}x"),
        (1.7..2.4).contains(&traffic_ratio),
    );
    turbine_bench::verdict(
        "task count tracks traffic growth",
        "task count grows alongside traffic (Fig. 1)",
        &format!("{task_ratio:.2}x tasks for {traffic_ratio:.2}x traffic"),
        task_ratio > 1.3 && task_ratio < traffic_ratio * 1.5,
    );
}
