//! Figure 6 — cluster-wide load balance over a multi-day window.
//!
//! Paper: in a >600-host Turbine cluster, p5/p50/p95 CPU and memory
//! utilization stay very close together across hosts for a whole week, and
//! the number of tasks per host varies only within a small range
//! (~150–230) even though balancing considers resource consumption, not
//! task counts. Deliberate headroom is kept for spikes.
//!
//! We run the same shape scaled down (default 36 hosts / 2 simulated
//! days; scale with `--hosts N --days D`): the claims are about the
//! *tightness of the bands*, which is scale-free.
//!
//! ```sh
//! cargo run --release -p turbine-bench --bin fig6_load_balance
//! ```

use std::collections::HashMap;
use turbine::Turbine;
use turbine_bench::{
    downsample, experiment_config, print_table, provision_fleet, scuba_host, verdict,
};
use turbine_types::{ContainerId, Duration};
use turbine_workloads::{synthesize_fleet, FleetConfig};

fn arg(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let hosts = arg("--hosts", 36) as usize;
    let days = arg("--days", 2);
    // ~180 tasks per host, mostly single-task jobs (Fig. 5 shape).
    let jobs = hosts * 130;

    let mut config = experiment_config();
    config.shard_count = (hosts as u64) * 64;
    let mut turbine = Turbine::new(config);
    turbine.add_hosts(hosts, scuba_host());
    let fleet = synthesize_fleet(&FleetConfig {
        jobs,
        seed: 0xF166,
        ..FleetConfig::default()
    });
    provision_fleet(&mut turbine, &fleet, |_, _| {});

    eprintln!("running {jobs} jobs on {hosts} hosts for {days} simulated days...");
    turbine.run_for(Duration::from_days(days));

    let every = Duration::from_hours(6);
    print_table(
        "Fig 6(a): host CPU utilization band (fraction)",
        &[
            ("cpu_p5", downsample(&turbine.metrics.host_cpu.p5, every)),
            ("cpu_p50", downsample(&turbine.metrics.host_cpu.p50, every)),
            ("cpu_p95", downsample(&turbine.metrics.host_cpu.p95, every)),
        ],
    );
    print_table(
        "Fig 6(b): host memory utilization band (fraction)",
        &[
            ("mem_p5", downsample(&turbine.metrics.host_memory.p5, every)),
            (
                "mem_p50",
                downsample(&turbine.metrics.host_memory.p50, every),
            ),
            (
                "mem_p95",
                downsample(&turbine.metrics.host_memory.p95, every),
            ),
        ],
    );

    // Fig 6(c): tasks per host at the end of the run.
    let mut per_container: HashMap<ContainerId, usize> = HashMap::new();
    for (_, task) in turbine_tasks(&turbine) {
        *per_container.entry(task).or_default() += 1;
    }
    let counts: Vec<usize> = turbine
        .cluster
        .healthy_containers()
        .into_iter()
        .map(|c| per_container.get(&c).copied().unwrap_or(0))
        .collect();
    let min = counts.iter().min().copied().unwrap_or(0);
    let max = counts.iter().max().copied().unwrap_or(0);
    let mean = counts.iter().sum::<usize>() as f64 / counts.len().max(1) as f64;
    println!("## Fig 6(c): tasks per host");
    println!("min = {min}, mean = {mean:.0}, max = {max}\n");

    // Verdicts: band tightness + headroom + count spread.
    let cpu_p5 = turbine.metrics.host_cpu.p5.last().unwrap_or(0.0);
    let cpu_p95 = turbine.metrics.host_cpu.p95.last().unwrap_or(0.0);
    let mem_p5 = turbine.metrics.host_memory.p5.last().unwrap_or(0.0);
    let mem_p95 = turbine.metrics.host_memory.p95.last().unwrap_or(0.0);
    verdict(
        "CPU utilization very close across hosts",
        "p5..p95 band is narrow all week",
        &format!("p5 = {cpu_p5:.3}, p95 = {cpu_p95:.3}"),
        cpu_p95 - cpu_p5 < 0.15,
    );
    verdict(
        "memory utilization very close across hosts",
        "p5..p95 band is narrow all week",
        &format!("p5 = {mem_p5:.3}, p95 = {mem_p95:.3}"),
        mem_p95 - mem_p5 < 0.15,
    );
    verdict(
        "headroom kept for absorbing spikes",
        "utilization deliberately below saturation",
        &format!("p95 cpu = {cpu_p95:.3}"),
        cpu_p95 < 0.85,
    );
    verdict(
        "tasks per host within a small range",
        "~150-230 per host (load, not count, is balanced)",
        &format!("{min}..{max} (mean {mean:.0})"),
        min as f64 > mean * 0.55 && (max as f64) < mean * 1.6,
    );
}

/// Task → container pairs from the platform's public surface.
fn turbine_tasks(turbine: &Turbine) -> Vec<(turbine_types::TaskId, ContainerId)> {
    turbine.task_placements().into_iter().collect()
}
