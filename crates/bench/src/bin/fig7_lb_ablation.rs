//! Figure 7 — the load balancer's contribution, via ablation.
//!
//! Paper (test cluster shadowing production traffic): the load balancer is
//! disabled at hour 6 → traffic spikes in some jobs cause spiky CPU on
//! some hosts (p95 rises away from p50); fail-over is manually triggered on
//! a few machines at hour 14 → utilization becomes imbalanced, jobs on hot
//! hosts lag and crash; the balancer is re-enabled at hour 20 → host
//! resource consumption returns to normal very quickly.
//!
//! ```sh
//! cargo run --release -p turbine-bench --bin fig7_lb_ablation
//! ```

use turbine::Turbine;
use turbine_bench::{
    downsample, experiment_config, print_table, provision_fleet, scuba_host, verdict,
};
use turbine_types::{Duration, SimTime};
use turbine_workloads::{synthesize_fleet, FleetConfig, TrafficEvent, TrafficEventKind};

fn main() {
    let hosts = 24usize;
    let jobs = hosts * 110;
    let mut config = experiment_config();
    config.shard_count = (hosts as u64) * 64;
    // Rebalance often enough for a 24 h experiment to show the contrast.
    config.rebalance_interval = Duration::from_mins(15);
    let mut turbine = Turbine::new(config);
    turbine.add_hosts(hosts, scuba_host());

    let mut fleet = synthesize_fleet(&FleetConfig {
        jobs,
        seed: 0xF167,
        ..FleetConfig::default()
    });
    // Traffic spikes in the input of some jobs while the balancer is off
    // (hours 7-18): 4% of jobs spike to 6x their normal traffic.
    for (i, job) in fleet.iter_mut().enumerate() {
        if i % 25 == 0 {
            job.traffic.events.push(TrafficEvent {
                start: SimTime::ZERO + Duration::from_hours(7),
                end: SimTime::ZERO + Duration::from_hours(18),
                kind: TrafficEventKind::Multiplier(6.0),
            });
        }
    }
    provision_fleet(&mut turbine, &fleet, |_, _| {});

    eprintln!("running 24 hours: LB off at h6, failover at h14, LB on at h20...");
    let mut spread_before_disable = 0.0;
    let mut spread_during_outage = 0.0f64;
    let mut spread_after_reenable = 0.0;
    for hour in 1..=24u64 {
        turbine.run_for(Duration::from_hours(1));
        let p95 = turbine.metrics.host_cpu.p95.last().unwrap_or(0.0);
        let p50 = turbine.metrics.host_cpu.p50.last().unwrap_or(0.0);
        match hour {
            6 => {
                spread_before_disable = p95 - p50;
                turbine.set_load_balancing(false);
                eprintln!("hour 6: load balancer disabled");
            }
            14 => {
                // Mimic maintenance: take a few machines down, then bring
                // them back 30 minutes later.
                let victims: Vec<_> = turbine.cluster.hosts()[0..3].to_vec();
                for &h in &victims {
                    turbine.fail_host(h).expect("fail host");
                }
                turbine.run_for(Duration::from_mins(30));
                for &h in &victims {
                    turbine.recover_host(h).expect("recover host");
                }
                eprintln!("hour 14: triggered fail-over on 3 machines");
            }
            15..=19 => {
                spread_during_outage = spread_during_outage.max(p95 - p50);
            }
            20 => {
                turbine.set_load_balancing(true);
                eprintln!("hour 20: load balancer re-enabled");
            }
            24 => {
                spread_after_reenable = p95 - p50;
            }
            _ => {}
        }
    }

    let every = Duration::from_hours(1);
    print_table(
        "Fig 7: host CPU utilization (fraction) through the ablation",
        &[
            ("cpu_p5", downsample(&turbine.metrics.host_cpu.p5, every)),
            ("cpu_p50", downsample(&turbine.metrics.host_cpu.p50, every)),
            ("cpu_p95", downsample(&turbine.metrics.host_cpu.p95, every)),
        ],
    );

    verdict(
        "without LB, spikes + failover imbalance the cluster",
        "p95 CPU pulls away from p50 after hour 6/14",
        &format!(
            "p95-p50 spread: {spread_before_disable:.3} before, {spread_during_outage:.3} during"
        ),
        spread_during_outage > spread_before_disable * 1.8,
    );
    verdict(
        "re-enabling LB restores balance quickly",
        "host utilization back to normal levels",
        &format!("p95-p50 spread {spread_after_reenable:.3} by hour 24"),
        spread_after_reenable < spread_during_outage * 0.65,
    );
}
