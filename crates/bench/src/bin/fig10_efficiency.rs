//! Figure 10 — resource efficiency from launching the Auto Scaler.
//!
//! Paper: when auto scaling launched in one Scuba Tailer cluster, overall
//! task count dropped from ~120 K to ~43 K (≈ 2.8×), saving ~22 % of CPU
//! and ~51 % of memory; the Capacity Manager then reclaimed the savings.
//! Without a scaler, jobs must be over-provisioned for peak + headroom.
//!
//! We provision the fleet the way the pre-scaler era did — task counts and
//! memory reserves sized for worst-case peaks — then enable the scaler and
//! measure the footprint after it converges.
//!
//! ```sh
//! cargo run --release -p turbine-bench --bin fig10_efficiency
//! ```

use turbine::Turbine;
use turbine_bench::{
    downsample, experiment_config, print_table, provision_fleet, scuba_host, verdict,
};
use turbine_types::Duration;
use turbine_workloads::{synthesize_fleet, FleetConfig};

fn main() {
    let mut config = experiment_config();
    // Single-threaded tailers: reclaim happens via task count + memory.
    config.scaler.vertical_limit.cpu = 1.0;
    config.scaler.downscale_stability = Duration::from_hours(2);
    config.scaler.patterns.min_history_days = 1;
    config.scaler_enabled = false; // pre-rollout era
    let mut turbine = Turbine::new(config);
    let hosts = 110;
    turbine.add_hosts(hosts, scuba_host());

    let fleet = synthesize_fleet(&FleetConfig {
        jobs: 1_600,
        seed: 0xF1610,
        ..FleetConfig::default()
    });
    provision_fleet(&mut turbine, &fleet, |job, cfg| {
        // Pre-scaler over-provisioning: ~3x the steady-need task count
        // (hand-sized for peak), with per-task reservations covering each
        // (smaller) task's share plus margin. The memory cost of the extra
        // tasks is dominated by the ~400 MB per-task floor — which is
        // exactly why consolidation saves so much memory (Fig. 10).
        let count = (job.initial_task_count * 3)
            .min(cfg.input_partitions)
            .min(cfg.max_task_count);
        let usage = turbine_workloads::fleet::task_usage(
            job.traffic.base_rate / count as f64,
            job.avg_message_bytes,
            1.0e6,
        );
        cfg.task_count = count;
        cfg.task_resources.cpu = (usage.cpu * 1.5).max(0.25);
        cfg.task_resources.memory_mb = (usage.memory_mb * 1.25).max(500.0);
    });

    eprintln!("day 0-1: running over-provisioned, scaler disabled...");
    turbine.run_for(Duration::from_days(1));
    let tasks_before = turbine.metrics.task_count.last().unwrap_or(0.0);
    let cpu_before = turbine.metrics.reserved_cpu.last().unwrap_or(0.0);
    let mem_before = turbine.metrics.reserved_memory_mb.last().unwrap_or(0.0);

    eprintln!("day 1: auto scaler rollout...");
    turbine.set_scaler_enabled(true);
    turbine.run_for(Duration::from_days(2));
    let tasks_after = turbine.metrics.task_count.last().unwrap_or(0.0);
    let cpu_after = turbine.metrics.reserved_cpu.last().unwrap_or(0.0);
    let mem_after = turbine.metrics.reserved_memory_mb.last().unwrap_or(0.0);

    let every = Duration::from_hours(4);
    print_table(
        "Fig 10: fleet footprint through the scaler rollout (at day 1)",
        &[
            ("task_count", downsample(&turbine.metrics.task_count, every)),
            (
                "reserved_cpu",
                downsample(&turbine.metrics.reserved_cpu, every),
            ),
            (
                "reserved_mem_gb",
                downsample(&turbine.metrics.reserved_memory_mb, every)
                    .into_iter()
                    .map(|(h, v)| (h, v / 1024.0))
                    .collect(),
            ),
            (
                "slo_ok",
                downsample(&turbine.metrics.slo_ok_fraction, every),
            ),
        ],
    );

    let task_drop = tasks_before / tasks_after.max(1.0);
    let cpu_saving = (1.0 - cpu_after / cpu_before) * 100.0;
    let mem_saving = (1.0 - mem_after / mem_before) * 100.0;
    verdict(
        "task count drops sharply after rollout",
        "~120K -> ~43K (2.8x fewer)",
        &format!("{tasks_before:.0} -> {tasks_after:.0} ({task_drop:.1}x fewer)"),
        task_drop > 1.8,
    );
    verdict(
        "CPU reservation saving",
        "~22%",
        &format!("{cpu_saving:.0}%"),
        (10.0..60.0).contains(&cpu_saving),
    );
    verdict(
        "memory reservation saving",
        "~51%",
        &format!("{mem_saving:.0}%"),
        (30.0..70.0).contains(&mem_saving),
    );
    verdict(
        "jobs stay healthy after the reclaim",
        "SLOs maintained",
        &format!(
            "slo_ok = {:.3}",
            turbine.metrics.slo_ok_fraction.last().unwrap_or(0.0)
        ),
        turbine.metrics.slo_ok_fraction.last().unwrap_or(0.0) > 0.97,
    );
}
