//! Figure 9 — cluster-level scaling during a disaster-recovery storm.
//!
//! Paper: a storm drill redirects traffic into the cluster (~1000 jobs) on
//! the morning of Day 2; cluster traffic peaks ~16 % above the previous
//! (non-storm) day, while total task count rises only ~8 % — vertical-first
//! scaling plus the preactive analyzer (which absorbs the *predictable*
//! Day-1 diurnal swing without churn) mean only the unexpected delta costs
//! tasks. ~99.9 % of jobs stay within their SLOs throughout; after the
//! storm the count returns to normal.
//!
//! ```sh
//! cargo run --release -p turbine-bench --bin fig9_storm
//! ```

use turbine::Turbine;
use turbine_bench::{downsample, experiment_config, print_table, scuba_host, verdict};
use turbine_config::JobConfig;
use turbine_types::{Duration, JobId, SimTime};
use turbine_workloads::{TrafficEvent, TrafficEventKind, TrafficModel};

fn main() {
    let mut config = experiment_config();
    config.scaler.vertical_limit.cpu = 2.0;
    // Preactive suppression needs history covering the diurnal cycle;
    // within a 2-day experiment we let it engage after one day and look
    // half a day ahead (production uses 14 days / x hours).
    config.scaler.patterns.min_history_days = 1;
    // A full-day lookahead pins capacity at the rolling daily peak: the
    // predictable diurnal swing causes no churn, so only the storm's
    // unexpected delta costs tasks (the paper's Day-1-vs-Day-2 contrast).
    config.scaler.patterns.lookahead = Duration::from_hours(24);
    config.scaler.downscale_stability = Duration::from_hours(4);
    // Run the fleet a little hotter than the library default so that the
    // +16% storm actually crosses the pre-emptive trigger (0.7 target
    // utilization x 1.16 = 0.81): the absorbed-by-headroom fraction vs
    // new-tasks fraction is what Fig. 9 is about.
    config.scaler.preemptive_units = 0.95;
    config.scaler.target_units = 0.85;
    let mut turbine = Turbine::new(config);
    turbine.add_hosts(72, scuba_host());

    // Heterogeneous diurnal jobs. Day 0 is a warm-up (the paper's fleet
    // had weeks of history; cold-start sizing would pollute the Day-1
    // baseline); Day 1 is the baseline; the storm hits Day 2, 08:00-20:00.
    let jobs = 120u64;
    let storm = TrafficEvent {
        start: SimTime::ZERO + Duration::from_hours(48 + 8),
        end: SimTime::ZERO + Duration::from_hours(48 + 20),
        kind: TrafficEventKind::RampedMultiplier {
            peak: 1.16,
            ramp_mins: 120,
        },
    };
    for i in 0..jobs {
        let base = 4.0e6 * (1.0 + (i % 7) as f64);
        let mut jc = JobConfig::stateless(&format!("pipeline_{i}"), 4, 256);
        jc.max_task_count = 256;
        turbine
            .provision_job(
                JobId(i + 1),
                jc,
                TrafficModel::diurnal(base, 0.3, i).with_event(storm),
                1.0e6,
                256.0,
            )
            .expect("provision");
    }

    eprintln!("running 68 hours: warm-up day, baseline day, +16% storm on day 2 (08:00-20:00)...");
    let mut slo_worst_during_storm = 1.0f64;
    let mut day1_peak = (0.0f64, 0.0f64);
    let mut day2_peak = (0.0f64, 0.0f64);
    let mut post_storm_tasks = 0.0;
    for hour in 1..=68u64 {
        turbine.run_for(Duration::from_hours(1));
        let traffic = turbine.metrics.cluster_traffic.last().unwrap_or(0.0);
        let tasks = turbine.metrics.task_count.last().unwrap_or(0.0);
        if (34..48).contains(&hour) {
            day1_peak = (day1_peak.0.max(traffic), day1_peak.1.max(tasks));
        }
        if (56..68).contains(&hour) {
            day2_peak = (day2_peak.0.max(traffic), day2_peak.1.max(tasks));
            slo_worst_during_storm =
                slo_worst_during_storm.min(turbine.metrics.slo_ok_fraction.last().unwrap_or(0.0));
        }
        if hour == 68 {
            post_storm_tasks = tasks;
        }
    }

    let every = Duration::from_hours(2);
    print_table(
        "Fig 9: cluster traffic (GB/s) and task count through the storm",
        &[
            (
                "traffic_gb_s",
                downsample(&turbine.metrics.cluster_traffic, every)
                    .into_iter()
                    .map(|(h, v)| (h, v / 1.0e9))
                    .collect(),
            ),
            ("task_count", downsample(&turbine.metrics.task_count, every)),
            (
                "slo_ok",
                downsample(&turbine.metrics.slo_ok_fraction, every),
            ),
        ],
    );

    let traffic_growth = (day2_peak.0 / day1_peak.0 - 1.0) * 100.0;
    let task_growth = (day2_peak.1 / day1_peak.1 - 1.0) * 100.0;
    verdict(
        "storm raises peak traffic",
        "~+16% over the previous day's peak",
        &format!("+{traffic_growth:.1}%"),
        (10.0..25.0).contains(&traffic_growth),
    );
    verdict(
        "task count grows by much less than traffic",
        "~+8% tasks for +16% traffic (vertical-first + headroom)",
        &format!("+{task_growth:.1}% tasks"),
        task_growth > 0.0 && task_growth < traffic_growth,
    );
    verdict(
        "jobs stay within SLO through the storm",
        "~99.9% of jobs in SLO",
        &format!("worst in-storm SLO fraction = {slo_worst_during_storm:.3}"),
        slo_worst_during_storm > 0.95,
    );
    verdict(
        "task count returns toward normal after the storm",
        "total task count dropped to a normal level",
        &format!(
            "{post_storm_tasks:.0} tasks at h68 vs {:.0} at the storm peak",
            day2_peak.1
        ),
        post_storm_tasks <= day2_peak.1,
    );
}
