//! Continuous invariant checking for chaos runs.
//!
//! During fault injection the platform's safety properties must hold at
//! *every* tick, not just at the end of a scenario — a checkpoint partition
//! briefly owned by two tasks corrupts state even if the system later
//! converges. The [`InvariantChecker`] evaluates a fixed set of
//! cross-component invariants against a read-only [`InvariantView`] the
//! platform assembles each tick:
//!
//! 1. **Single partition ownership** — no input partition of a job is
//!    claimed by two active tasks (checkpoint safety, §III-B).
//! 2. **Single task ownership** — no task runs in two live Task Managers
//!    at once (two-level scheduling safety, §IV).
//! 3. **Single shard ownership** — no shard is owned by two live Task
//!    Managers at once.
//! 4. **No host overcommit** — the containers allocated on a host never
//!    exceed its capacity.
//! 5. **Convergence** — once the last fault has cleared, every job's
//!    running configuration catches up with its expected configuration
//!    (and its tasks actually run) within a bounded window (ACIDF's
//!    fault-tolerance property, §III).
//! 6. **Justified quarantine** — a job is quarantined only after the
//!    configured number of consecutive sync failures.
//!
//! 7. **Standby isolation** — a critical job's warm standby never shares
//!    a host with one of the job's primary tasks (a single host failure
//!    must not take out both).
//! 8. **Standby never commits** — the shadow-consumption path never
//!    writes the checkpoint store (single-writer checkpoint safety).
//! 9. **Single owner after promotion** — a promoted job's tasks run only
//!    on the promoted container, never also on another live Task Manager.
//! 10. **Clean revival** — a container revived after being declared dead
//!     rejoins with zero shards still mapped to it (fail-over already
//!     reassigned them).
//!
//! Safety violations (1–4, 6–10) are recorded on their rising edge; the
//! convergence liveness check (5) tracks per-job divergence episodes so
//! legitimate in-flight syncs (scaler updates, complex syncs moving state)
//! never count against the window.
//!
//! # Sparse checking
//!
//! [`InvariantChecker::check_sparse`] evaluates the same invariants but
//! scopes each scan to the inputs that actually changed since the last
//! tick, described by a [`DirtyInput`] the platform assembles from the
//! engine's dirty-job set, the Job Store changelog, and change flags for
//! the cluster / distributed / quarantine / standby state. A scope whose
//! inputs did not change keeps its previous violating-key set — since the
//! scans are pure functions of those inputs, the skipped result is exactly
//! what a full scan would have produced. The convergence universe
//! (expected ∪ running jobs) is maintained incrementally off the store
//! changelog instead of being rebuilt every tick, in both modes. Every
//! `audit_interval` sparse ticks a full recomputation cross-checks the
//! incrementally maintained state and counts any disagreement in
//! [`InvariantChecker::audit_mismatches`] — the equivalence oracle for the
//! sparse path.

use crate::engine::Engine;
use std::collections::{BTreeMap, BTreeSet};
use turbine_cluster::Cluster;
use turbine_jobstore::{JobService, MemWal};
use turbine_scribe::ShadowCursor;
use turbine_shardmgr::ShardManager;
use turbine_statesyncer::StateSyncer;
use turbine_taskmgr::LocalTaskManager;
use turbine_types::{ContainerId, Duration, JobId, PartitionId, ShardId, SimTime, TaskId};

/// Invariant-checker tunables.
#[derive(Debug, Clone, Copy)]
pub struct InvariantConfig {
    /// How long a job may stay diverged (expected ≠ running, or configured
    /// tasks not all running) after the later of: the last fault clearing
    /// and the divergence starting. Must comfortably exceed the sync
    /// cadence times the syncer's in-flight budget.
    pub convergence_window: Duration,
    /// Cap on stored violations (a counter keeps the true total).
    pub max_recorded: usize,
    /// Every this many sparse checks, a full-scan audit cross-checks the
    /// incrementally maintained state (0 disables the audit).
    pub audit_interval: u64,
}

impl Default for InvariantConfig {
    fn default() -> Self {
        InvariantConfig {
            convergence_window: Duration::from_mins(30),
            max_recorded: 64,
            audit_interval: 256,
        }
    }
}

/// One recorded invariant violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// When the violation was detected.
    pub at: SimTime,
    /// Which invariant failed.
    pub invariant: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

/// What changed since the last check — the platform assembles this from
/// the engine dirty set, component change flags, and set diffs. Every
/// flag must be *conservatively* complete: claiming something unchanged
/// when it changed breaks the sparse/full equivalence (the audit exists
/// to catch exactly that).
pub struct DirtyInput<'a> {
    /// Jobs whose engine state, pause/quarantine/capacity membership, or
    /// store rows changed since the last check.
    pub jobs: &'a BTreeSet<JobId>,
    /// Task-manager ownership or the live-container set changed.
    pub distributed_changed: bool,
    /// Cluster topology or capacity changed.
    pub cluster_changed: bool,
    /// The syncer's quarantine state changed.
    pub quarantine_changed: bool,
    /// Standby registrations changed.
    pub standby_changed: bool,
}

/// The read-only world the checker evaluates, assembled by the platform.
pub struct InvariantView<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// The cluster substrate.
    pub cluster: &'a Cluster,
    /// The data-plane engine.
    pub engine: &'a Engine,
    /// Every local Task Manager.
    pub task_managers: &'a BTreeMap<ContainerId, LocalTaskManager>,
    /// The Shard Manager.
    pub shard_manager: &'a ShardManager,
    /// The Job Service (expected/running tables).
    pub jobs: &'a JobService<MemWal>,
    /// The State Syncer (quarantine state).
    pub syncer: &'a StateSyncer,
    /// Jobs paused for a complex synchronization.
    pub paused: &'a BTreeSet<JobId>,
    /// Jobs stopped by the Capacity Manager.
    pub capacity_stopped: &'a BTreeSet<JobId>,
    /// Containers whose local state is authoritative: healthy host, not
    /// severed from the Shard Manager, not declared dead. Distributed-state
    /// invariants (2, 3) only consider these — a crashed host's Task
    /// Manager legitimately holds stale state until it rejoins.
    pub live_containers: &'a BTreeSet<ContainerId>,
    /// When the system last became fault-free (`None` while any fault is
    /// active). `Some(SimTime::ZERO)` if no fault was ever injected.
    pub quiet_since: Option<SimTime>,
    /// The shadow cursors of warm standbys (illegal-commit counter).
    pub shadow: &'a ShadowCursor,
    /// Standby promotions since the last check: (job, promoted container).
    pub fresh_promotions: &'a [(JobId, ContainerId)],
    /// Container revivals since the last check: (container, shards still
    /// mapped to it at revival time).
    pub fresh_revivals: &'a [(ContainerId, usize)],
}

/// Rising-edge key sets, partitioned by scope so a scope whose inputs did
/// not change can keep its previous result untouched.
#[derive(Debug, Default)]
struct ScopedKeys {
    /// Invariant 1, per job.
    partition: BTreeMap<JobId, BTreeSet<String>>,
    /// Invariants 2 + 3.
    distributed: BTreeSet<String>,
    /// Invariant 4.
    overcommit: BTreeSet<String>,
    /// Invariant 6.
    quarantine: BTreeSet<String>,
    /// Invariant 7.
    standby: BTreeSet<String>,
    /// Invariant 8.
    shadow: BTreeSet<String>,
    /// Invariant 9.
    promotion: BTreeSet<String>,
    /// Invariant 10.
    revival: BTreeSet<String>,
}

/// Retain-and-insert bookkeeping for one scope: keys whose condition
/// cleared are forgotten, keys newly in violation are queued for
/// recording.
fn settle_scope(
    active: &mut BTreeSet<String>,
    seen: &BTreeSet<String>,
    fresh: Vec<(String, &'static str, String)>,
    rising: &mut Vec<(&'static str, String)>,
) {
    active.retain(|k| seen.contains(k));
    for (key, invariant, detail) in fresh {
        if active.insert(key) {
            rising.push((invariant, detail));
        }
    }
}

/// Continuous invariant checker.
#[derive(Debug, Default)]
pub struct InvariantChecker {
    config: InvariantConfig,
    violations: Vec<Violation>,
    total: u64,
    /// Rising-edge tracking for safety invariants: keys currently in
    /// violation (so a persisting condition records once, not per tick).
    active: ScopedKeys,
    /// The expected ∪ running job universe, maintained incrementally off
    /// the Job Store changelog (never rebuilt per tick).
    convergence_jobs: BTreeSet<JobId>,
    /// How much of the store changelog has been folded into
    /// `convergence_jobs`.
    changelog_cursor: u64,
    /// Start of each job's current divergence episode.
    diverged_since: BTreeMap<JobId, SimTime>,
    /// Jobs already reported for their current divergence episode.
    convergence_flagged: BTreeSet<JobId>,
    ticks_checked: u64,
    sparse_checks: u64,
    audit_rounds: u64,
    audit_mismatches: u64,
}

impl InvariantChecker {
    /// A checker with the given tunables.
    pub fn new(config: InvariantConfig) -> Self {
        InvariantChecker {
            config,
            ..Default::default()
        }
    }

    /// Recorded violations (capped at `max_recorded`).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Total violations detected, including any beyond the recording cap.
    pub fn total_violations(&self) -> u64 {
        self.total
    }

    /// Number of ticks evaluated.
    pub fn ticks_checked(&self) -> u64 {
        self.ticks_checked
    }

    /// Full-scan audits performed on the sparse path.
    pub fn audit_rounds(&self) -> u64 {
        self.audit_rounds
    }

    /// Disagreements between the incrementally maintained state and a full
    /// recomputation — any non-zero value means the sparse path diverged
    /// from the full-scan oracle.
    pub fn audit_mismatches(&self) -> u64 {
        self.audit_mismatches
    }

    /// Evaluate every invariant against one tick's state (full scan).
    pub fn check(&mut self, view: &InvariantView<'_>) {
        self.ticks_checked += 1;
        let mut rising: Vec<(&'static str, String)> = Vec::new();

        // Invariant 1, every job.
        let examined: Vec<JobId> = view.engine.job_ids();
        let examined_set: BTreeSet<JobId> = examined.iter().copied().collect();
        self.active
            .partition
            .retain(|j, _| examined_set.contains(j));
        for job in examined {
            self.settle_partition_scope(view, job, &mut rising);
        }
        // Invariants 2–4, 6–10.
        self.settle_distributed_scope(view, &mut rising);
        self.settle_overcommit_scope(view, &mut rising);
        self.settle_quarantine_scope(view, &mut rising);
        self.settle_standby_scope(view, &mut rising);
        self.settle_edge_scopes(view, &mut rising);

        let now = view.now;
        for (invariant, detail) in rising {
            self.record(now, invariant, detail);
        }

        self.check_convergence(view, None);
    }

    /// Evaluate the invariants touching only what `dirty` says changed.
    /// Scopes with unchanged inputs keep their previous violating-key
    /// sets — the scans are pure, so the result is identical to a full
    /// scan. Periodically runs the full-scan audit.
    pub fn check_sparse(&mut self, view: &InvariantView<'_>, dirty: &DirtyInput<'_>) {
        self.ticks_checked += 1;
        self.sparse_checks += 1;
        let mut rising: Vec<(&'static str, String)> = Vec::new();

        // Invariant 1: only jobs whose task/partition state changed. A
        // removed job is marked dirty by the engine, scans to an empty
        // key set, and drops its entry.
        for &job in dirty.jobs {
            self.settle_partition_scope(view, job, &mut rising);
        }
        if dirty.distributed_changed {
            self.settle_distributed_scope(view, &mut rising);
        }
        if dirty.cluster_changed {
            self.settle_overcommit_scope(view, &mut rising);
        }
        if dirty.quarantine_changed {
            self.settle_quarantine_scope(view, &mut rising);
        }
        // Standby isolation reads standby registrations, the engine tasks
        // of standby jobs, and host placement: rescan when any of those
        // moved.
        let standby_inputs_changed = dirty.standby_changed
            || dirty.cluster_changed
            || view
                .shard_manager
                .standbys()
                .any(|(job, _)| dirty.jobs.contains(&job));
        if standby_inputs_changed {
            self.settle_standby_scope(view, &mut rising);
        }
        // Shadow-commit counter and the fresh promotion/revival edge lists
        // are O(changes) already: always evaluated.
        self.settle_edge_scopes(view, &mut rising);

        let now = view.now;
        for (invariant, detail) in rising {
            self.record(now, invariant, detail);
        }

        self.check_convergence(view, Some(dirty.jobs));

        if self.config.audit_interval > 0
            && self
                .sparse_checks
                .is_multiple_of(self.config.audit_interval)
        {
            self.audit(view);
        }
    }

    fn settle_partition_scope(
        &mut self,
        view: &InvariantView<'_>,
        job: JobId,
        rising: &mut Vec<(&'static str, String)>,
    ) {
        let mut seen = BTreeSet::new();
        let mut fresh = Vec::new();
        scan_partition_ownership(view, job, &mut fresh, &mut seen);
        if seen.is_empty() {
            self.active.partition.remove(&job);
            return;
        }
        let active = self.active.partition.entry(job).or_default();
        settle_scope(active, &seen, fresh, rising);
    }

    fn settle_distributed_scope(
        &mut self,
        view: &InvariantView<'_>,
        rising: &mut Vec<(&'static str, String)>,
    ) {
        let mut seen = BTreeSet::new();
        let mut fresh = Vec::new();
        scan_task_and_shard_ownership(view, &mut fresh, &mut seen);
        settle_scope(&mut self.active.distributed, &seen, fresh, rising);
    }

    fn settle_overcommit_scope(
        &mut self,
        view: &InvariantView<'_>,
        rising: &mut Vec<(&'static str, String)>,
    ) {
        let mut seen = BTreeSet::new();
        let mut fresh = Vec::new();
        scan_host_overcommit(view, &mut fresh, &mut seen);
        settle_scope(&mut self.active.overcommit, &seen, fresh, rising);
    }

    fn settle_quarantine_scope(
        &mut self,
        view: &InvariantView<'_>,
        rising: &mut Vec<(&'static str, String)>,
    ) {
        let mut seen = BTreeSet::new();
        let mut fresh = Vec::new();
        scan_quarantine_justified(view, &mut fresh, &mut seen);
        settle_scope(&mut self.active.quarantine, &seen, fresh, rising);
    }

    fn settle_standby_scope(
        &mut self,
        view: &InvariantView<'_>,
        rising: &mut Vec<(&'static str, String)>,
    ) {
        let mut seen = BTreeSet::new();
        let mut fresh = Vec::new();
        scan_standby_isolation(view, &mut fresh, &mut seen);
        settle_scope(&mut self.active.standby, &seen, fresh, rising);
    }

    /// Invariants 8–10: cheap counter + edge-list driven, always scanned.
    fn settle_edge_scopes(
        &mut self,
        view: &InvariantView<'_>,
        rising: &mut Vec<(&'static str, String)>,
    ) {
        let mut seen = BTreeSet::new();
        let mut fresh = Vec::new();
        scan_standby_never_commits(view, &mut fresh, &mut seen);
        settle_scope(&mut self.active.shadow, &seen, fresh, rising);

        let mut seen = BTreeSet::new();
        let mut fresh = Vec::new();
        scan_promotion_single_owner(view, &mut fresh, &mut seen);
        settle_scope(&mut self.active.promotion, &seen, fresh, rising);

        let mut seen = BTreeSet::new();
        let mut fresh = Vec::new();
        scan_revival_clean(view, &mut fresh, &mut seen);
        settle_scope(&mut self.active.revival, &seen, fresh, rising);
    }

    /// Invariant 5: bounded post-fault convergence. A job is *diverged*
    /// when its merged expected configuration differs from its running
    /// configuration, when it is paused mid-sync, or when fewer tasks run
    /// than the running configuration calls for. Divergence is fine while
    /// faults are active or a sync is under way — it violates the
    /// invariant only when it outlives the convergence window after both
    /// the divergence started and the last fault cleared.
    ///
    /// With `candidates: Some(..)`, only the given jobs plus jobs in the
    /// changelog slice are re-evaluated — every input of the divergence
    /// predicate (store rows, pause/quarantine/capacity membership, engine
    /// task counts) routes through one of those two sets, so untouched
    /// jobs keep their status. The window-expiry pass always walks the
    /// (small) diverged set: it is time-dependent.
    fn check_convergence(
        &mut self,
        view: &InvariantView<'_>,
        candidates: Option<&BTreeSet<JobId>>,
    ) {
        let now = view.now;
        let store = view.jobs.store();
        // Fold the changelog into the expected ∪ running universe.
        let log_len = store.changelog_len();
        let mut full_rescan = candidates.is_none();
        if self.changelog_cursor > log_len {
            // The store was rebuilt underneath us: resynchronize.
            self.convergence_jobs = store.expected_jobs().into_iter().collect();
            self.convergence_jobs.extend(store.running_jobs());
            full_rescan = true;
        } else {
            for &job in store.changed_since(self.changelog_cursor) {
                if store.running(job).is_some() || store.expected_merged_ref(job).is_ok() {
                    self.convergence_jobs.insert(job);
                } else {
                    self.convergence_jobs.remove(&job);
                }
            }
        }
        let changed: Vec<JobId> = if full_rescan {
            Vec::new()
        } else {
            store.changed_since(self.changelog_cursor).to_vec()
        };
        self.changelog_cursor = log_len;

        if full_rescan {
            // Jobs that left the universe can no longer be diverged.
            let universe = &self.convergence_jobs;
            self.diverged_since.retain(|j, _| universe.contains(j));
            self.convergence_flagged.retain(|j| universe.contains(j));
            let jobs: Vec<JobId> = self.convergence_jobs.iter().copied().collect();
            for job in jobs {
                self.update_divergence(view, job, now);
            }
        } else {
            let candidates = candidates.expect("sparse path");
            for &job in candidates {
                self.update_divergence(view, job, now);
            }
            for job in changed {
                if !candidates.contains(&job) {
                    self.update_divergence(view, job, now);
                }
            }
        }

        let Some(quiet_since) = view.quiet_since else {
            return; // faults active: liveness clock not running
        };
        let flagged: Vec<JobId> = self
            .diverged_since
            .iter()
            .filter(|(job, _)| !self.convergence_flagged.contains(job))
            .filter(|&(_, &start)| {
                now.since(start.max(quiet_since)) > self.config.convergence_window
            })
            .map(|(&job, _)| job)
            .collect();
        for job in flagged {
            self.convergence_flagged.insert(job);
            let detail = describe_divergence(view, job);
            self.record(now, "post-fault-convergence", detail);
        }
    }

    /// Bring one job's divergence-episode bookkeeping up to date.
    fn update_divergence(&mut self, view: &InvariantView<'_>, job: JobId, now: SimTime) {
        let eligible = self.convergence_jobs.contains(&job)
            && !view.syncer.is_quarantined(job)
            && !view.capacity_stopped.contains(&job);
        if eligible && is_diverged(view, job) {
            self.diverged_since.entry(job).or_insert(now);
        } else {
            self.diverged_since.remove(&job);
            self.convergence_flagged.remove(&job);
        }
    }

    /// The equivalence oracle: recompute every scope's violating-key set
    /// and the convergence state from scratch, and count disagreements
    /// with the incrementally maintained state. Pure — performs no
    /// state updates, records no violations.
    fn audit(&mut self, view: &InvariantView<'_>) {
        self.audit_rounds += 1;
        let mut mismatches = 0u64;

        let mut partition: BTreeMap<JobId, BTreeSet<String>> = BTreeMap::new();
        for job in view.engine.job_ids() {
            let mut seen = BTreeSet::new();
            let mut fresh = Vec::new();
            scan_partition_ownership(view, job, &mut fresh, &mut seen);
            if !seen.is_empty() {
                partition.insert(job, seen);
            }
        }
        if partition != self.active.partition {
            mismatches += 1;
        }

        for (scan, active) in [
            (
                scan_task_and_shard_ownership as fn(&InvariantView<'_>, &mut _, &mut _),
                &self.active.distributed,
            ),
            (scan_host_overcommit, &self.active.overcommit),
            (scan_quarantine_justified, &self.active.quarantine),
            (scan_standby_isolation, &self.active.standby),
            (scan_standby_never_commits, &self.active.shadow),
        ] {
            let mut seen = BTreeSet::new();
            let mut fresh = Vec::new();
            scan(view, &mut fresh, &mut seen);
            if &seen != active {
                mismatches += 1;
            }
        }

        let store = view.jobs.store();
        let mut universe: BTreeSet<JobId> = store.expected_jobs().into_iter().collect();
        universe.extend(store.running_jobs());
        if universe != self.convergence_jobs {
            mismatches += 1;
        }
        let diverged: BTreeSet<JobId> = universe
            .iter()
            .copied()
            .filter(|&job| {
                !view.syncer.is_quarantined(job) && !view.capacity_stopped.contains(&job)
            })
            .filter(|&job| is_diverged(view, job))
            .collect();
        let tracked: BTreeSet<JobId> = self.diverged_since.keys().copied().collect();
        if diverged != tracked {
            mismatches += 1;
        }

        self.audit_mismatches += mismatches;
    }

    fn record(&mut self, at: SimTime, invariant: &'static str, detail: String) {
        self.total += 1;
        if self.violations.len() < self.config.max_recorded {
            self.violations.push(Violation {
                at,
                invariant,
                detail,
            });
        }
    }
}

/// Invariant 1: each input partition of `job` is owned by at most one
/// active task.
fn scan_partition_ownership(
    view: &InvariantView<'_>,
    job: JobId,
    fresh: &mut Vec<(String, &'static str, String)>,
    seen: &mut BTreeSet<String>,
) {
    let mut owner: BTreeMap<PartitionId, TaskId> = BTreeMap::new();
    for (&task, active) in view.engine.tasks_of_job(job) {
        for &p in &active.partitions {
            if let Some(&other) = owner.get(&p) {
                let key = format!("partition:{job:?}:{p:?}");
                seen.insert(key.clone());
                fresh.push((
                    key,
                    "single-partition-ownership",
                    format!("{job} partition {p:?} owned by both {other:?} and {task:?}"),
                ));
            } else {
                owner.insert(p, task);
            }
        }
    }
}

/// Invariants 2 + 3: across live Task Managers, every task and every
/// shard has at most one owner.
fn scan_task_and_shard_ownership(
    view: &InvariantView<'_>,
    fresh: &mut Vec<(String, &'static str, String)>,
    seen: &mut BTreeSet<String>,
) {
    let mut task_owner: BTreeMap<TaskId, ContainerId> = BTreeMap::new();
    let mut shard_owner: BTreeMap<ShardId, ContainerId> = BTreeMap::new();
    for (&container, tm) in view.task_managers {
        if !view.live_containers.contains(&container) {
            continue;
        }
        for (&task, _) in tm.running_tasks() {
            if let Some(&other) = task_owner.get(&task) {
                let key = format!("task:{task:?}");
                seen.insert(key.clone());
                fresh.push((
                    key,
                    "single-task-ownership",
                    format!("{task:?} running in both {other} and {container}"),
                ));
            } else {
                task_owner.insert(task, container);
            }
        }
        for shard in tm.owned_shards() {
            if let Some(&other) = shard_owner.get(&shard) {
                let key = format!("shard:{shard:?}");
                seen.insert(key.clone());
                fresh.push((
                    key,
                    "single-shard-ownership",
                    format!("{shard} owned by both {other} and {container}"),
                ));
            } else {
                shard_owner.insert(shard, container);
            }
        }
    }
}

/// Invariant 4: per host, allocated container capacity never exceeds
/// the host's capacity.
fn scan_host_overcommit(
    view: &InvariantView<'_>,
    fresh: &mut Vec<(String, &'static str, String)>,
    seen: &mut BTreeSet<String>,
) {
    for host in view.cluster.hosts() {
        let (Ok(capacity), Ok(containers)) = (
            view.cluster.host_capacity(host),
            view.cluster.containers_on(host),
        ) else {
            continue;
        };
        let allocated: turbine_types::Resources = containers
            .iter()
            .filter_map(|&c| view.cluster.container_capacity(c).ok())
            .sum();
        // Tiny epsilon: the capacities are f64 sums.
        let over = allocated.cpu > capacity.cpu * (1.0 + 1e-9)
            || allocated.memory_mb > capacity.memory_mb * (1.0 + 1e-9)
            || allocated.disk_mb > capacity.disk_mb * (1.0 + 1e-9)
            || allocated.network_mbps > capacity.network_mbps * (1.0 + 1e-9);
        if over {
            let key = format!("overcommit:{host:?}");
            seen.insert(key.clone());
            fresh.push((
                key,
                "no-host-overcommit",
                format!("{host} allocated {allocated:?} exceeds capacity {capacity:?}"),
            ));
        }
    }
}

/// Invariant 6: quarantine only after `max_failures` sync failures.
fn scan_quarantine_justified(
    view: &InvariantView<'_>,
    fresh: &mut Vec<(String, &'static str, String)>,
    seen: &mut BTreeSet<String>,
) {
    let max = view.syncer.config().max_failures;
    for job in view.syncer.quarantined_jobs() {
        let count = view.syncer.failure_count(job);
        if count < max {
            let key = format!("quarantine:{job:?}");
            seen.insert(key.clone());
            fresh.push((
                key,
                "quarantine-after-max-failures",
                format!("{job} quarantined after only {count}/{max} failures"),
            ));
        }
    }
}

/// Invariant 7: a warm standby never shares a host with one of its
/// job's primary tasks, and never runs the job's tasks itself before
/// promotion.
fn scan_standby_isolation(
    view: &InvariantView<'_>,
    fresh: &mut Vec<(String, &'static str, String)>,
    seen: &mut BTreeSet<String>,
) {
    for (job, standby) in view.shard_manager.standbys() {
        let standby_host = view.cluster.host_of(standby).ok();
        for (&task, active) in view.engine.tasks_of_job(job) {
            let conflict = active.container == standby
                || (standby_host.is_some()
                    && view.cluster.host_of(active.container).ok() == standby_host);
            if conflict {
                let key = format!("standby:{job:?}");
                seen.insert(key.clone());
                fresh.push((
                    key,
                    "standby-isolated",
                    format!(
                        "{job} standby {standby} shares a host with primary {task:?} on {}",
                        active.container
                    ),
                ));
                break;
            }
        }
    }
}

/// Invariant 8: the shadow-consumption path never commits checkpoints.
fn scan_standby_never_commits(
    view: &InvariantView<'_>,
    fresh: &mut Vec<(String, &'static str, String)>,
    seen: &mut BTreeSet<String>,
) {
    let illegal = view.shadow.illegal_commits();
    if illegal > 0 {
        let key = "shadow-commit".to_string();
        seen.insert(key.clone());
        fresh.push((
            key,
            "standby-never-commits",
            format!("{illegal} checkpoint commit(s) attempted through the shadow path"),
        ));
    }
}

/// Invariant 9: right after a promotion, the promoted job's tasks run
/// only on the promoted container — no other live Task Manager still
/// claims them.
fn scan_promotion_single_owner(
    view: &InvariantView<'_>,
    fresh: &mut Vec<(String, &'static str, String)>,
    seen: &mut BTreeSet<String>,
) {
    for &(job, to) in view.fresh_promotions {
        let Some(tm) = view.task_managers.get(&to) else {
            continue;
        };
        let promoted: BTreeSet<TaskId> = tm
            .running_tasks()
            .map(|(&t, _)| t)
            .filter(|t| t.job == job)
            .collect();
        for (&container, other) in view.task_managers {
            if container == to || !view.live_containers.contains(&container) {
                continue;
            }
            for (&task, _) in other.running_tasks() {
                if promoted.contains(&task) {
                    let key = format!("promotion:{task:?}");
                    seen.insert(key.clone());
                    fresh.push((
                        key,
                        "promotion-single-owner",
                        format!("{job} promoted to {to} but {task:?} still runs in {container}"),
                    ));
                }
            }
        }
    }
}

/// Invariant 10: a revived container's shards were already reassigned
/// by the fail-over — it must rejoin empty.
fn scan_revival_clean(
    view: &InvariantView<'_>,
    fresh: &mut Vec<(String, &'static str, String)>,
    seen: &mut BTreeSet<String>,
) {
    for &(container, stale_shards) in view.fresh_revivals {
        if stale_shards > 0 {
            let key = format!("revival:{container:?}:{}", view.now.as_millis());
            seen.insert(key.clone());
            fresh.push((
                key,
                "container-revival-clean",
                format!("{container} revived with {stale_shards} shard(s) still mapped to it"),
            ));
        }
    }
}

fn is_diverged(view: &InvariantView<'_>, job: JobId) -> bool {
    if view.paused.contains(&job) {
        return true;
    }
    let store = view.jobs.store();
    match (store.expected_merged_ref(job).ok(), store.running(job)) {
        (Some(expected), Some(running)) if expected != running => return true,
        (Some(_), None) | (None, Some(_)) => return true,
        (None, None) => return false,
        _ => {}
    }
    // Config tables agree: do the tasks actually run?
    let configured = view
        .jobs
        .running_typed(job)
        .map(|c| c.task_count as usize)
        .unwrap_or(0);
    view.engine.running_tasks_of(job) < configured
}

fn describe_divergence(view: &InvariantView<'_>, job: JobId) -> String {
    let store = view.jobs.store();
    if view.paused.contains(&job) {
        return format!("{job} still paused mid-sync after the convergence window");
    }
    if store.expected_merged_ref(job).ok() != store.running(job) {
        return format!("{job} expected/running configs still differ after the convergence window");
    }
    let configured = view
        .jobs
        .running_typed(job)
        .map(|c| c.task_count as usize)
        .unwrap_or(0);
    format!(
        "{job} running {}/{configured} configured tasks after the convergence window",
        view.engine.running_tasks_of(job)
    )
}

use turbine_types::{Snap, SnapError, SnapReader, SnapWriter};

/// Every invariant name a [`Violation`] can carry; decode re-interns the
/// stored string into this table so the restored record keeps the same
/// `&'static str` identity the checker emits.
const INVARIANT_NAMES: [&str; 10] = [
    "single-partition-ownership",
    "single-task-ownership",
    "single-shard-ownership",
    "no-host-overcommit",
    "quarantine-after-max-failures",
    "standby-isolated",
    "standby-never-commits",
    "promotion-single-owner",
    "container-revival-clean",
    "post-fault-convergence",
];

impl Snap for InvariantConfig {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.convergence_window);
        w.put(&self.max_recorded);
        w.u64(self.audit_interval);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(InvariantConfig {
            convergence_window: r.get()?,
            max_recorded: r.get()?,
            audit_interval: r.u64("InvariantConfig.audit_interval")?,
        })
    }
}

impl Snap for Violation {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.at);
        w.put(&self.invariant.to_string());
        w.put(&self.detail);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let at = r.get()?;
        let name: String = r.get()?;
        let invariant = INVARIANT_NAMES
            .iter()
            .copied()
            .find(|n| *n == name)
            .ok_or(SnapError::Value("Violation.invariant unknown"))?;
        Ok(Violation {
            at,
            invariant,
            detail: r.get()?,
        })
    }
}

impl Snap for ScopedKeys {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.partition);
        w.put(&self.distributed);
        w.put(&self.overcommit);
        w.put(&self.quarantine);
        w.put(&self.standby);
        w.put(&self.shadow);
        w.put(&self.promotion);
        w.put(&self.revival);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(ScopedKeys {
            partition: r.get()?,
            distributed: r.get()?,
            overcommit: r.get()?,
            quarantine: r.get()?,
            standby: r.get()?,
            shadow: r.get()?,
            promotion: r.get()?,
            revival: r.get()?,
        })
    }
}

impl Snap for InvariantChecker {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.config);
        w.put(&self.violations);
        w.u64(self.total);
        w.put(&self.active);
        w.put(&self.convergence_jobs);
        w.u64(self.changelog_cursor);
        w.put(&self.diverged_since);
        w.put(&self.convergence_flagged);
        w.u64(self.ticks_checked);
        w.u64(self.sparse_checks);
        w.u64(self.audit_rounds);
        w.u64(self.audit_mismatches);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(InvariantChecker {
            config: r.get()?,
            violations: r.get()?,
            total: r.u64("InvariantChecker.total")?,
            active: r.get()?,
            convergence_jobs: r.get()?,
            changelog_cursor: r.u64("InvariantChecker.changelog_cursor")?,
            diverged_since: r.get()?,
            convergence_flagged: r.get()?,
            ticks_checked: r.u64("InvariantChecker.ticks_checked")?,
            sparse_checks: r.u64("InvariantChecker.sparse_checks")?,
            audit_rounds: r.u64("InvariantChecker.audit_rounds")?,
            audit_mismatches: r.u64("InvariantChecker.audit_mismatches")?,
        })
    }
}
