//! Continuous invariant checking for chaos runs.
//!
//! During fault injection the platform's safety properties must hold at
//! *every* tick, not just at the end of a scenario — a checkpoint partition
//! briefly owned by two tasks corrupts state even if the system later
//! converges. The [`InvariantChecker`] evaluates a fixed set of
//! cross-component invariants against a read-only [`InvariantView`] the
//! platform assembles each tick:
//!
//! 1. **Single partition ownership** — no input partition of a job is
//!    claimed by two active tasks (checkpoint safety, §III-B).
//! 2. **Single task ownership** — no task runs in two live Task Managers
//!    at once (two-level scheduling safety, §IV).
//! 3. **Single shard ownership** — no shard is owned by two live Task
//!    Managers at once.
//! 4. **No host overcommit** — the containers allocated on a host never
//!    exceed its capacity.
//! 5. **Convergence** — once the last fault has cleared, every job's
//!    running configuration catches up with its expected configuration
//!    (and its tasks actually run) within a bounded window (ACIDF's
//!    fault-tolerance property, §III).
//! 6. **Justified quarantine** — a job is quarantined only after the
//!    configured number of consecutive sync failures.
//!
//! 7. **Standby isolation** — a critical job's warm standby never shares
//!    a host with one of the job's primary tasks (a single host failure
//!    must not take out both).
//! 8. **Standby never commits** — the shadow-consumption path never
//!    writes the checkpoint store (single-writer checkpoint safety).
//! 9. **Single owner after promotion** — a promoted job's tasks run only
//!    on the promoted container, never also on another live Task Manager.
//! 10. **Clean revival** — a container revived after being declared dead
//!     rejoins with zero shards still mapped to it (fail-over already
//!     reassigned them).
//!
//! Safety violations (1–4, 6–10) are recorded on their rising edge; the
//! convergence liveness check (5) tracks per-job divergence episodes so
//! legitimate in-flight syncs (scaler updates, complex syncs moving state)
//! never count against the window.

use crate::engine::Engine;
use std::collections::{BTreeMap, BTreeSet};
use turbine_cluster::Cluster;
use turbine_jobstore::{JobService, MemWal};
use turbine_scribe::ShadowCursor;
use turbine_shardmgr::ShardManager;
use turbine_statesyncer::StateSyncer;
use turbine_taskmgr::LocalTaskManager;
use turbine_types::{ContainerId, Duration, JobId, PartitionId, ShardId, SimTime, TaskId};

/// Invariant-checker tunables.
#[derive(Debug, Clone, Copy)]
pub struct InvariantConfig {
    /// How long a job may stay diverged (expected ≠ running, or configured
    /// tasks not all running) after the later of: the last fault clearing
    /// and the divergence starting. Must comfortably exceed the sync
    /// cadence times the syncer's in-flight budget.
    pub convergence_window: Duration,
    /// Cap on stored violations (a counter keeps the true total).
    pub max_recorded: usize,
}

impl Default for InvariantConfig {
    fn default() -> Self {
        InvariantConfig {
            convergence_window: Duration::from_mins(30),
            max_recorded: 64,
        }
    }
}

/// One recorded invariant violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// When the violation was detected.
    pub at: SimTime,
    /// Which invariant failed.
    pub invariant: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

/// The read-only world the checker evaluates, assembled by the platform.
pub struct InvariantView<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// The cluster substrate.
    pub cluster: &'a Cluster,
    /// The data-plane engine.
    pub engine: &'a Engine,
    /// Every local Task Manager.
    pub task_managers: &'a BTreeMap<ContainerId, LocalTaskManager>,
    /// The Shard Manager.
    pub shard_manager: &'a ShardManager,
    /// The Job Service (expected/running tables).
    pub jobs: &'a JobService<MemWal>,
    /// The State Syncer (quarantine state).
    pub syncer: &'a StateSyncer,
    /// Jobs paused for a complex synchronization.
    pub paused: &'a BTreeSet<JobId>,
    /// Jobs stopped by the Capacity Manager.
    pub capacity_stopped: &'a BTreeSet<JobId>,
    /// Containers whose local state is authoritative: healthy host, not
    /// severed from the Shard Manager, not declared dead. Distributed-state
    /// invariants (2, 3) only consider these — a crashed host's Task
    /// Manager legitimately holds stale state until it rejoins.
    pub live_containers: &'a BTreeSet<ContainerId>,
    /// When the system last became fault-free (`None` while any fault is
    /// active). `Some(SimTime::ZERO)` if no fault was ever injected.
    pub quiet_since: Option<SimTime>,
    /// The shadow cursors of warm standbys (illegal-commit counter).
    pub shadow: &'a ShadowCursor,
    /// Standby promotions since the last check: (job, promoted container).
    pub fresh_promotions: &'a [(JobId, ContainerId)],
    /// Container revivals since the last check: (container, shards still
    /// mapped to it at revival time).
    pub fresh_revivals: &'a [(ContainerId, usize)],
}

/// Continuous invariant checker.
#[derive(Debug, Default)]
pub struct InvariantChecker {
    config: InvariantConfig,
    violations: Vec<Violation>,
    total: u64,
    /// Rising-edge tracking for safety invariants: keys currently in
    /// violation (so a persisting condition records once, not per tick).
    active_keys: BTreeSet<String>,
    /// Start of each job's current divergence episode.
    diverged_since: BTreeMap<JobId, SimTime>,
    /// Jobs already reported for their current divergence episode.
    convergence_flagged: BTreeSet<JobId>,
    ticks_checked: u64,
}

impl InvariantChecker {
    /// A checker with the given tunables.
    pub fn new(config: InvariantConfig) -> Self {
        InvariantChecker {
            config,
            ..Default::default()
        }
    }

    /// Recorded violations (capped at `max_recorded`).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Total violations detected, including any beyond the recording cap.
    pub fn total_violations(&self) -> u64 {
        self.total
    }

    /// Number of ticks evaluated.
    pub fn ticks_checked(&self) -> u64 {
        self.ticks_checked
    }

    /// Evaluate every invariant against one tick's state.
    pub fn check(&mut self, view: &InvariantView<'_>) {
        self.ticks_checked += 1;
        let mut fresh: Vec<(String, &'static str, String)> = Vec::new();
        let mut seen: BTreeSet<String> = BTreeSet::new();

        self.check_partition_ownership(view, &mut fresh, &mut seen);
        self.check_task_and_shard_ownership(view, &mut fresh, &mut seen);
        self.check_host_overcommit(view, &mut fresh, &mut seen);
        self.check_quarantine_justified(view, &mut fresh, &mut seen);
        self.check_standby_isolation(view, &mut fresh, &mut seen);
        self.check_standby_never_commits(view, &mut fresh, &mut seen);
        self.check_promotion_single_owner(view, &mut fresh, &mut seen);
        self.check_revival_clean(view, &mut fresh, &mut seen);

        // Rising-edge bookkeeping: record only newly-violated keys, forget
        // keys whose condition cleared.
        self.active_keys.retain(|k| seen.contains(k));
        for (key, invariant, detail) in fresh {
            if self.active_keys.insert(key) {
                self.record(view.now, invariant, detail);
            }
        }

        self.check_convergence(view);
    }

    /// Invariant 1: each input partition of a job is owned by at most one
    /// active task.
    fn check_partition_ownership(
        &mut self,
        view: &InvariantView<'_>,
        fresh: &mut Vec<(String, &'static str, String)>,
        seen: &mut BTreeSet<String>,
    ) {
        for job in view.engine.job_ids() {
            let mut owner: BTreeMap<PartitionId, TaskId> = BTreeMap::new();
            for (&task, active) in view.engine.tasks_of_job(job) {
                for &p in &active.partitions {
                    if let Some(&other) = owner.get(&p) {
                        let key = format!("partition:{job:?}:{p:?}");
                        seen.insert(key.clone());
                        fresh.push((
                            key,
                            "single-partition-ownership",
                            format!("{job} partition {p:?} owned by both {other:?} and {task:?}"),
                        ));
                    } else {
                        owner.insert(p, task);
                    }
                }
            }
        }
    }

    /// Invariants 2 + 3: across live Task Managers, every task and every
    /// shard has at most one owner.
    fn check_task_and_shard_ownership(
        &mut self,
        view: &InvariantView<'_>,
        fresh: &mut Vec<(String, &'static str, String)>,
        seen: &mut BTreeSet<String>,
    ) {
        let mut task_owner: BTreeMap<TaskId, ContainerId> = BTreeMap::new();
        let mut shard_owner: BTreeMap<ShardId, ContainerId> = BTreeMap::new();
        for (&container, tm) in view.task_managers {
            if !view.live_containers.contains(&container) {
                continue;
            }
            for (&task, _) in tm.running_tasks() {
                if let Some(&other) = task_owner.get(&task) {
                    let key = format!("task:{task:?}");
                    seen.insert(key.clone());
                    fresh.push((
                        key,
                        "single-task-ownership",
                        format!("{task:?} running in both {other} and {container}"),
                    ));
                } else {
                    task_owner.insert(task, container);
                }
            }
            for shard in tm.owned_shards() {
                if let Some(&other) = shard_owner.get(&shard) {
                    let key = format!("shard:{shard:?}");
                    seen.insert(key.clone());
                    fresh.push((
                        key,
                        "single-shard-ownership",
                        format!("{shard} owned by both {other} and {container}"),
                    ));
                } else {
                    shard_owner.insert(shard, container);
                }
            }
        }
    }

    /// Invariant 4: per host, allocated container capacity never exceeds
    /// the host's capacity.
    fn check_host_overcommit(
        &mut self,
        view: &InvariantView<'_>,
        fresh: &mut Vec<(String, &'static str, String)>,
        seen: &mut BTreeSet<String>,
    ) {
        for host in view.cluster.hosts() {
            let (Ok(capacity), Ok(containers)) = (
                view.cluster.host_capacity(host),
                view.cluster.containers_on(host),
            ) else {
                continue;
            };
            let allocated: turbine_types::Resources = containers
                .iter()
                .filter_map(|&c| view.cluster.container_capacity(c).ok())
                .sum();
            // Tiny epsilon: the capacities are f64 sums.
            let over = allocated.cpu > capacity.cpu * (1.0 + 1e-9)
                || allocated.memory_mb > capacity.memory_mb * (1.0 + 1e-9)
                || allocated.disk_mb > capacity.disk_mb * (1.0 + 1e-9)
                || allocated.network_mbps > capacity.network_mbps * (1.0 + 1e-9);
            if over {
                let key = format!("overcommit:{host:?}");
                seen.insert(key.clone());
                fresh.push((
                    key,
                    "no-host-overcommit",
                    format!("{host} allocated {allocated:?} exceeds capacity {capacity:?}"),
                ));
            }
        }
    }

    /// Invariant 6: quarantine only after `max_failures` sync failures.
    fn check_quarantine_justified(
        &mut self,
        view: &InvariantView<'_>,
        fresh: &mut Vec<(String, &'static str, String)>,
        seen: &mut BTreeSet<String>,
    ) {
        let max = view.syncer.config().max_failures;
        for job in view.syncer.quarantined_jobs() {
            let count = view.syncer.failure_count(job);
            if count < max {
                let key = format!("quarantine:{job:?}");
                seen.insert(key.clone());
                fresh.push((
                    key,
                    "quarantine-after-max-failures",
                    format!("{job} quarantined after only {count}/{max} failures"),
                ));
            }
        }
    }

    /// Invariant 7: a warm standby never shares a host with one of its
    /// job's primary tasks, and never runs the job's tasks itself before
    /// promotion.
    fn check_standby_isolation(
        &mut self,
        view: &InvariantView<'_>,
        fresh: &mut Vec<(String, &'static str, String)>,
        seen: &mut BTreeSet<String>,
    ) {
        for (job, standby) in view.shard_manager.standbys() {
            let standby_host = view.cluster.host_of(standby).ok();
            for (&task, active) in view.engine.tasks_of_job(job) {
                let conflict = active.container == standby
                    || (standby_host.is_some()
                        && view.cluster.host_of(active.container).ok() == standby_host);
                if conflict {
                    let key = format!("standby:{job:?}");
                    seen.insert(key.clone());
                    fresh.push((
                        key,
                        "standby-isolated",
                        format!(
                            "{job} standby {standby} shares a host with primary {task:?} on {}",
                            active.container
                        ),
                    ));
                    break;
                }
            }
        }
    }

    /// Invariant 8: the shadow-consumption path never commits checkpoints.
    fn check_standby_never_commits(
        &mut self,
        view: &InvariantView<'_>,
        fresh: &mut Vec<(String, &'static str, String)>,
        seen: &mut BTreeSet<String>,
    ) {
        let illegal = view.shadow.illegal_commits();
        if illegal > 0 {
            let key = "shadow-commit".to_string();
            seen.insert(key.clone());
            fresh.push((
                key,
                "standby-never-commits",
                format!("{illegal} checkpoint commit(s) attempted through the shadow path"),
            ));
        }
    }

    /// Invariant 9: right after a promotion, the promoted job's tasks run
    /// only on the promoted container — no other live Task Manager still
    /// claims them.
    fn check_promotion_single_owner(
        &mut self,
        view: &InvariantView<'_>,
        fresh: &mut Vec<(String, &'static str, String)>,
        seen: &mut BTreeSet<String>,
    ) {
        for &(job, to) in view.fresh_promotions {
            let Some(tm) = view.task_managers.get(&to) else {
                continue;
            };
            let promoted: BTreeSet<TaskId> = tm
                .running_tasks()
                .map(|(&t, _)| t)
                .filter(|t| t.job == job)
                .collect();
            for (&container, other) in view.task_managers {
                if container == to || !view.live_containers.contains(&container) {
                    continue;
                }
                for (&task, _) in other.running_tasks() {
                    if promoted.contains(&task) {
                        let key = format!("promotion:{task:?}");
                        seen.insert(key.clone());
                        fresh.push((
                            key,
                            "promotion-single-owner",
                            format!(
                                "{job} promoted to {to} but {task:?} still runs in {container}"
                            ),
                        ));
                    }
                }
            }
        }
    }

    /// Invariant 10: a revived container's shards were already reassigned
    /// by the fail-over — it must rejoin empty.
    fn check_revival_clean(
        &mut self,
        view: &InvariantView<'_>,
        fresh: &mut Vec<(String, &'static str, String)>,
        seen: &mut BTreeSet<String>,
    ) {
        for &(container, stale_shards) in view.fresh_revivals {
            if stale_shards > 0 {
                let key = format!("revival:{container:?}:{}", view.now.as_millis());
                seen.insert(key.clone());
                fresh.push((
                    key,
                    "container-revival-clean",
                    format!("{container} revived with {stale_shards} shard(s) still mapped to it"),
                ));
            }
        }
    }

    /// Invariant 5: bounded post-fault convergence. A job is *diverged*
    /// when its merged expected configuration differs from its running
    /// configuration, when it is paused mid-sync, or when fewer tasks run
    /// than the running configuration calls for. Divergence is fine while
    /// faults are active or a sync is under way — it violates the
    /// invariant only when it outlives the convergence window after both
    /// the divergence started and the last fault cleared.
    fn check_convergence(&mut self, view: &InvariantView<'_>) {
        let now = view.now;
        let store = view.jobs.store();
        let mut jobs: BTreeSet<JobId> = store.expected_jobs().into_iter().collect();
        jobs.extend(store.running_jobs());
        let current: BTreeSet<JobId> = jobs
            .iter()
            .copied()
            .filter(|&job| {
                !view.syncer.is_quarantined(job) && !view.capacity_stopped.contains(&job)
            })
            .filter(|&job| self.is_diverged(view, job))
            .collect();
        self.diverged_since.retain(|job, _| current.contains(job));
        self.convergence_flagged.retain(|job| current.contains(job));
        for &job in &current {
            self.diverged_since.entry(job).or_insert(now);
        }
        let Some(quiet_since) = view.quiet_since else {
            return; // faults active: liveness clock not running
        };
        let flagged: Vec<JobId> = current
            .iter()
            .copied()
            .filter(|job| !self.convergence_flagged.contains(job))
            .filter(|job| {
                let start = self.diverged_since[job].max(quiet_since);
                now.since(start) > self.config.convergence_window
            })
            .collect();
        for job in flagged {
            self.convergence_flagged.insert(job);
            let detail = self.describe_divergence(view, job);
            self.record(now, "post-fault-convergence", detail);
        }
    }

    fn is_diverged(&self, view: &InvariantView<'_>, job: JobId) -> bool {
        if view.paused.contains(&job) {
            return true;
        }
        let store = view.jobs.store();
        match (store.expected_merged_ref(job).ok(), store.running(job)) {
            (Some(expected), Some(running)) if expected != running => return true,
            (Some(_), None) | (None, Some(_)) => return true,
            (None, None) => return false,
            _ => {}
        }
        // Config tables agree: do the tasks actually run?
        let configured = view
            .jobs
            .running_typed(job)
            .map(|c| c.task_count as usize)
            .unwrap_or(0);
        view.engine.running_tasks_of(job) < configured
    }

    fn describe_divergence(&self, view: &InvariantView<'_>, job: JobId) -> String {
        let store = view.jobs.store();
        if view.paused.contains(&job) {
            return format!("{job} still paused mid-sync after the convergence window");
        }
        if store.expected_merged_ref(job).ok() != store.running(job) {
            return format!(
                "{job} expected/running configs still differ after the convergence window"
            );
        }
        let configured = view
            .jobs
            .running_typed(job)
            .map(|c| c.task_count as usize)
            .unwrap_or(0);
        format!(
            "{job} running {}/{configured} configured tasks after the convergence window",
            view.engine.running_tasks_of(job)
        )
    }

    fn record(&mut self, at: SimTime, invariant: &'static str, detail: String) {
        self.total += 1;
        if self.violations.len() < self.config.max_recorded {
            self.violations.push(Violation {
                at,
                invariant,
                detail,
            });
        }
    }
}
