//! Fleet-health reporting (paper §VII).
//!
//! "A significant part of large-scale distributed systems is about
//! operations at scale: scalable monitoring, alerting, and diagnosis.
//! Aside from job level monitoring and alert dashboards, Turbine has
//! several tools to report the percentage of tasks not running, lagging,
//! or unhealthy." This module is that reporting surface: a point-in-time
//! [`FleetHealth`] snapshot with per-job drill-down, renderable as the
//! text dashboard operators read.

use crate::metrics::recovery_budget;
use crate::platform::Turbine;
use std::fmt::Write as _;
use turbine_config::ResiliencyClass;
use turbine_types::JobId;

/// Why a job shows up in the unhealthy drill-down.
#[derive(Debug, Clone, PartialEq)]
pub enum HealthIssue {
    /// Fewer tasks running than the running configuration demands.
    TasksNotRunning {
        /// Tasks the running config expects.
        expected: u32,
        /// Tasks actually executing.
        running: usize,
    },
    /// `time_lagged` above the job's SLO threshold.
    Lagging {
        /// Estimated lag in seconds.
        lag_secs: f64,
        /// The SLO threshold.
        slo_secs: f64,
    },
    /// The State Syncer quarantined the job (repeated update failures).
    Quarantined,
    /// The job is mid-complex-sync (paused); expected to be transient.
    Paused,
}

impl std::fmt::Display for HealthIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HealthIssue::TasksNotRunning { expected, running } => {
                write!(f, "{running}/{expected} tasks running")
            }
            HealthIssue::Lagging { lag_secs, slo_secs } => {
                write!(f, "lagging {lag_secs:.0}s (SLO {slo_secs:.0}s)")
            }
            HealthIssue::Quarantined => f.write_str("quarantined by the state syncer"),
            HealthIssue::Paused => f.write_str("paused for a complex sync"),
        }
    }
}

/// Per-resiliency-tier SLO accounting: how often jobs of the tier went
/// down to faults, how fast they came back, and how that compares with
/// the tier's recovery budget.
#[derive(Debug, Clone)]
pub struct TierSlo {
    /// The tier.
    pub tier: ResiliencyClass,
    /// Jobs currently configured in this tier.
    pub jobs: usize,
    /// Fault-attributed outages that closed.
    pub recoveries: usize,
    /// Of those, recoveries via the warm-standby fast path.
    pub fast_recoveries: usize,
    /// Median recovery time, ms (0 with no samples).
    pub p50_ms: u64,
    /// 99th-percentile recovery time, ms (0 with no samples).
    pub p99_ms: u64,
    /// Accumulated fault-attributed downtime, ms.
    pub downtime_ms: u64,
    /// The tier's recovery budget, ms.
    pub budget_ms: u64,
}

impl TierSlo {
    /// True when the tier's observed p99 recovery stays within budget
    /// (vacuously true with no samples).
    pub fn within_budget(&self) -> bool {
        self.recoveries == 0 || self.p99_ms <= self.budget_ms
    }
}

/// A point-in-time fleet health snapshot.
#[derive(Debug, Clone)]
pub struct FleetHealth {
    /// Total jobs in the fleet.
    pub total_jobs: usize,
    /// Total tasks the running configurations demand.
    pub expected_tasks: u64,
    /// Tasks actually executing.
    pub running_tasks: u64,
    /// Fraction of expected tasks that are running.
    pub tasks_running_fraction: f64,
    /// Fraction of jobs within their lag SLO.
    pub jobs_within_slo_fraction: f64,
    /// Jobs with issues, with every issue listed (a job may have several).
    pub unhealthy: Vec<(JobId, Vec<HealthIssue>)>,
    /// Per unhealthy job: the most recent decisions the control plane took
    /// about it, newest first, rendered from the causal trace ("what has
    /// the platform already tried?"). Empty when tracing is disabled.
    pub recent_decisions: Vec<(JobId, Vec<String>)>,
    /// Per-tier SLO accounting, in tier order (best-effort → critical).
    pub tier_slo: Vec<TierSlo>,
    /// Active (unresolved) ODS alert incidents, rendered one per line as
    /// `[severity] rule: message`. Empty when alerting is quiet or off.
    pub active_incidents: Vec<String>,
}

impl FleetHealth {
    /// True when every task runs and every job is within SLO.
    pub fn all_green(&self) -> bool {
        self.unhealthy.is_empty()
    }

    /// Render the operator dashboard as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fleet: {} jobs | tasks running {:.1}% ({}/{}) | jobs in SLO {:.1}%",
            self.total_jobs,
            self.tasks_running_fraction * 100.0,
            self.running_tasks,
            self.expected_tasks,
            self.jobs_within_slo_fraction * 100.0,
        );
        if self.unhealthy.is_empty() {
            let _ = writeln!(out, "all green");
        } else {
            let _ = writeln!(out, "unhealthy jobs ({}):", self.unhealthy.len());
            for (job, issues) in &self.unhealthy {
                let descriptions: Vec<String> = issues.iter().map(|i| i.to_string()).collect();
                let _ = writeln!(out, "  {job}: {}", descriptions.join("; "));
                if let Some((_, decisions)) = self.recent_decisions.iter().find(|(j, _)| j == job) {
                    if !decisions.is_empty() {
                        let _ = writeln!(out, "    recent decisions:");
                        for line in decisions {
                            let _ = writeln!(out, "      {line}");
                        }
                    }
                }
            }
        }
        if !self.active_incidents.is_empty() {
            let _ = writeln!(out, "active incidents ({}):", self.active_incidents.len());
            for line in &self.active_incidents {
                let _ = writeln!(out, "  {line}");
            }
        }
        for t in &self.tier_slo {
            if t.jobs == 0 && t.recoveries == 0 {
                continue;
            }
            let verdict = if t.within_budget() {
                "ok"
            } else {
                "OVER BUDGET"
            };
            let _ = writeln!(
                out,
                "tier {}: {} job(s) | {} recover(ies), {} fast | p50 {}ms p99 {}ms \
                 (budget {}ms, {verdict}) | downtime {}ms",
                t.tier.as_str(),
                t.jobs,
                t.recoveries,
                t.fast_recoveries,
                t.p50_ms,
                t.p99_ms,
                t.budget_ms,
                t.downtime_ms,
            );
        }
        out
    }
}

/// Build the per-tier SLO accounting table from a platform's metrics.
pub fn tier_slo_table(turbine: &Turbine) -> Vec<TierSlo> {
    ResiliencyClass::ALL
        .iter()
        .map(|&tier| {
            let jobs = turbine
                .job_ids()
                .into_iter()
                .filter(|&j| turbine.job_resiliency(j) == tier)
                .count();
            // Percentiles come from the metrics' insert-sorted per-tier
            // vector: a rank lookup, not a per-render rebuild and sort of
            // every recovery sample (identical nearest-rank results).
            let samples_ms = turbine.metrics.tier_recovery_sorted(tier);
            let fast = turbine
                .metrics
                .recoveries
                .iter()
                .filter(|r| r.tier == tier && r.fast)
                .count();
            TierSlo {
                tier,
                jobs,
                recoveries: samples_ms.len(),
                fast_recoveries: fast,
                p50_ms: turbine
                    .metrics
                    .tier_recovery_quantile(tier, 0.50)
                    .unwrap_or(0),
                p99_ms: turbine
                    .metrics
                    .tier_recovery_quantile(tier, 0.99)
                    .unwrap_or(0),
                downtime_ms: turbine
                    .metrics
                    .tier_downtime_ms
                    .get(&tier)
                    .copied()
                    .unwrap_or(0),
                budget_ms: recovery_budget(tier).as_millis(),
            }
        })
        .collect()
}

/// Decisions shown per unhealthy job in the dashboard drill-down.
const RECENT_DECISIONS_PER_JOB: usize = 3;

/// Build the fleet-health snapshot from a platform.
pub fn fleet_health(turbine: &Turbine) -> FleetHealth {
    let mut total_jobs = 0usize;
    let mut expected_tasks = 0u64;
    let mut running_tasks = 0u64;
    let mut jobs_in_slo = 0usize;
    let mut unhealthy = Vec::new();

    for job in turbine.job_ids() {
        let Some(status) = turbine.job_status(job) else {
            continue;
        };
        total_jobs += 1;
        expected_tasks += u64::from(status.running_config_tasks);
        running_tasks += status.running_tasks as u64;

        let mut issues = Vec::new();
        if status.quarantined {
            issues.push(HealthIssue::Quarantined);
        }
        if status.paused {
            issues.push(HealthIssue::Paused);
        } else if status.running_tasks < status.running_config_tasks as usize {
            issues.push(HealthIssue::TasksNotRunning {
                expected: status.running_config_tasks,
                running: status.running_tasks,
            });
        }
        let slo = turbine.job_slo_secs(job).unwrap_or(90.0);
        let rate = turbine.job_arrival_rate(job).unwrap_or(0.0).max(1.0);
        let lag_secs = status.backlog_bytes / rate;
        if lag_secs <= slo {
            jobs_in_slo += 1;
        } else {
            issues.push(HealthIssue::Lagging {
                lag_secs,
                slo_secs: slo,
            });
        }
        if !issues.is_empty() {
            unhealthy.push((job, issues));
        }
    }

    let recent_decisions: Vec<(JobId, Vec<String>)> = unhealthy
        .iter()
        .map(|(job, _)| {
            let lines: Vec<String> = turbine
                .trace()
                .decisions_for(*job, RECENT_DECISIONS_PER_JOB)
                .iter()
                .map(|e| format!("[{}] {}", e.at, e.data.summary()))
                .collect();
            (*job, lines)
        })
        .filter(|(_, lines)| !lines.is_empty())
        .collect();

    FleetHealth {
        total_jobs,
        expected_tasks,
        running_tasks,
        tasks_running_fraction: if expected_tasks == 0 {
            1.0
        } else {
            running_tasks as f64 / expected_tasks as f64
        },
        jobs_within_slo_fraction: if total_jobs == 0 {
            1.0
        } else {
            jobs_in_slo as f64 / total_jobs as f64
        },
        unhealthy,
        recent_decisions,
        tier_slo: tier_slo_table(turbine),
        active_incidents: turbine
            .incidents()
            .iter()
            .filter(|i| i.is_active())
            .map(|i| format!("[{}] {}: {}", i.severity, i.rule, i.message))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::TurbineConfig;
    use turbine_config::JobConfig;
    use turbine_types::{Duration, Resources};
    use turbine_workloads::TrafficModel;

    fn platform() -> Turbine {
        let mut t = Turbine::new(TurbineConfig::default());
        t.add_hosts(4, Resources::new(56.0, 256.0 * 1024.0, 1.0e6, 1000.0));
        t
    }

    #[test]
    fn healthy_fleet_is_all_green() {
        let mut t = platform();
        t.provision_job(
            JobId(1),
            JobConfig::stateless("ok", 4, 16),
            TrafficModel::flat(2.0e6),
            1.0e6,
            256.0,
        )
        .expect("provision");
        t.run_for(Duration::from_mins(10));
        let health = fleet_health(&t);
        assert!(health.all_green(), "{}", health.render());
        assert_eq!(health.total_jobs, 1);
        assert_eq!(health.running_tasks, 4);
        assert!((health.tasks_running_fraction - 1.0).abs() < 1e-12);
        assert!(health.render().contains("all green"));
    }

    #[test]
    fn dead_host_shows_tasks_not_running_and_lag() {
        let mut config = TurbineConfig::default();
        config.scaler_enabled = false;
        let mut t = Turbine::new(config);
        t.add_hosts(2, Resources::new(56.0, 256.0 * 1024.0, 1.0e6, 1000.0));
        t.provision_job(
            JobId(1),
            JobConfig::stateless("hurt", 8, 32),
            TrafficModel::flat(4.0e6),
            1.0e6,
            256.0,
        )
        .expect("provision");
        t.run_for(Duration::from_mins(5));
        // Fail BOTH hosts: nothing can fail over, tasks stay down.
        for host in t.cluster.hosts() {
            t.fail_host(host).expect("fail");
        }
        t.run_for(Duration::from_mins(10));
        let health = fleet_health(&t);
        assert!(!health.all_green());
        let (_, issues) = &health.unhealthy[0];
        assert!(
            issues
                .iter()
                .any(|i| matches!(i, HealthIssue::Lagging { .. })),
            "{issues:?}"
        );
        let rendered = health.render();
        assert!(rendered.contains("unhealthy jobs"), "{rendered}");
    }

    #[test]
    fn empty_fleet_is_vacuously_green() {
        let t = platform();
        let health = fleet_health(&t);
        assert!(health.all_green());
        assert_eq!(health.total_jobs, 0);
        assert_eq!(health.tasks_running_fraction, 1.0);
    }

    /// Every [`HealthIssue`] variant renders its drill-down text, and the
    /// recent-decisions panel prints under the job it belongs to.
    #[test]
    fn render_shows_every_issue_variant_and_recent_decisions() {
        let health = FleetHealth {
            total_jobs: 4,
            expected_tasks: 32,
            running_tasks: 20,
            tasks_running_fraction: 20.0 / 32.0,
            jobs_within_slo_fraction: 0.75,
            unhealthy: vec![
                (
                    JobId(1),
                    vec![HealthIssue::TasksNotRunning {
                        expected: 8,
                        running: 5,
                    }],
                ),
                (
                    JobId(2),
                    vec![HealthIssue::Lagging {
                        lag_secs: 240.0,
                        slo_secs: 90.0,
                    }],
                ),
                (JobId(3), vec![HealthIssue::Quarantined]),
                (JobId(4), vec![HealthIssue::Paused]),
            ],
            recent_decisions: vec![(
                JobId(2),
                vec![
                    "[t+1.00h] scaled job 2: horizontal(tasks=12, mem=600MB)".to_string(),
                    "[t+30.00m] diagnosed job 2: unknown -> alert_and_wait".to_string(),
                ],
            )],
            tier_slo: vec![
                TierSlo {
                    tier: ResiliencyClass::Critical,
                    jobs: 1,
                    recoveries: 3,
                    fast_recoveries: 3,
                    p50_ms: 10_000,
                    p99_ms: 20_000,
                    downtime_ms: 40_000,
                    budget_ms: 30_000,
                },
                TierSlo {
                    tier: ResiliencyClass::Standard,
                    jobs: 2,
                    recoveries: 1,
                    fast_recoveries: 0,
                    p50_ms: 70_000,
                    p99_ms: 170_000,
                    downtime_ms: 170_000,
                    budget_ms: 150_000,
                },
            ],
            active_incidents: vec!["[critical] lag-slo-2: job 2 lag 240s above SLO 90s".to_string()],
        };
        let rendered = health.render();
        assert!(rendered.contains("unhealthy jobs (4):"), "{rendered}");
        assert!(rendered.contains("tier critical: 1 job(s)"), "{rendered}");
        assert!(
            rendered.contains("p99 20000ms (budget 30000ms, ok)"),
            "{rendered}"
        );
        assert!(rendered.contains("tier standard: 2 job(s)"), "{rendered}");
        assert!(rendered.contains("OVER BUDGET"), "{rendered}");
        assert!(rendered.contains("5/8 tasks running"), "{rendered}");
        assert!(rendered.contains("lagging 240s (SLO 90s)"), "{rendered}");
        assert!(
            rendered.contains("quarantined by the state syncer"),
            "{rendered}"
        );
        assert!(rendered.contains("paused for a complex sync"), "{rendered}");
        assert!(rendered.contains("active incidents (1):"), "{rendered}");
        assert!(
            rendered.contains("[critical] lag-slo-2: job 2 lag 240s above SLO 90s"),
            "{rendered}"
        );
        // The decisions panel appears once, under job 2 only.
        assert_eq!(rendered.matches("recent decisions:").count(), 1);
        assert!(
            rendered.contains("[t+1.00h] scaled job 2: horizontal(tasks=12, mem=600MB)"),
            "{rendered}"
        );
        assert!(
            rendered.contains("[t+30.00m] diagnosed job 2: unknown -> alert_and_wait"),
            "{rendered}"
        );
    }

    /// An end-to-end snapshot of a struggling platform carries trace-derived
    /// decision lines for the unhealthy job.
    #[test]
    fn fleet_health_populates_decisions_from_the_trace() {
        let mut config = TurbineConfig::default();
        config.scaler_enabled = false;
        let mut t = Turbine::new(config);
        t.add_hosts(2, Resources::new(56.0, 256.0 * 1024.0, 1.0e6, 1000.0));
        t.provision_job(
            JobId(1),
            JobConfig::stateless("hurt", 8, 32),
            TrafficModel::flat(4.0e6),
            1.0e6,
            256.0,
        )
        .expect("provision");
        t.run_for(Duration::from_mins(5));
        for host in t.cluster.hosts() {
            t.fail_host(host).expect("fail");
        }
        t.run_for(Duration::from_mins(10));
        let health = fleet_health(&t);
        assert!(!health.all_green());
        // With tracing on (default), decision lines either exist for the
        // unhealthy job or the job genuinely saw no decision yet — but the
        // panel must never list a job with zero lines.
        for (_, lines) in &health.recent_decisions {
            assert!(!lines.is_empty());
        }
    }
}
