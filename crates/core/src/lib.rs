//! Turbine: a service management platform for stream processing.
//!
//! This crate is the top of the workspace reproducing *"Turbine: Facebook's
//! Service Management Platform for Stream Processing"* (ICDE 2020). It
//! wires the three decoupled layers —
//!
//! * **Job Management** (*what* to run): [`turbine_jobstore`] +
//!   [`turbine_statesyncer`] — hierarchical expected configs, ACIDF
//!   updates;
//! * **Task Management** (*where* to run): [`turbine_taskmgr`] +
//!   [`turbine_shardmgr`] — two-level scheduling, load balancing,
//!   heartbeat fail-over;
//! * **Resource Management** (*how* to run): [`turbine_autoscaler`] —
//!   reactive/proactive/preactive scaling and capacity management
//!
//! — on top of the simulated substrates ([`turbine_cluster`],
//! [`turbine_scribe`]) and drives them in simulated time with a data-plane
//! model faithful to the paper's workload observations.
//!
//! # Quick start
//!
//! ```
//! use turbine::{Turbine, TurbineConfig};
//! use turbine_config::JobConfig;
//! use turbine_types::{Duration, JobId, Resources};
//! use turbine_workloads::TrafficModel;
//!
//! let mut turbine = Turbine::new(TurbineConfig::default());
//! turbine.add_hosts(4, Resources::new(56.0, 256.0 * 1024.0, 1.0e6, 1000.0));
//!
//! let job = JobId(1);
//! turbine
//!     .provision_job(job, JobConfig::stateless("quickstart", 2, 16),
//!                    TrafficModel::flat(1.5e6), 1.0e6, 256.0)
//!     .expect("provision");
//!
//! turbine.run_for(Duration::from_mins(10));
//! assert!(turbine.job_status(job).expect("status").running_tasks == 2);
//! ```

pub mod dashboard;
pub mod engine;
pub mod invariants;
pub mod metrics;
pub mod platform;

pub use dashboard::{fleet_health, tier_slo_table, FleetHealth, HealthIssue, TierSlo};
pub use invariants::{InvariantChecker, InvariantConfig, InvariantView, Violation};
pub use metrics::{recovery_budget, DiagnosisRecord, PlatformMetrics, RecoveryRecord};
pub use platform::{
    ControlEvent, DriveMode, JobStatus, PlatformFingerprint, Turbine, TurbineConfig,
};
// Re-exported so downstream crates (CLI, benches, tests) can schedule
// faults without depending on the sim crate directly.
pub use turbine_sim::{Fault, FaultPlan, FaultTransition};
// Re-exported so downstream crates can query the decision trace without
// depending on the trace crate directly.
pub use turbine_trace::{Component as TraceComponent, TraceBuffer, TraceData, TraceEvent, TraceId};
// Re-exported so downstream crates can read the metrics registry, install
// alert rules, and export series without depending on the ods crate
// directly.
pub use turbine_ods::{
    parse_rules, AlertEngine, AlertRule, Incident, MetricId, MetricKey, Registry as OdsRegistry,
    RuleKind, Scope as OdsScope, Severity, ThresholdOp,
};
