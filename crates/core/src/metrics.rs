//! Cluster- and job-level metric recording for experiments.
//!
//! Every figure in the paper's evaluation is a time series of something:
//! traffic volume and task count (Fig. 1, 9), host utilization percentile
//! bands (Fig. 6, 7), job lag (Fig. 8), fleet footprints (Fig. 5, 10).
//! [`PlatformMetrics`] records all of them on a fixed sampling cadence.

use std::collections::BTreeMap;
use turbine_autoscaler::{Mitigation, RootCause};
use turbine_config::ResiliencyClass;
use turbine_trace::TraceId;
use turbine_types::{Counter, Duration, JobId, Percentiles, SimTime, TimeSeries};

/// One percentile band series (p5/p50/p95 + mean over hosts).
#[derive(Debug, Default, Clone)]
pub struct BandSeries {
    /// 5th percentile over hosts at each sample.
    pub p5: TimeSeries,
    /// Median over hosts.
    pub p50: TimeSeries,
    /// 95th percentile over hosts.
    pub p95: TimeSeries,
    /// Mean over hosts.
    pub mean: TimeSeries,
}

impl BandSeries {
    /// Record one snapshot of per-host samples. An empty snapshot (no
    /// healthy hosts this instant) records nothing: there is no meaningful
    /// percentile of zero samples, and a placeholder would fabricate a
    /// zero-utilization dip in the band.
    pub fn record(&mut self, at: SimTime, samples: &[f64]) {
        if samples.is_empty() {
            return;
        }
        let p = Percentiles::from_samples(samples);
        self.p5.record(at, p.p5);
        self.p50.record(at, p.p50);
        self.p95.record(at, p.p95);
        self.mean.record(at, p.mean);
    }
}

/// One root-cause diagnosis, as recorded by the platform: the typed
/// cause and mitigation from the root-causer, plus the link into the
/// decision trace (when tracing is enabled) so the rationale joins the
/// causal chain behind the mitigation it triggered.
#[derive(Debug, Clone)]
pub struct DiagnosisRecord {
    /// When the diagnosis was made.
    pub at: SimTime,
    /// The diagnosed job.
    pub job: JobId,
    /// The classified root cause.
    pub cause: RootCause,
    /// The recommended (or automated) mitigation.
    pub mitigation: Mitigation,
    /// One-line rationale for the runbook.
    pub rationale: String,
    /// The diagnosis record in the decision trace, when tracing is on.
    pub trace: Option<TraceId>,
}

/// The recovery-time budget a resiliency tier promises (the per-tier SLO
/// the soak gate holds p99 recovery against). Critical jobs ride the
/// warm-standby fast path and promise an order of magnitude less downtime
/// than the full state-sync fail-over path behind the other tiers.
pub fn recovery_budget(tier: ResiliencyClass) -> Duration {
    match tier {
        ResiliencyClass::Critical => Duration::from_secs(30),
        ResiliencyClass::Standard => Duration::from_secs(150),
        ResiliencyClass::BestEffort => Duration::from_secs(300),
    }
}

/// One fault-attributed outage that ended: how long the job was below its
/// running-config task count, and which recovery path closed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryRecord {
    /// When the job recovered (outage end).
    pub at: SimTime,
    /// The recovered job.
    pub job: JobId,
    /// The job's resiliency tier at recovery time.
    pub tier: ResiliencyClass,
    /// Outage duration in milliseconds, measured from fault onset.
    pub ms: u64,
    /// True when a warm-standby promotion (fast path) ended the outage.
    pub fast: bool,
}

/// All platform metrics captured during a run.
#[derive(Debug, Default)]
pub struct PlatformMetrics {
    /// Total input traffic across jobs, bytes/sec.
    pub cluster_traffic: TimeSeries,
    /// Total running task count.
    pub task_count: TimeSeries,
    /// Host CPU utilization band (fraction of capacity).
    pub host_cpu: BandSeries,
    /// Host memory utilization band (fraction of capacity).
    pub host_memory: BandSeries,
    /// Fraction of jobs within their lag SLO.
    pub slo_ok_fraction: TimeSeries,
    /// Total backlog across all jobs, bytes.
    pub total_backlog: TimeSeries,
    /// Per-job lag (seconds) for explicitly watched jobs.
    pub watched_job_lag: BTreeMap<JobId, TimeSeries>,
    /// Per-job task count for explicitly watched jobs.
    pub watched_job_tasks: BTreeMap<JobId, TimeSeries>,
    /// Total reserved CPU across running tasks (cores).
    pub reserved_cpu: TimeSeries,
    /// Total reserved memory across running tasks (MB).
    pub reserved_memory_mb: TimeSeries,

    /// Lifecycle counters.
    pub task_starts: Counter,
    /// Tasks stopped.
    pub task_stops: Counter,
    /// Tasks restarted (spec change, crash, reboot).
    pub task_restarts: Counter,
    /// Shard movements executed.
    pub shard_moves: Counter,
    /// Container fail-overs performed.
    pub failovers: Counter,
    /// OOM kills.
    pub oom_kills: Counter,
    /// Scaling actions applied.
    pub scaling_actions: Counter,
    /// Operator alerts raised (untriaged problems, quarantines).
    pub alerts: Counter,
    /// Data-plane ticks actually executed by the drive loop (the
    /// event-driven scheduler skips quiescent grid instants, so this is
    /// the direct measure of sparse-jump savings vs the dense stepper).
    pub ticks_executed: Counter,
    /// Warm-standby promotions (fast-path fail-overs).
    pub standby_promotions: Counter,
    /// Containers that came back after being declared dead and failed over.
    pub container_revivals: Counter,
    /// Root-cause diagnoses produced for untriaged problems.
    pub diagnoses: Vec<DiagnosisRecord>,
    /// Every fault-attributed outage that closed, in recovery order.
    pub recoveries: Vec<RecoveryRecord>,
    /// Accumulated fault-attributed downtime per resiliency tier, ms.
    pub tier_downtime_ms: BTreeMap<ResiliencyClass, u64>,
    /// Per-tier recovery durations kept sorted ascending, maintained
    /// incrementally by [`Self::record_recovery`] so dashboard percentile
    /// reads cost a rank lookup instead of a per-render sort.
    tier_recovery_sorted: BTreeMap<ResiliencyClass, Vec<u64>>,

    /// Alerting incidents opened by the ODS pipeline. Deliberately *not*
    /// part of the platform fingerprint: the alerting layer is
    /// observational, and folding its counter into the fingerprint would
    /// make "ODS on vs off" runs trivially unequal.
    pub incidents: Counter,

    /// Jobs examined across State Syncer rounds. Sparse rounds examine
    /// only the attention set plus the changelog delta, so on a quiescent
    /// fleet this grows far slower than rounds × jobs — the scale gate's
    /// per-round work measure.
    pub sync_jobs_examined: Counter,
    /// Containers that produced a load report (sparse load reporting
    /// skips containers whose loads cannot have moved).
    pub load_reports_sent: Counter,
}

impl PlatformMetrics {
    /// Start watching a job's lag/task series.
    pub fn watch_job(&mut self, job: JobId) {
        self.watched_job_lag.entry(job).or_default();
        self.watched_job_tasks.entry(job).or_default();
    }

    /// True if the job is being watched.
    pub fn is_watched(&self, job: JobId) -> bool {
        self.watched_job_lag.contains_key(&job)
    }

    /// Close one fault-attributed outage: append the recovery sample and
    /// charge the downtime to the job's tier.
    pub fn record_recovery(
        &mut self,
        at: SimTime,
        job: JobId,
        tier: ResiliencyClass,
        ms: u64,
        fast: bool,
    ) {
        *self.tier_downtime_ms.entry(tier).or_insert(0) += ms;
        let sorted = self.tier_recovery_sorted.entry(tier).or_default();
        let at_rank = sorted.partition_point(|&v| v <= ms);
        sorted.insert(at_rank, ms);
        self.recoveries.push(RecoveryRecord {
            at,
            job,
            tier,
            ms,
            fast,
        });
    }

    /// Recovery durations (ms) sampled for one tier, in recovery order.
    pub fn tier_recovery_ms(&self, tier: ResiliencyClass) -> Vec<u64> {
        self.recoveries
            .iter()
            .filter(|r| r.tier == tier)
            .map(|r| r.ms)
            .collect()
    }

    /// A tier's recovery durations sorted ascending (no per-call work —
    /// the vector is maintained on insert).
    pub fn tier_recovery_sorted(&self, tier: ResiliencyClass) -> &[u64] {
        self.tier_recovery_sorted
            .get(&tier)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Nearest-rank quantile of a tier's recovery durations, identical to
    /// `Cdf::from_samples(...).quantile(q)` over the same samples but
    /// without rebuilding and re-sorting the sample set (both paths share
    /// [`turbine_types::nearest_rank_index`]).
    pub fn tier_recovery_quantile(&self, tier: ResiliencyClass, q: f64) -> Option<u64> {
        let sorted = self.tier_recovery_sorted(tier);
        if sorted.is_empty() {
            return None;
        }
        Some(turbine_types::nearest_rank_u64(sorted, q.clamp(0.0, 1.0)))
    }
}

use turbine_types::{Snap, SnapError, SnapReader, SnapWriter};

impl Snap for BandSeries {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.p5);
        w.put(&self.p50);
        w.put(&self.p95);
        w.put(&self.mean);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(BandSeries {
            p5: r.get()?,
            p50: r.get()?,
            p95: r.get()?,
            mean: r.get()?,
        })
    }
}

impl Snap for DiagnosisRecord {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.at);
        w.put(&self.job);
        w.put(&self.cause);
        w.put(&self.mitigation);
        w.put(&self.rationale);
        w.put(&self.trace);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(DiagnosisRecord {
            at: r.get()?,
            job: r.get()?,
            cause: r.get()?,
            mitigation: r.get()?,
            rationale: r.get()?,
            trace: r.get()?,
        })
    }
}

impl Snap for RecoveryRecord {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.at);
        w.put(&self.job);
        w.put(&self.tier);
        w.u64(self.ms);
        w.put(&self.fast);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(RecoveryRecord {
            at: r.get()?,
            job: r.get()?,
            tier: r.get()?,
            ms: r.u64("RecoveryRecord.ms")?,
            fast: r.get()?,
        })
    }
}

impl Snap for PlatformMetrics {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.cluster_traffic);
        w.put(&self.task_count);
        w.put(&self.host_cpu);
        w.put(&self.host_memory);
        w.put(&self.slo_ok_fraction);
        w.put(&self.total_backlog);
        w.put(&self.watched_job_lag);
        w.put(&self.watched_job_tasks);
        w.put(&self.reserved_cpu);
        w.put(&self.reserved_memory_mb);
        w.put(&self.task_starts);
        w.put(&self.task_stops);
        w.put(&self.task_restarts);
        w.put(&self.shard_moves);
        w.put(&self.failovers);
        w.put(&self.oom_kills);
        w.put(&self.scaling_actions);
        w.put(&self.alerts);
        w.put(&self.ticks_executed);
        w.put(&self.standby_promotions);
        w.put(&self.container_revivals);
        w.put(&self.diagnoses);
        w.put(&self.recoveries);
        w.put(&self.tier_downtime_ms);
        w.put(&self.incidents);
        w.put(&self.sync_jobs_examined);
        w.put(&self.load_reports_sent);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let mut metrics = PlatformMetrics {
            cluster_traffic: r.get()?,
            task_count: r.get()?,
            host_cpu: r.get()?,
            host_memory: r.get()?,
            slo_ok_fraction: r.get()?,
            total_backlog: r.get()?,
            watched_job_lag: r.get()?,
            watched_job_tasks: r.get()?,
            reserved_cpu: r.get()?,
            reserved_memory_mb: r.get()?,
            task_starts: r.get()?,
            task_stops: r.get()?,
            task_restarts: r.get()?,
            shard_moves: r.get()?,
            failovers: r.get()?,
            oom_kills: r.get()?,
            scaling_actions: r.get()?,
            alerts: r.get()?,
            ticks_executed: r.get()?,
            standby_promotions: r.get()?,
            container_revivals: r.get()?,
            diagnoses: r.get()?,
            recoveries: r.get()?,
            tier_downtime_ms: r.get()?,
            tier_recovery_sorted: BTreeMap::new(),
            incidents: r.get()?,
            sync_jobs_examined: r.get()?,
            load_reports_sent: r.get()?,
        };
        // The sorted-per-tier index is a pure function of the recovery log;
        // rebuilding it from the log reproduces the insert-maintained state.
        for record in &metrics.recoveries {
            let sorted = metrics.tier_recovery_sorted.entry(record.tier).or_default();
            let at_rank = sorted.partition_point(|&v| v <= record.ms);
            sorted.insert(at_rank, record.ms);
        }
        Ok(metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbine_types::Duration;

    #[test]
    fn band_series_tracks_percentiles() {
        let mut band = BandSeries::default();
        let samples: Vec<f64> = (1..=100).map(|i| i as f64 / 100.0).collect();
        band.record(SimTime::ZERO, &samples);
        band.record(SimTime::ZERO + Duration::from_mins(1), &samples);
        assert_eq!(band.p5.last(), Some(0.05));
        assert_eq!(band.p50.last(), Some(0.5));
        assert_eq!(band.p95.last(), Some(0.95));
        assert_eq!(band.p5.len(), 2);
    }

    #[test]
    fn empty_snapshot_records_nothing() {
        let mut band = BandSeries::default();
        band.record(SimTime::ZERO, &[0.5]);
        // No healthy hosts this instant: the bands must not grow, and in
        // particular must not record a fabricated zero or NaN sample.
        band.record(SimTime::ZERO + Duration::from_mins(1), &[]);
        assert_eq!(band.p50.len(), 1);
        assert_eq!(band.mean.len(), 1);
        band.record(SimTime::ZERO + Duration::from_mins(2), &[0.7]);
        assert_eq!(band.p50.len(), 2);
        assert!(
            band.p50.points().iter().all(|(_, v)| v.is_finite()),
            "no NaN in the series"
        );
    }

    #[test]
    fn recoveries_accumulate_per_tier() {
        let mut m = PlatformMetrics::default();
        m.record_recovery(
            SimTime::ZERO,
            JobId(1),
            ResiliencyClass::Critical,
            20_000,
            true,
        );
        m.record_recovery(
            SimTime::ZERO,
            JobId(2),
            ResiliencyClass::Standard,
            70_000,
            false,
        );
        m.record_recovery(
            SimTime::ZERO,
            JobId(1),
            ResiliencyClass::Critical,
            10_000,
            true,
        );
        assert_eq!(
            m.tier_recovery_ms(ResiliencyClass::Critical),
            vec![20_000, 10_000]
        );
        assert_eq!(m.tier_downtime_ms[&ResiliencyClass::Critical], 30_000);
        assert_eq!(m.tier_downtime_ms[&ResiliencyClass::Standard], 70_000);
        assert!(m.tier_recovery_ms(ResiliencyClass::BestEffort).is_empty());
        assert!(
            recovery_budget(ResiliencyClass::Critical) < recovery_budget(ResiliencyClass::Standard)
        );
    }

    #[test]
    fn sorted_recovery_quantiles_match_cdf() {
        use turbine_types::Cdf;
        let mut m = PlatformMetrics::default();
        let samples = [5_000u64, 120_000, 7_000, 7_000, 90_000, 33_000, 1];
        for (i, &ms) in samples.iter().enumerate() {
            m.record_recovery(
                SimTime::ZERO,
                JobId(i as u64),
                ResiliencyClass::Standard,
                ms,
                false,
            );
        }
        let as_f64: Vec<f64> = samples.iter().map(|&v| v as f64).collect();
        let cdf = Cdf::from_samples(&as_f64);
        for q in [0.0, 0.01, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(
                m.tier_recovery_quantile(ResiliencyClass::Standard, q),
                cdf.quantile(q).map(|v| v as u64),
                "quantile {q} must match the Cdf path bit for bit",
            );
        }
        assert_eq!(
            m.tier_recovery_quantile(ResiliencyClass::Critical, 0.5),
            None
        );
        assert_eq!(
            m.tier_recovery_sorted(ResiliencyClass::Standard),
            &[1, 5_000, 7_000, 7_000, 33_000, 90_000, 120_000]
        );
    }

    #[test]
    fn watch_registers_series() {
        let mut m = PlatformMetrics::default();
        assert!(!m.is_watched(JobId(1)));
        m.watch_job(JobId(1));
        assert!(m.is_watched(JobId(1)));
        m.watched_job_lag
            .get_mut(&JobId(1))
            .expect("series")
            .record(SimTime::ZERO, 12.0);
        assert_eq!(m.watched_job_lag[&JobId(1)].last(), Some(12.0));
    }
}
