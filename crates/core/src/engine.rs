//! The data-plane model: what the stream-processing *engine* does, as seen
//! by the management plane.
//!
//! Turbine manages engines, it does not implement one — but reproducing the
//! paper's evaluation requires tasks that consume partitioned input at a
//! bounded per-thread rate, fall behind when under-provisioned, contend for
//! CPU on overloaded containers, hold memory proportional to their traffic,
//! and OOM when they outgrow their reservation. This module models exactly
//! that, deterministically, against the workload models of
//! [`turbine_workloads`].
//!
//! Storage is arena-backed: task bodies live in stable slots addressed by
//! u32 indices, with an ordered id → slot index on the side. Iteration
//! order (and therefore every floating-point reduction order in the tick)
//! is identical to the previous `BTreeMap<TaskId, ActiveTask>` layout.
//! The engine also keeps sparse-space bookkeeping — a dirty-job set, a
//! fleet-wide down-task counter, per-job undrained-partition counters, and
//! per-job durability epochs — so quiescence checks and durability syncs
//! cost O(jobs touched) instead of O(fleet).

use std::collections::{BTreeMap, BTreeSet, HashMap};
use turbine_config::MemoryEnforcement;
use turbine_scribe::{CheckpointStore, Scribe};
use turbine_taskmgr::TaskSpec;
use turbine_types::{ContainerId, Duration, JobId, PartitionId, Resources, SimTime, TaskId};
use turbine_workloads::{fleet::task_usage, TrafficModel};

/// Per-partition byte accounting (kept compact: the hot loop touches every
/// partition of every job each tick).
#[derive(Debug, Clone, Copy, Default)]
struct PartitionState {
    /// Total bytes ever arrived.
    appended: f64,
    /// Total bytes ever consumed (the checkpoint offset).
    consumed: f64,
    /// Bytes already mirrored into the Scribe substrate.
    scribe_synced: f64,
}

/// Runtime state of one job's data plane.
#[derive(Debug)]
pub struct JobRuntime {
    /// Input arrival model.
    pub traffic: TrafficModel,
    /// The *actual* maximum per-thread processing rate (bytes/sec) — the
    /// ground truth the scaler's `P` estimate chases.
    pub true_per_thread_rate: f64,
    /// Average message size, bytes (drives the memory model).
    pub avg_message_bytes: f64,
    /// Whether the job keeps state (extra memory per key).
    pub stateful: bool,
    /// State key cardinality (stateful jobs).
    pub key_cardinality: f64,
    /// Arrival weight per partition (normalized); skewing this simulates
    /// imbalanced input, and the scaler's `RebalanceInput` resets it.
    pub partition_weights: Vec<f64>,
    partitions: Vec<PartitionState>,
    /// Partitions with `appended != consumed` (maintained exactly at every
    /// mutation via before/after equality — never inferred from deltas,
    /// since `x + tiny == x` is possible in f64).
    undrained: usize,
    /// Bumped whenever `appended` or `consumed` may have changed; the
    /// durability sync skips jobs whose epoch it has already flushed.
    durable_epoch: u64,
    /// The epoch [`Engine::sync_durable`] last flushed (`u64::MAX` =
    /// never synced, which forces the first pass so checkpoint entries
    /// are created even for quiescent jobs).
    last_durable_epoch: u64,
    /// The job's category `total_appended` observed at the end of the last
    /// sync (`None` = category was absent). A mismatch forces a full sync:
    /// the durable tail moved underneath us.
    last_category_appended: Option<u64>,
    // Scaler-window accumulators.
    window_arrived: f64,
    window_processed: f64,
    window_per_task: BTreeMap<TaskId, f64>,
    window_ooms: u32,
}

impl JobRuntime {
    /// Total unconsumed bytes (`total_bytes_lagged`).
    pub fn backlog(&self) -> f64 {
        self.partitions
            .iter()
            .map(|p| p.appended - p.consumed)
            .sum()
    }

    /// Total bytes ever arrived.
    pub fn total_arrived(&self) -> f64 {
        self.partitions.iter().map(|p| p.appended).sum()
    }

    /// Number of input partitions the job reads.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }
}

/// One running task as the engine sees it.
#[derive(Debug, Clone)]
pub struct ActiveTask {
    /// Where the task runs.
    pub container: ContainerId,
    /// Worker threads.
    pub threads: u32,
    /// Reserved resources (OOM ceiling under cgroup enforcement).
    pub reserved: Resources,
    /// Partition slice owned.
    pub partitions: Vec<PartitionId>,
    /// Memory enforcement mode.
    pub enforcement: MemoryEnforcement,
    /// When the task was (re)started on this container.
    pub started_at: SimTime,
    /// Task is restarting until this instant (no processing).
    pub down_until: Option<SimTime>,
    /// Throughput multiplier for host-level degradation injection (1.0 =
    /// healthy). Cleared when the task is (re)started elsewhere.
    pub degradation: f64,
    /// Memory usage at the last tick, MB.
    pub memory_usage_mb: f64,
    /// CPU used at the last tick, cores.
    pub cpu_usage: f64,
}

/// Arena storage for active tasks: bodies live in stable u32-addressed
/// slots, the ordered `index` maps ids to slots (so iteration order — and
/// every floating-point reduction order derived from it — matches the
/// former `BTreeMap<TaskId, ActiveTask>` exactly), and freed slots are
/// recycled through the free list.
#[derive(Debug, Default)]
struct TaskArena {
    slots: Vec<Option<ActiveTask>>,
    index: BTreeMap<TaskId, u32>,
    free: Vec<u32>,
}

impl TaskArena {
    fn insert(&mut self, id: TaskId, task: ActiveTask) -> Option<ActiveTask> {
        if let Some(&slot) = self.index.get(&id) {
            return self.slots[slot as usize].replace(task);
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(task);
                s
            }
            None => {
                self.slots.push(Some(task));
                (self.slots.len() - 1) as u32
            }
        };
        self.index.insert(id, slot);
        None
    }

    fn remove(&mut self, id: TaskId) -> Option<ActiveTask> {
        let slot = self.index.remove(&id)?;
        self.free.push(slot);
        self.slots[slot as usize].take()
    }

    fn get(&self, id: TaskId) -> Option<&ActiveTask> {
        let &slot = self.index.get(&id)?;
        self.slots[slot as usize].as_ref()
    }

    fn get_mut(&mut self, id: TaskId) -> Option<&mut ActiveTask> {
        let &slot = self.index.get(&id)?;
        self.slots[slot as usize].as_mut()
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn iter(&self) -> impl Iterator<Item = (&TaskId, &ActiveTask)> {
        self.index.iter().map(|(id, &slot)| {
            (
                id,
                self.slots[slot as usize].as_ref().expect("indexed slot"),
            )
        })
    }

    fn range_of_job(&self, job: JobId) -> impl Iterator<Item = (&TaskId, &ActiveTask)> {
        self.index
            .range(TaskId::new(job, 0)..=TaskId::new(job, u32::MAX))
            .map(|(id, &slot)| {
                (
                    id,
                    self.slots[slot as usize].as_ref().expect("indexed slot"),
                )
            })
    }
}

/// Stats drained by the scaler each round.
#[derive(Debug, Clone, Default)]
pub struct WindowStats {
    /// Bytes arrived during the window.
    pub arrived: f64,
    /// Bytes processed during the window.
    pub processed: f64,
    /// Bytes processed per task.
    pub per_task: Vec<(TaskId, f64)>,
    /// OOM kills during the window.
    pub ooms: u32,
}

/// Result of one engine tick.
#[derive(Debug, Default)]
pub struct TickOutcome {
    /// Tasks OOM-killed this tick (they restart after the configured
    /// delay).
    pub oom_kills: Vec<TaskId>,
}

/// The data-plane engine.
#[derive(Debug, Default)]
pub struct Engine {
    jobs: BTreeMap<JobId, JobRuntime>,
    tasks: TaskArena,
    /// Tasks currently holding a `down_until` marker (exact counter).
    down_count: usize,
    /// Jobs whose observable data-plane state (task set, usage, backlog,
    /// partition ownership) changed since the last [`Engine::take_dirty`].
    dirty: BTreeSet<JobId>,
}

impl Engine {
    /// An engine with no jobs.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a job's data plane.
    #[allow(clippy::too_many_arguments)] // one call site, each arg distinct
    pub fn add_job(
        &mut self,
        job: JobId,
        traffic: TrafficModel,
        true_per_thread_rate: f64,
        avg_message_bytes: f64,
        partitions: u32,
        stateful: bool,
        key_cardinality: f64,
    ) {
        assert!(partitions > 0);
        assert!(true_per_thread_rate > 0.0);
        self.jobs.insert(
            job,
            JobRuntime {
                traffic,
                true_per_thread_rate,
                avg_message_bytes,
                stateful,
                key_cardinality,
                partition_weights: vec![1.0 / partitions as f64; partitions as usize],
                partitions: vec![PartitionState::default(); partitions as usize],
                undrained: 0,
                durable_epoch: 0,
                last_durable_epoch: u64::MAX,
                last_category_appended: None,
                window_arrived: 0.0,
                window_processed: 0.0,
                window_per_task: BTreeMap::new(),
                window_ooms: 0,
            },
        );
        self.dirty.insert(job);
    }

    /// Remove a job's data plane entirely.
    pub fn remove_job(&mut self, job: JobId) {
        self.jobs.remove(&job);
        let ids: Vec<TaskId> = self
            .tasks
            .index
            .range(TaskId::new(job, 0)..=TaskId::new(job, u32::MAX))
            .map(|(&id, _)| id)
            .collect();
        for id in ids {
            if let Some(task) = self.tasks.remove(id) {
                if task.down_until.is_some() {
                    self.down_count -= 1;
                }
            }
        }
        self.dirty.insert(job);
    }

    /// Access a job's runtime (e.g. to mutate its traffic model or skew
    /// its partition weights mid-experiment).
    pub fn job_mut(&mut self, job: JobId) -> Option<&mut JobRuntime> {
        self.dirty.insert(job);
        self.jobs.get_mut(&job)
    }

    /// Read access to a job's runtime.
    pub fn job(&self, job: JobId) -> Option<&JobRuntime> {
        self.jobs.get(&job)
    }

    /// All jobs registered.
    pub fn job_ids(&self) -> Vec<JobId> {
        self.jobs.keys().copied().collect()
    }

    /// A task started (or restarted) on a container.
    pub fn task_started(
        &mut self,
        spec: &TaskSpec,
        container: ContainerId,
        now: SimTime,
        restart_delay: Duration,
    ) {
        let replaced = self.tasks.insert(
            spec.id,
            ActiveTask {
                container,
                threads: spec.threads,
                reserved: spec.reserved,
                partitions: spec.partitions.clone(),
                enforcement: spec.memory_enforcement,
                started_at: now,
                down_until: Some(now + restart_delay),
                degradation: 1.0,
                memory_usage_mb: 0.0,
                cpu_usage: 0.0,
            },
        );
        if replaced.is_none_or(|t| t.down_until.is_none()) {
            self.down_count += 1;
        }
        self.dirty.insert(spec.id.job);
    }

    /// Degrade (or restore) one task's throughput — models a sick host
    /// slowing a single task (§V-D's hardware-issue class). The factor is
    /// cleared when the task restarts on a(nother) container.
    pub fn degrade_task(&mut self, task: TaskId, factor: f64) {
        assert!(factor > 0.0);
        if let Some(t) = self.tasks.get_mut(task) {
            t.degradation = factor;
            self.dirty.insert(task.job);
        }
    }

    /// A task stopped on `container`. The container must match the entry:
    /// a stale stop acknowledgement from a previous owner (e.g. a
    /// recovering container whose shards were already failed over) must
    /// not remove the task now running elsewhere.
    pub fn task_stopped(&mut self, task: TaskId, container: ContainerId) {
        if self
            .tasks
            .get(task)
            .is_some_and(|t| t.container == container)
        {
            if let Some(removed) = self.tasks.remove(task) {
                if removed.down_until.is_some() {
                    self.down_count -= 1;
                }
            }
            self.dirty.insert(task.job);
        }
    }

    /// Number of active tasks of a job.
    pub fn running_tasks_of(&self, job: JobId) -> usize {
        self.tasks_of_job(job).count()
    }

    /// Total active tasks.
    pub fn total_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Iterate active tasks.
    pub fn tasks(&self) -> impl Iterator<Item = (&TaskId, &ActiveTask)> {
        self.tasks.iter()
    }

    /// Iterate the active tasks of one job (range query on the ordered
    /// task index — O(log n + tasks of the job)).
    pub fn tasks_of_job(&self, job: JobId) -> impl Iterator<Item = (&TaskId, &ActiveTask)> {
        self.tasks.range_of_job(job)
    }

    /// Direct lookup of one active task by id.
    pub fn task(&self, id: TaskId) -> Option<&ActiveTask> {
        self.tasks.get(id)
    }

    /// The `k`-th active task in deterministic (ordered-index) iteration
    /// order, with its container — a single lookup for uniform victim
    /// selection during crash injection.
    pub fn nth_task(&self, k: usize) -> Option<(TaskId, ContainerId)> {
        self.tasks.iter().nth(k).map(|(&id, t)| (id, t.container))
    }

    /// True when the data plane would be a no-op at every instant in
    /// `(after, through]`: no task is mid-restart, every partition is
    /// fully drained (a full drain takes the exact `share == 1.0` path in
    /// [`Engine::tick`], so a drained partition has `appended ==
    /// consumed` bit-for-bit), and no job's traffic model delivers
    /// arrivals anywhere in the window. The event-driven scheduler uses
    /// this quiescence signal to jump the clock to the next due control
    /// event instead of dense-ticking through idle time.
    ///
    /// Restart markers and drained partitions are answered from exact
    /// counters (`down_count`, per-job `undrained`) maintained at every
    /// mutation, so the check is O(jobs) — the per-task and per-partition
    /// scans of the dense layout are gone.
    pub fn is_quiescent_through(&self, after: SimTime, through: SimTime) -> bool {
        self.down_count == 0
            && self
                .jobs
                .values()
                .all(|rt| rt.undrained == 0 && rt.traffic.idle_through(after, through))
    }

    /// Last-tick resource usage of every task (for load aggregation and
    /// utilization metrics).
    pub fn task_usage_map(&self) -> HashMap<TaskId, Resources> {
        self.tasks
            .iter()
            .map(|(&id, t)| (id, Resources::cpu_mem(t.cpu_usage, t.memory_usage_mb)))
            .collect()
    }

    /// Force a task into restart (crash injection, container reboot).
    pub fn knock_down_task(&mut self, task: TaskId, until: SimTime) {
        if let Some(t) = self.tasks.get_mut(task) {
            if t.down_until.is_none() {
                self.down_count += 1;
            }
            t.down_until = Some(until);
            self.dirty.insert(task.job);
        }
    }

    /// Drain the set of jobs whose observable data-plane state changed
    /// since the last call. Consumers (invariant checker, dashboard, load
    /// reports) fold this into their own pending sets; an empty result
    /// guarantees every job's task set, usage, and backlog are
    /// bit-identical to the last drain.
    pub fn take_dirty(&mut self) -> BTreeSet<JobId> {
        std::mem::take(&mut self.dirty)
    }

    /// Advance the data plane by `dt`. `container_cpu` supplies the CPU
    /// capacity of each healthy container (tasks on missing containers do
    /// not run); `paused` jobs receive arrivals but process nothing.
    pub fn tick(
        &mut self,
        now: SimTime,
        dt: Duration,
        container_cpu: &HashMap<ContainerId, f64>,
        paused: &dyn Fn(JobId) -> bool,
    ) -> TickOutcome {
        let dt_secs = dt.as_secs_f64();
        let Engine {
            jobs,
            tasks,
            down_count,
            dirty,
        } = self;
        // Phase 1: arrivals.
        for (&job, rt) in jobs.iter_mut() {
            let rate = rt.traffic.arrival_rate(now);
            if rate > 0.0 {
                let amount = rate * dt_secs;
                rt.window_arrived += amount;
                for (p, w) in rt.partitions.iter_mut().zip(&rt.partition_weights) {
                    let was_drained = p.appended == p.consumed;
                    p.appended += amount * w;
                    if was_drained && p.appended != p.consumed {
                        rt.undrained += 1;
                    }
                }
                rt.durable_epoch += 1;
                dirty.insert(job);
            }
        }

        // Phase 2: per-task desired work and per-container CPU demand.
        struct Work {
            id: TaskId,
            desired: f64, // bytes the task wants to process this tick
        }
        let TaskArena { slots, index, .. } = tasks;
        let mut works: Vec<Work> = Vec::with_capacity(index.len());
        let mut demand: HashMap<ContainerId, f64> = HashMap::new();
        for (&id, &slot) in index.iter() {
            let task = slots[slot as usize].as_mut().expect("indexed slot");
            if task.down_until.is_some_and(|until| now < until) {
                if task.cpu_usage != 0.0 {
                    task.cpu_usage = 0.0;
                    dirty.insert(id.job);
                }
                continue;
            }
            if task.down_until.take().is_some() {
                *down_count -= 1;
                dirty.insert(id.job);
            }
            let Some(rt) = jobs.get(&id.job) else {
                continue;
            };
            if paused(id.job) || rt.traffic.consumer_disabled(now) {
                let memory = task.memory_usage_mb.max(400.0);
                if task.cpu_usage != 0.0 || task.memory_usage_mb != memory {
                    task.cpu_usage = 0.0;
                    task.memory_usage_mb = memory;
                    dirty.insert(id.job);
                }
                continue;
            }
            if !container_cpu.contains_key(&task.container) {
                // Host dead: task is effectively down.
                if task.cpu_usage != 0.0 {
                    task.cpu_usage = 0.0;
                    dirty.insert(id.job);
                }
                continue;
            }
            let capacity =
                rt.true_per_thread_rate * task.threads as f64 * dt_secs * task.degradation;
            let backlog: f64 = task
                .partitions
                .iter()
                .map(|p| {
                    let ps = &rt.partitions[p.raw() as usize];
                    ps.appended - ps.consumed
                })
                .sum();
            let desired = backlog.min(capacity);
            let cpu_cores = desired / (rt.true_per_thread_rate * dt_secs);
            *demand.entry(task.container).or_default() += cpu_cores;
            let _ = capacity;
            works.push(Work { id, desired });
        }

        // Phase 3: contention factors per container.
        let factor: HashMap<ContainerId, f64> = demand
            .iter()
            .map(|(&c, &d)| {
                let cap = container_cpu.get(&c).copied().unwrap_or(0.0);
                (c, if d > cap && d > 0.0 { cap / d } else { 1.0 })
            })
            .collect();

        // Phase 4: processing + memory + OOM.
        let mut outcome = TickOutcome::default();
        for work in works {
            let slot = *index.get(&work.id).expect("collected above");
            let task = slots[slot as usize].as_mut().expect("collected above");
            let rt = jobs.get_mut(&work.id.job).expect("collected above");
            let f = factor.get(&task.container).copied().unwrap_or(1.0);
            let mut to_process = work.desired * f;
            let cpu_usage = to_process / (rt.true_per_thread_rate * dt_secs);
            if task.cpu_usage != cpu_usage {
                task.cpu_usage = cpu_usage;
                dirty.insert(work.id.job);
            }
            if to_process > 0.0 {
                // Consume proportionally to per-partition backlog.
                let slice_backlog: f64 = task
                    .partitions
                    .iter()
                    .map(|p| {
                        let ps = &rt.partitions[p.raw() as usize];
                        ps.appended - ps.consumed
                    })
                    .sum();
                if slice_backlog > 0.0 {
                    to_process = to_process.min(slice_backlog);
                    let share = to_process / slice_backlog;
                    for p in &task.partitions {
                        let ps = &mut rt.partitions[p.raw() as usize];
                        let was_drained = ps.appended == ps.consumed;
                        ps.consumed += (ps.appended - ps.consumed) * share;
                        if !was_drained && ps.appended == ps.consumed {
                            rt.undrained -= 1;
                        }
                    }
                    rt.window_processed += to_process;
                    *rt.window_per_task.entry(work.id).or_default() += to_process;
                    rt.durable_epoch += 1;
                    dirty.insert(work.id.job);
                }
            }
            // Memory model: footprint follows the processed rate, plus
            // state for stateful jobs.
            let rate = task.cpu_usage * rt.true_per_thread_rate;
            let mut usage =
                task_usage(rate, rt.avg_message_bytes, rt.true_per_thread_rate).memory_mb;
            if rt.stateful {
                let tasks_of_job =
                    task.partitions.len().max(1) as f64 / rt.partitions.len().max(1) as f64;
                usage += rt.key_cardinality * tasks_of_job * 1.0e-3;
            }
            if task.memory_usage_mb != usage {
                task.memory_usage_mb = usage;
                dirty.insert(work.id.job);
            }
            let enforced = matches!(
                task.enforcement,
                MemoryEnforcement::Cgroup | MemoryEnforcement::Jvm
            );
            if enforced && usage > task.reserved.memory_mb {
                outcome.oom_kills.push(work.id);
                rt.window_ooms += 1;
            }
        }
        outcome
    }

    /// Drain and reset the scaler-window accumulators for one job.
    pub fn drain_window(&mut self, job: JobId) -> WindowStats {
        let Some(rt) = self.jobs.get_mut(&job) else {
            return WindowStats::default();
        };
        let stats = WindowStats {
            arrived: rt.window_arrived,
            processed: rt.window_processed,
            per_task: rt.window_per_task.iter().map(|(&t, &v)| (t, v)).collect(),
            ooms: rt.window_ooms,
        };
        rt.window_arrived = 0.0;
        rt.window_processed = 0.0;
        rt.window_per_task.clear();
        rt.window_ooms = 0;
        stats
    }

    /// Mirror accumulated arrivals into the Scribe substrate and commit
    /// consumed offsets to the checkpoint store. Called on the checkpoint
    /// cadence — tasks checkpoint periodically, not per record.
    ///
    /// Incremental: a job is skipped when its durability epoch has not
    /// moved since the last flush *and* its category's total-appended
    /// counter is unchanged (no other writer touched the durable tail).
    /// Skipping is exact: with both unchanged, every partition's mirror
    /// delta is a sub-byte fraction (no append) and the checkpoint commit
    /// would either not fire or rewrite its current value (a no-op — the
    /// first-ever sync, which creates the checkpoint entries, is forced by
    /// the `u64::MAX` epoch sentinel). A torn-tail salvage between rounds
    /// only lowers the tail, which lowers the commit target below the
    /// persisted checkpoint — also a no-op. The full per-partition path
    /// remains the crash-recovery oracle and runs whenever in doubt.
    pub fn sync_durable(
        &mut self,
        now: SimTime,
        scribe: &mut Scribe,
        checkpoints: &mut CheckpointStore,
        category_of: &dyn Fn(JobId) -> String,
    ) {
        for (&job, rt) in &mut self.jobs {
            let category = category_of(job);
            let epoch_clean = rt.last_durable_epoch == rt.durable_epoch;
            match scribe.category_view(&category) {
                Ok(mut view) => {
                    if epoch_clean && rt.last_category_appended == Some(view.total_appended()) {
                        continue;
                    }
                    for (i, p) in rt.partitions.iter_mut().enumerate() {
                        let partition = PartitionId(i as u64);
                        let delta = p.appended - p.scribe_synced;
                        if delta >= 1.0 {
                            let _ = view.append_bytes(partition, delta as u64, now);
                            p.scribe_synced += delta.floor();
                        }
                        // Commit the consumed offset, capped at the durable
                        // tail: a checkpoint must name a readable position.
                        // After a WAL torn-tail salvage the tail can sit
                        // *below* both the engine's consumed counter and
                        // the last persisted checkpoint — never move the
                        // checkpoint backwards here (recovery clamps it
                        // explicitly, with a trace event) and never
                        // re-advance it past the tail.
                        let tail = view.tail_offset(partition).unwrap_or(0);
                        let target = (p.consumed as u64).min(tail);
                        if target >= checkpoints.get(job, partition) {
                            checkpoints.commit(job, partition, target);
                        }
                    }
                    rt.last_category_appended = Some(view.total_appended());
                }
                Err(_) => {
                    // No such category: appends are dropped but the mirror
                    // cursor still advances, and checkpoints commit against
                    // an implicit zero tail — exactly the legacy behavior.
                    if epoch_clean && rt.last_category_appended.is_none() {
                        continue;
                    }
                    for (i, p) in rt.partitions.iter_mut().enumerate() {
                        let partition = PartitionId(i as u64);
                        let delta = p.appended - p.scribe_synced;
                        if delta >= 1.0 {
                            p.scribe_synced += delta.floor();
                        }
                        if checkpoints.get(job, partition) == 0 {
                            checkpoints.commit(job, partition, 0);
                        }
                    }
                    rt.last_category_appended = None;
                }
            }
            rt.last_durable_epoch = rt.durable_epoch;
        }
    }
}

use turbine_types::{Snap, SnapError, SnapReader, SnapWriter};

impl Snap for PartitionState {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.appended);
        w.put(&self.consumed);
        w.put(&self.scribe_synced);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(PartitionState {
            appended: r.get()?,
            consumed: r.get()?,
            scribe_synced: r.get()?,
        })
    }
}

impl Snap for JobRuntime {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.traffic);
        w.put(&self.true_per_thread_rate);
        w.put(&self.avg_message_bytes);
        w.put(&self.stateful);
        w.put(&self.key_cardinality);
        w.put(&self.partition_weights);
        w.put(&self.partitions);
        w.u64(self.durable_epoch);
        w.u64(self.last_durable_epoch);
        w.put(&self.last_category_appended);
        w.put(&self.window_arrived);
        w.put(&self.window_processed);
        w.put(&self.window_per_task);
        w.u32(self.window_ooms);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let traffic = r.get()?;
        let true_per_thread_rate: f64 = r.get()?;
        let avg_message_bytes = r.get()?;
        let stateful = r.get()?;
        let key_cardinality = r.get()?;
        let partition_weights: Vec<f64> = r.get()?;
        let partitions: Vec<PartitionState> = r.get()?;
        if partitions.is_empty() || partition_weights.len() != partitions.len() {
            return Err(SnapError::Value("JobRuntime partition shape mismatch"));
        }
        if !true_per_thread_rate.is_finite() || true_per_thread_rate <= 0.0 {
            return Err(SnapError::Value("JobRuntime per-thread rate not positive"));
        }
        // `undrained` is the exact count of partitions with `appended !=
        // consumed`; f64 round-trips are bit-exact, so recomputing it here
        // reproduces the maintained counter.
        let undrained = partitions
            .iter()
            .filter(|p| p.appended != p.consumed)
            .count();
        Ok(JobRuntime {
            traffic,
            true_per_thread_rate,
            avg_message_bytes,
            stateful,
            key_cardinality,
            partition_weights,
            partitions,
            undrained,
            durable_epoch: r.u64("JobRuntime.durable_epoch")?,
            last_durable_epoch: r.u64("JobRuntime.last_durable_epoch")?,
            last_category_appended: r.get()?,
            window_arrived: r.get()?,
            window_processed: r.get()?,
            window_per_task: r.get()?,
            window_ooms: r.u32("JobRuntime.window_ooms")?,
        })
    }
}

impl Snap for ActiveTask {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.container);
        w.u32(self.threads);
        w.put(&self.reserved);
        w.put(&self.partitions);
        w.put(&self.enforcement);
        w.put(&self.started_at);
        w.put(&self.down_until);
        w.put(&self.degradation);
        w.put(&self.memory_usage_mb);
        w.put(&self.cpu_usage);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(ActiveTask {
            container: r.get()?,
            threads: r.u32("ActiveTask.threads")?,
            reserved: r.get()?,
            partitions: r.get()?,
            enforcement: r.get()?,
            started_at: r.get()?,
            down_until: r.get()?,
            degradation: r.get()?,
            memory_usage_mb: r.get()?,
            cpu_usage: r.get()?,
        })
    }
}

impl Snap for Engine {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.jobs);
        // The arena serializes as ordered (id, task) pairs; slot layout is
        // an implementation detail the restore rebuilds densely.
        w.u64(self.tasks.len() as u64);
        for (id, task) in self.tasks.iter() {
            w.put(id);
            w.put(task);
        }
        w.put(&self.dirty);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let jobs: BTreeMap<JobId, JobRuntime> = r.get()?;
        let count = r.len_prefix("Engine.tasks")?;
        let mut tasks = TaskArena::default();
        let mut down_count = 0;
        for _ in 0..count {
            let id: TaskId = r.get()?;
            let task: ActiveTask = r.get()?;
            if task.down_until.is_some() {
                down_count += 1;
            }
            if tasks.insert(id, task).is_some() {
                return Err(SnapError::Value("Engine duplicate task id"));
            }
        }
        Ok(Engine {
            jobs,
            tasks,
            down_count,
            dirty: r.get()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbine_config::JobConfig;
    use turbine_taskmgr::TaskService;

    const JOB: JobId = JobId(1);
    const C0: ContainerId = ContainerId(0);

    fn engine_with_job(rate: f64, task_count: u32) -> (Engine, Vec<TaskSpec>) {
        let mut engine = Engine::new();
        engine.add_job(JOB, TrafficModel::flat(rate), 1.0e6, 256.0, 16, false, 0.0);
        let config = JobConfig::stateless("t", task_count, 16);
        let specs = TaskService::generate_specs(JOB, &config);
        for spec in &specs {
            engine.task_started(spec, C0, SimTime::ZERO, Duration::ZERO);
        }
        (engine, specs)
    }

    fn caps(cpu: f64) -> HashMap<ContainerId, f64> {
        HashMap::from([(C0, cpu)])
    }

    fn run_ticks(engine: &mut Engine, ticks: u64, cpu: f64) -> SimTime {
        let dt = Duration::from_secs(10);
        let mut now = SimTime::ZERO;
        for _ in 0..ticks {
            now += dt;
            engine.tick(now, dt, &caps(cpu), &|_| false);
        }
        now
    }

    #[test]
    fn sufficient_capacity_keeps_up() {
        let (mut engine, _) = engine_with_job(1.0e6, 2);
        run_ticks(&mut engine, 30, 64.0);
        let backlog = engine.job(JOB).expect("job").backlog();
        // 2 tasks × 1 MB/s can absorb 1 MB/s: backlog stays ~one tick.
        assert!(backlog < 1.1e7, "backlog {backlog}");
        let stats = engine.drain_window(JOB);
        assert!((stats.processed / stats.arrived) > 0.95);
        assert_eq!(stats.per_task.len(), 2);
    }

    #[test]
    fn undersized_job_builds_backlog() {
        let (mut engine, _) = engine_with_job(4.0e6, 2); // capacity 2 MB/s
        run_ticks(&mut engine, 30, 64.0);
        let backlog = engine.job(JOB).expect("job").backlog();
        // Deficit 2 MB/s over 300 s = 600 MB.
        assert!(backlog > 5.5e8, "backlog {backlog}");
        let stats = engine.drain_window(JOB);
        assert!(stats.processed < stats.arrived * 0.6);
    }

    #[test]
    fn container_contention_slows_all_tenants() {
        let (mut engine, _) = engine_with_job(4.0e6, 4); // wants 4 cores
        run_ticks(&mut engine, 10, 1.0); // container only has 1 core
        let stats = engine.drain_window(JOB);
        let ratio = stats.processed / stats.arrived;
        assert!(ratio < 0.35, "contention should cap throughput: {ratio}");
    }

    #[test]
    fn paused_jobs_accumulate_without_processing() {
        let (mut engine, _) = engine_with_job(1.0e6, 2);
        let dt = Duration::from_secs(10);
        let mut now = SimTime::ZERO;
        for _ in 0..10 {
            now += dt;
            engine.tick(now, dt, &caps(64.0), &|_| true);
        }
        let stats = engine.drain_window(JOB);
        assert_eq!(stats.processed, 0.0);
        assert!(engine.job(JOB).expect("job").backlog() >= 1.0e7 * 0.99);
    }

    #[test]
    fn dead_container_stops_processing() {
        let (mut engine, _) = engine_with_job(1.0e6, 2);
        let dt = Duration::from_secs(10);
        engine.tick(SimTime::ZERO + dt, dt, &HashMap::new(), &|_| false);
        let stats = engine.drain_window(JOB);
        assert_eq!(stats.processed, 0.0);
    }

    #[test]
    fn skewed_partitions_create_imbalanced_per_task_rates() {
        let (mut engine, _) = engine_with_job(2.0e6, 2);
        {
            let rt = engine.job_mut(JOB).expect("job");
            // All traffic into the first task's slice (partitions 0..8).
            let mut weights = vec![0.0; 16];
            for w in weights.iter_mut().take(8) {
                *w = 1.0 / 8.0;
            }
            rt.partition_weights = weights;
        }
        run_ticks(&mut engine, 10, 64.0);
        let stats = engine.drain_window(JOB);
        let rates: Vec<f64> = stats.per_task.iter().map(|&(_, v)| v).collect();
        assert!(rates[0] > 0.0);
        // Task 1 (partitions 8..16) sees nothing.
        assert!(stats.per_task.len() == 1 || rates[1] == 0.0, "{stats:?}");
    }

    #[test]
    fn cgroup_task_ooms_when_over_reserved() {
        let mut engine = Engine::new();
        engine.add_job(JOB, TrafficModel::flat(4.0e6), 1.0e6, 4096.0, 4, false, 0.0);
        let mut config = JobConfig::stateless("t", 1, 4);
        config.memory_enforcement = turbine_config::MemoryEnforcement::Cgroup;
        config.task_resources = Resources::cpu_mem(8.0, 410.0); // tight memory
        let specs = TaskService::generate_specs(JOB, &config);
        engine.task_started(&specs[0], C0, SimTime::ZERO, Duration::ZERO);
        let dt = Duration::from_secs(10);
        let outcome = engine.tick(SimTime::ZERO + dt, dt, &caps(64.0), &|_| false);
        assert_eq!(outcome.oom_kills, vec![specs[0].id]);
        assert_eq!(engine.drain_window(JOB).ooms, 1);
    }

    #[test]
    fn soft_limit_task_never_oom_kills() {
        let mut engine = Engine::new();
        engine.add_job(JOB, TrafficModel::flat(4.0e6), 1.0e6, 4096.0, 4, false, 0.0);
        let mut config = JobConfig::stateless("t", 1, 4);
        config.task_resources = Resources::cpu_mem(8.0, 410.0);
        let specs = TaskService::generate_specs(JOB, &config);
        engine.task_started(&specs[0], C0, SimTime::ZERO, Duration::ZERO);
        let dt = Duration::from_secs(10);
        let outcome = engine.tick(SimTime::ZERO + dt, dt, &caps(64.0), &|_| false);
        assert!(outcome.oom_kills.is_empty());
    }

    #[test]
    fn restart_delay_suppresses_processing() {
        let mut engine = Engine::new();
        engine.add_job(JOB, TrafficModel::flat(1.0e6), 1.0e6, 256.0, 4, false, 0.0);
        let specs = TaskService::generate_specs(JOB, &JobConfig::stateless("t", 1, 4));
        engine.task_started(&specs[0], C0, SimTime::ZERO, Duration::from_secs(60));
        let dt = Duration::from_secs(10);
        let mut now = SimTime::ZERO;
        for _ in 0..5 {
            now += dt;
            engine.tick(now, dt, &caps(64.0), &|_| false);
        }
        assert_eq!(engine.drain_window(JOB).processed, 0.0, "still restarting");
        for _ in 0..5 {
            now += dt;
            engine.tick(now, dt, &caps(64.0), &|_| false);
        }
        assert!(engine.drain_window(JOB).processed > 0.0, "restarted");
    }

    #[test]
    fn durable_sync_mirrors_scribe_and_checkpoints() {
        let (mut engine, specs) = engine_with_job(1.0e6, 2);
        let now = run_ticks(&mut engine, 6, 64.0);
        let mut scribe = Scribe::new();
        scribe.create_category("cat", 16).expect("create");
        let mut checkpoints = CheckpointStore::new();
        engine.sync_durable(now, &mut scribe, &mut checkpoints, &|_| "cat".to_string());
        let total: u64 = (0..16)
            .map(|p| scribe.tail_offset("cat", PartitionId(p)).expect("tail"))
            .sum();
        // 60 s at 1 MB/s = 60 MB arrived.
        assert!((total as f64 - 6.0e7).abs() < 1.0e6, "total {total}");
        assert!(checkpoints.job_total_ingested(JOB) > 0);
        let _ = specs;
    }

    #[test]
    fn repeated_syncs_on_a_quiet_job_are_skipped_and_exact() {
        let (mut engine, _) = engine_with_job(1.0e6, 2);
        let now = run_ticks(&mut engine, 6, 64.0);
        let mut scribe = Scribe::new();
        scribe.create_category("cat", 16).expect("create");
        let mut checkpoints = CheckpointStore::new();
        let cat = |_| "cat".to_string();
        engine.sync_durable(now, &mut scribe, &mut checkpoints, &cat);
        let tails: Vec<u64> = (0..16)
            .map(|p| scribe.tail_offset("cat", PartitionId(p)).expect("tail"))
            .collect();
        let offsets: Vec<u64> = (0..16)
            .map(|p| checkpoints.get(JOB, PartitionId(p)))
            .collect();
        let entries = checkpoints.len();
        // No ticks in between: the second sync must change nothing (it is
        // skipped via the epoch, but a full replay would also be a no-op).
        engine.sync_durable(now, &mut scribe, &mut checkpoints, &cat);
        let tails2: Vec<u64> = (0..16)
            .map(|p| scribe.tail_offset("cat", PartitionId(p)).expect("tail"))
            .collect();
        let offsets2: Vec<u64> = (0..16)
            .map(|p| checkpoints.get(JOB, PartitionId(p)))
            .collect();
        assert_eq!(tails, tails2);
        assert_eq!(offsets, offsets2);
        assert_eq!(entries, checkpoints.len());
        // New arrivals re-arm the sync.
        let dt = Duration::from_secs(10);
        engine.tick(now + dt, dt, &caps(64.0), &|_| false);
        engine.sync_durable(now + dt, &mut scribe, &mut checkpoints, &cat);
        let total: u64 = (0..16)
            .map(|p| scribe.tail_offset("cat", PartitionId(p)).expect("tail"))
            .sum();
        assert!(total > tails.iter().sum::<u64>(), "sync resumed after tick");
    }

    #[test]
    fn dirty_set_tracks_mutations_and_settles_when_quiet() {
        let (mut engine, specs) = engine_with_job(0.0, 2);
        assert_eq!(engine.take_dirty().into_iter().collect::<Vec<_>>(), [JOB]);
        assert!(engine.take_dirty().is_empty());
        let dt = Duration::from_secs(10);
        let mut now = SimTime::ZERO;
        now += dt;
        // First tick clears restart markers: dirty.
        engine.tick(now, dt, &caps(64.0), &|_| false);
        assert!(engine.take_dirty().contains(&JOB));
        // Zero-rate traffic, settled usage: subsequent ticks are clean.
        now += dt;
        engine.tick(now, dt, &caps(64.0), &|_| false);
        assert!(engine.take_dirty().is_empty());
        // Explicit mutations mark again.
        engine.knock_down_task(specs[0].id, now + dt);
        assert!(engine.take_dirty().contains(&JOB));
    }

    #[test]
    fn quiescence_requires_drained_partitions_and_idle_traffic() {
        let (mut engine, specs) = engine_with_job(0.0, 2);
        let t0 = SimTime::ZERO;
        let later = t0 + Duration::from_mins(10);
        // Fresh tasks are mid-restart (down_until set): not quiescent.
        assert!(!engine.is_quiescent_through(t0, later));
        let dt = Duration::from_secs(10);
        engine.tick(t0 + dt, dt, &caps(64.0), &|_| false);
        // Zero-rate traffic, nothing appended, restarts cleared: quiescent.
        assert!(engine.is_quiescent_through(t0 + dt, later));
        // Direct lookups agree with iteration order.
        assert_eq!(engine.task(specs[0].id).map(|t| t.container), Some(C0));
        assert_eq!(engine.nth_task(0).map(|(id, _)| id), Some(specs[0].id));
        assert_eq!(engine.nth_task(2), None);
    }

    #[test]
    fn backlog_blocks_quiescence_until_fully_drained() {
        // 4 MB/s into 2 × 1 MB/s tasks: backlog builds every tick.
        let (mut engine, _) = engine_with_job(4.0e6, 2);
        let dt = Duration::from_secs(10);
        let mut now = SimTime::ZERO;
        // Build backlog, then cut arrivals via an input outage and drain.
        now += dt;
        engine.tick(now, dt, &caps(64.0), &|_| false);
        engine.job_mut(JOB).expect("job").traffic =
            TrafficModel::flat(4.0e6).with_event(turbine_workloads::TrafficEvent {
                start: now,
                end: SimTime::ZERO + Duration::from_hours(2),
                kind: turbine_workloads::TrafficEventKind::InputOutage,
            });
        let horizon = now + Duration::from_mins(5);
        assert!(
            !engine.is_quiescent_through(now, horizon),
            "undrained backlog must block quiescence"
        );
        for _ in 0..6 {
            now += dt;
            engine.tick(now, dt, &caps(64.0), &|_| false);
        }
        assert!(
            engine.job(JOB).expect("job").backlog() == 0.0,
            "full drain must hit the exact share == 1.0 path"
        );
        assert!(engine.is_quiescent_through(now, now + Duration::from_mins(5)));
    }

    #[test]
    fn arena_slots_are_recycled_across_restarts() {
        let (mut engine, specs) = engine_with_job(1.0e6, 2);
        assert_eq!(engine.total_tasks(), 2);
        engine.task_stopped(specs[0].id, C0);
        assert_eq!(engine.total_tasks(), 1);
        // Stale stop from a non-owning container is ignored.
        engine.task_stopped(specs[1].id, ContainerId(9));
        assert_eq!(engine.total_tasks(), 1);
        engine.task_started(&specs[0], ContainerId(3), SimTime::ZERO, Duration::ZERO);
        assert_eq!(engine.total_tasks(), 2);
        assert_eq!(
            engine.task(specs[0].id).map(|t| t.container),
            Some(ContainerId(3))
        );
        // Iteration order stays id-ordered regardless of slot recycling.
        let ids: Vec<TaskId> = engine.tasks().map(|(&id, _)| id).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn remove_job_clears_tasks() {
        let (mut engine, _) = engine_with_job(1.0e6, 2);
        assert_eq!(engine.total_tasks(), 2);
        engine.remove_job(JOB);
        assert_eq!(engine.total_tasks(), 0);
        assert!(engine.job(JOB).is_none());
    }
}
