//! The event-driven control plane: a typed event taxonomy, a component
//! handler table, and the drive loops.
//!
//! Instead of polling every component's [`Periodic`] on every dense tick,
//! the platform keeps one pending [`ControlEvent`] per component in a
//! [`turbine_sim::EventQueue`] and advances the clock from event to event.
//! Each handler reschedules its own next firing; fault windows enqueue
//! their activation/clear edges as wake events. Between events the data
//! plane advances in bounded steps: dense-stepping (one engine tick per
//! `config.tick`) while any job has backlog, a task is mid-restart, a
//! fault is active, or crash injection is armed — and sparse-jumping the
//! clock straight to the next due event when the fleet is quiescent.
//!
//! # Determinism contract
//!
//! The event-driven loop reproduces the dense-tick reference stepper
//! bit-for-bit:
//!
//! * **Grid.** Control events execute on the dense tick grid: an event due
//!   at `d` executes at the first multiple of `config.tick` that is ≥ `d`
//!   (and ≥ one tick — the dense loop never executes instant 0), exactly
//!   where `fire_if_due` would have caught it.
//! * **Same-instant order.** Events landing on the same instant dispatch
//!   in the fixed component-table order below — the same order the dense
//!   `step()` consulted the components in.
//! * **Cadence arithmetic.** Each component's own [`Periodic`] remains the
//!   source of truth for due times in both modes, so missed-slot
//!   collapsing behaves identically.
//! * **Quiescent jumps.** A sparse jump lands with a single engine tick at
//!   the target instant. Idle engine ticks are idempotent after the first
//!   (no arrivals, no backlog, no restarts in flight — enforced by
//!   [`Engine::is_quiescent_through`]), so skipping the intermediate ones
//!   cannot change any observable state. Jumps are disabled outright
//!   while crash injection is armed (every dense tick draws from the RNG
//!   stream) or any fault is active.

use super::{Turbine, TurbineConfig};
use crate::invariants::InvariantView;
use std::collections::BTreeSet;
use turbine_sim::{EventQueue, Fault, Periodic};
use turbine_trace::{Component as TraceComponent, TraceData};
use turbine_types::{ContainerId, Duration, JobId, SimTime};

/// A typed control-plane event. Periodic component rounds carry no
/// payload — the component table maps each variant to its handler —
/// while the wake variants only pin an instant to the execution grid so
/// the loop stops there (their work happens in the pre-event data-plane
/// step).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlEvent {
    /// Task Manager heartbeats + proactive reboots, followed by the Shard
    /// Manager fail-over check.
    Heartbeat,
    /// Task Manager snapshot refresh from the Task Service.
    TmRefresh,
    /// State Syncer reconciliation round.
    SyncRound,
    /// Auto Scaler evaluation round.
    ScalerRound,
    /// Task Manager load reports to the Shard Manager.
    LoadReport,
    /// Cluster-wide shard rebalance.
    Rebalance,
    /// Capacity Manager evaluation round.
    CapacityRound,
    /// Scribe/checkpoint durability sync.
    Checkpoint,
    /// Metric sampling.
    MetricsSample,
    /// Wake event pinning a scheduled fault-window edge (activation or
    /// expiry) to the grid; the chaos engine applies the edge in the
    /// data-plane step at that instant.
    FaultEdge,
    /// Wake event pinning the end of a task's restart delay to the grid
    /// so an otherwise-idle fleet re-evaluates promptly.
    TaskRestartDue,
}

/// How [`Turbine::drive_until`] advances the clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriveMode {
    /// Event-queue scheduling with sparse jumps over quiescent spans (the
    /// default used by [`Turbine::run_for`] / [`Turbine::run_until`]).
    EventDriven,
    /// The pre-refactor reference: one `fire_if_due` poll of every
    /// component per dense tick. Kept as the equivalence oracle for tests
    /// and scheduler benchmarks.
    DenseTick,
}

/// One periodic control-plane component: its event tag, cadence, phase,
/// gate (fault conditions that skip a due round — the `Periodic` slot is
/// consumed either way, exactly as in the dense stepper), and handler.
pub(crate) struct ControlComponent {
    /// Display name (validation errors, docs).
    pub(crate) name: &'static str,
    /// Name of the `TurbineConfig` field holding the cadence.
    pub(crate) cadence_name: &'static str,
    /// Event variant this component owns.
    pub(crate) event: ControlEvent,
    /// The component's tag in the decision trace (span records, latency
    /// histograms).
    pub(crate) trace: TraceComponent,
    /// Cadence from the configuration.
    pub(crate) cadence: fn(&TurbineConfig) -> Duration,
    /// First-firing phase offset from the configuration.
    pub(crate) phase: fn(&TurbineConfig) -> Duration,
    /// Whether a due round actually runs right now.
    pub(crate) gate: fn(&Turbine) -> bool,
    /// The round handler.
    pub(crate) run: fn(&mut Turbine),
}

fn always(_: &Turbine) -> bool {
    true
}

/// The component table. **Order is the same-instant dispatch order** and
/// matches the order the dense `step()` consulted the components in —
/// changing it changes simulation outcomes. New control loops register
/// here (an event variant, a cadence, a handler) instead of editing a
/// monolithic step function.
const COMPONENTS: &[ControlComponent] = &[
    ControlComponent {
        name: "heartbeat",
        cadence_name: "heartbeat_interval",
        event: ControlEvent::Heartbeat,
        trace: TraceComponent::Heartbeat,
        cadence: |c| c.heartbeat_interval,
        // Heartbeats start at time zero (first delivery one tick in).
        phase: |_| Duration::ZERO,
        gate: always,
        run: |t| {
            t.heartbeat_round();
            t.failover_check();
        },
    },
    ControlComponent {
        name: "task-manager refresh",
        cadence_name: "tm_refresh_interval",
        event: ControlEvent::TmRefresh,
        trace: TraceComponent::TmRefresh,
        cadence: |c| c.tm_refresh_interval,
        phase: |c| c.tm_refresh_interval,
        // While the Task Service (or the Job Store behind it) is down,
        // refreshes fail and Task Managers keep serving from their cached
        // snapshot (§II degraded mode).
        gate: |t| {
            !t.faults.is_active(&Fault::TaskServiceDown)
                && !t.faults.is_active(&Fault::JobStoreDown)
        },
        run: Turbine::tm_refresh_round,
    },
    ControlComponent {
        name: "state syncer",
        cadence_name: "sync_interval",
        event: ControlEvent::SyncRound,
        trace: TraceComponent::StateSyncer,
        cadence: |c| c.sync_interval,
        phase: |c| c.sync_interval,
        // Skipped while the syncer process is crashed or its backing Job
        // Store is unreachable; the expected-vs-running diff persists in
        // the store, so skipped rounds lose nothing.
        gate: |t| {
            !t.faults.is_active(&Fault::SyncerCrash) && !t.faults.is_active(&Fault::JobStoreDown)
        },
        run: Turbine::syncer_round,
    },
    ControlComponent {
        name: "auto scaler",
        cadence_name: "scaler_interval",
        event: ControlEvent::ScalerRound,
        trace: TraceComponent::AutoScaler,
        cadence: |c| c.scaler_interval,
        phase: |c| c.scaler_interval,
        // Scaler decisions are writes to the Job Store's scaler level, so
        // an unavailable store pauses scaling.
        gate: |t| !t.faults.is_active(&Fault::JobStoreDown),
        run: Turbine::scaler_round,
    },
    ControlComponent {
        name: "load report",
        cadence_name: "load_report_interval",
        event: ControlEvent::LoadReport,
        trace: TraceComponent::LoadReport,
        cadence: |c| c.load_report_interval,
        phase: |c| c.load_report_interval,
        gate: always,
        run: Turbine::load_report_round,
    },
    ControlComponent {
        name: "rebalance",
        cadence_name: "rebalance_interval",
        event: ControlEvent::Rebalance,
        trace: TraceComponent::Rebalance,
        cadence: |c| c.rebalance_interval,
        phase: |c| c.rebalance_interval,
        gate: |t| t.config.load_balancing_enabled,
        run: Turbine::rebalance_round,
    },
    ControlComponent {
        name: "capacity manager",
        cadence_name: "capacity_interval",
        event: ControlEvent::CapacityRound,
        trace: TraceComponent::CapacityManager,
        cadence: |c| c.capacity_interval,
        phase: |c| c.capacity_interval,
        gate: always,
        run: Turbine::capacity_round,
    },
    ControlComponent {
        name: "checkpoint sync",
        cadence_name: "checkpoint_interval",
        event: ControlEvent::Checkpoint,
        trace: TraceComponent::Checkpoint,
        cadence: |c| c.checkpoint_interval,
        phase: |c| c.checkpoint_interval,
        gate: always,
        run: Turbine::checkpoint_round,
    },
    ControlComponent {
        name: "metrics",
        cadence_name: "metrics_interval",
        event: ControlEvent::MetricsSample,
        trace: TraceComponent::Metrics,
        cadence: |c| c.metrics_interval,
        phase: |c| c.metrics_interval,
        gate: always,
        run: Turbine::metrics_round,
    },
];

/// The component table (shared with config validation).
pub(crate) fn components() -> &'static [ControlComponent] {
    COMPONENTS
}

/// Per-component schedule state plus the event queue.
#[derive(Debug)]
pub(crate) struct ControlSchedule {
    /// The pending control events, time-ordered with FIFO tie-breaking.
    queue: EventQueue<ControlEvent>,
    /// One cadence tracker per table entry — the source of truth for due
    /// times in both drive modes.
    periodics: Vec<Periodic>,
    /// Execution instant of the queued event per component (`None` =
    /// nothing queued). Lets the dispatcher recognise its own fresh event
    /// and ignore stale ones.
    queued: Vec<Option<SimTime>>,
}

impl ControlSchedule {
    /// Pending control events (the ODS `control_queue_depth` gauge).
    pub(crate) fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    pub(crate) fn new(config: &TurbineConfig) -> Self {
        ControlSchedule {
            queue: EventQueue::new(),
            periodics: COMPONENTS
                .iter()
                .map(|c| Periodic::with_phase((c.cadence)(config), (c.phase)(config)))
                .collect(),
            queued: vec![None; COMPONENTS.len()],
        }
    }
}

/// First multiple of `tick` that is ≥ `at`.
fn grid_ceil(at: SimTime, tick: Duration) -> SimTime {
    let ms = at.as_millis();
    let tick_ms = tick.as_millis();
    let rem = ms % tick_ms;
    if rem == 0 {
        at
    } else {
        SimTime::from_millis(ms + (tick_ms - rem))
    }
}

impl Turbine {
    /// Advance the simulation to absolute time `end` under an explicit
    /// drive mode. Both modes execute work only at multiples of
    /// `config.tick` and finish at the first grid instant ≥ `end` (the
    /// dense loop has always overshot a non-aligned `end` to the grid).
    pub fn drive_until(&mut self, end: SimTime, mode: DriveMode) {
        match mode {
            DriveMode::DenseTick => self.drive_dense(end),
            DriveMode::EventDriven => self.drive_event(end),
        }
    }

    /// The pre-refactor dense stepper: every component polled via
    /// `fire_if_due` on every tick. Reference oracle for equivalence
    /// tests and the scheduler benchmark.
    fn drive_dense(&mut self, end: SimTime) {
        while self.now < end {
            self.now += self.config.tick;
            self.data_plane_tick(false);
            self.control_instant();
            self.check_invariants();
        }
    }

    /// Event-driven drive: hop from control event to control event,
    /// advancing the data plane densely or sparsely in between.
    fn drive_event(&mut self, end: SimTime) {
        let tick = self.config.tick;
        let final_instant = grid_ceil(end, tick);
        self.arm_components();
        while self.now < final_instant {
            // Next stop: the earliest pending event, capped at the end of
            // this drive (events beyond it stay queued for the next call).
            let target = match self.sched.queue.peek_time() {
                Some(at) if at <= final_instant => at,
                _ => final_instant,
            };
            debug_assert!(
                target > self.now,
                "events at or before now are always drained"
            );
            self.advance_data_plane(target);
            let mut popped: Vec<(SimTime, ControlEvent)> = Vec::new();
            while let Some(entry) = self.sched.queue.pop_until(self.now) {
                popped.push(entry);
            }
            // Dispatch in canonical component-table order — never in pop
            // order — so same-instant rounds keep the dense sequence.
            // Wake events (FaultEdge, TaskRestartDue) carry no handler:
            // they only forced `target` onto this instant.
            for (i, component) in COMPONENTS.iter().enumerate() {
                let fresh = popped
                    .iter()
                    .any(|&(at, ev)| ev == component.event && self.sched.queued[i] == Some(at));
                if fresh {
                    self.sched.queued[i] = None;
                    let due = self.sched.periodics[i].fire_if_due(self.now);
                    if due && (component.gate)(self) {
                        self.dispatch_component(i);
                    }
                    self.arm_component(i);
                }
            }
            self.check_invariants();
        }
    }

    /// Ensure every periodic component has exactly one pending event, and
    /// drop leftovers from a previous dense drive (their instants are in
    /// the past; the periodics already advanced beyond them).
    fn arm_components(&mut self) {
        while self.sched.queue.pop_until(self.now).is_some() {}
        for i in 0..COMPONENTS.len() {
            match self.sched.queued[i] {
                Some(at) if at > self.now => {}
                _ => {
                    self.sched.queued[i] = None;
                    self.arm_component(i);
                }
            }
        }
    }

    /// Queue component `i`'s next firing: its `Periodic` due time rounded
    /// up to the execution grid, and strictly in the future (the dense
    /// loop never executes instant zero, and re-arming at the current
    /// instant must not re-fire it).
    fn arm_component(&mut self, i: usize) {
        debug_assert!(self.sched.queued[i].is_none());
        let due = self.sched.periodics[i].next_due();
        let exec = grid_ceil(due, self.config.tick).max(self.now + self.config.tick);
        self.sched.queue.schedule(exec, COMPONENTS[i].event);
        self.sched.queued[i] = Some(exec);
    }

    /// Enqueue wake events for a fault window's edges so the event loop
    /// lands on the grid instants where the chaos engine will apply them.
    pub(crate) fn schedule_fault_edges(&mut self, from: SimTime, until: Option<SimTime>) {
        let tick = self.config.tick;
        let floor = self.now + tick;
        self.sched
            .queue
            .schedule(grid_ceil(from, tick).max(floor), ControlEvent::FaultEdge);
        if let Some(until) = until {
            self.sched
                .queue
                .schedule(grid_ceil(until, tick).max(floor), ControlEvent::FaultEdge);
        }
    }

    /// Enqueue a wake for the end of a restart delay (event mode only —
    /// the dense stepper re-evaluates every tick anyway and never drains
    /// the queue).
    fn schedule_restart_wake(&mut self, until: SimTime) {
        let tick = self.config.tick;
        let exec = grid_ceil(until, tick).max(self.now + tick);
        self.sched
            .queue
            .schedule(exec, ControlEvent::TaskRestartDue);
    }

    /// Advance the data plane to `target` (a grid instant): sparse-jump
    /// when provably quiescent, dense-step otherwise.
    fn advance_data_plane(&mut self, target: SimTime) {
        let tick = self.config.tick;
        if self.can_sparse_jump(target) {
            // Jump, then run the single landing tick: the first idle tick
            // after a state change still updates per-task cpu/memory
            // readings; the ones skipped in between were idempotent.
            self.now = target;
            self.data_plane_tick(true);
        } else {
            while self.now < target {
                self.now += tick;
                self.data_plane_tick(true);
            }
        }
        debug_assert!(self.now == target);
    }

    /// May the clock jump straight from `self.now` to `target`? Only when
    /// the skipped ticks are provably no-ops: no crash-injection RNG
    /// draws, no active fault (scheduled edges inside the window are
    /// impossible — they have wake events, which bound `target`), and a
    /// fully quiescent data plane across the window.
    fn can_sparse_jump(&self, target: SimTime) -> bool {
        target.as_millis() > self.now.as_millis() + self.config.tick.as_millis()
            && self.crash_mtbf.is_none()
            && !self.faults.any_active()
            && self.engine.is_quiescent_through(self.now, target)
    }

    /// One dense poll of every component, in table order (the reference
    /// stepper's control phase). `fire_if_due` runs before the gate, so a
    /// gated-off round still consumes its slot — identical in both modes.
    fn control_instant(&mut self) {
        for (i, component) in COMPONENTS.iter().enumerate() {
            let due = self.sched.periodics[i].fire_if_due(self.now);
            if due && (component.gate)(self) {
                self.dispatch_component(i);
            }
        }
    }

    /// Run component `i`'s round inside a trace span. Shared by both drive
    /// modes, so the decision trace (and its digest) is identical whether
    /// the round was reached by a dense poll or a queued event. The span
    /// is lazy — an uneventful round leaves no trace record — while the
    /// wall-clock cost of every round feeds the component's latency
    /// histogram (tracing enabled only; latencies never enter the digest).
    fn dispatch_component(&mut self, i: usize) {
        let component = &COMPONENTS[i];
        let timer = self.trace.enabled().then(std::time::Instant::now);
        self.trace.begin_round(self.now, component.trace);
        (component.run)(self);
        self.trace.end_round(
            component.trace,
            timer.map(|t| t.elapsed().as_nanos() as u64),
        );
    }

    /// One data-plane tick at `self.now`: fault-window edges first, then
    /// the engine (arrivals, processing, contention, OOM kills), then
    /// random crash injection. This is everything the dense stepper did
    /// per tick outside the periodic control loops.
    fn data_plane_tick(&mut self, schedule_wakes: bool) {
        let now = self.now;
        self.metrics.ticks_executed.incr();
        let timer = self.trace.enabled().then(std::time::Instant::now);
        self.trace.begin_round(now, TraceComponent::DataPlane);

        // Chaos engine first: cross the edges of any scheduled fault
        // windows and apply their side effects before anything else
        // observes the world.
        let transitions = self.faults.advance(now);
        for t in transitions {
            self.apply_fault_transition(t);
        }

        // Data plane. Jobs whose input category is stalled receive
        // arrivals but process nothing — the dependency-failure shape the
        // root-causer must recognize.
        let stalled: BTreeSet<JobId> = self
            .categories
            .iter()
            .filter(|(_, cat)| self.faults.is_active(&Fault::ScribeStall((*cat).clone())))
            .map(|(&job, _)| job)
            .collect();
        let container_cpu: std::collections::HashMap<ContainerId, f64> = self
            .cluster
            .healthy_containers()
            .into_iter()
            .filter_map(|c| {
                self.cluster
                    .container_capacity(c)
                    .ok()
                    .map(|cap| (c, cap.cpu))
            })
            .collect();
        let paused = &self.paused;
        let stopped = &self.capacity_stopped;
        let outcome = self
            .engine
            .tick(now, self.config.tick, &container_cpu, &|job| {
                paused.contains(&job) || stopped.contains(&job) || stalled.contains(&job)
            });
        for task in outcome.oom_kills {
            self.metrics.oom_kills.incr();
            self.metrics.task_restarts.incr();
            if let Some((_, t)) = self
                .engine
                .tasks_of_job(task.job)
                .find(|(&id, _)| id == task)
            {
                let container = t.container;
                self.trace
                    .emit(now, TraceData::OomRestart { task, container });
            }
            let until = now + self.config.restart_delay;
            self.engine.knock_down_task(task, until);
            if schedule_wakes {
                self.schedule_restart_wake(until);
            }
        }

        // Random crash injection (when enabled): pick victims with
        // per-tick probability tick/mtbf across the fleet, restart them
        // via their Task Manager (the paper's "restart tasks upon
        // crashes"). The victim is resolved with a single ordered-map
        // lookup on the engine.
        if let Some(mtbf) = self.crash_mtbf {
            let p_crash = self.config.tick.as_secs_f64() / mtbf.as_secs_f64();
            if self.rng.chance(p_crash.min(1.0)) && self.engine.total_tasks() > 0 {
                let k = self.rng.uniform_usize(0, self.engine.total_tasks());
                let (victim, container) = self.engine.nth_task(k).expect("k < total_tasks");
                let event = self
                    .task_managers
                    .get_mut(&container)
                    .and_then(|tm| tm.restart_crashed(victim));
                if let Some(event) = event {
                    self.handle_task_events(container, &[event]);
                    if schedule_wakes {
                        self.schedule_restart_wake(now + self.config.restart_delay);
                    }
                }
            }
        }
        self.trace.end_round(
            TraceComponent::DataPlane,
            timer.map(|t| t.elapsed().as_nanos() as u64),
        );
    }

    /// Evaluate the continuous invariants over the current state (no-op
    /// unless enabled). Runs at every executed instant in both modes.
    fn check_invariants(&mut self) {
        let Some(mut checker) = self.invariants.take() else {
            return;
        };
        // Drain the accumulated change scopes before borrowing the world:
        // the sparse check walks only these, the full check ignores them
        // (either way they are consumed, so the set stays bounded).
        self.drain_engine_dirty();
        let dirty_jobs = std::mem::take(&mut self.pending_dirty.jobs);
        let dirty = crate::invariants::DirtyInput {
            jobs: &dirty_jobs,
            distributed_changed: std::mem::take(&mut self.pending_dirty.distributed),
            cluster_changed: std::mem::take(&mut self.pending_dirty.cluster),
            quarantine_changed: std::mem::take(&mut self.pending_dirty.quarantine),
            standby_changed: std::mem::take(&mut self.pending_dirty.standby),
        };
        // Containers whose local state is authoritative: healthy host
        // and an intact Shard Manager connection. A dead or partitioned
        // container legitimately holds stale state until it rejoins.
        let healthy: BTreeSet<ContainerId> =
            self.cluster.healthy_containers().into_iter().collect();
        let live_containers: BTreeSet<ContainerId> = self
            .task_managers
            .keys()
            .copied()
            .filter(|c| healthy.contains(c) && !self.severed.contains_key(c))
            .collect();
        let quiet_since = (!self.faults.any_active())
            .then(|| self.faults.last_transition().unwrap_or(SimTime::ZERO));
        let view = InvariantView {
            now: self.now,
            cluster: &self.cluster,
            engine: &self.engine,
            task_managers: &self.task_managers,
            shard_manager: &self.shard_manager,
            jobs: &self.jobs,
            syncer: &self.syncer,
            paused: &self.paused,
            capacity_stopped: &self.capacity_stopped,
            live_containers: &live_containers,
            quiet_since,
            shadow: &self.shadow,
            fresh_promotions: &self.fresh_promotions,
            fresh_revivals: &self.fresh_revivals,
        };
        if self.config.sparse_data_plane {
            checker.check_sparse(&view, &dirty);
        } else {
            checker.check(&view);
        }
        self.fresh_promotions.clear();
        self.fresh_revivals.clear();
        self.invariants = Some(checker);
    }
}

use turbine_types::{Snap, SnapError, SnapReader, SnapWriter};

impl Snap for ControlEvent {
    fn snap(&self, w: &mut SnapWriter) {
        w.u8(match self {
            ControlEvent::Heartbeat => 0,
            ControlEvent::TmRefresh => 1,
            ControlEvent::SyncRound => 2,
            ControlEvent::ScalerRound => 3,
            ControlEvent::LoadReport => 4,
            ControlEvent::Rebalance => 5,
            ControlEvent::CapacityRound => 6,
            ControlEvent::Checkpoint => 7,
            ControlEvent::MetricsSample => 8,
            ControlEvent::FaultEdge => 9,
            ControlEvent::TaskRestartDue => 10,
        });
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8("ControlEvent.tag")? {
            0 => Ok(ControlEvent::Heartbeat),
            1 => Ok(ControlEvent::TmRefresh),
            2 => Ok(ControlEvent::SyncRound),
            3 => Ok(ControlEvent::ScalerRound),
            4 => Ok(ControlEvent::LoadReport),
            5 => Ok(ControlEvent::Rebalance),
            6 => Ok(ControlEvent::CapacityRound),
            7 => Ok(ControlEvent::Checkpoint),
            8 => Ok(ControlEvent::MetricsSample),
            9 => Ok(ControlEvent::FaultEdge),
            10 => Ok(ControlEvent::TaskRestartDue),
            tag => Err(SnapError::Tag("ControlEvent", tag as u64)),
        }
    }
}

impl Snap for ControlSchedule {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.queue);
        w.put(&self.periodics);
        w.put(&self.queued);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let queue = r.get()?;
        let periodics: Vec<Periodic> = r.get()?;
        let queued: Vec<Option<SimTime>> = r.get()?;
        if periodics.len() != COMPONENTS.len() || queued.len() != COMPONENTS.len() {
            return Err(SnapError::Value("ControlSchedule component count mismatch"));
        }
        Ok(ControlSchedule {
            queue,
            periodics,
            queued,
        })
    }
}
