//! The Turbine platform: all control-plane components wired together and
//! driven in simulated time.
//!
//! Production cadences (paper values) are the defaults: State Syncer every
//! 30 s, Task Manager refresh every 60 s with a 90 s Task Service cache,
//! heartbeats with a 40 s proactive connection timeout and 60 s fail-over,
//! load reports every 10 min, cluster-wide rebalance every 30 min.
//!
//! The platform is organised as focused submodules:
//!
//! * [`mod@self`] — configuration, construction, and the public API
//!   surface (provisioning, status, interventions);
//! * `scheduler` — the event-driven control plane: the [`ControlEvent`]
//!   taxonomy, the component handler table, and the two drive loops
//!   (event-driven, and the dense-tick reference stepper);
//! * `control_loops` — the per-event component handlers (heartbeats, TM
//!   refresh, sync rounds, scaling, metrics, ...);
//! * `faults` — chaos-engine fault scheduling and transition side effects.

mod control_loops;
mod faults;
mod ods;
mod scheduler;

pub use scheduler::{ControlEvent, DriveMode};

use crate::engine::Engine;
use crate::invariants::{InvariantChecker, InvariantConfig, Violation};
use crate::metrics::PlatformMetrics;
use scheduler::ControlSchedule;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use turbine_autoscaler::{
    AutoScaler, CapacityManager, CapacityManagerConfig, RootCauser, ScalerConfig,
};
use turbine_cluster::Cluster;
use turbine_config::{ConfigLevel, ConfigValue, JobConfig, ResiliencyClass};
use turbine_jobstore::{JobService, JobStore, MemWal};
use turbine_scribe::{CheckpointStore, Scribe, ShadowCursor};
use turbine_shardmgr::{ShardManager, ShardManagerConfig};
use turbine_sim::{FaultInjector, SimRng};
use turbine_statesyncer::{StateSyncer, SyncerConfig};
use turbine_taskmgr::{LocalTaskManager, TaskService};
use turbine_trace::TraceBuffer;
use turbine_types::{ContainerId, Duration, HostId, JobId, Resources, SimTime};
use turbine_workloads::TrafficModel;

/// Platform configuration. Defaults are the paper's production values.
#[derive(Debug, Clone)]
pub struct TurbineConfig {
    /// Simulation tick: the data-plane integration step, and the grid on
    /// which control events execute. Must not exceed any control cadence
    /// below — validated at construction.
    pub tick: Duration,
    /// Shards in the tier.
    pub shard_count: u64,
    /// Fraction of each host handed to its Turbine container.
    pub container_fraction: f64,
    /// State Syncer round interval (paper: 30 s).
    pub sync_interval: Duration,
    /// Task Manager snapshot refresh interval (paper: 60 s).
    pub tm_refresh_interval: Duration,
    /// Task Service snapshot cache TTL (paper: 90 s).
    pub task_service_ttl: Duration,
    /// Heartbeat interval from Task Managers to the Shard Manager.
    pub heartbeat_interval: Duration,
    /// Proactive connection timeout after which a disconnected container
    /// reboots itself (paper: 40 s — before the 60 s fail-over).
    pub connection_timeout: Duration,
    /// Load-report interval from Task Managers (paper: every 10 min).
    pub load_report_interval: Duration,
    /// Shard Manager rebalance interval (paper: 30 min for most tiers).
    pub rebalance_interval: Duration,
    /// Auto Scaler evaluation interval.
    pub scaler_interval: Duration,
    /// Capacity Manager evaluation interval.
    pub capacity_interval: Duration,
    /// Metric sampling interval.
    pub metrics_interval: Duration,
    /// Checkpoint/Scribe durability sync interval.
    pub checkpoint_interval: Duration,
    /// Downtime a task suffers when (re)started.
    pub restart_delay: Duration,
    /// Bandwidth at which stateful jobs' state is moved during complex
    /// synchronizations, bytes/sec. Stateless jobs redistribute instantly
    /// (checkpoints are per-partition; nothing moves).
    pub state_move_bandwidth: f64,
    /// State Syncer tunables.
    pub syncer: SyncerConfig,
    /// Auto Scaler tunables.
    pub scaler: ScalerConfig,
    /// Shard Manager tunables.
    pub shardmgr: ShardManagerConfig,
    /// Capacity Manager tunables.
    pub capacity: CapacityManagerConfig,
    /// Master switch for the Auto Scaler (ablations).
    pub scaler_enabled: bool,
    /// Master switch for load-balancing rebalances (ablations; fail-over
    /// stays on).
    pub load_balancing_enabled: bool,
    /// Master switch for causal decision tracing. Tracing is purely
    /// observational — turning it off changes no simulation outcome, only
    /// whether the why-chain behind each decision is recorded.
    pub trace_enabled: bool,
    /// Ring capacity of the decision trace (records retained; the digest
    /// covers evicted records too).
    pub trace_capacity: usize,
    /// Sparse data plane: per-round control-plane work proportional to
    /// what changed rather than fleet size. State Syncer rounds walk only
    /// the attention set plus the Job Store changelog delta, invariant
    /// checks walk only dirty scopes, and load reports skip containers
    /// whose loads cannot have moved. Observably identical to the dense
    /// paths (periodic audits compare them); off forces full scans.
    pub sparse_data_plane: bool,
    /// Master switch for the ODS metrics plane (registry publication and
    /// alert evaluation). Like tracing, the pipeline is observational:
    /// turning it off changes no simulation outcome, only whether the
    /// uniform time-series registry is populated and alert rules fire.
    pub ods_enabled: bool,
}

impl Default for TurbineConfig {
    fn default() -> Self {
        TurbineConfig {
            tick: Duration::from_secs(10),
            shard_count: 1024,
            container_fraction: 0.8,
            sync_interval: Duration::from_secs(30),
            tm_refresh_interval: Duration::from_secs(60),
            task_service_ttl: Duration::from_secs(90),
            heartbeat_interval: Duration::from_secs(10),
            connection_timeout: Duration::from_secs(40),
            load_report_interval: Duration::from_mins(10),
            rebalance_interval: Duration::from_mins(30),
            scaler_interval: Duration::from_mins(2),
            capacity_interval: Duration::from_mins(5),
            metrics_interval: Duration::from_mins(1),
            checkpoint_interval: Duration::from_secs(60),
            restart_delay: Duration::from_secs(10),
            state_move_bandwidth: 256.0e6,
            syncer: SyncerConfig::default(),
            scaler: ScalerConfig::default(),
            shardmgr: ShardManagerConfig::default(),
            capacity: CapacityManagerConfig::default(),
            scaler_enabled: true,
            load_balancing_enabled: true,
            trace_enabled: true,
            trace_capacity: turbine_trace::DEFAULT_TRACE_CAPACITY,
            sparse_data_plane: true,
            ods_enabled: true,
        }
    }
}

impl TurbineConfig {
    /// Validate the configuration. The tick is the grid on which control
    /// events execute: a tick longer than a component's cadence would
    /// silently skip rounds (the `Periodic` scheduler collapses missed
    /// slots into a single firing), so every cadence must be at least one
    /// tick long.
    pub fn validate(&self) -> Result<(), String> {
        if self.tick.is_zero() {
            return Err("tick must be positive".to_string());
        }
        for component in scheduler::components() {
            let cadence = (component.cadence)(self);
            if cadence < self.tick {
                return Err(format!(
                    "tick ({}) must not exceed {} ({}): {} rounds would be \
                     silently skipped",
                    self.tick, component.cadence_name, cadence, component.name,
                ));
            }
        }
        Ok(())
    }
}

/// Point-in-time status of one job, for experiments and assertions.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// Task count in the merged expected configuration.
    pub expected_tasks: u32,
    /// Task count in the running configuration (0 if not yet started).
    pub running_config_tasks: u32,
    /// Tasks actually executing in containers.
    pub running_tasks: usize,
    /// Current backlog in bytes.
    pub backlog_bytes: f64,
    /// Whether the job is paused for a complex synchronization.
    pub paused: bool,
    /// Whether the State Syncer quarantined the job.
    pub quarantined: bool,
}

/// A bit-exact summary of observable platform state, for cross-run and
/// cross-scheduler comparisons (backlogs are captured as raw `f64` bits,
/// so two fingerprints are equal iff the runs match bit-for-bit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlatformFingerprint {
    /// Simulated time of the snapshot, milliseconds.
    pub now_ms: u64,
    /// Lifecycle counters: task starts, stops, restarts, shard moves,
    /// fail-overs, OOM kills, scaling actions, alerts, standby promotions.
    pub counters: [u64; 9],
    /// Per job: (raw id, running tasks, backlog-bytes `f64` bits).
    pub jobs: Vec<(u64, usize, u64)>,
    /// FNV digest of the chaos-engine fault timeline.
    pub fault_digest: u64,
    /// Number of fault transitions logged.
    pub fault_transitions: usize,
    /// FNV digest of the per-tier SLO recovery records (time, job, tier,
    /// duration, path of every closed outage).
    pub slo_digest: u64,
    /// Number of recovery records in the SLO log.
    pub recoveries: usize,
}

/// Accumulated change knowledge between invariant checks. Every control
/// loop that mutates checker-visible state marks the scope it touched;
/// the sparse invariant check drains this into a
/// [`crate::invariants::DirtyInput`]. Flags are conservative: a set flag
/// only means "may have changed", and anything uncertain must set its
/// flag (the safe direction is a wasted rescan, never a missed one).
#[derive(Debug, Default)]
pub(crate) struct PendingDirty {
    /// Jobs whose checker-visible state (engine tasks, pause/stop marks,
    /// quarantine membership, store rows) may have changed.
    pub(crate) jobs: BTreeSet<JobId>,
    /// Task-manager ownership or the live-container set may have changed.
    pub(crate) distributed: bool,
    /// Cluster hosts or capacities may have changed.
    pub(crate) cluster: bool,
    /// The quarantine set or its failure counts may have changed.
    pub(crate) quarantine: bool,
    /// Standby registrations or standby-relevant placement may have
    /// changed.
    pub(crate) standby: bool,
}

impl PendingDirty {
    /// Everything dirty: the state a fresh (or freshly re-enabled)
    /// checker starts from, so its first sparse pass covers the world.
    pub(crate) fn all(jobs: impl IntoIterator<Item = JobId>) -> Self {
        PendingDirty {
            jobs: jobs.into_iter().collect(),
            distributed: true,
            cluster: true,
            quarantine: true,
            standby: true,
        }
    }
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct SeveredState {
    pub(crate) at: SimTime,
    pub(crate) rebooted: bool,
}

/// One open fault-attributed outage of a job. Opened only at the three
/// causal sites (proactive reboot drop, standard fail-over, standby
/// promotion); closed by the SLO check once the job is back at its running
/// configuration.
#[derive(Debug, Clone, Copy)]
pub(crate) struct OutageState {
    /// Fault onset this outage is measured from.
    pub(crate) since: SimTime,
    /// Whether a warm-standby promotion (fast path) handled the outage.
    pub(crate) fast: bool,
}

/// The Turbine platform.
pub struct Turbine {
    pub(crate) config: TurbineConfig,
    pub(crate) now: SimTime,
    /// The cluster substrate (public for experiment scripting).
    pub cluster: Cluster,
    /// The Scribe substrate (public for inspection).
    pub scribe: Scribe,
    /// Recorded metrics (public for experiment output).
    pub metrics: PlatformMetrics,
    pub(crate) jobs: JobService<MemWal>,
    pub(crate) syncer: StateSyncer,
    pub(crate) task_service: TaskService,
    pub(crate) shard_manager: ShardManager,
    pub(crate) task_managers: BTreeMap<ContainerId, LocalTaskManager>,
    pub(crate) scaler: AutoScaler,
    pub(crate) capacity: CapacityManager,
    pub(crate) checkpoints: CheckpointStore,
    pub(crate) engine: Engine,
    pub(crate) paused: BTreeSet<JobId>,
    pub(crate) capacity_stopped: BTreeSet<JobId>,
    /// In-flight state moves for stateful complex syncs: job → completion
    /// time.
    pub(crate) state_moves: HashMap<JobId, SimTime>,
    /// Mean time between random task crashes; `None` disables injection.
    pub(crate) crash_mtbf: Option<Duration>,
    pub(crate) rng: SimRng,
    pub(crate) root_causer: RootCauser,
    /// Per-job release tracking for the root-causer:
    /// (current version, previous version, changed at).
    pub(crate) releases: HashMap<JobId, (u64, u64, SimTime)>,
    /// Start of the ongoing lag episode per job.
    pub(crate) lag_since: HashMap<JobId, SimTime>,
    /// Last diagnosis time per job (debounce).
    pub(crate) last_diagnosis: HashMap<JobId, SimTime>,
    pub(crate) severed: HashMap<ContainerId, SeveredState>,
    pub(crate) categories: BTreeMap<JobId, String>,
    /// Shadow read positions of warm standbys (critical jobs only).
    pub(crate) shadow: ShadowCursor,
    /// Open fault-attributed outages per job (SLO accounting).
    pub(crate) outages: BTreeMap<JobId, OutageState>,
    /// When each container's current connectivity loss began — fault onset
    /// for backdating outage starts. Cleared on restore/recovery.
    pub(crate) container_down_since: BTreeMap<ContainerId, SimTime>,
    /// Promotions since the last invariant check (recorded only while
    /// invariant checking is enabled; drained every checked instant).
    pub(crate) fresh_promotions: Vec<(JobId, ContainerId)>,
    /// Revived containers since the last invariant check, with the number
    /// of shards still mapped to them at revival time (invariants only).
    pub(crate) fresh_revivals: Vec<(ContainerId, usize)>,
    /// The chaos engine: scheduled/active cross-component faults.
    pub(crate) faults: FaultInjector,
    /// The causal decision trace (inert when tracing is disabled).
    pub(crate) trace: TraceBuffer,
    /// Continuous invariant checking (enabled for chaos runs).
    pub(crate) invariants: Option<InvariantChecker>,
    /// Change scopes accumulated since the last invariant check (sparse
    /// data plane).
    pub(crate) pending_dirty: PendingDirty,
    /// Jobs whose engine state changed since the last load-report round;
    /// their containers must re-report shard loads.
    pub(crate) load_dirty_jobs: BTreeSet<JobId>,
    /// Containers whose ownership or task set changed since the last
    /// load-report round.
    pub(crate) load_dirty_containers: BTreeSet<ContainerId>,
    /// Per-job resiliency tier, maintained from the Job Store changelog
    /// delta so per-round consumers (standby coverage) never re-decode
    /// every job config in the fleet.
    pub(crate) resiliency_cache: BTreeMap<JobId, ResiliencyClass>,
    /// How much of the changelog the resiliency cache has consumed.
    pub(crate) resiliency_cursor: u64,
    /// The control-plane schedule: per-component cadences plus the event
    /// queue the event-driven drive loop runs on.
    pub(crate) sched: ControlSchedule,
    pub(crate) last_scaler_drain: SimTime,
    /// The ODS metrics plane: registry, alert engine, and id caches
    /// (inert while [`TurbineConfig::ods_enabled`] is off).
    pub(crate) ods: ods::OdsState,
}

impl Turbine {
    /// A platform with no hosts or jobs yet. Panics on an invalid
    /// configuration — use [`Turbine::try_new`] to handle the error.
    pub fn new(config: TurbineConfig) -> Self {
        Self::try_new(config).unwrap_or_else(|e| panic!("invalid TurbineConfig: {e}"))
    }

    /// A platform with no hosts or jobs yet, or a descriptive error if
    /// the configuration is invalid (e.g. a tick longer than a control
    /// cadence, which would silently skip rounds).
    pub fn try_new(config: TurbineConfig) -> Result<Self, String> {
        config.validate()?;
        let mut task_service = TaskService::with_ttl(config.task_service_ttl, config.shard_count);
        task_service.invalidate();
        let mut shard_manager = ShardManager::new(config.shardmgr);
        shard_manager.ensure_shards(config.shard_count);
        let mut capacity = CapacityManager::new(config.capacity);
        capacity.register_cluster("primary", Resources::ZERO);
        Ok(Turbine {
            now: SimTime::ZERO,
            cluster: Cluster::new(),
            scribe: Scribe::new(),
            metrics: PlatformMetrics::default(),
            jobs: JobService::new(JobStore::new(MemWal::new())),
            syncer: StateSyncer::new(config.syncer),
            task_service,
            shard_manager,
            task_managers: BTreeMap::new(),
            scaler: AutoScaler::new(config.scaler),
            capacity,
            checkpoints: CheckpointStore::new(),
            engine: Engine::new(),
            paused: BTreeSet::new(),
            capacity_stopped: BTreeSet::new(),
            state_moves: HashMap::new(),
            crash_mtbf: None,
            rng: SimRng::seeded(0x0C2A_54E5),
            root_causer: RootCauser::default(),
            releases: HashMap::new(),
            lag_since: HashMap::new(),
            last_diagnosis: HashMap::new(),
            severed: HashMap::new(),
            categories: BTreeMap::new(),
            shadow: ShadowCursor::new(),
            outages: BTreeMap::new(),
            container_down_since: BTreeMap::new(),
            fresh_promotions: Vec::new(),
            fresh_revivals: Vec::new(),
            faults: FaultInjector::new(),
            trace: if config.trace_enabled {
                TraceBuffer::new(config.trace_capacity)
            } else {
                TraceBuffer::disabled()
            },
            invariants: None,
            pending_dirty: PendingDirty::all([]),
            load_dirty_jobs: BTreeSet::new(),
            load_dirty_containers: BTreeSet::new(),
            resiliency_cache: BTreeMap::new(),
            resiliency_cursor: 0,
            sched: ControlSchedule::new(&config),
            last_scaler_drain: SimTime::ZERO,
            ods: ods::OdsState::default(),
            config,
        })
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The configuration in effect.
    pub fn config(&self) -> &TurbineConfig {
        &self.config
    }

    /// Read access to the Shard Manager (tests, invariant checks).
    pub fn shard_manager(&self) -> &ShardManager {
        &self.shard_manager
    }

    /// Read access to the per-container local Task Managers.
    pub fn task_managers(&self) -> &BTreeMap<ContainerId, LocalTaskManager> {
        &self.task_managers
    }

    /// Read access to the State Syncer.
    pub fn state_syncer(&self) -> &StateSyncer {
        &self.syncer
    }

    /// Read access to the data-plane engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Jobs currently paused for a complex synchronization.
    pub fn paused_jobs(&self) -> &BTreeSet<JobId> {
        &self.paused
    }

    /// Add `n` hosts, allocate one Turbine container on each, register the
    /// containers with the Shard Manager, and start a local Task Manager
    /// in each. Returns the host ids.
    pub fn add_hosts(&mut self, n: usize, capacity: Resources) -> Vec<HostId> {
        let hosts = self.cluster.add_hosts(n, capacity);
        for &host in &hosts {
            let cap = capacity.scale(self.config.container_fraction);
            let container = self
                .cluster
                .allocate_container(host, cap)
                .expect("fresh host has capacity");
            self.shard_manager
                .register_container(container, cap, self.now);
            self.task_managers.insert(
                container,
                LocalTaskManager::new(container, self.config.shard_count),
            );
            self.load_dirty_containers.insert(container);
        }
        self.pending_dirty.cluster = true;
        self.pending_dirty.distributed = true;
        self.capacity
            .register_cluster("primary", self.cluster.total_healthy_capacity());
        // Fast initial scheduling: place shards on the new containers now
        // rather than waiting for the next periodic rebalance.
        let result = self.shard_manager.rebalance();
        self.apply_movements(&result.moves);
        hosts
    }

    /// Provision a stateless job with its data-plane model. Creates the
    /// input Scribe category, registers the job with the Job Service, and
    /// hands its runtime to the engine. Tasks start once the State Syncer
    /// commits the first running configuration and Task Managers pick up
    /// the specs (1–2 minutes of simulated time).
    pub fn provision_job(
        &mut self,
        job: JobId,
        config: JobConfig,
        traffic: TrafficModel,
        true_per_thread_rate: f64,
        avg_message_bytes: f64,
    ) -> Result<(), String> {
        self.provision_job_inner(
            job,
            config,
            traffic,
            true_per_thread_rate,
            avg_message_bytes,
            0.0,
        )
    }

    /// Provision a stateful job (aggregation/join) with a state key
    /// cardinality driving its memory model.
    pub fn provision_stateful_job(
        &mut self,
        job: JobId,
        mut config: JobConfig,
        traffic: TrafficModel,
        true_per_thread_rate: f64,
        avg_message_bytes: f64,
        key_cardinality: f64,
    ) -> Result<(), String> {
        config.stateful = true;
        self.provision_job_inner(
            job,
            config,
            traffic,
            true_per_thread_rate,
            avg_message_bytes,
            key_cardinality,
        )
    }

    fn provision_job_inner(
        &mut self,
        job: JobId,
        config: JobConfig,
        traffic: TrafficModel,
        true_per_thread_rate: f64,
        avg_message_bytes: f64,
        key_cardinality: f64,
    ) -> Result<(), String> {
        if self.job_store_down() {
            return Err("job store unavailable".to_string());
        }
        self.scribe
            .create_category(&config.input_category, config.input_partitions)
            .map_err(|e| e.to_string())?;
        self.categories.insert(job, config.input_category.clone());
        let stateful = config.stateful;
        let partitions = config.input_partitions;
        self.jobs
            .provision(job, &config)
            .map_err(|e| e.to_string())?;
        self.engine.add_job(
            job,
            traffic,
            true_per_thread_rate,
            avg_message_bytes,
            partitions,
            stateful,
            key_cardinality,
        );
        self.task_service.invalidate();
        Ok(())
    }

    /// Request deletion of a job; the State Syncer winds it down.
    pub fn delete_job(&mut self, job: JobId) -> Result<(), String> {
        if self.job_store_down() {
            return Err("job store unavailable".to_string());
        }
        self.jobs
            .store_mut()
            .delete_job(job)
            .map_err(|e| e.to_string())
    }

    /// Status snapshot of one job.
    pub fn job_status(&self, job: JobId) -> Option<JobStatus> {
        let expected_tasks = self
            .jobs
            .expected_typed(job)
            .map(|c| c.task_count)
            .unwrap_or(0);
        let running_config_tasks = self
            .jobs
            .running_typed(job)
            .map(|c| c.task_count)
            .unwrap_or(0);
        let runtime = self.engine.job(job)?;
        Some(JobStatus {
            expected_tasks,
            running_config_tasks,
            running_tasks: self.engine.running_tasks_of(job),
            backlog_bytes: runtime.backlog(),
            paused: self.paused.contains(&job),
            quarantined: self.syncer.is_quarantined(job),
        })
    }

    /// The Job Service (operator interventions write Oncall-level configs
    /// through it).
    pub fn job_service_mut(&mut self) -> &mut JobService<MemWal> {
        &mut self.jobs
    }

    /// Where every active task currently runs — for placement-quality
    /// analyses (Fig. 6c's tasks-per-host spread).
    pub fn task_placements(&self) -> Vec<(turbine_types::TaskId, ContainerId)> {
        self.engine
            .tasks()
            .map(|(&id, task)| (id, task.container))
            .collect()
    }

    /// All jobs known to the data plane.
    pub fn job_ids(&self) -> Vec<JobId> {
        self.engine.job_ids()
    }

    /// A job's configured lag SLO in seconds, if its config decodes.
    pub fn job_slo_secs(&self, job: JobId) -> Option<f64> {
        self.jobs.expected_typed(job).ok().map(|c| c.slo_lag_secs)
    }

    /// Current arrival rate of a job's input, bytes/sec.
    pub fn job_arrival_rate(&self, job: JobId) -> Option<f64> {
        self.engine
            .job(job)
            .map(|rt| rt.traffic.arrival_rate(self.now))
    }

    /// Mutate a job's traffic model mid-experiment (storms, spikes).
    pub fn with_job_traffic(&mut self, job: JobId, f: impl FnOnce(&mut TrafficModel)) {
        if let Some(rt) = self.engine.job_mut(job) {
            f(&mut rt.traffic);
        }
    }

    /// Degrade (or restore) a job's true per-thread processing rate —
    /// models dependency failures and slow sinks, where adding capacity
    /// does not help (the paper's "untriaged problems", §V-D).
    pub fn with_job_true_rate(&mut self, job: JobId, rate: f64) {
        assert!(rate > 0.0);
        if let Some(rt) = self.engine.job_mut(job) {
            rt.true_per_thread_rate = rate;
        }
    }

    /// Skew a job's partition arrival weights (imbalance injection).
    pub fn skew_job_input(&mut self, job: JobId, weights: Vec<f64>) {
        if let Some(rt) = self.engine.job_mut(job) {
            assert_eq!(weights.len(), rt.partition_weights.len());
            rt.partition_weights = weights;
        }
    }

    /// Enable/disable the load balancer (fail-over stays active).
    pub fn set_load_balancing(&mut self, enabled: bool) {
        self.config.load_balancing_enabled = enabled;
    }

    /// Enable/disable the Auto Scaler.
    pub fn set_scaler_enabled(&mut self, enabled: bool) {
        self.config.scaler_enabled = enabled;
    }

    /// Oncall intervention: pin a field at the Oncall level.
    pub fn oncall_set(&mut self, job: JobId, path: &str, value: ConfigValue) -> Result<(), String> {
        if self.job_store_down() {
            return Err("job store unavailable".to_string());
        }
        self.jobs
            .set_level_field(job, ConfigLevel::Oncall, path, value)
            .map_err(|e| e.to_string())
    }

    /// Oncall intervention: clear all Oncall overrides for a job.
    pub fn oncall_clear(&mut self, job: JobId) -> Result<(), String> {
        if self.job_store_down() {
            return Err("job store unavailable".to_string());
        }
        self.jobs
            .clear_level(job, ConfigLevel::Oncall)
            .map_err(|e| e.to_string())
    }

    /// Inject host-level degradation on one task (it processes at
    /// `factor` of its normal throughput until it is restarted on another
    /// container) — the hardware-issue class of §V-D, for experiments.
    pub fn degrade_task(&mut self, task: turbine_types::TaskId, factor: f64) {
        self.engine.degrade_task(task, factor);
    }

    /// Root-cause diagnoses recorded so far (typed cause, mitigation,
    /// rationale, and the trace link into the causal chain).
    pub fn diagnoses(&self) -> &[crate::metrics::DiagnosisRecord] {
        &self.metrics.diagnoses
    }

    /// The causal decision trace: every consequential control-plane
    /// decision of this run, with cause links back to the span or event
    /// that triggered it. Inert (empty, disabled) when
    /// [`TurbineConfig::trace_enabled`] is off.
    pub fn trace(&self) -> &TraceBuffer {
        &self.trace
    }

    /// Enable random task crashes with the given fleet-wide mean time
    /// between crashes (chaos testing; `None` disables). Crashed tasks are
    /// restarted by their local Task Manager — the paper's §IV goal 3.
    pub fn set_crash_mtbf(&mut self, mtbf: Option<Duration>) {
        self.crash_mtbf = mtbf;
    }

    /// The Scribe input category a job consumes, if provisioned.
    pub fn job_category(&self, job: JobId) -> Option<&str> {
        self.categories.get(&job).map(String::as_str)
    }

    /// A job's resiliency tier from its expected configuration; `Standard`
    /// when the config is missing or undecodable.
    pub fn job_resiliency(&self, job: JobId) -> ResiliencyClass {
        self.jobs
            .expected_typed(job)
            .map(|c| c.resiliency)
            .unwrap_or_default()
    }

    /// The container a task currently runs in, if it is active.
    pub fn task_container(&self, task: turbine_types::TaskId) -> Option<ContainerId> {
        self.engine
            .tasks()
            .find(|(&id, _)| id == task)
            .map(|(_, t)| t.container)
    }

    /// The shadow cursors of warm standbys (tests, invariant checks).
    pub fn shadow_cursor(&self) -> &ShadowCursor {
        &self.shadow
    }

    /// The warm-standby container registered for a job, if any (critical
    /// jobs only; placed by the Shard Manager once the job is running).
    pub fn standby_of(&self, job: JobId) -> Option<ContainerId> {
        self.shard_manager.standby_of(job)
    }

    /// Durable backlog of a job: bytes between each partition's persisted
    /// checkpoint and the Scribe tail, summed across partitions. This is
    /// the restart-from-checkpoint read a new task performs, so an `Err`
    /// here means a checkpoint is unreadable (e.g. beyond the tail) — the
    /// condition [`clamp_recovered_checkpoints`](Self) repairs after a
    /// syncer restart.
    pub fn durable_backlog(&self, job: JobId) -> Result<u64, String> {
        let Some(category) = self.categories.get(&job) else {
            return Ok(0);
        };
        let n_partitions = self
            .engine
            .job(job)
            .map(|rt| rt.partition_count())
            .unwrap_or(0);
        // One category lookup for the whole job; partitions Scribe has
        // never seen an append for have no durable bytes yet and are
        // skipped inside the batched read.
        let cursors = (0..n_partitions).map(|i| {
            let partition = turbine_types::PartitionId(i as u64);
            (partition, self.checkpoints.get(job, partition))
        });
        self.scribe
            .category_backlog(category, cursors)
            .map_err(|(p, e)| format!("{job}/p{}: {e}", p.raw()))
    }

    /// Turn on continuous invariant checking: every executed instant from
    /// now on is evaluated against the platform's safety and convergence
    /// invariants.
    pub fn enable_invariant_checks(&mut self, config: InvariantConfig) {
        self.invariants = Some(InvariantChecker::new(config));
        // A fresh checker has seen nothing, so its first sparse check
        // must treat the whole current world as dirty.
        self.pending_dirty = PendingDirty::all(self.engine.job_ids());
        self.pending_dirty
            .jobs
            .extend(self.jobs.store().expected_jobs());
        self.pending_dirty
            .jobs
            .extend(self.jobs.store().running_jobs());
    }

    /// Bring the per-job resiliency cache up to date with the Job Store
    /// changelog: only jobs whose rows changed since the last call are
    /// re-decoded. A cursor past the changelog end (store swapped out
    /// from under us, e.g. by a test harness) forces a full rebuild.
    pub(crate) fn refresh_resiliency_cache(&mut self) {
        let log_len = self.jobs.store().changelog_len();
        if self.resiliency_cursor > log_len {
            self.resiliency_cache.clear();
            self.resiliency_cursor = 0;
        }
        if self.resiliency_cursor == 0 {
            for job in self.jobs.store().expected_jobs() {
                let tier = self.job_resiliency(job);
                self.resiliency_cache.insert(job, tier);
            }
        } else {
            let changed: Vec<JobId> = self
                .jobs
                .store()
                .changed_since(self.resiliency_cursor)
                .to_vec();
            for job in changed {
                if self.jobs.store().has_job(job) {
                    let tier = self.job_resiliency(job);
                    self.resiliency_cache.insert(job, tier);
                } else {
                    self.resiliency_cache.remove(&job);
                }
            }
        }
        self.resiliency_cursor = log_len;
    }

    /// Fold the engine's freshly dirtied jobs into every per-consumer
    /// pending set. `Engine::take_dirty` is destructive, so each consumer
    /// (sparse invariant checks, sparse load reports) reads its own
    /// accumulator instead of the engine's set directly.
    pub(crate) fn drain_engine_dirty(&mut self) {
        let fresh = self.engine.take_dirty();
        if fresh.is_empty() {
            return;
        }
        self.load_dirty_jobs.extend(fresh.iter().copied());
        self.pending_dirty.jobs.extend(fresh);
    }

    /// Violations recorded so far (empty when checking is disabled).
    pub fn invariant_violations(&self) -> &[Violation] {
        self.invariants
            .as_ref()
            .map(|c| c.violations())
            .unwrap_or(&[])
    }

    /// The invariant checker, when enabled.
    pub fn invariant_checker(&self) -> Option<&InvariantChecker> {
        self.invariants.as_ref()
    }

    /// Advance the simulation by `span` on the event-driven scheduler.
    pub fn run_for(&mut self, span: Duration) {
        self.drive_for(span, DriveMode::EventDriven);
    }

    /// Advance the simulation to absolute time `end` on the event-driven
    /// scheduler.
    pub fn run_until(&mut self, end: SimTime) {
        self.drive_until(end, DriveMode::EventDriven);
    }

    /// Advance the simulation by `span` under an explicit drive mode
    /// (equivalence tests and scheduler benchmarks). A platform instance
    /// should be driven in one mode for its whole lifetime.
    pub fn drive_for(&mut self, span: Duration, mode: DriveMode) {
        let end = self.now + span;
        self.drive_until(end, mode);
    }

    /// A bit-exact summary of observable platform state — counters, per-
    /// job running tasks and backlog bits, and the fault-timeline digest.
    /// Two runs of the same scenario match iff their fingerprints do.
    pub fn fingerprint(&self) -> PlatformFingerprint {
        fn fnv1a(digest: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *digest ^= b as u64;
                *digest = digest.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        let mut slo_digest = 0xCBF2_9CE4_8422_2325u64;
        for r in &self.metrics.recoveries {
            fnv1a(&mut slo_digest, &r.at.as_millis().to_le_bytes());
            fnv1a(&mut slo_digest, &r.job.0.to_le_bytes());
            fnv1a(&mut slo_digest, r.tier.as_str().as_bytes());
            fnv1a(&mut slo_digest, &r.ms.to_le_bytes());
            fnv1a(&mut slo_digest, &[r.fast as u8]);
        }
        PlatformFingerprint {
            now_ms: self.now.as_millis(),
            counters: [
                self.metrics.task_starts.get(),
                self.metrics.task_stops.get(),
                self.metrics.task_restarts.get(),
                self.metrics.shard_moves.get(),
                self.metrics.failovers.get(),
                self.metrics.oom_kills.get(),
                self.metrics.scaling_actions.get(),
                self.metrics.alerts.get(),
                self.metrics.standby_promotions.get(),
            ],
            jobs: self
                .engine
                .job_ids()
                .into_iter()
                .filter_map(|j| {
                    self.engine
                        .job(j)
                        .map(|rt| (j.0, self.engine.running_tasks_of(j), rt.backlog().to_bits()))
                })
                .collect(),
            fault_digest: self.faults.log_digest(),
            fault_transitions: self.faults.log().len(),
            slo_digest,
            recoveries: self.metrics.recoveries.len(),
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshot support: bit-exact serialization of the whole platform.
// ---------------------------------------------------------------------------

use turbine_types::{Snap, SnapError, SnapReader, SnapWriter};

impl Snap for TurbineConfig {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.tick);
        w.u64(self.shard_count);
        w.put(&self.container_fraction);
        w.put(&self.sync_interval);
        w.put(&self.tm_refresh_interval);
        w.put(&self.task_service_ttl);
        w.put(&self.heartbeat_interval);
        w.put(&self.connection_timeout);
        w.put(&self.load_report_interval);
        w.put(&self.rebalance_interval);
        w.put(&self.scaler_interval);
        w.put(&self.capacity_interval);
        w.put(&self.metrics_interval);
        w.put(&self.checkpoint_interval);
        w.put(&self.restart_delay);
        w.put(&self.state_move_bandwidth);
        w.put(&self.syncer);
        w.put(&self.scaler);
        w.put(&self.shardmgr);
        w.put(&self.capacity);
        w.put(&self.scaler_enabled);
        w.put(&self.load_balancing_enabled);
        w.put(&self.trace_enabled);
        w.put(&self.trace_capacity);
        w.put(&self.sparse_data_plane);
        w.put(&self.ods_enabled);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let config = TurbineConfig {
            tick: r.get()?,
            shard_count: r.u64("TurbineConfig.shard_count")?,
            container_fraction: r.get()?,
            sync_interval: r.get()?,
            tm_refresh_interval: r.get()?,
            task_service_ttl: r.get()?,
            heartbeat_interval: r.get()?,
            connection_timeout: r.get()?,
            load_report_interval: r.get()?,
            rebalance_interval: r.get()?,
            scaler_interval: r.get()?,
            capacity_interval: r.get()?,
            metrics_interval: r.get()?,
            checkpoint_interval: r.get()?,
            restart_delay: r.get()?,
            state_move_bandwidth: r.get()?,
            syncer: r.get()?,
            scaler: r.get()?,
            shardmgr: r.get()?,
            capacity: r.get()?,
            scaler_enabled: r.get()?,
            load_balancing_enabled: r.get()?,
            trace_enabled: r.get()?,
            trace_capacity: r.get()?,
            sparse_data_plane: r.get()?,
            ods_enabled: r.get()?,
        };
        // The same tick-vs-cadence rules enforced at construction apply to
        // decoded configs: a corrupt blob must not yield a platform that
        // silently skips control rounds.
        config
            .validate()
            .map_err(|_| SnapError::Value("TurbineConfig failed validation"))?;
        Ok(config)
    }
}

impl Snap for PendingDirty {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.jobs);
        w.put(&self.distributed);
        w.put(&self.cluster);
        w.put(&self.quarantine);
        w.put(&self.standby);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(PendingDirty {
            jobs: r.get()?,
            distributed: r.get()?,
            cluster: r.get()?,
            quarantine: r.get()?,
            standby: r.get()?,
        })
    }
}

impl Snap for SeveredState {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.at);
        w.put(&self.rebooted);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(SeveredState {
            at: r.get()?,
            rebooted: r.get()?,
        })
    }
}

impl Snap for OutageState {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.since);
        w.put(&self.fast);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(OutageState {
            since: r.get()?,
            fast: r.get()?,
        })
    }
}

/// Encode an unordered map deterministically: sorted by key. Two captures
/// of identical platform state must produce identical bytes, so every
/// `HashMap` field goes through this.
fn snap_sorted<K: Ord + Copy + Snap, V: Snap + Clone>(w: &mut SnapWriter, map: &HashMap<K, V>) {
    let sorted: BTreeMap<K, V> = map.iter().map(|(k, v)| (*k, v.clone())).collect();
    w.put(&sorted);
}

fn unsnap_hash<K: Ord + Copy + Snap + std::hash::Hash, V: Snap>(
    r: &mut SnapReader<'_>,
) -> Result<HashMap<K, V>, SnapError> {
    let sorted: BTreeMap<K, V> = r.get()?;
    Ok(sorted.into_iter().collect())
}

impl Snap for Turbine {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.config);
        w.put(&self.now);
        w.put(&self.cluster);
        w.put(&self.scribe);
        w.put(&self.metrics);
        w.put(&self.jobs);
        w.put(&self.syncer);
        w.put(&self.task_service);
        w.put(&self.shard_manager);
        w.put(&self.task_managers);
        w.put(&self.scaler);
        w.put(&self.capacity);
        w.put(&self.checkpoints);
        w.put(&self.engine);
        w.put(&self.paused);
        w.put(&self.capacity_stopped);
        snap_sorted(w, &self.state_moves);
        w.put(&self.crash_mtbf);
        w.put(&self.rng);
        w.put(&self.root_causer);
        snap_sorted(w, &self.releases);
        snap_sorted(w, &self.lag_since);
        snap_sorted(w, &self.last_diagnosis);
        snap_sorted(w, &self.severed);
        w.put(&self.categories);
        w.put(&self.shadow);
        w.put(&self.outages);
        w.put(&self.container_down_since);
        w.put(&self.fresh_promotions);
        w.put(&self.fresh_revivals);
        w.put(&self.faults);
        w.put(&self.trace);
        w.put(&self.invariants);
        w.put(&self.pending_dirty);
        w.put(&self.load_dirty_jobs);
        w.put(&self.load_dirty_containers);
        w.put(&self.resiliency_cache);
        w.u64(self.resiliency_cursor);
        w.put(&self.sched);
        w.put(&self.last_scaler_drain);
        w.put(&self.ods);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Turbine {
            config: r.get()?,
            now: r.get()?,
            cluster: r.get()?,
            scribe: r.get()?,
            metrics: r.get()?,
            jobs: r.get()?,
            syncer: r.get()?,
            task_service: r.get()?,
            shard_manager: r.get()?,
            task_managers: r.get()?,
            scaler: r.get()?,
            capacity: r.get()?,
            checkpoints: r.get()?,
            engine: r.get()?,
            paused: r.get()?,
            capacity_stopped: r.get()?,
            state_moves: unsnap_hash(r)?,
            crash_mtbf: r.get()?,
            rng: r.get()?,
            root_causer: r.get()?,
            releases: unsnap_hash(r)?,
            lag_since: unsnap_hash(r)?,
            last_diagnosis: unsnap_hash(r)?,
            severed: unsnap_hash(r)?,
            categories: r.get()?,
            shadow: r.get()?,
            outages: r.get()?,
            container_down_since: r.get()?,
            fresh_promotions: r.get()?,
            fresh_revivals: r.get()?,
            faults: r.get()?,
            trace: r.get()?,
            invariants: r.get()?,
            pending_dirty: r.get()?,
            load_dirty_jobs: r.get()?,
            load_dirty_containers: r.get()?,
            resiliency_cache: r.get()?,
            resiliency_cursor: r.u64("Turbine.resiliency_cursor")?,
            sched: r.get()?,
            last_scaler_drain: r.get()?,
            ods: r.get()?,
        })
    }
}
