//! The ODS bridge: per-round publication of platform state into the
//! [`turbine_ods::Registry`], alert evaluation, and incident emission.
//!
//! Everything here is observational. Publication reads platform state and
//! writes only into the registry; alert evaluation reads the registry and
//! writes only the incident log, the (unfingerprinted) `incidents`
//! counter, and deterministic trace records. The scaler's read-back path
//! ([`Turbine::ods_scaler_roundtrip`]) is the one place registry values
//! flow toward a control decision, and it is bit-exact by construction:
//! an `f64` stored and re-read from a series is the identical value.

use super::Turbine;
use std::collections::BTreeMap;
use turbine_config::ResiliencyClass;
use turbine_ods::{
    AlertEngine, AlertRule, MetricId, MetricKey, Registry, RuleKind, Scope, Severity, ThresholdOp,
};
use turbine_trace::TraceData;
use turbine_types::{Duration, JobId, Percentiles, SimTime};

/// Cached per-job series ids for the metrics round (lag/backlog/tasks).
#[derive(Debug, Clone, Copy)]
struct JobSeries {
    lag: MetricId,
    backlog: MetricId,
    tasks: MetricId,
}

/// Cached per-job series ids for the scaler round.
#[derive(Debug, Clone, Copy)]
struct ScalerSeries {
    input_rate: MetricId,
    processing_rate: MetricId,
    backlog: MetricId,
}

/// Cached per-tier series ids (SLO accounting).
#[derive(Debug, Clone, Copy)]
struct TierSeries {
    downtime: MetricId,
    p50: MetricId,
    p99: MetricId,
}

/// Per-platform ODS state: the registry, the alert engine, and the id
/// caches that keep steady-state publication free of string formatting.
#[derive(Debug, Default)]
pub(crate) struct OdsState {
    pub(crate) registry: Registry,
    pub(crate) alerts: AlertEngine,
    job_series: BTreeMap<JobId, JobSeries>,
    scaler_series: BTreeMap<JobId, ScalerSeries>,
    tier_series: BTreeMap<ResiliencyClass, TierSeries>,
    /// Per category: append-rate series id and the last observed
    /// cumulative append count (for rate deltas).
    scribe_series: BTreeMap<String, (MetricId, u64)>,
}

impl OdsState {
    fn job_series(&mut self, job: JobId) -> JobSeries {
        if let Some(&ids) = self.job_series.get(&job) {
            return ids;
        }
        let ids = JobSeries {
            lag: self
                .registry
                .series_id(MetricKey::job(job.raw(), "lag_secs")),
            backlog: self
                .registry
                .series_id(MetricKey::job(job.raw(), "backlog_bytes")),
            tasks: self
                .registry
                .series_id(MetricKey::job(job.raw(), "running_tasks")),
        };
        self.job_series.insert(job, ids);
        ids
    }

    fn scaler_series(&mut self, job: JobId) -> ScalerSeries {
        if let Some(&ids) = self.scaler_series.get(&job) {
            return ids;
        }
        let ids = ScalerSeries {
            input_rate: self
                .registry
                .series_id(MetricKey::job(job.raw(), "input_rate_bps")),
            processing_rate: self
                .registry
                .series_id(MetricKey::job(job.raw(), "processing_rate_bps")),
            backlog: self
                .registry
                .series_id(MetricKey::job(job.raw(), "scaler_backlog_bytes")),
        };
        self.scaler_series.insert(job, ids);
        ids
    }

    fn tier_series(&mut self, tier: ResiliencyClass) -> TierSeries {
        if let Some(&ids) = self.tier_series.get(&tier) {
            return ids;
        }
        let scope = Scope::Tier(tier.as_str().to_string());
        let ids = TierSeries {
            downtime: self
                .registry
                .series_id(MetricKey::new(scope.clone(), "downtime_ms")),
            p50: self
                .registry
                .series_id(MetricKey::new(scope.clone(), "recovery_p50_ms")),
            p99: self
                .registry
                .series_id(MetricKey::new(scope, "recovery_p99_ms")),
        };
        self.tier_series.insert(tier, ids);
        ids
    }
}

/// One job's sample for the metrics-round publication.
pub(crate) struct JobSample {
    pub(crate) job: JobId,
    pub(crate) lag_secs: f64,
    pub(crate) backlog_bytes: f64,
    pub(crate) running_tasks: usize,
}

/// Everything one metrics round hands the registry in a single publish.
pub(crate) struct MetricsRoundSample<'a> {
    pub(crate) traffic: f64,
    pub(crate) cpu_samples: &'a [f64],
    pub(crate) mem_samples: &'a [f64],
    pub(crate) jobs: &'a [JobSample],
    pub(crate) total_backlog: f64,
    pub(crate) slo_ok_fraction: Option<f64>,
}

impl Turbine {
    /// Publish the metrics round's observations into the registry: fleet
    /// aggregates, host utilization percentiles, per-job series, per-tier
    /// SLO accounting, Scribe append rates, and control-round latency
    /// summaries. Called at the end of [`Turbine::metrics_round`] when ODS
    /// is enabled.
    pub(crate) fn ods_metrics_publish(&mut self, now: SimTime, sample: MetricsRoundSample<'_>) {
        let MetricsRoundSample {
            traffic,
            cpu_samples,
            mem_samples,
            jobs,
            total_backlog,
            slo_ok_fraction,
        } = sample;
        let ods = &mut self.ods;
        ods.registry
            .publish_key(MetricKey::platform("cluster_traffic_bps"), now, traffic);
        ods.registry.publish_key(
            MetricKey::platform("task_count"),
            now,
            self.engine.total_tasks() as f64,
        );
        ods.registry.publish_key(
            MetricKey::platform("total_backlog_bytes"),
            now,
            total_backlog,
        );
        if let Some(frac) = slo_ok_fraction {
            ods.registry
                .publish_key(MetricKey::platform("slo_ok_fraction"), now, frac);
        }
        ods.registry.publish_key(
            MetricKey::platform("control_queue_depth"),
            now,
            self.sched.queue_depth() as f64,
        );
        ods.registry.publish_key(
            MetricKey::platform("sync_jobs_examined"),
            now,
            self.metrics.sync_jobs_examined.get() as f64,
        );
        if !cpu_samples.is_empty() {
            let cpu = Percentiles::from_samples(cpu_samples);
            let mem = Percentiles::from_samples(mem_samples);
            ods.registry
                .publish_key(MetricKey::platform("host_cpu_p50"), now, cpu.p50);
            ods.registry
                .publish_key(MetricKey::platform("host_cpu_p95"), now, cpu.p95);
            ods.registry
                .publish_key(MetricKey::platform("host_memory_p50"), now, mem.p50);
            ods.registry
                .publish_key(MetricKey::platform("host_memory_p95"), now, mem.p95);
        }
        for sample in jobs {
            let ids = ods.job_series(sample.job);
            ods.registry.publish(ids.lag, now, sample.lag_secs);
            ods.registry.publish(ids.backlog, now, sample.backlog_bytes);
            ods.registry
                .publish(ids.tasks, now, sample.running_tasks as f64);
        }
        for tier in [
            ResiliencyClass::BestEffort,
            ResiliencyClass::Standard,
            ResiliencyClass::Critical,
        ] {
            let downtime = self.metrics.tier_downtime_ms.get(&tier).copied();
            let p50 = self.metrics.tier_recovery_quantile(tier, 0.50);
            let p99 = self.metrics.tier_recovery_quantile(tier, 0.99);
            if downtime.is_none() && p99.is_none() {
                continue;
            }
            let ids = ods.tier_series(tier);
            ods.registry
                .publish(ids.downtime, now, downtime.unwrap_or(0) as f64);
            if let (Some(p50), Some(p99)) = (p50, p99) {
                ods.registry.publish(ids.p50, now, p50 as f64);
                ods.registry.publish(ids.p99, now, p99 as f64);
            }
        }
        // Scribe append rates: delta of each category's cumulative append
        // count over the sampling interval.
        let interval_secs = self.config.metrics_interval.as_secs_f64().max(1.0);
        let categories: Vec<String> = self
            .scribe
            .category_names()
            .into_iter()
            .map(str::to_string)
            .collect();
        for category in categories {
            let Ok(stats) = self.scribe.stats(&category) else {
                continue;
            };
            let entry = match ods.scribe_series.get_mut(&category) {
                Some(entry) => entry,
                None => {
                    let id = ods.registry.series_id(MetricKey::new(
                        Scope::Component("scribe".to_string()),
                        format!("{category}_appends_per_sec"),
                    ));
                    ods.scribe_series.entry(category).or_insert((id, 0))
                }
            };
            let (id, last) = *entry;
            let delta = stats.total_appended.saturating_sub(last);
            entry.1 = stats.total_appended;
            ods.registry.publish(id, now, delta as f64 / interval_secs);
        }
        // Control-round wall-clock latency summaries. These are host-time
        // observations (excluded from every digest), surfaced for the
        // operator console and exports; alert rules must not target them.
        for (component, hist) in self.trace.latencies() {
            if hist.count == 0 {
                continue;
            }
            let scope = Scope::Component(component.name().to_string());
            ods.registry.publish_key(
                MetricKey::new(scope.clone(), "round_mean_ns"),
                now,
                hist.mean_ns() as f64,
            );
            if let Some(p99) = hist.quantile_ns(0.99) {
                ods.registry
                    .publish_key(MetricKey::new(scope, "round_p99_ns"), now, p99 as f64);
            }
        }
    }

    /// Publish one job's scaler-round observations and read them back from
    /// the registry — the Auto Scaler's symptom inputs flow through the
    /// uniform metrics plane like every other consumer's. The round-trip
    /// is bit-exact (`f64` in, identical `f64` out), so scaling decisions
    /// are unchanged from reading the engine directly.
    pub(crate) fn ods_scaler_roundtrip(
        &mut self,
        job: JobId,
        now: SimTime,
        input_rate: f64,
        processing_rate: f64,
        backlog: f64,
    ) -> (f64, f64, f64) {
        let ods = &mut self.ods;
        let ids = ods.scaler_series(job);
        ods.registry.publish(ids.input_rate, now, input_rate);
        ods.registry
            .publish(ids.processing_rate, now, processing_rate);
        ods.registry.publish(ids.backlog, now, backlog);
        (
            ods.registry
                .series(ids.input_rate)
                .last()
                .expect("just published"),
            ods.registry
                .series(ids.processing_rate)
                .last()
                .expect("just published"),
            ods.registry
                .series(ids.backlog)
                .last()
                .expect("just published"),
        )
    }

    /// Evaluate every installed alert rule against the registry, then emit
    /// each newly opened incident: bump the (unfingerprinted) incident
    /// counter and record a cause-linked trace event. For job-scoped
    /// incidents whose input category has an active Scribe stall, the
    /// cause link points at the stall's activation edge, so `--explain`
    /// walks from the page to the fault that produced it.
    pub(crate) fn ods_evaluate_alerts(&mut self, now: SimTime) {
        let opened = self.ods.alerts.evaluate(&self.ods.registry, now);
        for idx in opened {
            self.metrics.incidents.incr();
            let incident = &self.ods.alerts.incidents()[idx];
            let job = match &incident.metric.scope {
                Scope::Job(id) => Some(JobId(*id)),
                _ => None,
            };
            let data = TraceData::Incident {
                rule: incident.rule.clone(),
                severity: incident.severity.as_str(),
                job,
                message: incident.message.clone(),
            };
            let cause = job
                .and_then(|j| self.categories.get(&j))
                .and_then(|cat| self.trace.fault_cause(&format!("scribe_stall({cat})")));
            match cause {
                Some(root) => {
                    self.trace.emit_caused(now, data, Some(root));
                }
                None => {
                    self.trace.emit(now, data);
                }
            }
        }
    }

    /// Install alerting rules (parsed from a scenario's `alerts` section,
    /// or built programmatically).
    pub fn install_alert_rules(&mut self, rules: impl IntoIterator<Item = AlertRule>) {
        self.ods.alerts.install_all(rules);
    }

    /// Install the default paging rules: for every provisioned critical
    /// job, a critical-severity threshold on its lag against its
    /// configured SLO, debounced 2 minutes and suppressed 30 minutes after
    /// firing. Idempotent — jobs that already have their default rule are
    /// skipped.
    pub fn install_default_alert_rules(&mut self) {
        for job in self.engine.job_ids() {
            if self.job_resiliency(job) != ResiliencyClass::Critical {
                continue;
            }
            let Some(slo) = self.job_slo_secs(job) else {
                continue;
            };
            let name = format!("lag-slo-{}", job.raw());
            if self.ods.alerts.rules().iter().any(|r| r.name == name) {
                continue;
            }
            self.ods.alerts.install(AlertRule {
                name,
                metric: MetricKey::job(job.raw(), "lag_secs"),
                kind: RuleKind::Threshold {
                    op: ThresholdOp::Above,
                    value: slo,
                },
                for_duration: Duration::from_mins(2),
                severity: Severity::Critical,
                suppress_for: Duration::from_mins(30),
            });
        }
    }

    /// The uniform time-series registry every layer publishes into.
    pub fn ods_registry(&self) -> &Registry {
        &self.ods.registry
    }

    /// The alerting engine (rules and incident log).
    pub fn alert_engine(&self) -> &AlertEngine {
        &self.ods.alerts
    }

    /// Every incident the alerting engine has opened, in open order.
    pub fn incidents(&self) -> &[turbine_ods::Incident] {
        self.ods.alerts.incidents()
    }
}

impl turbine_types::Snap for OdsState {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.put(&self.registry);
        w.put(&self.alerts);
        // Scribe watermarks are real state (rate deltas); the id halves are
        // re-interned from the restored registry. The per-job/per-tier id
        // caches refill lazily to the same dense ids, so they are omitted.
        let watermarks: BTreeMap<&String, u64> = self
            .scribe_series
            .iter()
            .map(|(category, &(_, last))| (category, last))
            .collect();
        w.put(&watermarks.len());
        for (category, last) in watermarks {
            w.put(category);
            w.u64(last);
        }
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        let mut registry: Registry = r.get()?;
        let alerts = r.get()?;
        let count: usize = r.get()?;
        let mut scribe_series = BTreeMap::new();
        for _ in 0..count {
            let category: String = r.get()?;
            let last = r.u64("OdsState.scribe_watermark")?;
            let id = registry.series_id(MetricKey::new(
                Scope::Component("scribe".to_string()),
                format!("{category}_appends_per_sec"),
            ));
            scribe_series.insert(category, (id, last));
        }
        Ok(OdsState {
            registry,
            alerts,
            job_series: BTreeMap::new(),
            scaler_series: BTreeMap::new(),
            tier_series: BTreeMap::new(),
            scribe_series,
        })
    }
}
