//! Fault-injection entry points and fault-edge side effects: severed
//! Shard Manager connections, chaos-engine windows, and whole-host
//! failures. Scheduled windows additionally enqueue
//! [`FaultEdge`](super::ControlEvent::FaultEdge) wake events so the
//! event-driven loop executes the grid instants where the edges land.

use super::{SeveredState, Turbine};
use turbine_sim::{Fault, FaultInjector, FaultPlan, FaultTransition};
use turbine_statesyncer::StateSyncer;
use turbine_types::{ContainerId, Duration, HostId};

impl Turbine {
    /// Sever a container's connection to the Shard Manager (network
    /// failure injection). Heartbeats stop; after the proactive timeout
    /// the container reboots itself (§IV-C).
    pub fn sever_connection(&mut self, container: ContainerId) {
        self.container_down_since
            .entry(container)
            .or_insert(self.now);
        // Severing shrinks the live-container set the distributed
        // invariant scope checks against.
        self.pending_dirty.distributed = true;
        self.severed.entry(container).or_insert(SeveredState {
            at: self.now,
            rebooted: false,
        });
    }

    /// Restore a severed connection. If the Shard Manager already failed
    /// the container over, it rejoins as an empty container; otherwise its
    /// shards resume where they were.
    pub fn restore_connection(&mut self, container: ContainerId) {
        self.container_down_since.remove(&container);
        let Some(state) = self.severed.remove(&container) else {
            return;
        };
        self.pending_dirty.distributed = true;
        self.load_dirty_containers.insert(container);
        if state.rebooted {
            use turbine_shardmgr::ContainerStatus;
            let status = self.shard_manager.status(container);
            if status == Some(ContainerStatus::Alive) {
                // Re-connected before fail-over: re-own assigned shards.
                let shards = self.shard_manager.shards_of(container);
                let mut all_events = Vec::new();
                if let Some(tm) = self.task_managers.get_mut(&container) {
                    for shard in shards {
                        all_events.extend(tm.add_shard(shard));
                    }
                }
                self.handle_task_events(container, &all_events);
            }
            // If failed over: stays empty until the next rebalance.
        }
    }

    /// Activate a fault now, optionally auto-clearing after `duration`.
    /// Side effects (severed connections, syncer restarts) are applied
    /// immediately; the expiry edge gets a wake event so the event loop
    /// lands on it.
    pub fn inject_fault(&mut self, fault: Fault, duration: Option<Duration>) {
        let until = duration.map(|d| self.now + d);
        let transitions = self.faults.inject(self.now, fault, until);
        for t in transitions {
            self.apply_fault_transition(t);
        }
        if let Some(until) = until {
            self.schedule_fault_edges(until, None);
        }
    }

    /// Clear an active fault now (no-op if it is not active).
    pub fn clear_fault(&mut self, fault: &Fault) {
        let transitions = self.faults.clear(self.now, fault);
        for t in transitions {
            self.apply_fault_transition(t);
        }
    }

    /// Schedule a fault window for future simulated time; the injector
    /// activates and expires it as the clock passes the window edges (each
    /// edge gets a wake event pinning it to the execution grid).
    pub fn schedule_fault(&mut self, plan: FaultPlan) {
        self.schedule_fault_edges(plan.from, plan.until);
        self.faults.schedule(plan);
    }

    /// Read access to the chaos engine (active faults, event log, digest).
    pub fn fault_injector(&self) -> &FaultInjector {
        &self.faults
    }

    /// Apply the side effects of a fault edge. Activation side effects
    /// model the outage starting; clearance side effects model the
    /// component coming back (reconnect, restart, cache invalidation).
    pub(crate) fn apply_fault_transition(&mut self, transition: FaultTransition) {
        // Trace the edge first: it is the chain root every downstream
        // symptom and decision links back to (clearances link to their own
        // activation).
        let (label, activated) = match &transition {
            FaultTransition::Activated(f) => (f.label(), true),
            FaultTransition::Cleared(f) => (f.label(), false),
        };
        self.trace.note_fault_edge(self.now, &label, activated);
        match transition {
            FaultTransition::Activated(Fault::HeartbeatLoss(container)) => {
                self.sever_connection(container);
            }
            FaultTransition::Cleared(Fault::HeartbeatLoss(container)) => {
                self.restore_connection(container);
            }
            FaultTransition::Cleared(Fault::SyncerCrash) => {
                // Restart: a fresh syncer with empty in-memory state. The
                // expected-vs-running difference persisted in the Job Store
                // is the recovery log — the next round resumes exactly the
                // syncs that were in flight (§III-B fault tolerance). The
                // restart also empties the quarantine set, so every
                // formerly quarantined job must be re-examined; the fresh
                // syncer's changelog cursor of zero already makes its
                // first sparse round a full-coverage one.
                self.pending_dirty.quarantine = true;
                self.pending_dirty
                    .jobs
                    .extend(self.syncer.quarantined_jobs());
                self.syncer = StateSyncer::new(self.config.syncer);
                self.clamp_recovered_checkpoints();
            }
            FaultTransition::Cleared(Fault::TaskServiceDown)
            | FaultTransition::Cleared(Fault::JobStoreDown) => {
                // Force the next refresh to rebuild a fresh snapshot
                // instead of serving the stale cached one.
                self.task_service.invalidate();
            }
            _ => {}
        }
    }

    /// True while the Job Store is unavailable to writers.
    pub(crate) fn job_store_down(&self) -> bool {
        self.faults.is_active(&Fault::JobStoreDown)
    }

    /// Re-validate persisted checkpoints against the Scribe tails after a
    /// State Syncer restart. While the syncer was down the Scribe WAL may
    /// have salvaged a torn tail, legitimately moving a partition's tail
    /// *backwards* past an already-persisted checkpoint; left alone, such
    /// a checkpoint makes every `bytes_available` read error forever. Each
    /// clamp is surfaced as a `checkpoint_clamp` trace event.
    pub(crate) fn clamp_recovered_checkpoints(&mut self) {
        use turbine_trace::TraceData;
        use turbine_types::PartitionId;
        for job in self.engine.job_ids() {
            let Some(category) = self.categories.get(&job).cloned() else {
                continue;
            };
            let n_partitions = self
                .engine
                .job(job)
                .map(|rt| rt.partition_count())
                .unwrap_or(0);
            for i in 0..n_partitions {
                let partition = PartitionId(i as u64);
                let Ok(tail) = self.scribe.tail_offset(&category, partition) else {
                    continue;
                };
                if let Some((from, to)) = self.checkpoints.clamp_to(job, partition, tail) {
                    self.trace.emit(
                        self.now,
                        TraceData::CheckpointClamp {
                            job,
                            partition: partition.raw(),
                            from,
                            to,
                        },
                    );
                }
            }
        }
    }

    /// Fail a host (crash / maintenance). Tasks on it stop processing
    /// immediately; the Shard Manager fails its shards over after the
    /// fail-over interval.
    pub fn fail_host(&mut self, host: HostId) -> Result<(), String> {
        if let Ok(containers) = self.cluster.containers_on(host) {
            for container in containers {
                self.container_down_since
                    .entry(container)
                    .or_insert(self.now);
            }
        }
        self.pending_dirty.cluster = true;
        self.pending_dirty.distributed = true;
        self.cluster.fail_host(host).map_err(|e| e.to_string())
    }

    /// Recover a failed host. Containers the Shard Manager already failed
    /// over rejoin empty (stale local state is discarded) and receive
    /// shards at the next rebalance; containers that recovered before the
    /// fail-over interval elapsed keep their shards and their tasks simply
    /// resume (§IV-C).
    pub fn recover_host(&mut self, host: HostId) -> Result<(), String> {
        use turbine_shardmgr::ContainerStatus;
        let containers = self
            .cluster
            .containers_on(host)
            .map_err(|e| e.to_string())?;
        self.cluster.recover_host(host).map_err(|e| e.to_string())?;
        self.pending_dirty.cluster = true;
        self.pending_dirty.distributed = true;
        for container in containers {
            self.container_down_since.remove(&container);
            self.load_dirty_containers.insert(container);
            if self.shard_manager.status(container) == Some(ContainerStatus::Alive) {
                // Recovered before fail-over: ownership is unchanged and
                // the local state is still valid.
                continue;
            }
            // Failed over while down: clear stale local state. The stop
            // events only affect tasks the engine still places here —
            // tasks that already moved belong to their new containers.
            let mut all_events = Vec::new();
            if let Some(tm) = self.task_managers.get_mut(&container) {
                let owned: Vec<_> = tm.owned_shards().collect();
                for shard in owned {
                    all_events.extend(tm.drop_shard(shard));
                }
            }
            self.handle_task_events(container, &all_events);
        }
        Ok(())
    }
}
