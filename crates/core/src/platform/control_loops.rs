//! The per-event control-loop handlers: one method per
//! [`ControlEvent`](super::ControlEvent) round, plus the shared plumbing
//! (shard-movement application, task-event bookkeeping) they all feed
//! into. Cadences, gates, and dispatch order live in the scheduler's
//! component table — these bodies only do the round's work at the instant
//! they are invoked.

use super::{OutageState, Turbine};
use crate::engine::Engine;
use crate::metrics::DiagnosisRecord;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use turbine_autoscaler::{DiagnosisInput, JobMetrics, Mitigation, ScalingAction};
use turbine_config::{ConfigLevel, JobConfig, ResiliencyClass};
use turbine_shardmgr::{ContainerStatus, ShardMovement};
use turbine_statesyncer::{Redistribute, SyncEnvironment};
use turbine_taskmgr::{LocalTaskManager, TaskEvent, TaskService};
use turbine_trace::TraceData;
use turbine_types::{ContainerId, Duration, JobId, PartitionId, Resources, SimTime};

impl Turbine {
    /// Heartbeats + proactive reboot of disconnected containers.
    pub(crate) fn heartbeat_round(&mut self) {
        let now = self.now;
        let healthy: BTreeSet<ContainerId> =
            self.cluster.healthy_containers().into_iter().collect();
        // Proactive reboots first.
        let due_reboot: Vec<ContainerId> = self
            .severed
            .iter()
            .filter(|(_, s)| !s.rebooted && now.since(s.at) >= self.config.connection_timeout)
            .map(|(&c, _)| c)
            .collect();
        for container in due_reboot {
            self.severed.get_mut(&container).expect("present").rebooted = true;
            let mut all_events = Vec::new();
            if let Some(tm) = self.task_managers.get_mut(&container) {
                let owned: Vec<_> = tm.owned_shards().collect();
                for shard in owned {
                    all_events.extend(tm.drop_shard(shard));
                }
            }
            // The reboot takes the container's tasks down: this is a
            // fault-attributed outage for every affected job, measured
            // from the connectivity loss (not the reboot).
            let since = self
                .container_down_since
                .get(&container)
                .copied()
                .unwrap_or(now);
            let affected: BTreeSet<JobId> = all_events
                .iter()
                .filter_map(|e| match e {
                    TaskEvent::Stopped(id) => Some(id.job),
                    _ => None,
                })
                .collect();
            for job in affected {
                self.open_outage(job, since);
            }
            // The reboot dropped every owned shard regardless of whether
            // tasks were running on them.
            self.pending_dirty.distributed = true;
            self.load_dirty_containers.insert(container);
            self.handle_task_events(container, &all_events);
        }
        let containers: Vec<ContainerId> = self.task_managers.keys().copied().collect();
        for container in containers {
            if healthy.contains(&container)
                && !self.severed.contains_key(&container)
                && self.shard_manager.heartbeat(container, now)
            {
                // A container we declared dead (and failed over) came
                // back. Its shards must already live elsewhere — the
                // revival is surfaced rather than silently absorbed.
                let stale_shards = self.shard_manager.shards_of(container).len();
                self.metrics.container_revivals.incr();
                self.trace.emit(
                    now,
                    TraceData::ContainerRevived {
                        container,
                        stale_shards,
                    },
                );
                if self.invariants.is_some() {
                    self.fresh_revivals.push((container, stale_shards));
                }
            }
        }
    }

    /// Shard Manager fail-over check (piggybacks the heartbeat cadence).
    /// The warm-standby fast path runs first: a critical job whose primary
    /// went suspect is promoted without waiting for the full fail-over
    /// interval. Then the standard path declares dead containers and moves
    /// their shards, standbys are (re)placed, and the SLO check closes any
    /// outage whose job is back at full strength.
    pub(crate) fn failover_check(&mut self) {
        self.promote_suspect_primaries();
        let alive_before = self.shard_manager.alive_containers();
        let failover_moves = self.shard_manager.check_failover(self.now);
        if !failover_moves.is_empty() {
            // Outages are attributed before the movements execute: every
            // job with a task on a newly dead container went down when
            // that container lost connectivity, not when we noticed.
            let newly_dead: BTreeSet<ContainerId> = alive_before
                .into_iter()
                .filter(|&c| self.shard_manager.status(c) == Some(ContainerStatus::Dead))
                .collect();
            let mut affected: BTreeMap<JobId, SimTime> = BTreeMap::new();
            for (id, task) in self.engine.tasks() {
                if !newly_dead.contains(&task.container) {
                    continue;
                }
                let since = self
                    .container_down_since
                    .get(&task.container)
                    .copied()
                    .unwrap_or(self.now);
                let slot = affected.entry(id.job).or_insert(since);
                if since < *slot {
                    *slot = since;
                }
            }
            for (job, since) in affected {
                self.open_outage(job, since);
            }
            self.metrics.failovers.incr();
            self.trace.emit(
                self.now,
                TraceData::Failover {
                    moves: failover_moves.len(),
                },
            );
            self.apply_movements(&failover_moves);
        }
        self.ensure_standbys();
        self.slo_check();
    }

    /// Open a fault-attributed outage for a job (idempotent: an already
    /// open outage keeps its original onset).
    fn open_outage(&mut self, job: JobId, since: SimTime) {
        self.outages
            .entry(job)
            .or_insert(OutageState { since, fast: false });
    }

    /// The fast fail-over path: promote the warm standby of any critical
    /// job whose primary container has gone suspect (missed heartbeats for
    /// the standby grace period, but not yet long enough for the standard
    /// path to declare it dead). The promotion hands the suspect shards to
    /// the standby, which starts their tasks without the cold restart
    /// delay — it was already shadow-consuming the input. A suspect,
    /// severed, or host-dead standby is dropped instead of promoted: the
    /// job then degrades to the standard fail-over path (double fault).
    fn promote_suspect_primaries(&mut self) {
        let now = self.now;
        let registrations: Vec<(JobId, ContainerId)> = self.shard_manager.standbys().collect();
        for (job, standby) in registrations {
            if self.shard_manager.is_suspect(standby, now)
                || self.severed.contains_key(&standby)
                || !self.cluster.is_container_healthy(standby)
            {
                self.shard_manager.clear_standby(job);
                self.shadow.remove_job(job);
                self.pending_dirty.standby = true;
                continue;
            }
            let mut suspect_shards = Vec::new();
            let mut onset: Option<SimTime> = None;
            for (&id, task) in self.engine.tasks_of_job(job) {
                if !self.shard_manager.is_suspect(task.container, now) {
                    continue;
                }
                suspect_shards.push(turbine_taskmgr::shard_of_task(id, self.config.shard_count));
                let since = self
                    .container_down_since
                    .get(&task.container)
                    .copied()
                    .unwrap_or(now);
                if onset.is_none_or(|o| since < o) {
                    onset = Some(since);
                }
            }
            if suspect_shards.is_empty() {
                continue;
            }
            suspect_shards.sort_unstable();
            suspect_shards.dedup();
            let Some((to, moves)) = self.shard_manager.promote_standby(job, &suspect_shards) else {
                continue;
            };
            self.metrics.standby_promotions.incr();
            self.trace.emit(
                now,
                TraceData::StandbyPromoted {
                    job,
                    to,
                    moves: moves.len(),
                },
            );
            if self.engine.job(job).is_some_and(|rt| rt.stateful) {
                // The standby's shadow state makes the next checkpoint
                // redistribution free: no state move, no pause.
                self.syncer.grant_warm_handoff(job);
            }
            self.shadow.remove_job(job);
            self.pending_dirty.standby = true;
            if self.invariants.is_some() {
                self.fresh_promotions.push((job, to));
            }
            let since = onset.unwrap_or(now);
            self.outages
                .entry(job)
                .and_modify(|o| o.fast = true)
                .or_insert(OutageState { since, fast: true });
            self.apply_promotion(&moves);
        }
    }

    /// Keep every critical running job covered by a valid warm standby:
    /// drop registrations that are no longer valid (job deleted or
    /// demoted, standby unhealthy or co-hosted with a primary), then place
    /// a standby for any critical job lacking one.
    fn ensure_standbys(&mut self) {
        let now = self.now;
        // Critical jobs come from the changelog-maintained resiliency
        // cache: the round costs O(critical + changelog delta), not a
        // re-decode of every job config in the fleet.
        self.refresh_resiliency_cache();
        let critical: Vec<JobId> = self
            .resiliency_cache
            .iter()
            .filter(|&(&j, &tier)| {
                tier == ResiliencyClass::Critical
                    && self.jobs.store().running(j).is_some()
                    && self.engine.job(j).is_some()
            })
            .map(|(&j, _)| j)
            .collect();
        let registrations: Vec<(JobId, ContainerId)> = self.shard_manager.standbys().collect();
        if registrations.is_empty() && critical.is_empty() {
            return;
        }
        let mut tasks_on: BTreeMap<ContainerId, usize> = BTreeMap::new();
        for (_, task) in self.engine.tasks() {
            *tasks_on.entry(task.container).or_insert(0) += 1;
        }
        for (job, standby) in registrations {
            let mut valid = critical.contains(&job)
                && self.shard_manager.status(standby) == Some(ContainerStatus::Alive)
                && self.cluster.is_container_healthy(standby)
                && !self.severed.contains_key(&standby)
                && !self.standby_conflicts(job, standby);
            // Migrate a standby off a container that runs primary tasks
            // once an idle container is available: co-residency couples
            // the standby's fate to other jobs' faults. With no idle
            // candidate the busy placement stands — better than none.
            if valid && tasks_on.get(&standby).copied().unwrap_or(0) > 0 {
                if let Some(better) = self.pick_standby(job) {
                    if tasks_on.get(&better).copied().unwrap_or(0) == 0 {
                        valid = false;
                    }
                }
            }
            if !valid {
                self.shard_manager.clear_standby(job);
                self.shadow.remove_job(job);
                self.pending_dirty.standby = true;
            }
        }
        for job in critical {
            if self.shard_manager.standby_of(job).is_some() {
                continue;
            }
            // Never place a standby while the job is mid-fault: a replica
            // registered this instant has shadow-consumed nothing, so
            // promoting it would be a cold start masquerading as the fast
            // path. The job rides the standard fail-over and gets a fresh
            // standby once its outage closes.
            if self.outages.contains_key(&job)
                || self.engine.tasks_of_job(job).any(|(_, t)| {
                    self.shard_manager.is_suspect(t.container, now)
                        || self.severed.contains_key(&t.container)
                        || !self.cluster.is_container_healthy(t.container)
                })
            {
                continue;
            }
            if let Some(container) = self.pick_standby(job) {
                self.shard_manager.set_standby(job, container);
                self.pending_dirty.standby = true;
                self.trace
                    .emit(now, TraceData::StandbyPlaced { job, container });
            }
        }
    }

    /// True when a standby shares a host with one of the job's primary
    /// tasks (a single host failure would take out both).
    fn standby_conflicts(&self, job: JobId, standby: ContainerId) -> bool {
        let Ok(standby_host) = self.cluster.host_of(standby) else {
            return true;
        };
        self.engine.tasks_of_job(job).any(|(_, t)| {
            t.container == standby || self.cluster.host_of(t.container) == Ok(standby_host)
        })
    }

    /// Choose a standby container for a critical job: healthy, alive, not
    /// severed, on a host running none of the job's primaries. Containers
    /// running the fewest primary tasks (across all jobs) win — an idle
    /// container keeps the standby's failure domain decoupled from other
    /// jobs' faults — then fewest owned shards, then the lowest id.
    fn pick_standby(&self, job: JobId) -> Option<ContainerId> {
        let healthy: BTreeSet<ContainerId> =
            self.cluster.healthy_containers().into_iter().collect();
        let mut primary_hosts = BTreeSet::new();
        for (_, task) in self.engine.tasks_of_job(job) {
            if let Ok(host) = self.cluster.host_of(task.container) {
                primary_hosts.insert(host);
            }
        }
        let mut tasks_on: BTreeMap<ContainerId, usize> = BTreeMap::new();
        for (_, task) in self.engine.tasks() {
            *tasks_on.entry(task.container).or_insert(0) += 1;
        }
        let mut best: Option<((usize, usize), ContainerId)> = None;
        for &container in self.task_managers.keys() {
            if !healthy.contains(&container)
                || self.severed.contains_key(&container)
                || self.shard_manager.status(container) != Some(ContainerStatus::Alive)
            {
                continue;
            }
            let Ok(host) = self.cluster.host_of(container) else {
                continue;
            };
            if primary_hosts.contains(&host) {
                continue;
            }
            let load = (
                tasks_on.get(&container).copied().unwrap_or(0),
                self.shard_manager.shards_of(container).len(),
            );
            let better = match best {
                None => true,
                Some((best_load, best_id)) => {
                    load < best_load || (load == best_load && container < best_id)
                }
            };
            if better {
                best = Some((load, container));
            }
        }
        best.map(|(_, container)| container)
    }

    /// Close every open outage whose job is back at full strength: all
    /// running-config tasks effectively running (not in restart downtime,
    /// on cluster-healthy, connected containers). Closing records the
    /// per-tier recovery sample and emits the SLO trace event.
    fn slo_check(&mut self) {
        if self.outages.is_empty() {
            return;
        }
        let now = self.now;
        let healthy: BTreeSet<ContainerId> =
            self.cluster.healthy_containers().into_iter().collect();
        let open: Vec<JobId> = self.outages.keys().copied().collect();
        for job in open {
            if self.engine.job(job).is_none() {
                // Deleted mid-outage: nothing left to recover.
                self.outages.remove(&job);
                continue;
            }
            if self.paused.contains(&job) || self.capacity_stopped.contains(&job) {
                continue;
            }
            let Some(config) = self.jobs.running_typed(job) else {
                continue;
            };
            let want = config.task_count as usize;
            let severed = &self.severed;
            let up = self
                .engine
                .tasks_of_job(job)
                .filter(|(_, t)| {
                    healthy.contains(&t.container)
                        && !severed.contains_key(&t.container)
                        && t.down_until.is_none_or(|u| now >= u)
                })
                .count();
            if want == 0 || up < want {
                continue;
            }
            let outage = self.outages.remove(&job).expect("listed");
            let ms = now.since(outage.since).as_millis();
            let tier = self.job_resiliency(job);
            self.metrics
                .record_recovery(now, job, tier, ms, outage.fast);
            self.trace.emit(
                now,
                TraceData::SloRecovery {
                    job,
                    tier: tier.as_str(),
                    ms,
                    fast: outage.fast,
                },
            );
        }
    }

    /// Task Manager snapshot refresh from the Task Service.
    pub(crate) fn tm_refresh_round(&mut self) {
        let now = self.now;
        // Snapshot (cached and indexed inside the Task Service for its
        // TTL; Task Managers share it by reference).
        let jobs = &self.jobs;
        let paused = &self.paused;
        let stopped = &self.capacity_stopped;
        let snapshot = self.task_service.snapshot(now, || {
            jobs.store()
                .running_jobs()
                .into_iter()
                .filter(|j| !paused.contains(j) && !stopped.contains(j))
                .filter_map(|j| jobs.running_typed(j).map(|c| (j, c)))
                .collect()
        });
        let healthy: BTreeSet<ContainerId> =
            self.cluster.healthy_containers().into_iter().collect();
        let containers: Vec<ContainerId> = self.task_managers.keys().copied().collect();
        for container in containers {
            if !healthy.contains(&container) {
                continue;
            }
            let events = self
                .task_managers
                .get_mut(&container)
                .expect("iterating keys")
                .refresh(snapshot.clone());
            self.handle_task_events(container, &events);
        }
    }

    /// One State Syncer reconciliation round.
    pub(crate) fn syncer_round(&mut self) {
        struct Env<'a> {
            paused: &'a mut BTreeSet<JobId>,
            task_service: &'a mut TaskService,
            task_managers: &'a BTreeMap<ContainerId, LocalTaskManager>,
            engine: &'a Engine,
            state_moves: &'a mut HashMap<JobId, SimTime>,
            dirty_jobs: &'a mut BTreeSet<JobId>,
            now: SimTime,
            state_move_bandwidth: f64,
        }
        impl SyncEnvironment for Env<'_> {
            fn request_stop(&mut self, job: JobId) {
                if self.paused.insert(job) {
                    self.task_service.invalidate();
                    self.dirty_jobs.insert(job);
                }
            }
            fn all_stopped(&mut self, job: JobId) -> bool {
                self.task_managers.values().all(|tm| !tm.runs_job(job))
            }
            fn redistribute_checkpoints(
                &mut self,
                job: JobId,
                _old: u32,
                _new: u32,
            ) -> Result<Redistribute, String> {
                // Checkpoints are keyed by (job, partition), so a
                // parallelism change re-maps ownership without moving
                // offsets; the barrier above guarantees no two tasks ever
                // own a partition concurrently. Stateful jobs additionally
                // move their state (≈1 KB per key) at the configured
                // bandwidth — real time during which the job stays paused.
                let stateful_bytes = self
                    .engine
                    .job(job)
                    .filter(|rt| rt.stateful)
                    .map(|rt| rt.key_cardinality * 1.0e3)
                    .unwrap_or(0.0);
                if stateful_bytes <= 0.0 {
                    return Ok(Redistribute::Done);
                }
                let done_at = *self.state_moves.entry(job).or_insert_with(|| {
                    self.now + Duration::from_secs_f64(stateful_bytes / self.state_move_bandwidth)
                });
                if self.now >= done_at {
                    self.state_moves.remove(&job);
                    Ok(Redistribute::Done)
                } else {
                    Ok(Redistribute::InProgress)
                }
            }
        }
        let mut env = Env {
            paused: &mut self.paused,
            task_service: &mut self.task_service,
            task_managers: &self.task_managers,
            engine: &self.engine,
            state_moves: &mut self.state_moves,
            dirty_jobs: &mut self.pending_dirty.jobs,
            now: self.now,
            state_move_bandwidth: self.config.state_move_bandwidth,
        };
        let report = if self.config.sparse_data_plane {
            self.syncer.run_round_sparse(&mut self.jobs, &mut env)
        } else {
            self.syncer.run_round(&mut self.jobs, &mut env)
        };
        self.metrics
            .sync_jobs_examined
            .add(report.jobs_examined as u64);
        // Everything the round touched is dirty for the next invariant
        // check: pause marks moved, quarantine membership or failure
        // counts changed, store rows advanced.
        for &job in report
            .started
            .iter()
            .chain(&report.simple)
            .chain(&report.complex_completed)
            .chain(&report.deleted)
            .chain(&report.quarantined)
            .chain(report.failed.iter().map(|(job, _)| job))
        {
            self.pending_dirty.jobs.insert(job);
        }
        if !report.quarantined.is_empty() || !report.failed.is_empty() {
            self.pending_dirty.quarantine = true;
        }
        let now = self.now;
        for (jobs, outcome) in [
            (&report.started, "started"),
            (&report.simple, "simple"),
            (&report.complex_completed, "complex_completed"),
            (&report.deleted, "deleted"),
        ] {
            for &job in jobs {
                self.trace
                    .emit(now, TraceData::SyncOutcome { job, outcome });
            }
        }
        for &job in &report.quarantined {
            self.trace.emit(now, TraceData::Quarantine { job });
        }
        let mut invalidate = report.total_changed() > 0;
        for &job in report
            .started
            .iter()
            .chain(&report.simple)
            .chain(&report.complex_completed)
        {
            self.paused.remove(&job);
            invalidate = true;
        }
        for &job in &report.deleted {
            self.paused.remove(&job);
            self.capacity_stopped.remove(&job);
            self.engine.remove_job(job);
            self.checkpoints.remove_job(job);
            self.categories.remove(&job);
            self.shard_manager.clear_standby(job);
            self.shadow.remove_job(job);
            self.outages.remove(&job);
            self.pending_dirty.standby = true;
            invalidate = true;
        }
        if invalidate {
            self.task_service.invalidate();
        }
        self.metrics.alerts.add(report.alerts.len() as u64);
    }

    /// One Auto Scaler evaluation round.
    pub(crate) fn scaler_round(&mut self) {
        let now = self.now;
        let window = now.since(self.last_scaler_drain).as_secs_f64().max(1.0);
        self.last_scaler_drain = now;
        if !self.config.scaler_enabled {
            // Still drain windows so a later enable starts fresh.
            for job in self.engine.job_ids() {
                let _ = self.engine.drain_window(job);
            }
            return;
        }
        let usage = self.engine.task_usage_map();
        for job in self.engine.job_ids() {
            if self.paused.contains(&job)
                || self.capacity_stopped.contains(&job)
                || self.syncer.is_quarantined(job)
            {
                let _ = self.engine.drain_window(job);
                continue;
            }
            let Ok(config) = self.jobs.expected_typed(job) else {
                continue;
            };
            if self.jobs.running_typed(job).is_none() {
                let _ = self.engine.drain_window(job);
                continue; // not started yet
            }
            let stats = self.engine.drain_window(job);
            let runtime = self.engine.job(job).expect("registered");
            let backlog = runtime.backlog();
            let key_cardinality = runtime.stateful.then_some(runtime.key_cardinality);
            let mut per_task_rates = Vec::new();
            let mut per_task_memory = Vec::new();
            for (id, task) in self.engine.tasks_of_job(job) {
                let processed = stats
                    .per_task
                    .iter()
                    .find(|(t, _)| t == id)
                    .map(|(_, v)| *v)
                    .unwrap_or(0.0);
                per_task_rates.push(processed / window);
                per_task_memory.push(task.memory_usage_mb);
            }
            // Symptom inputs flow through the ODS registry when it is on:
            // publish, then read the identical `f64`s back — every scaler
            // decision is driven by the same uniform metrics plane the
            // operator console reads, at zero behavioral drift.
            let (input_rate, processing_rate, total_bytes_lagged) = if self.config.ods_enabled {
                self.ods_scaler_roundtrip(
                    job,
                    now,
                    stats.arrived / window,
                    stats.processed / window,
                    backlog,
                )
            } else {
                (stats.arrived / window, stats.processed / window, backlog)
            };
            let metrics = JobMetrics {
                input_rate,
                processing_rate,
                total_bytes_lagged,
                per_task_rates,
                per_task_memory_mb: per_task_memory,
                oom_events: stats.ooms,
                task_count: config.task_count,
                threads_per_task: config.threads_per_task,
                reserved: config.task_resources,
                key_cardinality,
            };
            // Track releases (for the root-causer's bad-update rule).
            match self.releases.get(&job) {
                Some(&(current, _, _)) if current != config.package.version => {
                    self.releases
                        .insert(job, (config.package.version, current, now));
                }
                None => {
                    self.releases
                        .insert(job, (config.package.version, config.package.version, now));
                }
                _ => {}
            }
            let decision = self.scaler.evaluate(job, &metrics, &config, now);
            // Track lag episodes.
            let lagging = decision
                .symptoms
                .iter()
                .any(|s| matches!(s, turbine_autoscaler::Symptom::Lagging { .. }));
            if lagging {
                self.lag_since.entry(job).or_insert(now);
            } else {
                self.lag_since.remove(&job);
            }
            // The root-causer watches every lagging job independently of
            // the scaler: a single-task hardware anomaly must be moved,
            // not scaled around — scaling would both waste capacity and
            // accidentally mask the sick host.
            let mut action = decision.action;
            let mut diagnose = false;
            if lagging {
                let window = now.since(self.last_scaler_drain).as_secs_f64().max(1.0);
                let _ = window;
                // Hardware diagnosis needs a *stable* measurement window:
                // a task (re)started mid-window shows a near-zero rate and
                // would be misdiagnosed as a sick host.
                let window_start = now - self.config.scaler_interval;
                let stable_window = self
                    .engine
                    .tasks_of_job(job)
                    .all(|(_, t)| t.started_at <= window_start);
                let hardware = if stable_window {
                    let per_task_rates = self.per_task_rates(job, &stats.per_task);
                    self.root_causer.hardware_anomaly(&metrics, &per_task_rates)
                } else {
                    None
                };
                let recently_diagnosed = self
                    .last_diagnosis
                    .get(&job)
                    .is_some_and(|&at| now.since(at) < Duration::from_mins(10));
                if (hardware.is_some() || decision.untriaged.is_some()) && !recently_diagnosed {
                    self.last_diagnosis.insert(job, now);
                    diagnose = true;
                    if hardware.is_some() {
                        // The move is the mitigation; do not also scale.
                        action = None;
                    }
                }
            }
            // Trace the symptom hop only when it is consequential (an
            // action or diagnosis follows): its cause is the activation
            // edge of a stall on the job's input category if one is
            // active, the scaler round's span otherwise.
            let symptom_id = if (action.is_some() || diagnose) && !decision.symptoms.is_empty() {
                let description = decision.symptoms[0].describe();
                let data = TraceData::Symptom { job, description };
                match self
                    .categories
                    .get(&job)
                    .and_then(|cat| self.trace.fault_cause(&format!("scribe_stall({cat})")))
                {
                    Some(root) => self.trace.emit_caused(now, data, Some(root)),
                    None => self.trace.emit(now, data),
                }
            } else {
                None
            };
            if let Some(id) = symptom_id {
                self.trace.push_cause(id);
            }
            if diagnose {
                self.diagnose_untriaged(job, &metrics, &stats.per_task, now);
            }
            if decision.untriaged.is_some() {
                self.metrics.alerts.incr();
            }
            if let Some(action) = action {
                self.apply_scaling_action(job, &config, action);
            }
            if symptom_id.is_some() {
                self.trace.pop_cause();
            }
        }
        let _ = usage;
    }

    /// Per-task processing rates over the last scaler window.
    fn per_task_rates(
        &self,
        job: JobId,
        per_task_window: &[(turbine_types::TaskId, f64)],
    ) -> Vec<(turbine_types::TaskId, f64)> {
        let window = self.config.scaler_interval.as_secs_f64();
        self.engine
            .tasks_of_job(job)
            .map(|(&id, _)| {
                let processed = per_task_window
                    .iter()
                    .find(|(t, _)| *t == id)
                    .map(|(_, v)| *v)
                    .unwrap_or(0.0);
                (id, processed / window)
            })
            .collect()
    }

    /// Run the auto root-causer on an untriaged problem, record the
    /// diagnosis, and apply the safe automated mitigation (task moves for
    /// hardware issues; everything else stays a recommendation).
    fn diagnose_untriaged(
        &mut self,
        job: JobId,
        metrics: &JobMetrics,
        per_task_window: &[(turbine_types::TaskId, f64)],
        now: SimTime,
    ) {
        let per_task_rates = self.per_task_rates(job, per_task_window);
        let diagnosis = self.root_causer.diagnose(&DiagnosisInput {
            metrics,
            per_task_rates: &per_task_rates,
            expected_per_thread: self.scaler.throughput_estimate(job).unwrap_or(0.0),
            last_release: self.releases.get(&job).copied(),
            lag_since: self.lag_since.get(&job).copied(),
            now,
        });
        let trace_id = self.trace.emit(
            now,
            TraceData::Diagnosis {
                job,
                cause: diagnosis.cause.label().to_string(),
                mitigation: diagnosis.mitigation.describe(),
                rationale: diagnosis.rationale.clone(),
            },
        );
        if let Mitigation::MoveTask(task) = diagnosis.mitigation {
            // The move's cause is the diagnosis that mandated it.
            if let Some(id) = trace_id {
                self.trace.push_cause(id);
            }
            self.move_task_shard(task);
            if trace_id.is_some() {
                self.trace.pop_cause();
            }
        }
        self.metrics.diagnoses.push(DiagnosisRecord {
            at: now,
            job,
            cause: diagnosis.cause,
            mitigation: diagnosis.mitigation,
            rationale: diagnosis.rationale,
            trace: trace_id,
        });
    }

    /// Move one task's shard to a different alive container (root-causer
    /// mitigation for hardware issues).
    fn move_task_shard(&mut self, task: turbine_types::TaskId) {
        let shard = turbine_taskmgr::shard_of_task(task, self.config.shard_count);
        let from = self.shard_manager.container_of(shard);
        let target = self
            .shard_manager
            .alive_containers()
            .into_iter()
            .find(|&c| Some(c) != from);
        if let Some(to) = target {
            if let Some(movement) = self.shard_manager.move_shard(shard, to) {
                self.trace
                    .emit(self.now, TraceData::ShardMove { shard, to });
                self.apply_movements(&[movement]);
            }
        }
    }

    /// Write one scaler decision to the Job Store's scaler config level.
    fn apply_scaling_action(&mut self, job: JobId, config: &JobConfig, action: ScalingAction) {
        self.metrics.scaling_actions.incr();
        self.trace.emit(
            self.now,
            TraceData::ScalingAction {
                job,
                action: action.describe(),
            },
        );
        match action {
            ScalingAction::RebalanceInput => {
                if let Some(rt) = self.engine.job_mut(job) {
                    let n = rt.partition_weights.len();
                    rt.partition_weights = vec![1.0 / n as f64; n];
                }
            }
            ScalingAction::Vertical {
                threads_per_task,
                per_task,
            } => {
                let result = self
                    .jobs
                    .update_level(job, ConfigLevel::Scaler, move |cfg| {
                        cfg.insert("threads_per_task", threads_per_task.into());
                        cfg.insert_path("resources.cpu", per_task.cpu.into());
                        cfg.insert_path("resources.memory_mb", per_task.memory_mb.into());
                        cfg.insert_path("resources.disk_mb", per_task.disk_mb.into());
                        cfg.insert_path("resources.network_mbps", per_task.network_mbps.into());
                    });
                debug_assert!(result.is_ok());
            }
            ScalingAction::Horizontal {
                task_count,
                per_task,
            } => {
                // Parallelism can never exceed the input partition count.
                let count = task_count.clamp(1, config.input_partitions);
                let result = self
                    .jobs
                    .update_level(job, ConfigLevel::Scaler, move |cfg| {
                        cfg.insert("task_count", count.into());
                        cfg.insert_path("resources.cpu", per_task.cpu.into());
                        cfg.insert_path("resources.memory_mb", per_task.memory_mb.into());
                        cfg.insert_path("resources.disk_mb", per_task.disk_mb.into());
                        cfg.insert_path("resources.network_mbps", per_task.network_mbps.into());
                    });
                debug_assert!(result.is_ok());
            }
        }
    }

    /// Task Manager load reports to the Shard Manager. In sparse mode only
    /// containers whose reports could have moved re-report: those whose
    /// ownership or task set changed, plus every container hosting a task
    /// of a job whose engine state changed. A skipped container's previous
    /// report is still current (`report_load` is a pure overwrite), so the
    /// Shard Manager sees the same load map either way.
    pub(crate) fn load_report_round(&mut self) {
        self.drain_engine_dirty();
        let usage = self.engine.task_usage_map();
        if self.config.sparse_data_plane {
            let jobs = std::mem::take(&mut self.load_dirty_jobs);
            let mut containers = std::mem::take(&mut self.load_dirty_containers);
            for job in jobs {
                for (_, task) in self.engine.tasks_of_job(job) {
                    containers.insert(task.container);
                }
            }
            self.metrics.load_reports_sent.add(containers.len() as u64);
            for container in containers {
                let Some(tm) = self.task_managers.get(&container) else {
                    continue;
                };
                for (shard, load) in tm.aggregate_shard_loads(&usage) {
                    self.shard_manager.report_load(shard, load);
                }
            }
        } else {
            self.metrics
                .load_reports_sent
                .add(self.task_managers.len() as u64);
            for tm in self.task_managers.values() {
                for (shard, load) in tm.aggregate_shard_loads(&usage) {
                    self.shard_manager.report_load(shard, load);
                }
            }
        }
    }

    /// Cluster-wide load-balancing rebalance.
    pub(crate) fn rebalance_round(&mut self) {
        let result = self.shard_manager.rebalance();
        if !result.moves.is_empty() {
            self.trace.emit(
                self.now,
                TraceData::RebalancePlan {
                    moves: result.moves.len(),
                },
            );
        }
        self.apply_movements(&result.moves);
    }

    /// One Capacity Manager evaluation round.
    pub(crate) fn capacity_round(&mut self) {
        let total_reserved: Resources = self
            .jobs
            .store()
            .running_jobs()
            .into_iter()
            .filter_map(|j| self.jobs.running_typed(j))
            .map(|c| c.task_resources.scale(c.task_count as f64))
            .sum();
        let job_list: Vec<(JobId, turbine_types::Priority, Resources)> = self
            .jobs
            .store()
            .running_jobs()
            .into_iter()
            .filter_map(|j| {
                self.jobs
                    .running_typed(j)
                    .map(|c| (j, c.priority, c.task_resources.scale(c.task_count as f64)))
            })
            .collect();
        self.capacity
            .register_cluster("primary", self.cluster.total_healthy_capacity());
        let directive = self.capacity.evaluate("primary", total_reserved, &job_list);
        self.scaler.set_priority_floor(directive.priority_floor);
        if !directive.jobs_to_stop.is_empty() {
            for job in directive.jobs_to_stop {
                if self.capacity_stopped.insert(job) {
                    self.metrics.alerts.incr();
                }
                self.pending_dirty.jobs.insert(job);
            }
            self.task_service.invalidate();
        } else if directive.priority_floor.is_none() && !self.capacity_stopped.is_empty() {
            // Pressure cleared: resume capacity-stopped jobs.
            self.pending_dirty
                .jobs
                .extend(self.capacity_stopped.iter().copied());
            self.capacity_stopped.clear();
            self.task_service.invalidate();
        }
    }

    /// Durability sync: flush processed offsets to the checkpoint store,
    /// then advance the shadow cursors of warm standbys — they tail their
    /// job's input alongside the primary but never write the checkpoint
    /// store.
    pub(crate) fn checkpoint_round(&mut self) {
        // Destructure so the category lookup borrows the map in place —
        // no per-round clone of every category name.
        let Turbine {
            engine,
            scribe,
            checkpoints,
            categories,
            now,
            ..
        } = self;
        let lookup = |job: JobId| categories.get(&job).cloned().unwrap_or_default();
        engine.sync_durable(*now, scribe, checkpoints, &lookup);
        let shadowed: Vec<JobId> = self.shard_manager.standbys().map(|(job, _)| job).collect();
        for job in shadowed {
            let Some(category) = self.categories.get(&job) else {
                continue;
            };
            let partitions = self
                .engine
                .job(job)
                .map(|rt| rt.partition_count())
                .unwrap_or(0);
            for i in 0..partitions {
                let partition = PartitionId(i as u64);
                if let Ok(tail) = self.scribe.tail_offset(category, partition) {
                    self.shadow.observe(job, partition, tail);
                }
            }
        }
    }

    /// One metric-sampling round.
    pub(crate) fn metrics_round(&mut self) {
        let now = self.now;
        // Cluster traffic (pure function of the models: cheap).
        let traffic: f64 = self
            .engine
            .job_ids()
            .iter()
            .filter_map(|&j| self.engine.job(j))
            .map(|rt| rt.traffic.arrival_rate(now))
            .sum();
        self.metrics.cluster_traffic.record(now, traffic);
        self.metrics
            .task_count
            .record(now, self.engine.total_tasks() as f64);

        // Host utilization bands.
        let usage = self.engine.task_usage_map();
        let mut per_container: HashMap<ContainerId, Resources> = HashMap::new();
        for (id, task) in self.engine.tasks() {
            let u = usage.get(id).copied().unwrap_or(Resources::ZERO);
            *per_container.entry(task.container).or_default() += u;
        }
        let mut cpu_samples = Vec::new();
        let mut mem_samples = Vec::new();
        for container in self.cluster.healthy_containers() {
            let cap = self
                .cluster
                .container_capacity(container)
                .expect("healthy container");
            let used = per_container
                .get(&container)
                .copied()
                .unwrap_or(Resources::ZERO);
            if cap.cpu > 0.0 {
                cpu_samples.push((used.cpu / cap.cpu).min(1.0));
            }
            if cap.memory_mb > 0.0 {
                mem_samples.push((used.memory_mb / cap.memory_mb).min(1.0));
            }
        }
        if !cpu_samples.is_empty() {
            self.metrics.host_cpu.record(now, &cpu_samples);
            self.metrics.host_memory.record(now, &mem_samples);
        }

        // Per-job lag + SLO compliance.
        let mut ok = 0usize;
        let mut total = 0usize;
        let mut total_backlog = 0.0;
        let mut ods_jobs: Vec<super::ods::JobSample> = Vec::new();
        let watched: Vec<JobId> = self.metrics.watched_job_lag.keys().copied().collect();
        for job in self.engine.job_ids() {
            let Some(rt) = self.engine.job(job) else {
                continue;
            };
            let backlog = rt.backlog();
            total_backlog += backlog;
            let Ok(config) = self.jobs.expected_typed(job) else {
                continue;
            };
            // Lag relative to sustained processing capability: use the
            // arrival rate as the denominator when the job keeps up.
            let rate = rt.traffic.arrival_rate(now).max(1.0);
            let lag_secs = backlog / rate;
            total += 1;
            if lag_secs <= config.slo_lag_secs {
                ok += 1;
            }
            if self.config.ods_enabled {
                ods_jobs.push(super::ods::JobSample {
                    job,
                    lag_secs,
                    backlog_bytes: backlog,
                    running_tasks: self.engine.running_tasks_of(job),
                });
            }
            if watched.contains(&job) {
                self.metrics
                    .watched_job_lag
                    .get_mut(&job)
                    .expect("watched")
                    .record(now, lag_secs);
                self.metrics
                    .watched_job_tasks
                    .get_mut(&job)
                    .expect("watched")
                    .record(now, self.engine.running_tasks_of(job) as f64);
            }
        }
        let slo_frac = (total > 0).then(|| ok as f64 / total as f64);
        if let Some(frac) = slo_frac {
            self.metrics.slo_ok_fraction.record(now, frac);
        }
        self.metrics.total_backlog.record(now, total_backlog);

        // Reserved footprint (Fig. 10).
        let mut reserved_cpu = 0.0;
        let mut reserved_mem = 0.0;
        for job in self.jobs.store().running_jobs() {
            if let Some(c) = self.jobs.running_typed(job) {
                reserved_cpu += c.task_resources.cpu * c.task_count as f64;
                reserved_mem += c.task_resources.memory_mb * c.task_count as f64;
            }
        }
        self.metrics.reserved_cpu.record(now, reserved_cpu);
        self.metrics.reserved_memory_mb.record(now, reserved_mem);

        // ODS publication + alert evaluation last: the registry sees this
        // round's observations, then rules are evaluated against them on
        // the same grid instant in every drive mode.
        if self.config.ods_enabled {
            self.ods_metrics_publish(
                now,
                super::ods::MetricsRoundSample {
                    traffic,
                    cpu_samples: &cpu_samples,
                    mem_samples: &mem_samples,
                    jobs: &ods_jobs,
                    total_backlog,
                    slo_ok_fraction: slo_frac,
                },
            );
            self.ods_evaluate_alerts(now);
        }
    }

    /// Apply shard movements: DROP_SHARD on the source before ADD_SHARD on
    /// the destination — a shard must never run in two containers at once.
    pub(crate) fn apply_movements(&mut self, moves: &[ShardMovement]) {
        for m in moves {
            self.metrics.shard_moves.incr();
            // Ownership changes even when no tasks move (empty shards):
            // both endpoints must re-report loads, and the distributed
            // invariant scope must re-scan.
            self.pending_dirty.distributed = true;
            if let Some(from) = m.from {
                self.load_dirty_containers.insert(from);
            }
            self.load_dirty_containers.insert(m.to);
            if let Some(from) = m.from {
                let events = self
                    .task_managers
                    .get_mut(&from)
                    .map(|tm| tm.drop_shard(m.shard))
                    .unwrap_or_default();
                self.handle_task_events(from, &events);
            }
            let events = self
                .task_managers
                .get_mut(&m.to)
                .map(|tm| tm.add_shard(m.shard))
                .unwrap_or_default();
            self.handle_task_events(m.to, &events);
        }
    }

    /// Apply a promotion's shard movements. Same DROP-before-ADD protocol
    /// as [`Self::apply_movements`], but tasks landing on the standby start
    /// without the cold restart delay: the standby was already
    /// shadow-consuming the job's input, so its tasks resume warm.
    pub(crate) fn apply_promotion(&mut self, moves: &[ShardMovement]) {
        for m in moves {
            self.metrics.shard_moves.incr();
            self.pending_dirty.distributed = true;
            if let Some(from) = m.from {
                self.load_dirty_containers.insert(from);
            }
            self.load_dirty_containers.insert(m.to);
            if let Some(from) = m.from {
                let events = self
                    .task_managers
                    .get_mut(&from)
                    .map(|tm| tm.drop_shard(m.shard))
                    .unwrap_or_default();
                self.handle_task_events(from, &events);
            }
            let events = self
                .task_managers
                .get_mut(&m.to)
                .map(|tm| tm.add_shard(m.shard))
                .unwrap_or_default();
            self.handle_task_events_delayed(m.to, &events, Duration::ZERO);
        }
    }

    /// Record task lifecycle events from a Task Manager into the engine
    /// and the platform counters.
    pub(crate) fn handle_task_events(&mut self, container: ContainerId, events: &[TaskEvent]) {
        self.handle_task_events_delayed(container, events, self.config.restart_delay);
    }

    fn handle_task_events_delayed(
        &mut self,
        container: ContainerId,
        events: &[TaskEvent],
        restart_delay: Duration,
    ) {
        if !events.is_empty() {
            // Task starts/stops move the distributed-state picture and
            // this container's shard loads (the engine marks the affected
            // jobs itself).
            self.pending_dirty.distributed = true;
            self.load_dirty_containers.insert(container);
        }
        for event in events {
            match event {
                TaskEvent::Started(spec) => {
                    self.metrics.task_starts.incr();
                    self.engine
                        .task_started(spec, container, self.now, restart_delay);
                    self.evict_conflicting_standby(spec.id.job, container);
                }
                TaskEvent::Restarted(spec) => {
                    self.metrics.task_restarts.incr();
                    self.engine
                        .task_started(spec, container, self.now, restart_delay);
                    self.evict_conflicting_standby(spec.id.job, container);
                }
                TaskEvent::Stopped(id) => {
                    self.metrics.task_stops.incr();
                    self.engine.task_stopped(*id, container);
                }
            }
        }
    }

    /// A primary task just landed on `container`: if the job's standby
    /// lives on the same host (e.g. a scale-up placed a shard there), the
    /// registration is no longer isolated and is dropped eagerly — the
    /// next fail-over check places a fresh standby elsewhere.
    fn evict_conflicting_standby(&mut self, job: JobId, container: ContainerId) {
        let Some(standby) = self.shard_manager.standby_of(job) else {
            return;
        };
        let same_host = standby == container
            || matches!(
                (self.cluster.host_of(standby), self.cluster.host_of(container)),
                (Ok(a), Ok(b)) if a == b
            );
        if same_host {
            self.shard_manager.clear_standby(job);
            self.shadow.remove_job(job);
            self.pending_dirty.standby = true;
        }
    }
}
