//! The Turbine platform: all control-plane components wired together and
//! driven in simulated time.
//!
//! Production cadences (paper values) are the defaults: State Syncer every
//! 30 s, Task Manager refresh every 60 s with a 90 s Task Service cache,
//! heartbeats with a 40 s proactive connection timeout and 60 s fail-over,
//! load reports every 10 min, cluster-wide rebalance every 30 min.

use crate::engine::Engine;
use crate::invariants::{InvariantChecker, InvariantConfig, InvariantView, Violation};
use crate::metrics::PlatformMetrics;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use turbine_autoscaler::{
    AutoScaler, CapacityManager, CapacityManagerConfig, DiagnosisInput, JobMetrics, Mitigation,
    RootCauser, ScalerConfig, ScalingAction,
};
use turbine_cluster::Cluster;
use turbine_config::{ConfigLevel, ConfigValue, JobConfig};
use turbine_jobstore::{JobService, JobStore, MemWal};
use turbine_scribe::{CheckpointStore, Scribe};
use turbine_shardmgr::{ShardManager, ShardManagerConfig, ShardMovement};
use turbine_sim::{Fault, FaultInjector, FaultPlan, FaultTransition, Periodic, SimRng};
use turbine_statesyncer::{Redistribute, StateSyncer, SyncEnvironment, SyncerConfig};
use turbine_taskmgr::{LocalTaskManager, TaskEvent, TaskService};
use turbine_types::{ContainerId, Duration, HostId, JobId, Resources, SimTime};
use turbine_workloads::TrafficModel;

/// Platform configuration. Defaults are the paper's production values.
#[derive(Debug, Clone)]
pub struct TurbineConfig {
    /// Simulation tick (must not exceed the smallest cadence).
    pub tick: Duration,
    /// Shards in the tier.
    pub shard_count: u64,
    /// Fraction of each host handed to its Turbine container.
    pub container_fraction: f64,
    /// State Syncer round interval (paper: 30 s).
    pub sync_interval: Duration,
    /// Task Manager snapshot refresh interval (paper: 60 s).
    pub tm_refresh_interval: Duration,
    /// Task Service snapshot cache TTL (paper: 90 s).
    pub task_service_ttl: Duration,
    /// Heartbeat interval from Task Managers to the Shard Manager.
    pub heartbeat_interval: Duration,
    /// Proactive connection timeout after which a disconnected container
    /// reboots itself (paper: 40 s — before the 60 s fail-over).
    pub connection_timeout: Duration,
    /// Load-report interval from Task Managers (paper: every 10 min).
    pub load_report_interval: Duration,
    /// Shard Manager rebalance interval (paper: 30 min for most tiers).
    pub rebalance_interval: Duration,
    /// Auto Scaler evaluation interval.
    pub scaler_interval: Duration,
    /// Capacity Manager evaluation interval.
    pub capacity_interval: Duration,
    /// Metric sampling interval.
    pub metrics_interval: Duration,
    /// Checkpoint/Scribe durability sync interval.
    pub checkpoint_interval: Duration,
    /// Downtime a task suffers when (re)started.
    pub restart_delay: Duration,
    /// Bandwidth at which stateful jobs' state is moved during complex
    /// synchronizations, bytes/sec. Stateless jobs redistribute instantly
    /// (checkpoints are per-partition; nothing moves).
    pub state_move_bandwidth: f64,
    /// State Syncer tunables.
    pub syncer: SyncerConfig,
    /// Auto Scaler tunables.
    pub scaler: ScalerConfig,
    /// Shard Manager tunables.
    pub shardmgr: ShardManagerConfig,
    /// Capacity Manager tunables.
    pub capacity: CapacityManagerConfig,
    /// Master switch for the Auto Scaler (ablations).
    pub scaler_enabled: bool,
    /// Master switch for load-balancing rebalances (ablations; fail-over
    /// stays on).
    pub load_balancing_enabled: bool,
}

impl Default for TurbineConfig {
    fn default() -> Self {
        TurbineConfig {
            tick: Duration::from_secs(10),
            shard_count: 1024,
            container_fraction: 0.8,
            sync_interval: Duration::from_secs(30),
            tm_refresh_interval: Duration::from_secs(60),
            task_service_ttl: Duration::from_secs(90),
            heartbeat_interval: Duration::from_secs(10),
            connection_timeout: Duration::from_secs(40),
            load_report_interval: Duration::from_mins(10),
            rebalance_interval: Duration::from_mins(30),
            scaler_interval: Duration::from_mins(2),
            capacity_interval: Duration::from_mins(5),
            metrics_interval: Duration::from_mins(1),
            checkpoint_interval: Duration::from_secs(60),
            restart_delay: Duration::from_secs(10),
            state_move_bandwidth: 256.0e6,
            syncer: SyncerConfig::default(),
            scaler: ScalerConfig::default(),
            shardmgr: ShardManagerConfig::default(),
            capacity: CapacityManagerConfig::default(),
            scaler_enabled: true,
            load_balancing_enabled: true,
        }
    }
}

/// Point-in-time status of one job, for experiments and assertions.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// Task count in the merged expected configuration.
    pub expected_tasks: u32,
    /// Task count in the running configuration (0 if not yet started).
    pub running_config_tasks: u32,
    /// Tasks actually executing in containers.
    pub running_tasks: usize,
    /// Current backlog in bytes.
    pub backlog_bytes: f64,
    /// Whether the job is paused for a complex synchronization.
    pub paused: bool,
    /// Whether the State Syncer quarantined the job.
    pub quarantined: bool,
}

#[derive(Debug, Clone, Copy)]
struct SeveredState {
    at: SimTime,
    rebooted: bool,
}

/// The Turbine platform.
pub struct Turbine {
    config: TurbineConfig,
    now: SimTime,
    /// The cluster substrate (public for experiment scripting).
    pub cluster: Cluster,
    /// The Scribe substrate (public for inspection).
    pub scribe: Scribe,
    /// Recorded metrics (public for experiment output).
    pub metrics: PlatformMetrics,
    jobs: JobService<MemWal>,
    syncer: StateSyncer,
    task_service: TaskService,
    shard_manager: ShardManager,
    task_managers: BTreeMap<ContainerId, LocalTaskManager>,
    scaler: AutoScaler,
    capacity: CapacityManager,
    checkpoints: CheckpointStore,
    engine: Engine,
    paused: BTreeSet<JobId>,
    capacity_stopped: BTreeSet<JobId>,
    /// In-flight state moves for stateful complex syncs: job → completion
    /// time.
    state_moves: HashMap<JobId, SimTime>,
    /// Mean time between random task crashes; `None` disables injection.
    crash_mtbf: Option<Duration>,
    rng: SimRng,
    root_causer: RootCauser,
    /// Per-job release tracking for the root-causer:
    /// (current version, previous version, changed at).
    releases: HashMap<JobId, (u64, u64, SimTime)>,
    /// Start of the ongoing lag episode per job.
    lag_since: HashMap<JobId, SimTime>,
    /// Last diagnosis time per job (debounce).
    last_diagnosis: HashMap<JobId, SimTime>,
    severed: HashMap<ContainerId, SeveredState>,
    categories: BTreeMap<JobId, String>,
    /// The chaos engine: scheduled/active cross-component faults.
    faults: FaultInjector,
    /// Continuous invariant checking (enabled for chaos runs).
    invariants: Option<InvariantChecker>,
    // Schedules.
    sched_sync: Periodic,
    sched_tm_refresh: Periodic,
    sched_heartbeat: Periodic,
    sched_load_report: Periodic,
    sched_rebalance: Periodic,
    sched_scaler: Periodic,
    sched_capacity: Periodic,
    sched_metrics: Periodic,
    sched_checkpoint: Periodic,
    last_scaler_drain: SimTime,
}

impl Turbine {
    /// A platform with no hosts or jobs yet.
    pub fn new(config: TurbineConfig) -> Self {
        let smallest = config
            .sync_interval
            .min(config.tm_refresh_interval)
            .min(config.heartbeat_interval);
        assert!(
            config.tick <= smallest,
            "tick must not exceed the smallest control cadence"
        );
        let mut task_service = TaskService::with_ttl(config.task_service_ttl, config.shard_count);
        task_service.invalidate();
        let mut shard_manager = ShardManager::new(config.shardmgr);
        shard_manager.ensure_shards(config.shard_count);
        let mut capacity = CapacityManager::new(config.capacity);
        capacity.register_cluster("primary", Resources::ZERO);
        Turbine {
            now: SimTime::ZERO,
            cluster: Cluster::new(),
            scribe: Scribe::new(),
            metrics: PlatformMetrics::default(),
            jobs: JobService::new(JobStore::new(MemWal::new())),
            syncer: StateSyncer::new(config.syncer),
            task_service,
            shard_manager,
            task_managers: BTreeMap::new(),
            scaler: AutoScaler::new(config.scaler),
            capacity,
            checkpoints: CheckpointStore::new(),
            engine: Engine::new(),
            paused: BTreeSet::new(),
            capacity_stopped: BTreeSet::new(),
            state_moves: HashMap::new(),
            crash_mtbf: None,
            rng: SimRng::seeded(0x0C2A_54E5),
            root_causer: RootCauser::default(),
            releases: HashMap::new(),
            lag_since: HashMap::new(),
            last_diagnosis: HashMap::new(),
            severed: HashMap::new(),
            categories: BTreeMap::new(),
            faults: FaultInjector::new(),
            invariants: None,
            sched_sync: Periodic::every(config.sync_interval),
            sched_tm_refresh: Periodic::every(config.tm_refresh_interval),
            sched_heartbeat: Periodic::with_phase(config.heartbeat_interval, Duration::ZERO),
            sched_load_report: Periodic::every(config.load_report_interval),
            sched_rebalance: Periodic::every(config.rebalance_interval),
            sched_scaler: Periodic::every(config.scaler_interval),
            sched_capacity: Periodic::every(config.capacity_interval),
            sched_metrics: Periodic::every(config.metrics_interval),
            sched_checkpoint: Periodic::every(config.checkpoint_interval),
            last_scaler_drain: SimTime::ZERO,
            config,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The configuration in effect.
    pub fn config(&self) -> &TurbineConfig {
        &self.config
    }

    /// Read access to the Shard Manager (tests, invariant checks).
    pub fn shard_manager(&self) -> &ShardManager {
        &self.shard_manager
    }

    /// Read access to the per-container local Task Managers.
    pub fn task_managers(&self) -> &BTreeMap<ContainerId, LocalTaskManager> {
        &self.task_managers
    }

    /// Read access to the State Syncer.
    pub fn state_syncer(&self) -> &StateSyncer {
        &self.syncer
    }

    /// Read access to the data-plane engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Jobs currently paused for a complex synchronization.
    pub fn paused_jobs(&self) -> &BTreeSet<JobId> {
        &self.paused
    }

    /// Add `n` hosts, allocate one Turbine container on each, register the
    /// containers with the Shard Manager, and start a local Task Manager
    /// in each. Returns the host ids.
    pub fn add_hosts(&mut self, n: usize, capacity: Resources) -> Vec<HostId> {
        let hosts = self.cluster.add_hosts(n, capacity);
        for &host in &hosts {
            let cap = capacity.scale(self.config.container_fraction);
            let container = self
                .cluster
                .allocate_container(host, cap)
                .expect("fresh host has capacity");
            self.shard_manager.register_container(container, cap, self.now);
            self.task_managers.insert(
                container,
                LocalTaskManager::new(container, self.config.shard_count),
            );
        }
        self.capacity
            .register_cluster("primary", self.cluster.total_healthy_capacity());
        // Fast initial scheduling: place shards on the new containers now
        // rather than waiting for the next periodic rebalance.
        let result = self.shard_manager.rebalance();
        self.apply_movements(&result.moves);
        hosts
    }

    /// Provision a stateless job with its data-plane model. Creates the
    /// input Scribe category, registers the job with the Job Service, and
    /// hands its runtime to the engine. Tasks start once the State Syncer
    /// commits the first running configuration and Task Managers pick up
    /// the specs (1–2 minutes of simulated time).
    pub fn provision_job(
        &mut self,
        job: JobId,
        config: JobConfig,
        traffic: TrafficModel,
        true_per_thread_rate: f64,
        avg_message_bytes: f64,
    ) -> Result<(), String> {
        self.provision_job_inner(job, config, traffic, true_per_thread_rate, avg_message_bytes, 0.0)
    }

    /// Provision a stateful job (aggregation/join) with a state key
    /// cardinality driving its memory model.
    pub fn provision_stateful_job(
        &mut self,
        job: JobId,
        mut config: JobConfig,
        traffic: TrafficModel,
        true_per_thread_rate: f64,
        avg_message_bytes: f64,
        key_cardinality: f64,
    ) -> Result<(), String> {
        config.stateful = true;
        self.provision_job_inner(
            job,
            config,
            traffic,
            true_per_thread_rate,
            avg_message_bytes,
            key_cardinality,
        )
    }

    fn provision_job_inner(
        &mut self,
        job: JobId,
        config: JobConfig,
        traffic: TrafficModel,
        true_per_thread_rate: f64,
        avg_message_bytes: f64,
        key_cardinality: f64,
    ) -> Result<(), String> {
        if self.job_store_down() {
            return Err("job store unavailable".to_string());
        }
        self.scribe
            .create_category(&config.input_category, config.input_partitions)
            .map_err(|e| e.to_string())?;
        self.categories.insert(job, config.input_category.clone());
        let stateful = config.stateful;
        let partitions = config.input_partitions;
        self.jobs.provision(job, &config).map_err(|e| e.to_string())?;
        self.engine.add_job(
            job,
            traffic,
            true_per_thread_rate,
            avg_message_bytes,
            partitions,
            stateful,
            key_cardinality,
        );
        self.task_service.invalidate();
        Ok(())
    }

    /// Request deletion of a job; the State Syncer winds it down.
    pub fn delete_job(&mut self, job: JobId) -> Result<(), String> {
        if self.job_store_down() {
            return Err("job store unavailable".to_string());
        }
        self.jobs
            .store_mut()
            .delete_job(job)
            .map_err(|e| e.to_string())
    }

    /// Status snapshot of one job.
    pub fn job_status(&self, job: JobId) -> Option<JobStatus> {
        let expected_tasks = self.jobs.expected_typed(job).map(|c| c.task_count).unwrap_or(0);
        let running_config_tasks = self
            .jobs
            .running_typed(job)
            .map(|c| c.task_count)
            .unwrap_or(0);
        let runtime = self.engine.job(job)?;
        Some(JobStatus {
            expected_tasks,
            running_config_tasks,
            running_tasks: self.engine.running_tasks_of(job),
            backlog_bytes: runtime.backlog(),
            paused: self.paused.contains(&job),
            quarantined: self.syncer.is_quarantined(job),
        })
    }

    /// The Job Service (operator interventions write Oncall-level configs
    /// through it).
    pub fn job_service_mut(&mut self) -> &mut JobService<MemWal> {
        &mut self.jobs
    }

    /// Where every active task currently runs — for placement-quality
    /// analyses (Fig. 6c's tasks-per-host spread).
    pub fn task_placements(&self) -> Vec<(turbine_types::TaskId, ContainerId)> {
        self.engine
            .tasks()
            .map(|(&id, task)| (id, task.container))
            .collect()
    }

    /// All jobs known to the data plane.
    pub fn job_ids(&self) -> Vec<JobId> {
        self.engine.job_ids()
    }

    /// A job's configured lag SLO in seconds, if its config decodes.
    pub fn job_slo_secs(&self, job: JobId) -> Option<f64> {
        self.jobs.expected_typed(job).ok().map(|c| c.slo_lag_secs)
    }

    /// Current arrival rate of a job's input, bytes/sec.
    pub fn job_arrival_rate(&self, job: JobId) -> Option<f64> {
        self.engine.job(job).map(|rt| rt.traffic.arrival_rate(self.now))
    }

    /// Mutate a job's traffic model mid-experiment (storms, spikes).
    pub fn with_job_traffic(&mut self, job: JobId, f: impl FnOnce(&mut TrafficModel)) {
        if let Some(rt) = self.engine.job_mut(job) {
            f(&mut rt.traffic);
        }
    }

    /// Degrade (or restore) a job's true per-thread processing rate —
    /// models dependency failures and slow sinks, where adding capacity
    /// does not help (the paper's "untriaged problems", §V-D).
    pub fn with_job_true_rate(&mut self, job: JobId, rate: f64) {
        assert!(rate > 0.0);
        if let Some(rt) = self.engine.job_mut(job) {
            rt.true_per_thread_rate = rate;
        }
    }

    /// Skew a job's partition arrival weights (imbalance injection).
    pub fn skew_job_input(&mut self, job: JobId, weights: Vec<f64>) {
        if let Some(rt) = self.engine.job_mut(job) {
            assert_eq!(weights.len(), rt.partition_weights.len());
            rt.partition_weights = weights;
        }
    }

    /// Enable/disable the load balancer (fail-over stays active).
    pub fn set_load_balancing(&mut self, enabled: bool) {
        self.config.load_balancing_enabled = enabled;
    }

    /// Enable/disable the Auto Scaler.
    pub fn set_scaler_enabled(&mut self, enabled: bool) {
        self.config.scaler_enabled = enabled;
    }

    /// Oncall intervention: pin a field at the Oncall level.
    pub fn oncall_set(&mut self, job: JobId, path: &str, value: ConfigValue) -> Result<(), String> {
        if self.job_store_down() {
            return Err("job store unavailable".to_string());
        }
        self.jobs
            .set_level_field(job, ConfigLevel::Oncall, path, value)
            .map_err(|e| e.to_string())
    }

    /// Oncall intervention: clear all Oncall overrides for a job.
    pub fn oncall_clear(&mut self, job: JobId) -> Result<(), String> {
        if self.job_store_down() {
            return Err("job store unavailable".to_string());
        }
        self.jobs
            .clear_level(job, ConfigLevel::Oncall)
            .map_err(|e| e.to_string())
    }

    /// Inject host-level degradation on one task (it processes at
    /// `factor` of its normal throughput until it is restarted on another
    /// container) — the hardware-issue class of §V-D, for experiments.
    pub fn degrade_task(&mut self, task: turbine_types::TaskId, factor: f64) {
        self.engine.degrade_task(task, factor);
    }

    /// Root-cause diagnoses recorded so far (time, job, rationale).
    pub fn diagnoses(&self) -> &[(SimTime, JobId, String)] {
        &self.metrics.diagnoses
    }

    /// Enable random task crashes with the given fleet-wide mean time
    /// between crashes (chaos testing; `None` disables). Crashed tasks are
    /// restarted by their local Task Manager — the paper's §IV goal 3.
    pub fn set_crash_mtbf(&mut self, mtbf: Option<Duration>) {
        self.crash_mtbf = mtbf;
    }

    /// Sever a container's connection to the Shard Manager (network
    /// failure injection). Heartbeats stop; after the proactive timeout
    /// the container reboots itself (§IV-C).
    pub fn sever_connection(&mut self, container: ContainerId) {
        self.severed.entry(container).or_insert(SeveredState {
            at: self.now,
            rebooted: false,
        });
    }

    /// Restore a severed connection. If the Shard Manager already failed
    /// the container over, it rejoins as an empty container; otherwise its
    /// shards resume where they were.
    pub fn restore_connection(&mut self, container: ContainerId) {
        let Some(state) = self.severed.remove(&container) else {
            return;
        };
        if state.rebooted {
            use turbine_shardmgr::ContainerStatus;
            let status = self.shard_manager.status(container);
            if status == Some(ContainerStatus::Alive) {
                // Re-connected before fail-over: re-own assigned shards.
                let shards = self.shard_manager.shards_of(container);
                let mut all_events = Vec::new();
                if let Some(tm) = self.task_managers.get_mut(&container) {
                    for shard in shards {
                        all_events.extend(tm.add_shard(shard));
                    }
                }
                self.handle_task_events(container, &all_events);
            }
            // If failed over: stays empty until the next rebalance.
        }
    }

    /// Activate a fault now, optionally auto-clearing after `duration`.
    /// Side effects (severed connections, syncer restarts) are applied
    /// immediately.
    pub fn inject_fault(&mut self, fault: Fault, duration: Option<Duration>) {
        let until = duration.map(|d| self.now + d);
        let transitions = self.faults.inject(self.now, fault, until);
        for t in transitions {
            self.apply_fault_transition(t);
        }
    }

    /// Clear an active fault now (no-op if it is not active).
    pub fn clear_fault(&mut self, fault: &Fault) {
        let transitions = self.faults.clear(self.now, fault);
        for t in transitions {
            self.apply_fault_transition(t);
        }
    }

    /// Schedule a fault window for future simulated time; the injector
    /// activates and expires it as the clock passes the window edges.
    pub fn schedule_fault(&mut self, plan: FaultPlan) {
        self.faults.schedule(plan);
    }

    /// Read access to the chaos engine (active faults, event log, digest).
    pub fn fault_injector(&self) -> &FaultInjector {
        &self.faults
    }

    /// The Scribe input category a job consumes, if provisioned.
    pub fn job_category(&self, job: JobId) -> Option<&str> {
        self.categories.get(&job).map(String::as_str)
    }

    /// Turn on continuous invariant checking: every tick from now on is
    /// evaluated against the platform's safety and convergence invariants.
    pub fn enable_invariant_checks(&mut self, config: InvariantConfig) {
        self.invariants = Some(InvariantChecker::new(config));
    }

    /// Violations recorded so far (empty when checking is disabled).
    pub fn invariant_violations(&self) -> &[Violation] {
        self.invariants
            .as_ref()
            .map(|c| c.violations())
            .unwrap_or(&[])
    }

    /// The invariant checker, when enabled.
    pub fn invariant_checker(&self) -> Option<&InvariantChecker> {
        self.invariants.as_ref()
    }

    /// Apply the side effects of a fault edge. Activation side effects
    /// model the outage starting; clearance side effects model the
    /// component coming back (reconnect, restart, cache invalidation).
    fn apply_fault_transition(&mut self, transition: FaultTransition) {
        match transition {
            FaultTransition::Activated(Fault::HeartbeatLoss(container)) => {
                self.sever_connection(container);
            }
            FaultTransition::Cleared(Fault::HeartbeatLoss(container)) => {
                self.restore_connection(container);
            }
            FaultTransition::Cleared(Fault::SyncerCrash) => {
                // Restart: a fresh syncer with empty in-memory state. The
                // expected-vs-running difference persisted in the Job Store
                // is the recovery log — the next round resumes exactly the
                // syncs that were in flight (§III-B fault tolerance).
                self.syncer = StateSyncer::new(self.config.syncer);
            }
            FaultTransition::Cleared(Fault::TaskServiceDown)
            | FaultTransition::Cleared(Fault::JobStoreDown) => {
                // Force the next refresh to rebuild a fresh snapshot
                // instead of serving the stale cached one.
                self.task_service.invalidate();
            }
            _ => {}
        }
    }

    /// True while the Job Store is unavailable to writers.
    fn job_store_down(&self) -> bool {
        self.faults.is_active(&Fault::JobStoreDown)
    }

    /// Fail a host (crash / maintenance). Tasks on it stop processing
    /// immediately; the Shard Manager fails its shards over after the
    /// fail-over interval.
    pub fn fail_host(&mut self, host: HostId) -> Result<(), String> {
        self.cluster.fail_host(host).map_err(|e| e.to_string())
    }

    /// Recover a failed host. Containers the Shard Manager already failed
    /// over rejoin empty (stale local state is discarded) and receive
    /// shards at the next rebalance; containers that recovered before the
    /// fail-over interval elapsed keep their shards and their tasks simply
    /// resume (§IV-C).
    pub fn recover_host(&mut self, host: HostId) -> Result<(), String> {
        use turbine_shardmgr::ContainerStatus;
        let containers = self.cluster.containers_on(host).map_err(|e| e.to_string())?;
        self.cluster.recover_host(host).map_err(|e| e.to_string())?;
        for container in containers {
            if self.shard_manager.status(container) == Some(ContainerStatus::Alive) {
                // Recovered before fail-over: ownership is unchanged and
                // the local state is still valid.
                continue;
            }
            // Failed over while down: clear stale local state. The stop
            // events only affect tasks the engine still places here —
            // tasks that already moved belong to their new containers.
            let mut all_events = Vec::new();
            if let Some(tm) = self.task_managers.get_mut(&container) {
                let owned: Vec<_> = tm.owned_shards().collect();
                for shard in owned {
                    all_events.extend(tm.drop_shard(shard));
                }
            }
            self.handle_task_events(container, &all_events);
        }
        Ok(())
    }

    /// Advance the simulation by `span`.
    pub fn run_for(&mut self, span: Duration) {
        let end = self.now + span;
        self.run_until(end);
    }

    /// Advance the simulation to absolute time `end`.
    pub fn run_until(&mut self, end: SimTime) {
        while self.now < end {
            self.now += self.config.tick;
            self.step();
        }
    }

    /// One simulation tick: data plane first, then every due control loop
    /// in a fixed, deterministic order.
    fn step(&mut self) {
        let now = self.now;

        // Chaos engine first: cross the edges of any scheduled fault
        // windows and apply their side effects before the control loops
        // observe the world.
        let transitions = self.faults.advance(now);
        for t in transitions {
            self.apply_fault_transition(t);
        }

        // Data plane. Jobs whose input category is stalled receive
        // arrivals but process nothing — the dependency-failure shape the
        // root-causer must recognize.
        let stalled: BTreeSet<JobId> = self
            .categories
            .iter()
            .filter(|(_, cat)| self.faults.is_active(&Fault::ScribeStall((*cat).clone())))
            .map(|(&job, _)| job)
            .collect();
        let container_cpu: HashMap<ContainerId, f64> = self
            .cluster
            .healthy_containers()
            .into_iter()
            .filter_map(|c| {
                self.cluster
                    .container_capacity(c)
                    .ok()
                    .map(|cap| (c, cap.cpu))
            })
            .collect();
        let paused = &self.paused;
        let stopped = &self.capacity_stopped;
        let outcome = self.engine.tick(now, self.config.tick, &container_cpu, &|job| {
            paused.contains(&job) || stopped.contains(&job) || stalled.contains(&job)
        });
        for task in outcome.oom_kills {
            self.metrics.oom_kills.incr();
            self.metrics.task_restarts.incr();
            self.engine
                .knock_down_task(task, now + self.config.restart_delay);
        }

        // Random crash injection (when enabled): pick victims with
        // per-tick probability tick/mtbf across the fleet, restart them
        // via their Task Manager (the paper's "restart tasks upon
        // crashes").
        if let Some(mtbf) = self.crash_mtbf {
            let p_crash = self.config.tick.as_secs_f64() / mtbf.as_secs_f64();
            if self.rng.chance(p_crash.min(1.0)) && self.engine.total_tasks() > 0 {
                let victims: Vec<turbine_types::TaskId> =
                    self.engine.tasks().map(|(&id, _)| id).collect();
                let victim = victims[self.rng.uniform_usize(0, victims.len())];
                let container = self
                    .engine
                    .tasks_of_job(victim.job)
                    .find(|(id, _)| **id == victim)
                    .map(|(_, t)| t.container);
                if let Some(container) = container {
                    let event = self
                        .task_managers
                        .get_mut(&container)
                        .and_then(|tm| tm.restart_crashed(victim));
                    if let Some(event) = event {
                        self.handle_task_events(container, &[event]);
                    }
                }
            }
        }

        // Heartbeats + proactive reboot of disconnected containers.
        if self.sched_heartbeat.fire_if_due(now) {
            self.heartbeat_round();
        }

        // Shard Manager fail-over check (piggybacks the heartbeat cadence).
        let failover_moves = self.shard_manager.check_failover(now);
        if !failover_moves.is_empty() {
            self.metrics.failovers.incr();
            self.apply_movements(&failover_moves);
        }

        // Task Manager refresh. While the Task Service (or the Job Store
        // behind it) is down, refreshes fail and the Task Managers keep
        // serving from their cached snapshot: existing tasks are
        // unaffected, new configurations simply wait (§II degraded mode).
        if self.sched_tm_refresh.fire_if_due(now)
            && !self.faults.is_active(&Fault::TaskServiceDown)
            && !self.faults.is_active(&Fault::JobStoreDown)
        {
            self.tm_refresh_round();
        }

        // State Syncer round: skipped while the syncer process is crashed
        // or its backing Job Store is unreachable. The expected-vs-running
        // diff persists in the store, so skipped rounds lose nothing.
        if self.sched_sync.fire_if_due(now)
            && !self.faults.is_active(&Fault::SyncerCrash)
            && !self.faults.is_active(&Fault::JobStoreDown)
        {
            self.syncer_round();
        }

        // Auto Scaler round: its decisions are writes to the Job Store's
        // scaler level, so an unavailable store pauses scaling.
        if self.sched_scaler.fire_if_due(now) && !self.faults.is_active(&Fault::JobStoreDown) {
            self.scaler_round();
        }

        // Load reports.
        if self.sched_load_report.fire_if_due(now) {
            self.load_report_round();
        }

        // Rebalance.
        if self.sched_rebalance.fire_if_due(now) && self.config.load_balancing_enabled {
            let result = self.shard_manager.rebalance();
            self.apply_movements(&result.moves);
        }

        // Capacity Manager.
        if self.sched_capacity.fire_if_due(now) {
            self.capacity_round();
        }

        // Durability sync.
        if self.sched_checkpoint.fire_if_due(now) {
            let categories = self.categories.clone();
            self.engine.sync_durable(
                now,
                &mut self.scribe,
                &mut self.checkpoints,
                &move |job| categories.get(&job).cloned().unwrap_or_default(),
            );
        }

        // Metrics.
        if self.sched_metrics.fire_if_due(now) {
            self.metrics_round();
        }

        // Invariants last, over the post-tick state.
        if let Some(mut checker) = self.invariants.take() {
            // Containers whose local state is authoritative: healthy host
            // and an intact Shard Manager connection. A dead or partitioned
            // container legitimately holds stale state until it rejoins.
            let healthy: BTreeSet<ContainerId> =
                self.cluster.healthy_containers().into_iter().collect();
            let live_containers: BTreeSet<ContainerId> = self
                .task_managers
                .keys()
                .copied()
                .filter(|c| healthy.contains(c) && !self.severed.contains_key(c))
                .collect();
            let quiet_since = (!self.faults.any_active())
                .then(|| self.faults.last_transition().unwrap_or(SimTime::ZERO));
            checker.check(&InvariantView {
                now,
                cluster: &self.cluster,
                engine: &self.engine,
                task_managers: &self.task_managers,
                shard_manager: &self.shard_manager,
                jobs: &self.jobs,
                syncer: &self.syncer,
                paused: &self.paused,
                capacity_stopped: &self.capacity_stopped,
                live_containers: &live_containers,
                quiet_since,
            });
            self.invariants = Some(checker);
        }
    }

    fn heartbeat_round(&mut self) {
        let now = self.now;
        let healthy: BTreeSet<ContainerId> =
            self.cluster.healthy_containers().into_iter().collect();
        // Proactive reboots first.
        let due_reboot: Vec<ContainerId> = self
            .severed
            .iter()
            .filter(|(_, s)| !s.rebooted && now.since(s.at) >= self.config.connection_timeout)
            .map(|(&c, _)| c)
            .collect();
        for container in due_reboot {
            self.severed.get_mut(&container).expect("present").rebooted = true;
            let mut all_events = Vec::new();
            if let Some(tm) = self.task_managers.get_mut(&container) {
                let owned: Vec<_> = tm.owned_shards().collect();
                for shard in owned {
                    all_events.extend(tm.drop_shard(shard));
                }
            }
            self.handle_task_events(container, &all_events);
        }
        for &container in self.task_managers.keys() {
            if healthy.contains(&container) && !self.severed.contains_key(&container) {
                self.shard_manager.heartbeat(container, now);
            }
        }
    }

    fn tm_refresh_round(&mut self) {
        let now = self.now;
        // Snapshot (cached and indexed inside the Task Service for its
        // TTL; Task Managers share it by reference).
        let jobs = &self.jobs;
        let paused = &self.paused;
        let stopped = &self.capacity_stopped;
        let snapshot = self.task_service.snapshot(now, || {
            jobs.store()
                .running_jobs()
                .into_iter()
                .filter(|j| !paused.contains(j) && !stopped.contains(j))
                .filter_map(|j| jobs.running_typed(j).map(|c| (j, c)))
                .collect()
        });
        let healthy: BTreeSet<ContainerId> =
            self.cluster.healthy_containers().into_iter().collect();
        let containers: Vec<ContainerId> = self.task_managers.keys().copied().collect();
        for container in containers {
            if !healthy.contains(&container) {
                continue;
            }
            let events = self
                .task_managers
                .get_mut(&container)
                .expect("iterating keys")
                .refresh(snapshot.clone());
            self.handle_task_events(container, &events);
        }
    }

    fn syncer_round(&mut self) {
        struct Env<'a> {
            paused: &'a mut BTreeSet<JobId>,
            task_service: &'a mut TaskService,
            task_managers: &'a BTreeMap<ContainerId, LocalTaskManager>,
            engine: &'a Engine,
            state_moves: &'a mut HashMap<JobId, SimTime>,
            now: SimTime,
            state_move_bandwidth: f64,
        }
        impl SyncEnvironment for Env<'_> {
            fn request_stop(&mut self, job: JobId) {
                if self.paused.insert(job) {
                    self.task_service.invalidate();
                }
            }
            fn all_stopped(&mut self, job: JobId) -> bool {
                self.task_managers.values().all(|tm| !tm.runs_job(job))
            }
            fn redistribute_checkpoints(
                &mut self,
                job: JobId,
                _old: u32,
                _new: u32,
            ) -> Result<Redistribute, String> {
                // Checkpoints are keyed by (job, partition), so a
                // parallelism change re-maps ownership without moving
                // offsets; the barrier above guarantees no two tasks ever
                // own a partition concurrently. Stateful jobs additionally
                // move their state (≈1 KB per key) at the configured
                // bandwidth — real time during which the job stays paused.
                let stateful_bytes = self
                    .engine
                    .job(job)
                    .filter(|rt| rt.stateful)
                    .map(|rt| rt.key_cardinality * 1.0e3)
                    .unwrap_or(0.0);
                if stateful_bytes <= 0.0 {
                    return Ok(Redistribute::Done);
                }
                let done_at = *self.state_moves.entry(job).or_insert_with(|| {
                    self.now + Duration::from_secs_f64(stateful_bytes / self.state_move_bandwidth)
                });
                if self.now >= done_at {
                    self.state_moves.remove(&job);
                    Ok(Redistribute::Done)
                } else {
                    Ok(Redistribute::InProgress)
                }
            }
        }
        let mut env = Env {
            paused: &mut self.paused,
            task_service: &mut self.task_service,
            task_managers: &self.task_managers,
            engine: &self.engine,
            state_moves: &mut self.state_moves,
            now: self.now,
            state_move_bandwidth: self.config.state_move_bandwidth,
        };
        let report = self.syncer.run_round(&mut self.jobs, &mut env);
        let mut invalidate = report.total_changed() > 0;
        for &job in report
            .started
            .iter()
            .chain(&report.simple)
            .chain(&report.complex_completed)
        {
            self.paused.remove(&job);
            invalidate = true;
        }
        for &job in &report.deleted {
            self.paused.remove(&job);
            self.capacity_stopped.remove(&job);
            self.engine.remove_job(job);
            self.checkpoints.remove_job(job);
            self.categories.remove(&job);
            invalidate = true;
        }
        if invalidate {
            self.task_service.invalidate();
        }
        self.metrics.alerts.add(report.alerts.len() as u64);
    }

    fn scaler_round(&mut self) {
        let now = self.now;
        let window = now.since(self.last_scaler_drain).as_secs_f64().max(1.0);
        self.last_scaler_drain = now;
        if !self.config.scaler_enabled {
            // Still drain windows so a later enable starts fresh.
            for job in self.engine.job_ids() {
                let _ = self.engine.drain_window(job);
            }
            return;
        }
        let usage = self.engine.task_usage_map();
        for job in self.engine.job_ids() {
            if self.paused.contains(&job)
                || self.capacity_stopped.contains(&job)
                || self.syncer.is_quarantined(job)
            {
                let _ = self.engine.drain_window(job);
                continue;
            }
            let Ok(config) = self.jobs.expected_typed(job) else {
                continue;
            };
            if self.jobs.running_typed(job).is_none() {
                let _ = self.engine.drain_window(job);
                continue; // not started yet
            }
            let stats = self.engine.drain_window(job);
            let runtime = self.engine.job(job).expect("registered");
            let backlog = runtime.backlog();
            let mut per_task_rates = Vec::new();
            let mut per_task_memory = Vec::new();
            for (id, task) in self.engine.tasks_of_job(job) {
                let processed = stats
                    .per_task
                    .iter()
                    .find(|(t, _)| t == id)
                    .map(|(_, v)| *v)
                    .unwrap_or(0.0);
                per_task_rates.push(processed / window);
                per_task_memory.push(task.memory_usage_mb);
            }
            let metrics = JobMetrics {
                input_rate: stats.arrived / window,
                processing_rate: stats.processed / window,
                total_bytes_lagged: backlog,
                per_task_rates,
                per_task_memory_mb: per_task_memory,
                oom_events: stats.ooms,
                task_count: config.task_count,
                threads_per_task: config.threads_per_task,
                reserved: config.task_resources,
                key_cardinality: runtime.stateful.then_some(runtime.key_cardinality),
            };
            // Track releases (for the root-causer's bad-update rule).
            match self.releases.get(&job) {
                Some(&(current, _, _)) if current != config.package.version => {
                    self.releases
                        .insert(job, (config.package.version, current, now));
                }
                None => {
                    self.releases
                        .insert(job, (config.package.version, config.package.version, now));
                }
                _ => {}
            }
            let decision = self.scaler.evaluate(job, &metrics, &config, now);
            // Track lag episodes.
            let lagging = decision
                .symptoms
                .iter()
                .any(|s| matches!(s, turbine_autoscaler::Symptom::Lagging { .. }));
            if lagging {
                self.lag_since.entry(job).or_insert(now);
            } else {
                self.lag_since.remove(&job);
            }
            // The root-causer watches every lagging job independently of
            // the scaler: a single-task hardware anomaly must be moved,
            // not scaled around — scaling would both waste capacity and
            // accidentally mask the sick host.
            let mut action = decision.action;
            if lagging {
                let window = now.since(self.last_scaler_drain).as_secs_f64().max(1.0);
                let _ = window;
                // Hardware diagnosis needs a *stable* measurement window:
                // a task (re)started mid-window shows a near-zero rate and
                // would be misdiagnosed as a sick host.
                let window_start = now - self.config.scaler_interval;
                let stable_window = self
                    .engine
                    .tasks_of_job(job)
                    .all(|(_, t)| t.started_at <= window_start);
                let hardware = if stable_window {
                    let per_task_rates = self.per_task_rates(job, &stats.per_task);
                    self.root_causer.hardware_anomaly(&metrics, &per_task_rates)
                } else {
                    None
                };
                let recently_diagnosed = self
                    .last_diagnosis
                    .get(&job)
                    .is_some_and(|&at| now.since(at) < Duration::from_mins(10));
                if (hardware.is_some() || decision.untriaged.is_some()) && !recently_diagnosed {
                    self.last_diagnosis.insert(job, now);
                    self.diagnose_untriaged(job, &metrics, &stats.per_task, now);
                    if hardware.is_some() {
                        // The move is the mitigation; do not also scale.
                        action = None;
                    }
                }
            }
            if decision.untriaged.is_some() {
                self.metrics.alerts.incr();
            }
            if let Some(action) = action {
                self.apply_scaling_action(job, &config, action);
            }
        }
        let _ = usage;
    }

    /// Per-task processing rates over the last scaler window.
    fn per_task_rates(
        &self,
        job: JobId,
        per_task_window: &[(turbine_types::TaskId, f64)],
    ) -> Vec<(turbine_types::TaskId, f64)> {
        let window = self.config.scaler_interval.as_secs_f64();
        self.engine
            .tasks_of_job(job)
            .map(|(&id, _)| {
                let processed = per_task_window
                    .iter()
                    .find(|(t, _)| *t == id)
                    .map(|(_, v)| *v)
                    .unwrap_or(0.0);
                (id, processed / window)
            })
            .collect()
    }

    /// Run the auto root-causer on an untriaged problem, record the
    /// diagnosis, and apply the safe automated mitigation (task moves for
    /// hardware issues; everything else stays a recommendation).
    fn diagnose_untriaged(
        &mut self,
        job: JobId,
        metrics: &JobMetrics,
        per_task_window: &[(turbine_types::TaskId, f64)],
        now: SimTime,
    ) {
        let per_task_rates = self.per_task_rates(job, per_task_window);
        let diagnosis = self.root_causer.diagnose(&DiagnosisInput {
            metrics,
            per_task_rates: &per_task_rates,
            expected_per_thread: self.scaler.throughput_estimate(job).unwrap_or(0.0),
            last_release: self.releases.get(&job).copied(),
            lag_since: self.lag_since.get(&job).copied(),
            now,
        });
        if let Mitigation::MoveTask(task) = diagnosis.mitigation {
            self.move_task_shard(task);
        }
        self.metrics
            .diagnoses
            .push((now, job, diagnosis.rationale));
    }

    /// Move one task's shard to a different alive container (root-causer
    /// mitigation for hardware issues).
    fn move_task_shard(&mut self, task: turbine_types::TaskId) {
        let shard = turbine_taskmgr::shard_of_task(task, self.config.shard_count);
        let from = self.shard_manager.container_of(shard);
        let target = self
            .shard_manager
            .alive_containers()
            .into_iter()
            .find(|&c| Some(c) != from);
        if let Some(to) = target {
            if let Some(movement) = self.shard_manager.move_shard(shard, to) {
                self.apply_movements(&[movement]);
            }
        }
    }

    fn apply_scaling_action(&mut self, job: JobId, config: &JobConfig, action: ScalingAction) {
        self.metrics.scaling_actions.incr();
        match action {
            ScalingAction::RebalanceInput => {
                if let Some(rt) = self.engine.job_mut(job) {
                    let n = rt.partition_weights.len();
                    rt.partition_weights = vec![1.0 / n as f64; n];
                }
            }
            ScalingAction::Vertical {
                threads_per_task,
                per_task,
            } => {
                let result = self.jobs.update_level(job, ConfigLevel::Scaler, move |cfg| {
                    cfg.insert("threads_per_task", threads_per_task.into());
                    cfg.insert_path("resources.cpu", per_task.cpu.into());
                    cfg.insert_path("resources.memory_mb", per_task.memory_mb.into());
                    cfg.insert_path("resources.disk_mb", per_task.disk_mb.into());
                    cfg.insert_path("resources.network_mbps", per_task.network_mbps.into());
                });
                debug_assert!(result.is_ok());
            }
            ScalingAction::Horizontal {
                task_count,
                per_task,
            } => {
                // Parallelism can never exceed the input partition count.
                let count = task_count.clamp(1, config.input_partitions);
                let result = self.jobs.update_level(job, ConfigLevel::Scaler, move |cfg| {
                    cfg.insert("task_count", count.into());
                    cfg.insert_path("resources.cpu", per_task.cpu.into());
                    cfg.insert_path("resources.memory_mb", per_task.memory_mb.into());
                    cfg.insert_path("resources.disk_mb", per_task.disk_mb.into());
                    cfg.insert_path("resources.network_mbps", per_task.network_mbps.into());
                });
                debug_assert!(result.is_ok());
            }
        }
    }

    fn load_report_round(&mut self) {
        let usage = self.engine.task_usage_map();
        for tm in self.task_managers.values() {
            for (shard, load) in tm.aggregate_shard_loads(&usage) {
                self.shard_manager.report_load(shard, load);
            }
        }
    }

    fn capacity_round(&mut self) {
        let total_reserved: Resources = self
            .jobs
            .store()
            .running_jobs()
            .into_iter()
            .filter_map(|j| self.jobs.running_typed(j))
            .map(|c| c.task_resources.scale(c.task_count as f64))
            .sum();
        let job_list: Vec<(JobId, turbine_types::Priority, Resources)> = self
            .jobs
            .store()
            .running_jobs()
            .into_iter()
            .filter_map(|j| {
                self.jobs
                    .running_typed(j)
                    .map(|c| (j, c.priority, c.task_resources.scale(c.task_count as f64)))
            })
            .collect();
        self.capacity
            .register_cluster("primary", self.cluster.total_healthy_capacity());
        let directive = self.capacity.evaluate("primary", total_reserved, &job_list);
        self.scaler.set_priority_floor(directive.priority_floor);
        if !directive.jobs_to_stop.is_empty() {
            for job in directive.jobs_to_stop {
                if self.capacity_stopped.insert(job) {
                    self.metrics.alerts.incr();
                }
            }
            self.task_service.invalidate();
        } else if directive.priority_floor.is_none() && !self.capacity_stopped.is_empty() {
            // Pressure cleared: resume capacity-stopped jobs.
            self.capacity_stopped.clear();
            self.task_service.invalidate();
        }
    }

    fn metrics_round(&mut self) {
        let now = self.now;
        // Cluster traffic (pure function of the models: cheap).
        let traffic: f64 = self
            .engine
            .job_ids()
            .iter()
            .filter_map(|&j| self.engine.job(j))
            .map(|rt| rt.traffic.arrival_rate(now))
            .sum();
        self.metrics.cluster_traffic.record(now, traffic);
        self.metrics
            .task_count
            .record(now, self.engine.total_tasks() as f64);

        // Host utilization bands.
        let usage = self.engine.task_usage_map();
        let mut per_container: HashMap<ContainerId, Resources> = HashMap::new();
        for (id, task) in self.engine.tasks() {
            let u = usage.get(id).copied().unwrap_or(Resources::ZERO);
            *per_container.entry(task.container).or_default() += u;
        }
        let mut cpu_samples = Vec::new();
        let mut mem_samples = Vec::new();
        for container in self.cluster.healthy_containers() {
            let cap = self
                .cluster
                .container_capacity(container)
                .expect("healthy container");
            let used = per_container
                .get(&container)
                .copied()
                .unwrap_or(Resources::ZERO);
            if cap.cpu > 0.0 {
                cpu_samples.push((used.cpu / cap.cpu).min(1.0));
            }
            if cap.memory_mb > 0.0 {
                mem_samples.push((used.memory_mb / cap.memory_mb).min(1.0));
            }
        }
        if !cpu_samples.is_empty() {
            self.metrics.host_cpu.record(now, &cpu_samples);
            self.metrics.host_memory.record(now, &mem_samples);
        }

        // Per-job lag + SLO compliance.
        let mut ok = 0usize;
        let mut total = 0usize;
        let mut total_backlog = 0.0;
        let watched: Vec<JobId> = self.metrics.watched_job_lag.keys().copied().collect();
        for job in self.engine.job_ids() {
            let Some(rt) = self.engine.job(job) else {
                continue;
            };
            let backlog = rt.backlog();
            total_backlog += backlog;
            let Ok(config) = self.jobs.expected_typed(job) else {
                continue;
            };
            // Lag relative to sustained processing capability: use the
            // arrival rate as the denominator when the job keeps up.
            let rate = rt.traffic.arrival_rate(now).max(1.0);
            let lag_secs = backlog / rate;
            total += 1;
            if lag_secs <= config.slo_lag_secs {
                ok += 1;
            }
            if watched.contains(&job) {
                self.metrics
                    .watched_job_lag
                    .get_mut(&job)
                    .expect("watched")
                    .record(now, lag_secs);
                self.metrics
                    .watched_job_tasks
                    .get_mut(&job)
                    .expect("watched")
                    .record(now, self.engine.running_tasks_of(job) as f64);
            }
        }
        if total > 0 {
            self.metrics
                .slo_ok_fraction
                .record(now, ok as f64 / total as f64);
        }
        self.metrics.total_backlog.record(now, total_backlog);

        // Reserved footprint (Fig. 10).
        let mut reserved_cpu = 0.0;
        let mut reserved_mem = 0.0;
        for job in self.jobs.store().running_jobs() {
            if let Some(c) = self.jobs.running_typed(job) {
                reserved_cpu += c.task_resources.cpu * c.task_count as f64;
                reserved_mem += c.task_resources.memory_mb * c.task_count as f64;
            }
        }
        self.metrics.reserved_cpu.record(now, reserved_cpu);
        self.metrics.reserved_memory_mb.record(now, reserved_mem);
    }

    fn apply_movements(&mut self, moves: &[ShardMovement]) {
        for m in moves {
            self.metrics.shard_moves.incr();
            // DROP_SHARD on the source first — the shard must never run in
            // two containers at once.
            if let Some(from) = m.from {
                let events = self
                    .task_managers
                    .get_mut(&from)
                    .map(|tm| tm.drop_shard(m.shard))
                    .unwrap_or_default();
                self.handle_task_events(from, &events);
            }
            let events = self
                .task_managers
                .get_mut(&m.to)
                .map(|tm| tm.add_shard(m.shard))
                .unwrap_or_default();
            self.handle_task_events(m.to, &events);
        }
    }

    fn handle_task_events(&mut self, container: ContainerId, events: &[TaskEvent]) {
        for event in events {
            match event {
                TaskEvent::Started(spec) => {
                    self.metrics.task_starts.incr();
                    self.engine
                        .task_started(spec, container, self.now, self.config.restart_delay);
                }
                TaskEvent::Restarted(spec) => {
                    self.metrics.task_restarts.incr();
                    self.engine
                        .task_started(spec, container, self.now, self.config.restart_delay);
                }
                TaskEvent::Stopped(id) => {
                    self.metrics.task_stops.incr();
                    self.engine.task_stopped(*id, container);
                }
            }
        }
    }
}
