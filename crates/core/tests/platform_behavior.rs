//! End-to-end behaviour of the assembled platform: provisioning flow,
//! update propagation, scaling, fail-over, and the §IV-C connection
//! protocol, all at production cadences in simulated time.

use turbine::{Turbine, TurbineConfig};
use turbine_config::{ConfigValue, JobConfig};
use turbine_types::{Duration, JobId, Resources};
use turbine_workloads::TrafficModel;

fn host_caps() -> Resources {
    Resources::new(56.0, 256.0 * 1024.0, 1.0e6, 1000.0)
}

fn small_platform() -> Turbine {
    let mut config = TurbineConfig::default();
    config.scaler.min_action_gap = Duration::from_mins(2);
    let mut t = Turbine::new(config);
    t.add_hosts(4, host_caps());
    t
}

#[test]
fn end_to_end_scheduling_within_two_minutes() {
    let mut t = small_platform();
    let job = JobId(1);
    t.provision_job(
        job,
        JobConfig::stateless("fast_start", 4, 16),
        TrafficModel::flat(1.0e6),
        1.0e6,
        256.0,
    )
    .expect("provision");
    // Paper §IV-D: overall end-to-end scheduling is 1-2 minutes.
    t.run_for(Duration::from_mins(2));
    let status = t.job_status(job).expect("status");
    assert_eq!(status.running_tasks, 4, "{status:?}");
    assert_eq!(status.running_config_tasks, 4);
}

#[test]
fn healthy_job_keeps_up_and_meets_slo() {
    let mut t = small_platform();
    let job = JobId(1);
    t.provision_job(
        job,
        JobConfig::stateless("steady", 4, 16),
        TrafficModel::flat(2.0e6),
        1.0e6,
        256.0,
    )
    .expect("provision");
    t.run_for(Duration::from_mins(30));
    let status = t.job_status(job).expect("status");
    // Backlog bounded to roughly one tick of data.
    assert!(
        status.backlog_bytes < 2.0e6 * 30.0,
        "backlog {}",
        status.backlog_bytes
    );
    assert_eq!(t.metrics.slo_ok_fraction.last(), Some(1.0));
}

#[test]
fn package_release_propagates_as_simple_sync() {
    let mut t = small_platform();
    let job = JobId(1);
    t.provision_job(
        job,
        JobConfig::stateless("release", 4, 16),
        TrafficModel::flat(1.0e6),
        1.0e6,
        256.0,
    )
    .expect("provision");
    t.run_for(Duration::from_mins(3));
    let restarts_before = t.metrics.task_restarts.get();

    // Provisioner-level release of version 2.
    t.job_service_mut()
        .set_level_field(
            job,
            turbine_config::ConfigLevel::Provisioner,
            "package.version",
            ConfigValue::Int(2),
        )
        .expect("release");
    // Cache TTL (90 s) + sync round (30 s) + TM refresh (60 s): within
    // ~4 minutes every task restarted on the new version.
    t.run_for(Duration::from_mins(4));
    let restarts = t.metrics.task_restarts.get() - restarts_before;
    assert_eq!(restarts, 4, "all four tasks restart exactly once");
    let status = t.job_status(job).expect("status");
    assert_eq!(status.running_tasks, 4);
}

#[test]
fn parallelism_change_runs_complex_sync_with_bounded_downtime() {
    let mut t = small_platform();
    let job = JobId(1);
    t.provision_job(
        job,
        JobConfig::stateless("resize", 4, 64),
        TrafficModel::flat(1.0e6),
        1.0e6,
        256.0,
    )
    .expect("provision");
    t.run_for(Duration::from_mins(3));

    t.oncall_set(job, "task_count", ConfigValue::Int(8))
        .expect("oncall resize");
    // Observe the pause phase (old tasks stopped) then the new layout.
    let mut saw_pause = false;
    let mut settled_at = None;
    let start = t.now();
    for _ in 0..60 {
        t.run_for(Duration::from_secs(30));
        let status = t.job_status(job).expect("status");
        if status.paused {
            saw_pause = true;
        }
        if status.running_tasks == 8 && !status.paused {
            settled_at = Some(t.now());
            break;
        }
    }
    assert!(saw_pause, "complex sync must pass through the stop phase");
    let settled = settled_at.expect("new parallelism must settle");
    // Stop propagation (≤90s cache + 60s refresh) + sync + restart: well
    // under 10 minutes end to end.
    assert!(
        settled.since(start) <= Duration::from_mins(10),
        "took {}",
        settled.since(start)
    );
    // No data was lost or duplicated: backlog drains afterwards.
    t.run_for(Duration::from_mins(10));
    let status = t.job_status(job).expect("status");
    assert!(status.backlog_bytes < 1.0e6 * 60.0, "{status:?}");
}

#[test]
fn scaler_rescues_an_undersized_job() {
    let mut config = TurbineConfig::default();
    config.scaler.min_action_gap = Duration::from_mins(2);
    config.scaler.bootstrap_p = 1.0e6;
    let mut t = Turbine::new(config);
    t.add_hosts(8, host_caps());
    let job = JobId(1);
    let mut jc = JobConfig::stateless("undersized", 2, 64);
    jc.max_task_count = 64;
    // 8 MB/s of input against 2 tasks × 1 MB/s: hopeless without scaling.
    t.provision_job(job, jc, TrafficModel::flat(8.0e6), 1.0e6, 256.0)
        .expect("provision");
    t.run_for(Duration::from_hours(2));
    let status = t.job_status(job).expect("status");
    // Vertical-first (§V-E): the scaler may satisfy demand by growing
    // threads per task rather than the task count — what matters is that
    // total capacity (tasks × threads) now covers the 8 MB/s input.
    let cfg = t.job_service_mut().expected_typed(job).expect("config");
    let total_threads = cfg.task_count * cfg.threads_per_task;
    assert!(
        total_threads >= 8,
        "scaler must grow capacity to sustain input: {cfg:?} {status:?}"
    );
    // And the job eventually keeps up (lag below 90 s SLO at 8 MB/s).
    assert!(
        status.backlog_bytes < 8.0e6 * 90.0,
        "backlog {} bytes",
        status.backlog_bytes
    );
    assert!(t.metrics.scaling_actions.get() > 0);
}

#[test]
fn scaler_disabled_job_stays_backlogged() {
    let mut config = TurbineConfig::default();
    config.scaler_enabled = false;
    let mut t = Turbine::new(config);
    t.add_hosts(8, host_caps());
    let job = JobId(1);
    let mut jc = JobConfig::stateless("stuck", 2, 64);
    jc.max_task_count = 64;
    t.provision_job(job, jc, TrafficModel::flat(8.0e6), 1.0e6, 256.0)
        .expect("provision");
    t.run_for(Duration::from_hours(2));
    let status = t.job_status(job).expect("status");
    assert_eq!(status.running_config_tasks, 2, "no scaling happened");
    // Deficit ≈ 6 MB/s × 2 h ≈ 43 GB.
    assert!(status.backlog_bytes > 2.0e10, "{status:?}");
}

#[test]
fn host_failure_fails_tasks_over_within_two_minutes() {
    let mut t = small_platform();
    let job = JobId(1);
    t.provision_job(
        job,
        JobConfig::stateless("failover", 8, 32),
        TrafficModel::flat(2.0e6),
        1.0e6,
        256.0,
    )
    .expect("provision");
    t.run_for(Duration::from_mins(5));
    assert_eq!(t.job_status(job).expect("status").running_tasks, 8);

    let victim = t.cluster.hosts()[0];
    t.fail_host(victim).expect("fail");
    // Paper §IV-D: fail-overs start after 60 s; average task downtime
    // under 2 minutes. Allow one extra refresh for the restart itself.
    t.run_for(Duration::from_mins(3));
    let status = t.job_status(job).expect("status");
    assert_eq!(status.running_tasks, 8, "{status:?}");
    assert!(t.metrics.failovers.get() >= 1);
    // All tasks now run on healthy containers only.
    let healthy = t.cluster.healthy_containers();
    for c in t.cluster.containers_on(victim).expect("containers") {
        assert!(!healthy.contains(&c));
    }
}

#[test]
fn short_disconnect_keeps_shards_long_disconnect_fails_over() {
    let mut t = small_platform();
    let job = JobId(1);
    t.provision_job(
        job,
        JobConfig::stateless("netsplit", 8, 32),
        TrafficModel::flat(1.0e6),
        1.0e6,
        256.0,
    )
    .expect("provision");
    t.run_for(Duration::from_mins(5));
    let container = t.cluster.healthy_containers()[0];

    // Short split: restored before the 60 s fail-over.
    let failovers_before = t.metrics.failovers.get();
    t.sever_connection(container);
    t.run_for(Duration::from_secs(50));
    t.restore_connection(container);
    t.run_for(Duration::from_mins(2));
    assert_eq!(
        t.metrics.failovers.get(),
        failovers_before,
        "no fail-over on a short split"
    );
    assert_eq!(t.job_status(job).expect("status").running_tasks, 8);

    // Long split: the Shard Manager fails the container over and the
    // rebooted container comes back empty.
    t.sever_connection(container);
    t.run_for(Duration::from_mins(3));
    assert!(t.metrics.failovers.get() > failovers_before);
    t.restore_connection(container);
    t.run_for(Duration::from_mins(2));
    let status = t.job_status(job).expect("status");
    assert_eq!(status.running_tasks, 8, "{status:?}");
}

#[test]
fn deleted_job_winds_down_completely() {
    let mut t = small_platform();
    let job = JobId(1);
    t.provision_job(
        job,
        JobConfig::stateless("doomed", 4, 16),
        TrafficModel::flat(1.0e6),
        1.0e6,
        256.0,
    )
    .expect("provision");
    t.run_for(Duration::from_mins(3));
    assert_eq!(t.job_status(job).expect("status").running_tasks, 4);

    t.delete_job(job).expect("delete");
    t.run_for(Duration::from_mins(5));
    assert!(t.job_status(job).is_none(), "engine state cleared");
    assert_eq!(
        t.metrics.task_count.last(),
        Some(0.0),
        "no tasks left running"
    );
}

#[test]
fn imbalanced_input_is_rebalanced_by_the_scaler() {
    let mut config = TurbineConfig::default();
    config.scaler.min_action_gap = Duration::from_mins(2);
    let mut t = Turbine::new(config);
    t.add_hosts(4, host_caps());
    let job = JobId(1);
    t.provision_job(
        job,
        JobConfig::stateless("skewed", 4, 16),
        TrafficModel::flat(3.0e6),
        1.0e6,
        256.0,
    )
    .expect("provision");
    t.run_for(Duration::from_mins(3));
    // All traffic into the first task's slice: it cannot keep up alone.
    let mut weights = vec![0.0; 16];
    for w in weights.iter_mut().take(4) {
        *w = 0.25;
    }
    t.skew_job_input(job, weights);
    t.run_for(Duration::from_mins(30));
    // The scaler's RebalanceInput resolver must have evened the weights
    // out again, and the job recovered.
    let status = t.job_status(job).expect("status");
    assert!(
        status.backlog_bytes < 3.0e6 * 90.0,
        "rebalance should restore health: {status:?}"
    );
}

#[test]
fn run_is_deterministic() {
    let build = || {
        let mut t = small_platform();
        t.provision_job(
            JobId(1),
            JobConfig::stateless("det", 4, 16),
            TrafficModel::diurnal(2.0e6, 0.3, 42),
            1.0e6,
            256.0,
        )
        .expect("provision");
        t.run_for(Duration::from_hours(2));
        (
            t.metrics.task_starts.get(),
            t.metrics.task_stops.get(),
            t.metrics.shard_moves.get(),
            t.job_status(JobId(1)).expect("status").backlog_bytes,
        )
    };
    assert_eq!(build(), build());
}

#[test]
fn stateful_resize_moves_state_before_committing() {
    // A stateful aggregation with 10M keys ≈ 10 GB of state moved at
    // 16 MB/s: the redistribution takes ~10 sim minutes, during which the
    // job stays paused — and then completes.
    let mut config = TurbineConfig::default();
    config.syncer.max_inflight_rounds = 40; // budget for the long move
    config.state_move_bandwidth = 16.0e6;
    let mut t = Turbine::new(config);
    t.add_hosts(4, host_caps());
    let job = JobId(1);
    let mut jc = JobConfig::stateless("agg", 4, 64);
    jc.task_resources = Resources::cpu_mem(1.0, 4096.0);
    t.provision_stateful_job(job, jc, TrafficModel::flat(1.0e6), 1.0e6, 256.0, 1.0e7)
        .expect("provision");
    t.run_for(Duration::from_mins(3));
    assert_eq!(t.job_status(job).expect("status").running_tasks, 4);

    t.oncall_set(job, "task_count", turbine_config::ConfigValue::Int(8))
        .expect("resize");
    // Collect how long the job stays paused through the resize.
    let mut paused_secs = 0u64;
    let mut settled = false;
    for _ in 0..80 {
        t.run_for(Duration::from_secs(30));
        let status = t.job_status(job).expect("status");
        if status.paused {
            paused_secs += 30;
        }
        if status.running_tasks == 8 && !status.paused {
            settled = true;
            break;
        }
    }
    assert!(settled, "stateful resize must complete");
    // The pause covers at least the ~6.5 min state move (plus stop/start
    // propagation) — far longer than a stateless resize.
    assert!(
        paused_secs >= 360,
        "state move must take real time, paused only {paused_secs}s"
    );
    assert!(!t.job_status(job).expect("status").quarantined);
}

#[test]
fn stateless_resize_is_much_faster_than_stateful() {
    let resize_duration = |stateful: bool| {
        let mut config = TurbineConfig::default();
        config.syncer.max_inflight_rounds = 40;
        config.state_move_bandwidth = 16.0e6;
        let mut t = Turbine::new(config);
        t.add_hosts(4, host_caps());
        let job = JobId(1);
        let mut jc = JobConfig::stateless("cmp", 4, 64);
        jc.task_resources = Resources::cpu_mem(1.0, 4096.0);
        if stateful {
            t.provision_stateful_job(job, jc, TrafficModel::flat(1.0e6), 1.0e6, 256.0, 1.0e7)
                .expect("provision");
        } else {
            t.provision_job(job, jc, TrafficModel::flat(1.0e6), 1.0e6, 256.0)
                .expect("provision");
        }
        t.run_for(Duration::from_mins(3));
        t.oncall_set(job, "task_count", turbine_config::ConfigValue::Int(8))
            .expect("resize");
        let start = t.now();
        for _ in 0..80 {
            t.run_for(Duration::from_secs(30));
            let status = t.job_status(job).expect("status");
            if status.running_tasks == 8 && !status.paused {
                return t.now().since(start);
            }
        }
        panic!("resize never settled (stateful={stateful})");
    };
    let stateless = resize_duration(false);
    let stateful = resize_duration(true);
    assert!(
        stateful.as_millis() > stateless.as_millis() + Duration::from_mins(5).as_millis(),
        "stateful {stateful} vs stateless {stateless}"
    );
}

#[test]
fn random_crashes_are_absorbed_by_task_restarts() {
    let mut config = TurbineConfig::default();
    config.scaler.min_action_gap = Duration::from_mins(2);
    let mut t = Turbine::new(config);
    t.add_hosts(4, host_caps());
    let job = JobId(1);
    t.provision_job(
        job,
        JobConfig::stateless("crashy", 8, 32),
        TrafficModel::flat(4.0e6),
        1.0e6,
        256.0,
    )
    .expect("provision");
    t.run_for(Duration::from_mins(5));
    // One crash somewhere in the fleet every ~2 minutes, for an hour.
    t.set_crash_mtbf(Some(Duration::from_mins(2)));
    let restarts_before = t.metrics.task_restarts.get();
    t.run_for(Duration::from_hours(1));
    let crashes = t.metrics.task_restarts.get() - restarts_before;
    assert!(
        crashes >= 10,
        "injection must actually crash tasks: {crashes}"
    );
    // Every crash was absorbed: full task set running, SLO kept.
    let status = t.job_status(job).expect("status");
    assert_eq!(status.running_tasks, 8, "{status:?}");
    assert!(
        status.backlog_bytes < 4.0e6 * 90.0,
        "crash-restart churn must not break the SLO: {status:?}"
    );
    // Disabling stops the injection.
    t.set_crash_mtbf(None);
    let stable_from = t.metrics.task_restarts.get();
    t.run_for(Duration::from_mins(20));
    assert_eq!(t.metrics.task_restarts.get(), stable_from);
}

#[test]
fn root_causer_moves_a_task_off_a_sick_host() {
    let mut config = TurbineConfig::default();
    config.scaler.min_action_gap = Duration::from_mins(2);
    let mut t = Turbine::new(config);
    t.add_hosts(4, host_caps());
    let job = JobId(1);
    // 8 tasks comfortably sized (each sees 0.75 MB/s of the 6 MB/s input).
    t.provision_job(
        job,
        JobConfig::stateless("sick_host", 8, 32),
        TrafficModel::flat(6.0e6),
        1.0e6,
        256.0,
    )
    .expect("provision");
    t.run_for(Duration::from_mins(10));
    assert!(t.diagnoses().is_empty(), "healthy fleet needs no diagnosis");

    // One task's host goes bad: it processes at 2% speed. Capacity
    // estimates still say the job has plenty (7.98 task-equivalents for
    // 6 MB/s), so the scaler will not scale — this is an untriaged
    // problem with a single-task anomaly.
    let victim = *t
        .task_placements()
        .first()
        .map(|(id, _)| id)
        .expect("tasks running");
    let container_before = t
        .task_placements()
        .iter()
        .find(|(id, _)| *id == victim)
        .map(|(_, c)| *c)
        .expect("placed");
    t.degrade_task(victim, 0.02);

    t.run_for(Duration::from_mins(30));
    // The root-causer diagnosed a hardware issue and moved the task.
    assert!(
        !t.diagnoses().is_empty(),
        "untriaged lag must produce a diagnosis"
    );
    let diagnosis = &t.diagnoses()[0];
    assert_eq!(diagnosis.job, job);
    assert!(
        matches!(
            diagnosis.cause,
            turbine_autoscaler::RootCause::HardwareIssue { .. }
        ),
        "expected a hardware diagnosis, got: {:?}",
        diagnosis.cause
    );
    assert!(
        diagnosis.rationale.contains("bad host"),
        "expected a hardware rationale, got: {}",
        diagnosis.rationale
    );
    assert!(
        diagnosis.trace.is_some(),
        "diagnosis must link into the decision trace"
    );
    let container_after = t
        .task_placements()
        .iter()
        .find(|(id, _)| *id == victim)
        .map(|(_, c)| *c)
        .expect("still placed");
    assert_ne!(
        container_after, container_before,
        "mitigation must move the task"
    );
    // The restart on the new container cleared the degradation: the job
    // drains its backlog and returns to health.
    t.run_for(Duration::from_mins(30));
    let status = t.job_status(job).expect("status");
    assert!(
        status.backlog_bytes < 6.0e6 * 90.0,
        "job must recover after the move: {status:?}"
    );
}
