//! The Auto Scaler decision engine (paper §V, Algorithm 2 and Fig. 4).
//!
//! [`AutoScaler::evaluate`] runs one scaling round for one job: symptoms
//! are detected, resource estimates computed, and the Plan Generator
//! synthesizes a final decision subject to the §V-B guards:
//!
//! 1. downscaling must never make a healthy job unhealthy (estimates give
//!    the lower bound; the Pattern Analyzer checks history);
//! 2. untriaged problems (enough resources, no imbalance, still lagging)
//!    must not trigger scaling — they raise an operator alert instead;
//! 3. multi-resource adjustments are correlated (more tasks ⇒ less memory
//!    per task for stateful jobs).
//!
//! Vertical scaling is preferred until the per-task footprint reaches the
//! configured cap (typically 1/5 of a container), then horizontal scaling
//! kicks in (§V-E). [`ScalerMode::Reactive`] reproduces the first
//! generation (Dhalion-like) behaviour as the ablation baseline.

use crate::estimator::{required_task_count, ResourceEstimator};
use crate::patterns::{PatternAnalyzer, PatternConfig, ThroughputModel};
use crate::symptoms::{detect, JobMetrics, Symptom, SymptomConfig};
use std::collections::HashMap;
use turbine_config::JobConfig;
use turbine_types::{Duration, JobId, Priority, Resources, SimTime};

/// Which generation of the scaler to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalerMode {
    /// First generation: purely symptom-driven, no estimates, no pattern
    /// pruning. Kept as the evaluation baseline.
    Reactive,
    /// Second generation: proactive estimates + preactive pattern analysis.
    Full,
}

/// Scaler tunables.
#[derive(Debug, Clone, Copy)]
pub struct ScalerConfig {
    /// Generation selector.
    pub mode: ScalerMode,
    /// Symptom thresholds.
    pub symptoms: SymptomConfig,
    /// Resource estimation model.
    pub estimator: ResourceEstimator,
    /// Pattern analyzer settings.
    pub patterns: PatternConfig,
    /// How long a job must stay symptom-free before downscaling is
    /// considered (the paper observes "no lag detected in a day").
    pub downscale_stability: Duration,
    /// Minimum gap between successive scaling actions on one job.
    pub min_action_gap: Duration,
    /// Per-task resource ceiling for vertical scaling — typically 1/5 of a
    /// Turbine container, keeping tasks fine-grained enough to move.
    pub vertical_limit: Resources,
    /// Memory growth factor applied on OOM.
    pub oom_memory_factor: f64,
    /// Window after a downscale during which an SLO violation is
    /// attributed to an overestimated `P`.
    pub overestimate_window: Duration,
    /// Bootstrap per-thread throughput used until staging/observation
    /// provides a better value (bytes/sec).
    pub bootstrap_p: f64,
    /// Proactive pre-emptive upscale trigger: when the estimated CPU
    /// units (Eq. 2) exceed this fraction of capacity, scale up *before*
    /// lag appears. This is what keeps jobs inside their SLOs through
    /// predictable ramps.
    pub preemptive_units: f64,
    /// Utilization targeted by scale-ups and downscales. Together with
    /// `preemptive_units` it forms the hysteresis band that prevents
    /// churn.
    pub target_units: f64,
}

impl Default for ScalerConfig {
    fn default() -> Self {
        ScalerConfig {
            mode: ScalerMode::Full,
            symptoms: SymptomConfig::default(),
            estimator: ResourceEstimator::default(),
            patterns: PatternConfig::default(),
            downscale_stability: Duration::from_hours(24),
            min_action_gap: Duration::from_mins(5),
            vertical_limit: Resources::new(8.0, 10_240.0, 102_400.0, 200.0),
            oom_memory_factor: 1.5,
            overestimate_window: Duration::from_hours(1),
            bootstrap_p: 1.0e6,
            preemptive_units: 0.85,
            target_units: 0.7,
        }
    }
}

/// A scaling action to apply to a job's Scaler configuration level.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalingAction {
    /// Redistribute input traffic among the existing tasks (the resolver
    /// for imbalanced input; no parallelism change).
    RebalanceInput,
    /// Vertical scaling: change per-task threads/resources without
    /// changing the task count (a *simple* sync).
    Vertical {
        /// New worker-thread count per task.
        threads_per_task: u32,
        /// New per-task resource reservation.
        per_task: Resources,
    },
    /// Horizontal scaling: change the task count (a *complex* sync), with
    /// the correlated per-task resource adjustment.
    Horizontal {
        /// New number of tasks.
        task_count: u32,
        /// New per-task resource reservation (correlated adjustment).
        per_task: Resources,
    },
}

impl ScalingAction {
    /// Short stable description (trace records, runbooks).
    pub fn describe(&self) -> String {
        match self {
            ScalingAction::RebalanceInput => "rebalance_input".to_string(),
            ScalingAction::Vertical {
                threads_per_task,
                per_task,
            } => format!(
                "vertical(threads={threads_per_task}, mem={:.0}MB)",
                per_task.memory_mb
            ),
            ScalingAction::Horizontal {
                task_count,
                per_task,
            } => format!(
                "horizontal(tasks={task_count}, mem={:.0}MB)",
                per_task.memory_mb
            ),
        }
    }
}

/// The outcome of evaluating one job.
#[derive(Debug, Clone)]
pub struct ScalingDecision {
    /// The job evaluated.
    pub job: JobId,
    /// Action to apply, if any.
    pub action: Option<ScalingAction>,
    /// Set when symptoms exist that scaling cannot explain or fix — the
    /// paper's "untriaged problems" that fire operator alerts.
    pub untriaged: Option<String>,
    /// Symptoms observed this round.
    pub symptoms: Vec<Symptom>,
    /// Human-readable rationale (for logs/runbooks).
    pub reason: String,
}

/// Per-job persistent scaler state.
#[derive(Debug)]
struct JobState {
    throughput: ThroughputModel,
    healthy_since: Option<SimTime>,
    last_action_at: Option<SimTime>,
    last_downscale_at: Option<SimTime>,
    /// Consecutive rounds the job has shown lag; untriaged alerts only
    /// fire once lag persists (start-up catch-up is not an incident).
    lag_rounds: u32,
}

/// The Auto Scaler.
#[derive(Debug)]
pub struct AutoScaler {
    config: ScalerConfig,
    patterns: PatternAnalyzer,
    states: HashMap<JobId, JobState>,
    /// When set by the Capacity Manager, only jobs at or above this
    /// priority may scale *up* (cluster under pressure, §V-F).
    priority_floor: Option<Priority>,
}

impl AutoScaler {
    /// A scaler with the given tunables.
    pub fn new(config: ScalerConfig) -> Self {
        AutoScaler {
            patterns: PatternAnalyzer::new(config.patterns),
            config,
            states: HashMap::new(),
            priority_floor: None,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ScalerConfig {
        &self.config
    }

    /// Current `P` estimate for a job (bytes/sec per thread), if known.
    pub fn throughput_estimate(&self, job: JobId) -> Option<f64> {
        self.states.get(&job).map(|s| s.throughput.p())
    }

    /// Set/clear the Capacity Manager's priority floor for scale-ups.
    pub fn set_priority_floor(&mut self, floor: Option<Priority>) {
        self.priority_floor = floor;
    }

    /// Direct access to the Pattern Analyzer (for recording workload
    /// samples outside evaluation rounds).
    pub fn patterns_mut(&mut self) -> &mut PatternAnalyzer {
        &mut self.patterns
    }

    /// Run one scaling evaluation for `job`.
    pub fn evaluate(
        &mut self,
        job: JobId,
        metrics: &JobMetrics,
        config: &JobConfig,
        now: SimTime,
    ) -> ScalingDecision {
        self.patterns.record(job, now, metrics.input_rate);
        let bootstrap_p = self.config.bootstrap_p;
        let state = self.states.entry(job).or_insert_with(|| JobState {
            throughput: ThroughputModel::new(bootstrap_p),
            healthy_since: Some(now),
            last_action_at: None,
            last_downscale_at: None,
            lag_rounds: 0,
        });

        // Continuously refine P upward from observation: a task observed
        // processing faster than P proves P was too small.
        let k = config.threads_per_task.max(1) as f64;
        let n = config.task_count.max(1) as f64;
        if metrics.processing_rate > 0.0 {
            let observed_per_thread = metrics.processing_rate / (n * k);
            state.throughput.record_underestimate(observed_per_thread);
        }

        let symptoms = detect(metrics, config.slo_lag_secs, &self.config.symptoms);
        let lagging = symptoms
            .iter()
            .any(|s| matches!(s, Symptom::Lagging { .. }));
        let imbalanced = symptoms
            .iter()
            .any(|s| matches!(s, Symptom::ImbalancedInput { .. }));
        let oom = symptoms.iter().any(|s| {
            matches!(
                s,
                Symptom::OutOfMemory { .. } | Symptom::MemoryPressure { .. }
            )
        });

        // Health bookkeeping for the downscale stability window and the
        // untriaged-alert debounce.
        if lagging {
            state.lag_rounds += 1;
        } else {
            state.lag_rounds = 0;
        }
        if lagging || oom {
            state.healthy_since = None;
        } else if state.healthy_since.is_none() {
            state.healthy_since = Some(now);
        }

        // Cooldown: at most one action per job per gap.
        let in_cooldown = state
            .last_action_at
            .is_some_and(|at| now.since(at) < self.config.min_action_gap);
        if in_cooldown {
            return ScalingDecision {
                job,
                action: None,
                untriaged: None,
                symptoms,
                reason: "cooldown".into(),
            };
        }

        let decision = match self.config.mode {
            ScalerMode::Reactive => self.evaluate_reactive(
                job, metrics, config, now, lagging, imbalanced, oom, symptoms,
            ),
            ScalerMode::Full => self.evaluate_full(
                job, metrics, config, now, lagging, imbalanced, oom, symptoms,
            ),
        };
        if decision.action.is_some() {
            let state = self.states.get_mut(&job).expect("state created above");
            state.last_action_at = Some(now);
        }
        decision
    }

    /// Generation 1 (Algorithm 2): purely reactive.
    #[allow(clippy::too_many_arguments)]
    fn evaluate_reactive(
        &mut self,
        job: JobId,
        _metrics: &JobMetrics,
        config: &JobConfig,
        now: SimTime,
        lagging: bool,
        imbalanced: bool,
        oom: bool,
        symptoms: Vec<Symptom>,
    ) -> ScalingDecision {
        let state = self.states.get_mut(&job).expect("state exists");
        if lagging {
            if imbalanced && config.task_count > 1 {
                return ScalingDecision {
                    job,
                    action: Some(ScalingAction::RebalanceInput),
                    untriaged: None,
                    symptoms,
                    reason: "reactive: lag + imbalance -> rebalance".into(),
                };
            }
            // Blind doubling: no estimate of how much is actually needed.
            let target = (config.task_count * 2).min(config.max_task_count);
            if target > config.task_count {
                return ScalingDecision {
                    job,
                    action: Some(ScalingAction::Horizontal {
                        task_count: target,
                        per_task: config.task_resources,
                    }),
                    untriaged: None,
                    symptoms,
                    reason: "reactive: lag -> double task count".into(),
                };
            }
            return ScalingDecision {
                job,
                action: None,
                untriaged: Some("lagging at max task count".into()),
                symptoms,
                reason: "reactive: capped".into(),
            };
        }
        if oom {
            let mut per_task = config.task_resources;
            per_task.memory_mb *= self.config.oom_memory_factor;
            return ScalingDecision {
                job,
                action: Some(ScalingAction::Vertical {
                    threads_per_task: config.threads_per_task,
                    per_task,
                }),
                untriaged: None,
                symptoms,
                reason: "reactive: OOM -> grow memory".into(),
            };
        }
        // No symptom for the stability window: shrink slowly (the gen-1
        // convergence problem — no lower-bound estimate, so shrink blindly
        // one step at a time).
        let stable = state
            .healthy_since
            .is_some_and(|since| now.since(since) >= self.config.downscale_stability);
        if stable && config.task_count > 1 {
            let target = (config.task_count as f64 * 0.75).floor().max(1.0) as u32;
            if target < config.task_count {
                state.last_downscale_at = Some(now);
                state.healthy_since = Some(now);
                return ScalingDecision {
                    job,
                    action: Some(ScalingAction::Horizontal {
                        task_count: target,
                        per_task: config.task_resources,
                    }),
                    untriaged: None,
                    symptoms,
                    reason: "reactive: stable -> blind 25% shrink".into(),
                };
            }
        }
        ScalingDecision {
            job,
            action: None,
            untriaged: None,
            symptoms,
            reason: "reactive: healthy".into(),
        }
    }

    /// Generation 2: proactive estimates + preactive pattern pruning.
    #[allow(clippy::too_many_arguments)]
    fn evaluate_full(
        &mut self,
        job: JobId,
        metrics: &JobMetrics,
        config: &JobConfig,
        now: SimTime,
        lagging: bool,
        imbalanced: bool,
        oom: bool,
        symptoms: Vec<Symptom>,
    ) -> ScalingDecision {
        let state = self.states.get_mut(&job).expect("state exists");
        let p = state.throughput.p();
        let k = config.threads_per_task.max(1);
        let n = config.task_count.max(1);
        let estimate = self.config.estimator.estimate(metrics, p, config.stateful);

        if lagging {
            // An SLO violation shortly after a downscale indicts the P
            // estimate (§V-C): pull P down toward the observed rate.
            if state
                .last_downscale_at
                .is_some_and(|at| now.since(at) <= self.config.overestimate_window)
            {
                let observed_per_thread = metrics.input_rate / (n as f64 * k as f64);
                state.throughput.record_overestimate(observed_per_thread);
                state.last_downscale_at = None;
            }

            if imbalanced && n > 1 {
                return ScalingDecision {
                    job,
                    action: Some(ScalingAction::RebalanceInput),
                    untriaged: None,
                    symptoms,
                    reason: "lag + imbalance -> rebalance input".into(),
                };
            }

            // Size the scale-up in one shot: a horizontal resize pauses
            // the job for a few minutes of sync + restart, so the backlog
            // it must recover includes the arrivals of that pause. Without
            // this, each resize chases the backlog the previous resize
            // created and the job creeps up in many small (pausing!)
            // steps.
            let resize_pause_secs = 240.0;
            let needed = crate::estimator::required_task_count(
                metrics.input_rate,
                p,
                k,
                metrics.total_bytes_lagged + metrics.input_rate * resize_pause_secs,
                Some(self.config.estimator.recovery_time),
            )
            .max(estimate.recovery_task_count);
            // Recovery-in-progress guard: if capacity already exceeds the
            // arrival rate, the backlog is demonstrably shrinking, *and*
            // the projected drain finishes within the recovery target,
            // the previous Eq.-3 sizing is doing its job — re-scaling now
            // only adds churn (every parallelism change pauses the job
            // and grows the very backlog being drained).
            let capacity_rate = n as f64 * k as f64 * p;
            let surplus = capacity_rate - metrics.input_rate;
            let drain_within_target = surplus > 0.0
                && metrics.total_bytes_lagged / surplus
                    <= self.config.estimator.recovery_time.as_secs_f64() * 1.5;
            if n >= estimate.min_task_count
                && metrics.processing_rate > metrics.input_rate
                && drain_within_target
                && needed > n
            {
                return ScalingDecision {
                    job,
                    action: None,
                    untriaged: None,
                    symptoms,
                    reason:
                        "recovery in progress: backlog drains within target at current capacity"
                            .into(),
                };
            }
            if needed <= n {
                // Plan Generator guard 2: the job already has enough
                // resources by our estimates — scaling would not fix this
                // and may amplify it (dependency failure, app bug, ...).
                // Alert only once the lag persists: a job catching up
                // right after starting is not an incident.
                let persistent = self.states[&job].lag_rounds >= 3;
                return ScalingDecision {
                    job,
                    action: None,
                    untriaged: persistent.then(|| format!(
                        "lagging with sufficient resources (have {n} tasks, estimate needs {needed}): untriaged"
                    )),
                    symptoms,
                    reason: "untriaged problem: do not scale".into(),
                };
            }

            if self.blocked_by_priority_floor(config) {
                return ScalingDecision {
                    job,
                    action: None,
                    untriaged: None,
                    symptoms,
                    reason: "scale-up suppressed by capacity manager priority floor".into(),
                };
            }
            if let Some((action, reason)) =
                plan_scale_up(&self.config, config, &estimate, needed, "lag")
            {
                return ScalingDecision {
                    job,
                    action: Some(action),
                    untriaged: None,
                    symptoms,
                    reason,
                };
            }
            return ScalingDecision {
                job,
                action: None,
                untriaged: Some(format!(
                    "needs {needed} tasks but max_task_count={}: operator approval required",
                    config.max_task_count
                )),
                symptoms,
                reason: "capped by max_task_count".into(),
            };
        }

        if oom {
            let peak = metrics.peak_task_memory_mb();
            let mut per_task = config.task_resources;
            per_task.memory_mb =
                (per_task.memory_mb * self.config.oom_memory_factor).max(peak * 1.2);
            if per_task.memory_mb <= self.config.vertical_limit.memory_mb {
                return ScalingDecision {
                    job,
                    action: Some(ScalingAction::Vertical {
                        threads_per_task: k,
                        per_task,
                    }),
                    untriaged: None,
                    symptoms,
                    reason: "OOM -> vertical memory increase".into(),
                };
            }
            // Memory ceiling reached: spread the state across more tasks
            // (correlated: memory per task falls as count rises).
            if self.blocked_by_priority_floor(config) {
                return ScalingDecision {
                    job,
                    action: None,
                    untriaged: None,
                    symptoms,
                    reason: "scale-up suppressed by capacity manager priority floor".into(),
                };
            }
            let target = (n * 2).min(config.max_task_count);
            if target > n {
                let mut per_task = config.task_resources;
                per_task.memory_mb = (per_task.memory_mb * n as f64 / target as f64)
                    .max(self.config.estimator.base_memory_mb);
                return ScalingDecision {
                    job,
                    action: Some(ScalingAction::Horizontal {
                        task_count: target,
                        per_task,
                    }),
                    untriaged: None,
                    symptoms,
                    reason: "OOM at memory ceiling -> horizontal + correlated memory cut".into(),
                };
            }
            return ScalingDecision {
                job,
                action: None,
                untriaged: Some("OOM at memory ceiling and max task count".into()),
                symptoms,
                reason: "OOM: capped".into(),
            };
        }

        // Proactive pre-emptive upscale (§V-B): when the estimated CPU
        // units approach saturation, add capacity *before* lag appears, so
        // ramps (diurnal climbs, storm redirects) never violate the SLO.
        let units = crate::estimator::cpu_units_needed(metrics.input_rate, p, k, n, 0.0, None);
        if units > self.config.preemptive_units && !self.blocked_by_priority_floor(config) {
            // Same finite clamp as `required_task_count`: a tiny `p` must
            // not let the `as u32` cast saturate at four billion tasks.
            let raw = (metrics.input_rate / (self.config.target_units * p * k as f64)).ceil();
            let needed = if raw.is_finite() && raw < crate::estimator::MAX_ESTIMATED_TASKS as f64 {
                (raw as u32).max(1)
            } else {
                crate::estimator::MAX_ESTIMATED_TASKS
            };
            if let Some((action, reason)) =
                plan_scale_up(&self.config, config, &estimate, needed, "pre-emptive")
            {
                return ScalingDecision {
                    job,
                    action: Some(action),
                    untriaged: None,
                    symptoms,
                    reason,
                };
            }
        }

        // Healthy: consider reclaiming resources after the stability
        // window (Plan Generator guard 1 + Pattern Analyzer pruning).
        let state = self.states.get_mut(&job).expect("state exists");
        let stable = state
            .healthy_since
            .is_some_and(|since| now.since(since) >= self.config.downscale_stability);
        if stable {
            let n_plain = required_task_count(metrics.input_rate, p, k, 0.0, None);
            if n_plain > n {
                // P must be underestimated (§V-C): fix P, skip the action.
                let observed_per_thread = metrics.input_rate / (n as f64 * k as f64);
                state.throughput.record_underestimate(observed_per_thread);
                return ScalingDecision {
                    job,
                    action: None,
                    untriaged: None,
                    symptoms,
                    reason: "downscale plan exceeded current count: adjusted P, skipped".into(),
                };
            }
            // Horizontal reclaim — down to the same target utilization the
            // pre-emptive upscaler aims for, giving hysteresis instead of
            // churn around the thresholds.
            let n0 = ((metrics.input_rate / (self.config.target_units * p * k as f64)).ceil()
                as u32)
                .max(1)
                .min(n);
            if n0 < n {
                use crate::patterns::PatternVerdict;
                // "Sustains" = would not re-trigger the pre-emptive
                // upscaler within the lookahead window.
                let sustainable = n0 as f64 * k as f64 * p * self.config.preemptive_units;
                // With insufficient history the Plan Generator's estimate
                // guard still applies, but with an extra 25 % margin so an
                // unseen peak does not immediately re-trigger scaling.
                let (target, verdict_note) =
                    match self.patterns.check_downscale(job, now, sustainable) {
                        PatternVerdict::Safe => (n0, "history-safe"),
                        PatternVerdict::InsufficientHistory => {
                            let margin = ((n0 as f64 * 1.25).ceil() as u32).min(n);
                            (margin, "estimate-only, +25% margin")
                        }
                        PatternVerdict::Unsafe => {
                            return ScalingDecision {
                                job,
                                action: None,
                                untriaged: None,
                                symptoms,
                                reason:
                                    "downscale pruned: history shows upcoming load needs capacity"
                                        .into(),
                            };
                        }
                        PatternVerdict::Anomalous => {
                            return ScalingDecision {
                                job,
                                action: None,
                                untriaged: None,
                                symptoms,
                                reason: "downscale skipped: workload anomalous vs history".into(),
                            };
                        }
                    };
                if target < n {
                    let state = self.states.get_mut(&job).expect("state exists");
                    state.last_downscale_at = Some(now);
                    state.healthy_since = Some(now);
                    let mut per_task = estimate.per_task.min(&self.config.vertical_limit);
                    // Reserve the estimated need plus margin — NOT a full
                    // thread: most tailer tasks use well under one core
                    // (Fig. 5a), and fractional reservations are exactly
                    // how consolidation saves CPU (Fig. 10).
                    per_task.cpu =
                        (estimate.per_task.cpu * 1.3).clamp(0.1, self.config.vertical_limit.cpu);
                    return ScalingDecision {
                        job,
                        action: Some(ScalingAction::Horizontal {
                            task_count: target,
                            per_task,
                        }),
                        untriaged: None,
                        symptoms,
                        reason: format!(
                            "stable -> downscale {n} -> {target} tasks ({verdict_note})"
                        ),
                    };
                }
            }
            // Vertical reclaim: memory reserved far above observed peak.
            let peak = metrics.peak_task_memory_mb();
            let floor = self.config.estimator.base_memory_mb;
            if peak > 0.0 && config.task_resources.memory_mb > (peak * 1.5).max(floor) {
                let mut per_task = config.task_resources;
                per_task.memory_mb = (peak * 1.3).max(floor);
                let state = self.states.get_mut(&job).expect("state exists");
                state.healthy_since = Some(now);
                return ScalingDecision {
                    job,
                    action: Some(ScalingAction::Vertical {
                        threads_per_task: k,
                        per_task,
                    }),
                    untriaged: None,
                    symptoms,
                    reason: "stable -> vertical memory reclaim".into(),
                };
            }
        }

        ScalingDecision {
            job,
            action: None,
            untriaged: None,
            symptoms,
            reason: "healthy".into(),
        }
    }

    fn blocked_by_priority_floor(&self, config: &JobConfig) -> bool {
        self.priority_floor
            .is_some_and(|floor| config.priority < floor)
    }
}

/// Plan a capacity increase to `needed` tasks' worth of capacity,
/// vertical-first (§V-E): grow threads per task while the per-task CPU
/// footprint stays under the vertical limit, then go horizontal with the
/// correlated per-task resource adjustment. Returns `None` when already at
/// (or above) the needed capacity and no change would result.
fn plan_scale_up(
    scaler: &ScalerConfig,
    config: &JobConfig,
    estimate: &crate::estimator::ResourceEstimate,
    needed: u32,
    why: &str,
) -> Option<(ScalingAction, String)> {
    let k = config.threads_per_task.max(1);
    let n = config.task_count.max(1);
    let total_threads_needed = needed * k;
    let max_threads_per_task = (scaler.vertical_limit.cpu.floor() as u32).max(1);
    if total_threads_needed.div_ceil(n) <= max_threads_per_task {
        let threads = total_threads_needed.div_ceil(n).max(k);
        if threads > k {
            let mut per_task = config.task_resources;
            per_task.cpu = (threads as f64).min(scaler.vertical_limit.cpu);
            per_task.memory_mb = per_task
                .memory_mb
                .max(estimate.per_task.memory_mb)
                .min(scaler.vertical_limit.memory_mb);
            return Some((
                ScalingAction::Vertical {
                    threads_per_task: threads,
                    per_task,
                },
                format!("{why} -> vertical scale to {threads} threads/task"),
            ));
        }
        return None;
    }
    let target = needed.min(config.max_task_count);
    if target > n {
        let mut per_task = estimate.per_task.min(&scaler.vertical_limit);
        per_task.memory_mb = per_task.memory_mb.max(
            config
                .task_resources
                .memory_mb
                .min(scaler.vertical_limit.memory_mb),
        );
        return Some((
            ScalingAction::Horizontal {
                task_count: target,
                per_task,
            },
            format!("{why} -> horizontal scale {n} -> {target} tasks"),
        ));
    }
    None
}

impl turbine_types::Snap for ScalerMode {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.u8(match self {
            ScalerMode::Reactive => 0,
            ScalerMode::Full => 1,
        });
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        match r.u8("ScalerMode.tag")? {
            0 => Ok(ScalerMode::Reactive),
            1 => Ok(ScalerMode::Full),
            tag => Err(turbine_types::SnapError::Tag("ScalerMode", tag as u64)),
        }
    }
}

impl turbine_types::Snap for ScalerConfig {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.put(&self.mode);
        w.put(&self.symptoms);
        w.put(&self.estimator);
        w.put(&self.patterns);
        w.put(&self.downscale_stability);
        w.put(&self.min_action_gap);
        w.put(&self.vertical_limit);
        w.put(&self.oom_memory_factor);
        w.put(&self.overestimate_window);
        w.put(&self.bootstrap_p);
        w.put(&self.preemptive_units);
        w.put(&self.target_units);
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        Ok(ScalerConfig {
            mode: r.get()?,
            symptoms: r.get()?,
            estimator: r.get()?,
            patterns: r.get()?,
            downscale_stability: r.get()?,
            min_action_gap: r.get()?,
            vertical_limit: r.get()?,
            oom_memory_factor: r.get()?,
            overestimate_window: r.get()?,
            bootstrap_p: r.get()?,
            preemptive_units: r.get()?,
            target_units: r.get()?,
        })
    }
}

impl turbine_types::Snap for JobState {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.put(&self.throughput);
        w.put(&self.healthy_since);
        w.put(&self.last_action_at);
        w.put(&self.last_downscale_at);
        w.u32(self.lag_rounds);
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        Ok(JobState {
            throughput: r.get()?,
            healthy_since: r.get()?,
            last_action_at: r.get()?,
            last_downscale_at: r.get()?,
            lag_rounds: r.u32("JobState.lag_rounds")?,
        })
    }
}

impl turbine_types::Snap for AutoScaler {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.put(&self.config);
        w.put(&self.patterns);
        let sorted: std::collections::BTreeMap<JobId, &JobState> =
            self.states.iter().map(|(j, s)| (*j, s)).collect();
        w.u64(sorted.len() as u64);
        for (job, state) in sorted {
            w.put(&job);
            w.put(state);
        }
        w.put(&self.priority_floor);
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        let config = r.get()?;
        let patterns = r.get()?;
        let len = r.len_prefix("AutoScaler.states")?;
        let mut states = HashMap::with_capacity(len);
        for _ in 0..len {
            let job: JobId = r.get()?;
            states.insert(job, r.get::<JobState>()?);
        }
        Ok(AutoScaler {
            config,
            patterns,
            states,
            priority_floor: r.get()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const JOB: JobId = JobId(1);

    fn scaler() -> AutoScaler {
        let mut cfg = ScalerConfig::default();
        cfg.bootstrap_p = 1.0e6; // 1 MB/s per thread
        cfg.downscale_stability = Duration::from_hours(1);
        cfg.min_action_gap = Duration::ZERO;
        AutoScaler::new(cfg)
    }

    fn job_config(task_count: u32) -> JobConfig {
        let mut c = JobConfig::stateless("tailer", task_count, 256);
        c.max_task_count = 128;
        c.task_resources = Resources::cpu_mem(1.0, 800.0);
        c
    }

    fn healthy_metrics(task_count: u32, input_rate: f64) -> JobMetrics {
        JobMetrics {
            input_rate,
            processing_rate: input_rate,
            total_bytes_lagged: 0.0,
            per_task_rates: vec![input_rate / task_count as f64; task_count as usize],
            per_task_memory_mb: vec![500.0; task_count as usize],
            oom_events: 0,
            task_count,
            threads_per_task: 1,
            reserved: Resources::cpu_mem(1.0, 800.0),
            key_cardinality: None,
        }
    }

    fn t(mins: u64) -> SimTime {
        SimTime::ZERO + Duration::from_mins(mins)
    }

    #[test]
    fn healthy_job_is_left_alone() {
        let mut s = scaler();
        let d = s.evaluate(JOB, &healthy_metrics(4, 2.0e6), &job_config(4), t(0));
        assert!(d.action.is_none());
        assert!(d.untriaged.is_none());
    }

    #[test]
    fn lag_with_insufficient_capacity_scales_up() {
        let mut s = scaler();
        let mut m = healthy_metrics(4, 16.0e6); // needs 16 tasks at P=1MB/s
        m.processing_rate = 4.0e6; // maxed out
        m.total_bytes_lagged = 4.0e6 * 200.0; // 200 s of lag
        let d = s.evaluate(JOB, &m, &job_config(4), t(0));
        match d.action {
            Some(ScalingAction::Vertical {
                threads_per_task, ..
            }) => {
                assert!(threads_per_task > 1, "{d:?}")
            }
            Some(ScalingAction::Horizontal { task_count, .. }) => {
                assert!(task_count > 4, "{d:?}")
            }
            other => panic!("expected scale-up, got {other:?} ({})", d.reason),
        }
    }

    #[test]
    fn vertical_is_preferred_until_the_limit() {
        let mut cfg = ScalerConfig::default();
        cfg.bootstrap_p = 1.0e6;
        cfg.min_action_gap = Duration::ZERO;
        cfg.vertical_limit = Resources::new(4.0, 10_240.0, 102_400.0, 200.0);
        let mut s = AutoScaler::new(cfg);
        // Needs 8 tasks' worth; 4 tasks with up to 4 threads can absorb it.
        let mut m = healthy_metrics(4, 8.0e6);
        m.processing_rate = 4.0e6;
        m.total_bytes_lagged = 4.0e6 * 120.0;
        let d = s.evaluate(JOB, &m, &job_config(4), t(0));
        assert!(
            matches!(d.action, Some(ScalingAction::Vertical { .. })),
            "expected vertical first: {d:?}"
        );
        // A demand beyond the vertical ceiling goes horizontal.
        let mut m = healthy_metrics(4, 64.0e6);
        m.processing_rate = 4.0e6;
        m.total_bytes_lagged = 4.0e6 * 120.0;
        let d = s.evaluate(JOB, &m, &job_config(4), t(10));
        assert!(
            matches!(d.action, Some(ScalingAction::Horizontal { .. })),
            "expected horizontal beyond limit: {d:?}"
        );
    }

    #[test]
    fn imbalance_triggers_rebalance_not_scaling() {
        let mut s = scaler();
        let mut m = healthy_metrics(4, 4.0e6);
        m.per_task_rates = vec![3.7e6, 0.1e6, 0.1e6, 0.1e6];
        m.processing_rate = 4.0e6;
        m.total_bytes_lagged = 4.0e6 * 120.0;
        let d = s.evaluate(JOB, &m, &job_config(4), t(0));
        assert_eq!(d.action, Some(ScalingAction::RebalanceInput), "{d:?}");
    }

    #[test]
    fn lag_with_sufficient_resources_is_untriaged() {
        let mut s = scaler();
        // 4 tasks can do 4 MB/s; input is only 1 MB/s but a dependency
        // failure stalls processing: estimates say capacity is plenty.
        let mut m = healthy_metrics(4, 1.0e6);
        m.processing_rate = 0.1e6;
        m.total_bytes_lagged = 0.1e6 * 1000.0;
        // First rounds: no action, but the alert is debounced (a job
        // catching up after a restart is not an incident).
        let d = s.evaluate(JOB, &m, &job_config(4), t(0));
        assert!(d.action.is_none());
        assert!(d.untriaged.is_none(), "debounced: {d:?}");
        s.evaluate(JOB, &m, &job_config(4), t(1));
        let d = s.evaluate(JOB, &m, &job_config(4), t(2));
        assert!(d.action.is_none());
        assert!(d.untriaged.is_some(), "persistent lag must alert: {d:?}");
    }

    #[test]
    fn oom_grows_memory_vertically() {
        let mut s = scaler();
        let mut m = healthy_metrics(4, 2.0e6);
        m.oom_events = 1;
        m.per_task_memory_mb = vec![790.0; 4];
        let d = s.evaluate(JOB, &m, &job_config(4), t(0));
        match d.action {
            Some(ScalingAction::Vertical { per_task, .. }) => {
                assert!(per_task.memory_mb > 800.0, "{per_task:?}")
            }
            other => panic!("expected vertical memory growth, got {other:?}"),
        }
    }

    #[test]
    fn downscale_requires_stability_and_history() {
        let mut s = scaler();
        let config = job_config(16);
        // 16 tasks for 2 MB/s at P=1MB/s: massively overprovisioned.
        // Feed two days of history at 30 s cadence (coarse: every 10 min).
        let mut now = SimTime::ZERO;
        let mut downscaled_to = None;
        while now < t(3 * 24 * 60) {
            let d = s.evaluate(JOB, &healthy_metrics(16, 2.0e6), &config, now);
            if let Some(ScalingAction::Horizontal { task_count, .. }) = d.action {
                downscaled_to = Some(task_count);
                break;
            }
            now += Duration::from_mins(10);
        }
        let target = downscaled_to.expect("stable overprovisioned job must downscale");
        assert!((2..16).contains(&target), "target {target}");
        // Plan Generator guard: the target still sustains the input.
        assert!(target as f64 * s.throughput_estimate(JOB).expect("p") >= 2.0e6);
    }

    #[test]
    fn early_downscale_is_blocked_without_history() {
        let mut s = scaler();
        // Job stable for only 30 minutes: stability window (1 h) not met.
        let mut d = None;
        for i in 0..6 {
            d = Some(s.evaluate(JOB, &healthy_metrics(16, 2.0e6), &job_config(16), t(i * 5)));
        }
        assert!(d.expect("decision").action.is_none());
    }

    #[test]
    fn slo_violation_after_downscale_adjusts_p_down() {
        let mut s = scaler();
        let config = job_config(8);
        // Converge history then force a downscale state.
        let mut now = SimTime::ZERO;
        while now < t(2 * 24 * 60 + 120) {
            s.evaluate(JOB, &healthy_metrics(8, 2.0e6), &config, now);
            now += Duration::from_mins(10);
        }
        let p_before = s.throughput_estimate(JOB).expect("p");
        // Mark a downscale, then a lag arrives inside the window while the
        // job observably sustains only 0.6 MB/s per thread.
        s.states.get_mut(&JOB).expect("state").last_downscale_at = Some(now);
        let mut m = healthy_metrics(2, 1.2e6);
        m.processing_rate = 0.6e6;
        m.total_bytes_lagged = 0.6e6 * 500.0;
        let mut config2 = job_config(2);
        config2.task_resources = Resources::cpu_mem(1.0, 800.0);
        s.evaluate(JOB, &m, &config2, now + Duration::from_mins(1));
        let p_after = s.throughput_estimate(JOB).expect("p");
        assert!(p_after < p_before, "P must drop: {p_before} -> {p_after}");
    }

    #[test]
    fn priority_floor_suppresses_scale_up_of_low_jobs() {
        let mut s = scaler();
        s.set_priority_floor(Some(Priority::High));
        let mut m = healthy_metrics(4, 64.0e6);
        m.processing_rate = 4.0e6;
        m.total_bytes_lagged = 4.0e6 * 300.0;
        let mut low = job_config(4);
        low.priority = Priority::Normal;
        let d = s.evaluate(JOB, &m, &low, t(0));
        assert!(d.action.is_none(), "{d:?}");
        // Privileged jobs still scale.
        let mut privileged = job_config(4);
        privileged.priority = Priority::Privileged;
        let d = s.evaluate(JobId(2), &m, &privileged, t(0));
        assert!(d.action.is_some(), "{d:?}");
    }

    #[test]
    fn cooldown_suppresses_rapid_consecutive_actions() {
        let mut cfg = ScalerConfig::default();
        cfg.bootstrap_p = 1.0e6;
        cfg.min_action_gap = Duration::from_mins(5);
        let mut s = AutoScaler::new(cfg);
        let mut m = healthy_metrics(1, 64.0e6);
        m.processing_rate = 1.0e6;
        m.total_bytes_lagged = 1.0e6 * 300.0;
        let d1 = s.evaluate(JOB, &m, &job_config(1), t(0));
        assert!(d1.action.is_some());
        let d2 = s.evaluate(JOB, &m, &job_config(1), t(1));
        assert!(d2.action.is_none());
        assert_eq!(d2.reason, "cooldown");
        let d3 = s.evaluate(JOB, &m, &job_config(1), t(6));
        assert!(d3.action.is_some());
    }

    #[test]
    fn reactive_mode_doubles_blindly_and_shrinks_slowly() {
        let mut cfg = ScalerConfig::default();
        cfg.mode = ScalerMode::Reactive;
        cfg.min_action_gap = Duration::ZERO;
        cfg.downscale_stability = Duration::from_mins(30);
        let mut s = AutoScaler::new(cfg);
        let mut m = healthy_metrics(4, 4.0e6);
        m.processing_rate = 1.0e6;
        m.total_bytes_lagged = 1.0e6 * 200.0;
        let d = s.evaluate(JOB, &m, &job_config(4), t(0));
        assert!(
            matches!(
                d.action,
                Some(ScalingAction::Horizontal { task_count: 8, .. })
            ),
            "{d:?}"
        );
        // Untriaged-style lag *also* triggers blind scaling in gen-1 —
        // the flaw the proactive generation fixes.
        let mut m2 = healthy_metrics(4, 0.5e6);
        m2.processing_rate = 0.05e6;
        m2.total_bytes_lagged = 0.05e6 * 500.0;
        let d = s.evaluate(JobId(3), &m2, &job_config(4), t(0));
        assert!(
            matches!(d.action, Some(ScalingAction::Horizontal { .. })),
            "{d:?}"
        );
    }
}
