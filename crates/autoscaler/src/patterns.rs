//! The Pattern Analyzer (paper §V-C): the "preactive" layer that prunes
//! destabilizing scaling decisions.
//!
//! Two knowledge sources are maintained:
//!
//! * **Resource adjustment data** — outcomes of past scaling actions,
//!   folded into the per-thread max-throughput estimate `P` via
//!   [`ThroughputModel`];
//! * **Historical workload patterns** — per-minute workload metrics over
//!   the last 14 days, used to verify that a planned downscale could have
//!   sustained the traffic observed at the same time-of-day in prior days
//!   (most Facebook streaming workloads are diurnal within ~1 % on
//!   aggregate), and to detect anomalies (storms, incidents) during which
//!   pattern-based decisions are disabled.

use std::collections::HashMap;
use turbine_types::{Duration, JobId, SimTime};

/// Adaptive estimate of `P`, the maximum stable processing rate of a
/// single thread (bytes/sec). Bootstrapped during the job's staging period
/// and adjusted at runtime from observed outcomes (§V-C item 1).
#[derive(Debug, Clone, Copy)]
pub struct ThroughputModel {
    p: f64,
}

impl ThroughputModel {
    /// Start from the staging-period bootstrap value.
    pub fn new(bootstrap_p: f64) -> Self {
        assert!(bootstrap_p > 0.0, "bootstrap P must be positive");
        ThroughputModel { p: bootstrap_p }
    }

    /// Current estimate.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The planned downscale target exceeded the current task count
    /// (`n' > n`): `P` must be *smaller* than the actual max throughput.
    /// Adjust `P` up to the observed average per-thread throughput and
    /// skip the action this round.
    pub fn record_underestimate(&mut self, observed_per_thread: f64) {
        if observed_per_thread > self.p {
            self.p = observed_per_thread;
        }
    }

    /// An SLO violation followed a downscale: `P` must be *greater* than
    /// the actual max throughput. Move `P` to a value between the observed
    /// per-thread throughput (`X/n/k`) and the old `P`.
    pub fn record_overestimate(&mut self, observed_per_thread: f64) {
        if observed_per_thread < self.p {
            self.p = (self.p + observed_per_thread) / 2.0;
        }
    }
}

/// Outcome of the Pattern Analyzer's downscale check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternVerdict {
    /// History confirms the reduced capacity sustains upcoming traffic.
    Safe,
    /// History shows upcoming traffic would exceed the reduced capacity.
    Unsafe,
    /// Not enough recorded days to judge; the scaler may fall back to
    /// estimate-only guards (with extra margin).
    InsufficientHistory,
    /// The recent workload differs significantly from the same time of
    /// day in prior days (storm/incident): pattern-based decisions are
    /// disabled (§V-C).
    Anomalous,
}

/// Pattern Analyzer tunables.
#[derive(Debug, Clone, Copy)]
pub struct PatternConfig {
    /// Days of history kept (paper: 14).
    pub history_days: usize,
    /// Bucket width for the per-minute workload record. The paper records
    /// per minute; 10-minute buckets keep memory modest with the same
    /// decision quality at our horizons.
    pub bucket: Duration,
    /// How far ahead a downscale must be historically sustainable
    /// ("the next x hours", configurable).
    pub lookahead: Duration,
    /// Recent window compared against the same window in prior days for
    /// anomaly detection (paper: last 30 minutes).
    pub recent_window: Duration,
    /// Relative difference beyond which the recent workload counts as
    /// "significantly different" and pattern decisions are disabled.
    pub anomaly_threshold: f64,
    /// Minimum full days of history before pattern checks activate.
    pub min_history_days: usize,
}

impl Default for PatternConfig {
    fn default() -> Self {
        PatternConfig {
            history_days: 14,
            bucket: Duration::from_mins(10),
            lookahead: Duration::from_hours(4),
            recent_window: Duration::from_mins(30),
            anomaly_threshold: 0.5,
            min_history_days: 2,
        }
    }
}

/// Ring buffer of workload buckets for one job. Each slot remembers which
/// absolute bucket wrote it, so stale data from a previous ring cycle is
/// never misread as current history.
#[derive(Debug, Clone)]
struct JobHistory {
    /// `history_days * buckets_per_day` slots.
    buckets: Vec<f64>,
    /// Absolute bucket index that last wrote each slot; `u64::MAX` = never.
    slot_bucket: Vec<u64>,
}

impl JobHistory {
    fn value_at_abs(&self, abs: u64) -> Option<f64> {
        let slot = (abs % self.buckets.len() as u64) as usize;
        (self.slot_bucket[slot] == abs).then(|| self.buckets[slot])
    }
}

/// The Pattern Analyzer.
#[derive(Debug)]
pub struct PatternAnalyzer {
    config: PatternConfig,
    buckets_per_day: u64,
    history: HashMap<JobId, JobHistory>,
}

impl PatternAnalyzer {
    /// An analyzer with the given tunables.
    pub fn new(config: PatternConfig) -> Self {
        let buckets_per_day = Duration::from_days(1).as_millis() / config.bucket.as_millis();
        assert!(buckets_per_day > 0, "bucket must divide a day");
        PatternAnalyzer {
            config,
            buckets_per_day,
            history: HashMap::new(),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &PatternConfig {
        &self.config
    }

    fn abs_bucket(&self, at: SimTime) -> u64 {
        at.as_millis() / self.config.bucket.as_millis()
    }

    fn total_slots(&self) -> usize {
        (self.buckets_per_day * self.config.history_days as u64) as usize
    }

    /// Record a workload sample (input rate) for `job` at `at`. Within a
    /// bucket the maximum is kept — sustainability must hold at peak, not
    /// on average.
    pub fn record(&mut self, job: JobId, at: SimTime, input_rate: f64) {
        let total = self.total_slots();
        let abs = self.abs_bucket(at);
        let entry = self.history.entry(job).or_insert_with(|| JobHistory {
            buckets: vec![0.0; total],
            slot_bucket: vec![u64::MAX; total],
        });
        let slot = (abs % total as u64) as usize;
        if entry.slot_bucket[slot] == abs {
            entry.buckets[slot] = entry.buckets[slot].max(input_rate);
        } else {
            entry.buckets[slot] = input_rate;
            entry.slot_bucket[slot] = abs;
        }
    }

    /// Days of history available for `job` (approximate: written slots
    /// divided by slots per day, capped by elapsed simulation time).
    fn days_recorded(&self, job: JobId, now: SimTime) -> usize {
        match self.history.get(&job) {
            None => 0,
            Some(h) => {
                let written = h.slot_bucket.iter().filter(|&&b| b != u64::MAX).count() as u64;
                ((written / self.buckets_per_day.max(1)) as usize).min(now.as_days_f64() as usize)
            }
        }
    }

    /// Would a capacity of `sustainable_rate` (bytes/sec) have kept up
    /// with the traffic observed during `[now, now + lookahead)` on prior
    /// recorded days?
    pub fn check_downscale(
        &self,
        job: JobId,
        now: SimTime,
        sustainable_rate: f64,
    ) -> PatternVerdict {
        if self.days_recorded(job, now) < self.config.min_history_days {
            return PatternVerdict::InsufficientHistory;
        }
        match self.is_anomalous(job, now) {
            None => return PatternVerdict::InsufficientHistory,
            Some(true) => return PatternVerdict::Anomalous,
            Some(false) => {}
        }
        match self.downscale_is_safe_inner(job, now, sustainable_rate) {
            None => PatternVerdict::InsufficientHistory,
            Some(true) => PatternVerdict::Safe,
            Some(false) => PatternVerdict::Unsafe,
        }
    }

    /// Backwards-compatible boolean view of [`Self::check_downscale`]:
    /// `None` when history is insufficient or the workload anomalous.
    pub fn downscale_is_safe(
        &self,
        job: JobId,
        now: SimTime,
        sustainable_rate: f64,
    ) -> Option<bool> {
        match self.check_downscale(job, now, sustainable_rate) {
            PatternVerdict::Safe => Some(true),
            PatternVerdict::Unsafe => Some(false),
            PatternVerdict::InsufficientHistory | PatternVerdict::Anomalous => None,
        }
    }

    fn downscale_is_safe_inner(
        &self,
        job: JobId,
        now: SimTime,
        sustainable_rate: f64,
    ) -> Option<bool> {
        let history = self.history.get(&job)?;
        let start = self.abs_bucket(now);
        let horizon = (self.config.lookahead.as_millis() / self.config.bucket.as_millis()).max(1);
        // For each prior day, scan the same time-of-day window.
        for day in 1..self.config.history_days as u64 {
            let day_offset = day * self.buckets_per_day;
            if day_offset > start {
                break; // before the simulation began
            }
            for b in 0..horizon {
                let abs = start + b - day_offset;
                if let Some(observed) = history.value_at_abs(abs) {
                    if observed > sustainable_rate {
                        return Some(false);
                    }
                }
            }
        }
        Some(true)
    }

    /// Is the recent workload significantly different from the same
    /// time-of-day in prior days? `None` with insufficient history.
    pub fn is_anomalous(&self, job: JobId, now: SimTime) -> Option<bool> {
        if self.days_recorded(job, now) < self.config.min_history_days {
            return None;
        }
        let history = self.history.get(&job)?;
        let window =
            (self.config.recent_window.as_millis() / self.config.bucket.as_millis()).max(1);
        let end = self.abs_bucket(now);
        let start = end.saturating_sub(window - 1);

        let mut recent_sum = 0.0;
        let mut recent_n = 0usize;
        for abs in start..=end {
            if let Some(v) = history.value_at_abs(abs) {
                recent_sum += v;
                recent_n += 1;
            }
        }
        let mut hist_sum = 0.0;
        let mut hist_n = 0usize;
        for day in 1..self.config.history_days as u64 {
            let day_offset = day * self.buckets_per_day;
            if day_offset > start {
                break;
            }
            for abs in start..=end {
                if let Some(v) = history.value_at_abs(abs - day_offset) {
                    hist_sum += v;
                    hist_n += 1;
                }
            }
        }
        if recent_n == 0 || hist_n == 0 {
            return None;
        }
        let recent = recent_sum / recent_n as f64;
        let historical = hist_sum / hist_n as f64;
        if historical <= 0.0 {
            return Some(recent > 0.0);
        }
        let ratio = recent / historical;
        Some(
            ratio > 1.0 + self.config.anomaly_threshold
                || ratio < 1.0 / (1.0 + self.config.anomaly_threshold),
        )
    }
}

impl turbine_types::Snap for ThroughputModel {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.put(&self.p);
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        let p: f64 = r.get()?;
        if !p.is_finite() || p <= 0.0 {
            return Err(turbine_types::SnapError::Value(
                "ThroughputModel.p not positive",
            ));
        }
        Ok(ThroughputModel { p })
    }
}

impl turbine_types::Snap for PatternConfig {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.put(&self.history_days);
        w.put(&self.bucket);
        w.put(&self.lookahead);
        w.put(&self.recent_window);
        w.put(&self.anomaly_threshold);
        w.put(&self.min_history_days);
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        let config = PatternConfig {
            history_days: r.get()?,
            bucket: r.get()?,
            lookahead: r.get()?,
            recent_window: r.get()?,
            anomaly_threshold: r.get()?,
            min_history_days: r.get()?,
        };
        if config.bucket.is_zero()
            || Duration::from_days(1).as_millis() / config.bucket.as_millis() == 0
        {
            return Err(turbine_types::SnapError::Value(
                "PatternConfig.bucket does not divide a day",
            ));
        }
        Ok(config)
    }
}

impl turbine_types::Snap for JobHistory {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.put(&self.buckets);
        w.put(&self.slot_bucket);
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        let history = JobHistory {
            buckets: r.get()?,
            slot_bucket: r.get()?,
        };
        if history.buckets.len() != history.slot_bucket.len() || history.buckets.is_empty() {
            return Err(turbine_types::SnapError::Value(
                "JobHistory ring length mismatch",
            ));
        }
        Ok(history)
    }
}

impl turbine_types::Snap for PatternAnalyzer {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.put(&self.config);
        let sorted: std::collections::BTreeMap<JobId, &JobHistory> =
            self.history.iter().map(|(j, h)| (*j, h)).collect();
        w.u64(sorted.len() as u64);
        for (job, history) in sorted {
            w.put(&job);
            w.put(history);
        }
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        let config: PatternConfig = r.get()?;
        let buckets_per_day = Duration::from_days(1).as_millis() / config.bucket.as_millis();
        let len = r.len_prefix("PatternAnalyzer.history")?;
        let mut history = HashMap::with_capacity(len);
        for _ in 0..len {
            let job: JobId = r.get()?;
            history.insert(job, r.get::<JobHistory>()?);
        }
        Ok(PatternAnalyzer {
            config,
            buckets_per_day,
            history,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const JOB: JobId = JobId(1);

    fn t(days: u64, hours: u64, mins: u64) -> SimTime {
        SimTime::ZERO
            + Duration::from_days(days)
            + Duration::from_hours(hours)
            + Duration::from_mins(mins)
    }

    /// Record a perfect diurnal pattern: rate = 100 + 50·sin(time-of-day).
    fn diurnal_rate(at: SimTime) -> f64 {
        let frac = at.time_of_day().as_millis() as f64 / Duration::from_days(1).as_millis() as f64;
        100.0 + 50.0 * (2.0 * std::f64::consts::PI * frac).sin()
    }

    fn analyzer_with_days(days: u64) -> PatternAnalyzer {
        let mut pa = PatternAnalyzer::new(PatternConfig::default());
        let step = Duration::from_mins(10);
        let mut at = SimTime::ZERO;
        let end = SimTime::ZERO + Duration::from_days(days);
        while at < end {
            pa.record(JOB, at, diurnal_rate(at));
            at += step;
        }
        pa
    }

    #[test]
    fn throughput_model_adjusts_both_ways() {
        let mut model = ThroughputModel::new(100.0);
        // Underestimate discovered: jump to observed.
        model.record_underestimate(150.0);
        assert_eq!(model.p(), 150.0);
        // Observed below current: no change on the underestimate path.
        model.record_underestimate(120.0);
        assert_eq!(model.p(), 150.0);
        // Overestimate discovered: move halfway down.
        model.record_overestimate(100.0);
        assert_eq!(model.p(), 125.0);
        // Observed above current: no change on the overestimate path.
        model.record_overestimate(200.0);
        assert_eq!(model.p(), 125.0);
    }

    #[test]
    fn insufficient_history_returns_none() {
        let pa = analyzer_with_days(1);
        assert_eq!(pa.downscale_is_safe(JOB, t(1, 0, 0), 1000.0), None);
        let empty = PatternAnalyzer::new(PatternConfig::default());
        assert_eq!(empty.downscale_is_safe(JobId(9), t(5, 0, 0), 1000.0), None);
    }

    #[test]
    fn generous_capacity_is_safe_tight_capacity_is_not() {
        let pa = analyzer_with_days(5);
        let now = t(5, 0, 0);
        // Peak of the diurnal curve is 150: capacity 200 clears it.
        assert_eq!(pa.downscale_is_safe(JOB, now, 200.0), Some(true));
        // Capacity 60 is below even the trough at some hours.
        assert_eq!(pa.downscale_is_safe(JOB, now, 60.0), Some(false));
    }

    #[test]
    fn lookahead_catches_upcoming_peaks() {
        let pa = analyzer_with_days(5);
        // 4 hours before the historical daily peak (sin peaks at 6h):
        // capacity of 120 holds now (rate 100 at midnight) but not at the
        // peak (150) within the 4h lookahead window reaching 04:00 where
        // rate = 100+50·sin(2π·4/24) ≈ 143.3.
        let now = t(5, 0, 0);
        assert_eq!(pa.downscale_is_safe(JOB, now, 120.0), Some(false));
    }

    #[test]
    fn anomaly_disables_pattern_decisions() {
        let mut pa = analyzer_with_days(5);
        // Storm: traffic doubles for the last 30 minutes.
        let now = t(5, 2, 0);
        for m in 0..3 {
            pa.record(JOB, t(5, 1, 30 + m * 10), diurnal_rate(now) * 2.5);
        }
        assert_eq!(pa.is_anomalous(JOB, now), Some(true));
        assert_eq!(pa.downscale_is_safe(JOB, now, 1.0e9), None);
    }

    #[test]
    fn normal_traffic_is_not_anomalous() {
        let pa = analyzer_with_days(5);
        assert_eq!(pa.is_anomalous(JOB, t(5, 0, 0)), Some(false));
    }

    #[test]
    fn ring_overwrites_after_full_cycle() {
        // With 14-day history, day 15's data lands on day 1's slots.
        let mut pa = PatternAnalyzer::new(PatternConfig {
            history_days: 2,
            min_history_days: 1,
            ..PatternConfig::default()
        });
        // Days 0-1: constant 100. Days 2-3 overwrite the 2-day ring with
        // a sustained 500 — after which 100-era data must be gone.
        let step = Duration::from_mins(10);
        let mut at = SimTime::ZERO;
        while at < t(2, 0, 0) {
            pa.record(JOB, at, 100.0);
            at += step;
        }
        while at < t(4, 0, 0) {
            pa.record(JOB, at, 500.0);
            at += step;
        }
        // At day 4 the recent traffic (500) matches history (500): not
        // anomalous, and capacity 200 is unsafe because the ring now holds
        // the 500-rate days, not the stale 100-rate ones.
        assert_eq!(pa.is_anomalous(JOB, t(4, 0, 0)), Some(false));
        assert_eq!(pa.downscale_is_safe(JOB, t(4, 0, 0), 200.0), Some(false));
        assert_eq!(pa.downscale_is_safe(JOB, t(4, 0, 0), 600.0), Some(true));
    }
}
