//! The Capacity Manager (paper §V-F).
//!
//! Watches cluster-wide resource usage, temporarily transfers capacity
//! between clusters during datacenter-wide events, instructs the Auto
//! Scaler to prioritize privileged jobs when a cluster runs hot, and — as
//! a last resort — stops low-priority jobs to unblock high-priority ones.

use std::collections::BTreeMap;
use turbine_types::{JobId, Priority, Resources};

/// Capacity Manager tunables.
#[derive(Debug, Clone, Copy)]
pub struct CapacityManagerConfig {
    /// Remaining-capacity fraction below which the Auto Scaler is told to
    /// prioritize scale-ups of privileged/high jobs.
    pub pressure_threshold: f64,
    /// Remaining-capacity fraction below which low-priority jobs are
    /// stopped to free capacity.
    pub critical_threshold: f64,
    /// Priority floor imposed under pressure.
    pub pressure_floor: Priority,
}

impl Default for CapacityManagerConfig {
    fn default() -> Self {
        CapacityManagerConfig {
            pressure_threshold: 0.15,
            critical_threshold: 0.05,
            pressure_floor: Priority::High,
        }
    }
}

/// What the Capacity Manager tells the rest of the system after one
/// evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityDirective {
    /// Capacity not yet reserved.
    pub remaining: Resources,
    /// The tightest remaining fraction across dimensions (0 = full).
    pub remaining_fraction: f64,
    /// When set, the Auto Scaler must only scale *up* jobs at or above
    /// this priority.
    pub priority_floor: Option<Priority>,
    /// Jobs to stop (lowest priority first) to relieve critical pressure.
    pub jobs_to_stop: Vec<JobId>,
}

/// The Capacity Manager: tracks registered clusters and produces
/// directives.
#[derive(Debug)]
pub struct CapacityManager {
    config: CapacityManagerConfig,
    clusters: BTreeMap<String, Resources>,
}

impl CapacityManager {
    /// A manager with the given tunables and no clusters yet.
    pub fn new(config: CapacityManagerConfig) -> Self {
        CapacityManager {
            config,
            clusters: BTreeMap::new(),
        }
    }

    /// Register (or resize) a cluster's total capacity.
    pub fn register_cluster(&mut self, name: &str, total: Resources) {
        self.clusters.insert(name.to_string(), total);
    }

    /// Total capacity of a registered cluster.
    pub fn cluster_capacity(&self, name: &str) -> Option<Resources> {
        self.clusters.get(name).copied()
    }

    /// Temporarily transfer `amount` of capacity from one cluster to
    /// another (disaster drills, datacenter outages). Fails if the source
    /// lacks the amount.
    pub fn transfer(&mut self, from: &str, to: &str, amount: Resources) -> Result<(), String> {
        let src = *self
            .clusters
            .get(from)
            .ok_or_else(|| format!("unknown cluster '{from}'"))?;
        if !amount.fits_within(&src) {
            return Err(format!(
                "cluster '{from}' cannot give up {amount} (has {src})"
            ));
        }
        if !self.clusters.contains_key(to) {
            return Err(format!("unknown cluster '{to}'"));
        }
        *self.clusters.get_mut(from).expect("checked") = src - amount;
        *self.clusters.get_mut(to).expect("checked") += amount;
        Ok(())
    }

    /// Evaluate one cluster: given total reservations and the running jobs
    /// (with priorities and per-job reservations), produce the directive.
    pub fn evaluate(
        &self,
        cluster: &str,
        reserved: Resources,
        jobs: &[(JobId, Priority, Resources)],
    ) -> CapacityDirective {
        let total = self
            .clusters
            .get(cluster)
            .copied()
            .unwrap_or(Resources::ZERO);
        let remaining = total - reserved;
        let remaining_fraction = if total.is_zero() {
            0.0 // an unknown/empty cluster has nothing to give
        } else {
            (1.0 - reserved.dominant_utilization(&total)).max(0.0)
        };

        let mut directive = CapacityDirective {
            remaining,
            remaining_fraction,
            priority_floor: None,
            jobs_to_stop: Vec::new(),
        };
        if remaining_fraction < self.config.pressure_threshold {
            directive.priority_floor = Some(self.config.pressure_floor);
        }
        if remaining_fraction < self.config.critical_threshold {
            // Stop lowest-priority jobs (largest first within a priority,
            // to free the most capacity with the fewest stops) until the
            // projection clears the pressure threshold.
            let mut candidates: Vec<&(JobId, Priority, Resources)> = jobs
                .iter()
                .filter(|(_, p, _)| *p < self.config.pressure_floor)
                .collect();
            candidates.sort_by(|a, b| {
                a.1.cmp(&b.1)
                    .then(
                        b.2.dominant_utilization(&total)
                            .partial_cmp(&a.2.dominant_utilization(&total))
                            .expect("no NaN reservations"),
                    )
                    .then(a.0.cmp(&b.0))
            });
            let mut projected = reserved;
            for (job, _, r) in candidates {
                if (1.0 - projected.dominant_utilization(&total)) >= self.config.pressure_threshold
                {
                    break;
                }
                projected -= *r;
                directive.jobs_to_stop.push(*job);
            }
        }
        directive
    }
}

impl Default for CapacityManager {
    fn default() -> Self {
        Self::new(CapacityManagerConfig::default())
    }
}

impl turbine_types::Snap for CapacityManagerConfig {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.put(&self.pressure_threshold);
        w.put(&self.critical_threshold);
        w.put(&self.pressure_floor);
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        Ok(CapacityManagerConfig {
            pressure_threshold: r.get()?,
            critical_threshold: r.get()?,
            pressure_floor: r.get()?,
        })
    }
}

impl turbine_types::Snap for CapacityManager {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.put(&self.config);
        w.put(&self.clusters);
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        Ok(CapacityManager {
            config: r.get()?,
            clusters: r.get()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manager() -> CapacityManager {
        let mut m = CapacityManager::default();
        m.register_cluster("west", Resources::cpu_mem(1000.0, 1.0e6));
        m.register_cluster("east", Resources::cpu_mem(1000.0, 1.0e6));
        m
    }

    #[test]
    fn relaxed_cluster_needs_no_directive() {
        let m = manager();
        let d = m.evaluate("west", Resources::cpu_mem(500.0, 5.0e5), &[]);
        assert!(d.priority_floor.is_none());
        assert!(d.jobs_to_stop.is_empty());
        assert!((d.remaining_fraction - 0.5).abs() < 1e-9);
    }

    #[test]
    fn pressure_sets_the_priority_floor() {
        let m = manager();
        let d = m.evaluate("west", Resources::cpu_mem(900.0, 5.0e5), &[]);
        assert_eq!(d.priority_floor, Some(Priority::High));
        assert!(d.jobs_to_stop.is_empty(), "not critical yet");
    }

    #[test]
    fn critical_pressure_stops_low_priority_jobs_first() {
        let m = manager();
        let jobs = vec![
            (
                JobId(1),
                Priority::Privileged,
                Resources::cpu_mem(400.0, 1.0e5),
            ),
            (JobId(2), Priority::Low, Resources::cpu_mem(100.0, 1.0e5)),
            (JobId(3), Priority::Normal, Resources::cpu_mem(300.0, 1.0e5)),
            (JobId(4), Priority::Low, Resources::cpu_mem(160.0, 1.0e5)),
        ];
        let d = m.evaluate("west", Resources::cpu_mem(960.0, 4.0e5), &jobs);
        assert_eq!(d.priority_floor, Some(Priority::High));
        // Low priority first, larger first: job 4 (160) then job 2 (100):
        // 960-160 = 800 => 20% free >= 15%: job 2 not needed.
        assert_eq!(d.jobs_to_stop, vec![JobId(4)]);
        // Privileged/high jobs are never stopped.
        assert!(!d.jobs_to_stop.contains(&JobId(1)));
    }

    #[test]
    fn critical_pressure_escalates_to_normal_jobs_if_needed() {
        let m = manager();
        let jobs = vec![
            (
                JobId(1),
                Priority::Privileged,
                Resources::cpu_mem(800.0, 1.0e5),
            ),
            (JobId(2), Priority::Low, Resources::cpu_mem(50.0, 1.0e5)),
            (JobId(3), Priority::Normal, Resources::cpu_mem(130.0, 1.0e5)),
        ];
        let d = m.evaluate("west", Resources::cpu_mem(980.0, 4.0e5), &jobs);
        // Stopping job 2 leaves 930 reserved (7% free): must also stop 3.
        assert_eq!(d.jobs_to_stop, vec![JobId(2), JobId(3)]);
    }

    #[test]
    fn transfer_moves_capacity_between_clusters() {
        let mut m = manager();
        m.transfer("west", "east", Resources::cpu_mem(200.0, 2.0e5))
            .expect("transfer");
        assert_eq!(m.cluster_capacity("west").expect("west").cpu, 800.0);
        assert_eq!(m.cluster_capacity("east").expect("east").cpu, 1200.0);
        // Over-transfer is rejected.
        assert!(m
            .transfer("west", "east", Resources::cpu_mem(900.0, 0.0))
            .is_err());
        assert!(m.transfer("nowhere", "east", Resources::ZERO).is_err());
        assert!(m.transfer("west", "nowhere", Resources::ZERO).is_err());
    }

    #[test]
    fn unknown_cluster_evaluates_as_empty() {
        let m = manager();
        let d = m.evaluate("mars", Resources::cpu_mem(1.0, 1.0), &[]);
        assert_eq!(d.remaining_fraction, 0.0);
    }
}
