//! Turbine's elastic resource management (paper §V).
//!
//! Three generations of scaling logic, all implemented here:
//!
//! * the **reactive** scaler (§V-A, Algorithm 2): symptom detectors for lag
//!   (`time_lagged`, Eq. 1), imbalanced input, and OOMs, with
//!   diagnosis-resolver responses — kept as the ablation baseline;
//! * the **proactive** scaler (§V-B): resource estimators (Eq. 2 and 3 for
//!   CPU; cardinality/window-proportional models for stateful memory and
//!   disk) feeding a Plan Generator that refuses destabilizing decisions
//!   (downscaling a healthy job into unhealthiness, scaling on untriaged
//!   problems) and applies multi-resource adjustments in a correlated way;
//! * the **preactive** layer (§V-C): the Pattern Analyzer, which adjusts the
//!   per-thread max-throughput estimate `P` from observed outcomes and
//!   consults 14 days of per-minute workload history so that predictable
//!   diurnal swings do not churn resource allocation.
//!
//! The **Capacity Manager** (§V-F) watches cluster-wide usage, prioritizes
//! privileged jobs when capacity runs low, and stops low-priority jobs as a
//! last resort. The **auto root-causer** (§V-D, §IX) classifies untriaged
//! problems — hardware issue / bad user update / dependency failure — and
//! proposes the safe mitigation for each.

pub mod capacity;
pub mod estimator;
pub mod patterns;
pub mod rootcause;
pub mod scaler;
pub mod symptoms;

pub use capacity::{CapacityDirective, CapacityManager, CapacityManagerConfig};
pub use estimator::{
    cpu_units_needed, required_task_count, ResourceEstimate, ResourceEstimator, MAX_CPU_UNITS,
    MAX_ESTIMATED_TASKS,
};
pub use patterns::{PatternAnalyzer, PatternConfig, PatternVerdict, ThroughputModel};
pub use rootcause::{
    Diagnosis, DiagnosisInput, Mitigation, RootCause, RootCauser, RootCauserConfig,
};
pub use scaler::{AutoScaler, ScalerConfig, ScalerMode, ScalingAction, ScalingDecision};
pub use symptoms::{detect, JobMetrics, Symptom, SymptomConfig};
