//! Symptom detection (paper §V-A).
//!
//! The first-generation auto scaler monitored pre-configured symptoms of
//! misbehaviour: lag/backlog, imbalanced input, and tasks running out of
//! memory. Those detectors live on in the second generation as the trigger
//! side of the Plan Generator.

use turbine_types::Resources;

/// Per-job metrics sampled by the platform each scaler round.
#[derive(Debug, Clone, Default)]
pub struct JobMetrics {
    /// Input arrival rate `X`, bytes/sec (aggregate over partitions).
    pub input_rate: f64,
    /// Achieved processing rate, bytes/sec (aggregate over tasks).
    pub processing_rate: f64,
    /// Bytes available for reading not yet ingested (`total_bytes_lagged`).
    pub total_bytes_lagged: f64,
    /// Per-task processing rates, for imbalance detection.
    pub per_task_rates: Vec<f64>,
    /// Per-task memory usage in MB.
    pub per_task_memory_mb: Vec<f64>,
    /// OOM kills observed since the last round (cgroup stats or JVM
    /// metrics, depending on the enforcement mode).
    pub oom_events: u32,
    /// Current number of tasks.
    pub task_count: u32,
    /// Threads per task (`k`).
    pub threads_per_task: u32,
    /// Per-task reserved resources.
    pub reserved: Resources,
    /// Key cardinality of in-memory state (stateful jobs only).
    pub key_cardinality: Option<f64>,
}

impl JobMetrics {
    /// `time_lagged` (Eq. 1): how far behind real time the job's processing
    /// is, in seconds. When nothing is being processed but a backlog
    /// exists, the lag is effectively unbounded; we surface infinity and
    /// let the caller treat it as a (severe) lag symptom.
    pub fn time_lagged_secs(&self) -> f64 {
        if self.total_bytes_lagged <= 0.0 {
            return 0.0;
        }
        if self.processing_rate <= 0.0 {
            return f64::INFINITY;
        }
        self.total_bytes_lagged / self.processing_rate
    }

    /// Coefficient of variation of per-task processing rates — the paper
    /// measures imbalance as the standard deviation of processing rate
    /// across tasks; normalizing by the mean makes one threshold work for
    /// jobs of any size.
    pub fn imbalance_cv(&self) -> f64 {
        let n = self.per_task_rates.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.per_task_rates.iter().sum::<f64>() / n as f64;
        if mean <= 0.0 {
            return 0.0;
        }
        let var = self
            .per_task_rates
            .iter()
            .map(|r| (r - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        var.sqrt() / mean
    }

    /// Highest per-task memory usage, MB.
    pub fn peak_task_memory_mb(&self) -> f64 {
        self.per_task_memory_mb.iter().cloned().fold(0.0, f64::max)
    }
}

/// Detection thresholds.
#[derive(Debug, Clone, Copy)]
pub struct SymptomConfig {
    /// `time_lagged` above the job's SLO threshold ⇒ lagging.
    /// (The SLO itself comes from the job config; this is a multiplier
    /// applied to it, normally 1.0.)
    pub slo_multiplier: f64,
    /// Imbalance CV above this ⇒ imbalanced input.
    pub imbalance_cv_threshold: f64,
    /// Memory usage above this fraction of the soft limit ⇒ pressure
    /// (tasks without hard enforcement).
    pub soft_memory_fraction: f64,
}

impl Default for SymptomConfig {
    fn default() -> Self {
        SymptomConfig {
            slo_multiplier: 1.0,
            imbalance_cv_threshold: 0.5,
            soft_memory_fraction: 0.9,
        }
    }
}

/// A detected misbehaviour symptom.
#[derive(Debug, Clone, PartialEq)]
pub enum Symptom {
    /// `time_lagged` exceeds the SLO threshold.
    Lagging {
        /// Observed lag in seconds (may be infinite).
        time_lagged_secs: f64,
        /// The job's SLO threshold in seconds.
        slo_secs: f64,
    },
    /// Input is unevenly distributed across tasks.
    ImbalancedInput {
        /// Coefficient of variation of per-task rates.
        cv: f64,
    },
    /// Tasks were OOM-killed since the last round.
    OutOfMemory {
        /// Number of OOM events.
        events: u32,
    },
    /// Soft-limit jobs approaching their memory limit.
    MemoryPressure {
        /// Peak per-task usage in MB.
        peak_mb: f64,
        /// The configured soft limit in MB.
        soft_limit_mb: f64,
    },
}

impl Symptom {
    /// Short human description (trace records, dashboards).
    pub fn describe(&self) -> String {
        match self {
            Symptom::Lagging {
                time_lagged_secs,
                slo_secs,
            } => format!("lagging {time_lagged_secs:.0}s (SLO {slo_secs:.0}s)"),
            Symptom::ImbalancedInput { cv } => format!("imbalanced input (cv {cv:.2})"),
            Symptom::OutOfMemory { events } => format!("{events} OOM event(s)"),
            Symptom::MemoryPressure {
                peak_mb,
                soft_limit_mb,
            } => {
                format!("memory pressure: peak {peak_mb:.0} MB of {soft_limit_mb:.0} MB soft limit")
            }
        }
    }
}

/// Run all detectors over one job's metrics. `slo_secs` is the job's
/// configured `time_lagged` SLO.
pub fn detect(metrics: &JobMetrics, slo_secs: f64, config: &SymptomConfig) -> Vec<Symptom> {
    let mut symptoms = Vec::new();
    let lag = metrics.time_lagged_secs();
    if lag > slo_secs * config.slo_multiplier {
        symptoms.push(Symptom::Lagging {
            time_lagged_secs: lag,
            slo_secs,
        });
    }
    let cv = metrics.imbalance_cv();
    if cv > config.imbalance_cv_threshold {
        symptoms.push(Symptom::ImbalancedInput { cv });
    }
    if metrics.oom_events > 0 {
        symptoms.push(Symptom::OutOfMemory {
            events: metrics.oom_events,
        });
    }
    let soft_limit = metrics.reserved.memory_mb;
    let peak = metrics.peak_task_memory_mb();
    if soft_limit > 0.0 && peak > soft_limit * config.soft_memory_fraction {
        symptoms.push(Symptom::MemoryPressure {
            peak_mb: peak,
            soft_limit_mb: soft_limit,
        });
    }
    symptoms
}

impl turbine_types::Snap for SymptomConfig {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.put(&self.slo_multiplier);
        w.put(&self.imbalance_cv_threshold);
        w.put(&self.soft_memory_fraction);
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        Ok(SymptomConfig {
            slo_multiplier: r.get()?,
            imbalance_cv_threshold: r.get()?,
            soft_memory_fraction: r.get()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn healthy() -> JobMetrics {
        JobMetrics {
            input_rate: 100.0,
            processing_rate: 100.0,
            total_bytes_lagged: 0.0,
            per_task_rates: vec![25.0, 25.0, 25.0, 25.0],
            per_task_memory_mb: vec![400.0; 4],
            oom_events: 0,
            task_count: 4,
            threads_per_task: 1,
            reserved: Resources::cpu_mem(1.0, 800.0),
            key_cardinality: None,
        }
    }

    #[test]
    fn healthy_job_has_no_symptoms() {
        assert!(detect(&healthy(), 90.0, &SymptomConfig::default()).is_empty());
    }

    #[test]
    fn time_lagged_follows_eq1() {
        let mut m = healthy();
        m.total_bytes_lagged = 9000.0;
        m.processing_rate = 100.0;
        assert_eq!(m.time_lagged_secs(), 90.0);
        m.processing_rate = 0.0;
        assert!(m.time_lagged_secs().is_infinite());
        m.total_bytes_lagged = 0.0;
        assert_eq!(m.time_lagged_secs(), 0.0);
    }

    #[test]
    fn lag_beyond_slo_is_detected() {
        let mut m = healthy();
        m.total_bytes_lagged = 100.0 * 91.0; // 91 s of backlog at rate 100
        let symptoms = detect(&m, 90.0, &SymptomConfig::default());
        assert!(matches!(symptoms[0], Symptom::Lagging { .. }));
        // Just inside the SLO: clean.
        m.total_bytes_lagged = 100.0 * 89.0;
        assert!(detect(&m, 90.0, &SymptomConfig::default()).is_empty());
    }

    #[test]
    fn imbalance_uses_cv() {
        let mut m = healthy();
        m.per_task_rates = vec![97.0, 1.0, 1.0, 1.0];
        assert!(m.imbalance_cv() > 1.0);
        let symptoms = detect(&m, 90.0, &SymptomConfig::default());
        assert!(symptoms
            .iter()
            .any(|s| matches!(s, Symptom::ImbalancedInput { .. })));
        // Single-task jobs cannot be imbalanced.
        m.per_task_rates = vec![97.0];
        assert_eq!(m.imbalance_cv(), 0.0);
    }

    #[test]
    fn oom_and_memory_pressure_detected() {
        let mut m = healthy();
        m.oom_events = 2;
        let symptoms = detect(&m, 90.0, &SymptomConfig::default());
        assert!(symptoms.contains(&Symptom::OutOfMemory { events: 2 }));

        let mut m = healthy();
        m.per_task_memory_mb = vec![400.0, 790.0];
        let symptoms = detect(&m, 90.0, &SymptomConfig::default());
        assert!(symptoms
            .iter()
            .any(|s| matches!(s, Symptom::MemoryPressure { .. })));
    }

    #[test]
    fn zero_rate_metrics_are_not_imbalanced() {
        let mut m = healthy();
        m.per_task_rates = vec![0.0; 4];
        assert_eq!(m.imbalance_cv(), 0.0);
    }
}
